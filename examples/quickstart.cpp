// Quickstart: inject random faults into a 2-D mesh, run Prune2, and
// report what survived and how much expansion it kept.
//
//   ./quickstart [--side=24] [--p=0.05] [--seed=42]
#include <iostream>

#include "expansion/bracket.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"
#include "topology/mesh.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const auto side = static_cast<vid>(cli.get_int("side", 24));
  const double p = cli.get_double("p", 0.05);
  const std::uint64_t seed = cli.get_seed();

  // 1. Build the network and measure its fault-free edge expansion.
  const Mesh mesh = Mesh::cube(side, 2);
  const Graph& g = mesh.graph();
  std::cout << "network: " << side << "x" << side << " mesh, " << g.summary() << "\n";

  const double alpha_e = 2.0 / static_cast<double>(side);  // straight-line cut
  std::cout << "fault-free edge expansion alpha_e ~ " << alpha_e << "\n";

  // 2. Fail each node independently with probability p.
  const VertexSet alive = random_node_faults(g, p, seed);
  std::cout << "faults: p = " << p << " -> " << (g.num_vertices() - alive.count())
            << " nodes failed, " << alive.count() << " survive\n";

  // 3. Prune away the poorly-expanding fringe (paper Fig. 2, Prune2).
  const double eps = 1.0 / (2.0 * g.max_degree());  // Theorem 3.4's epsilon
  const PruneResult result = prune2(g, alive, alpha_e, eps);
  std::cout << "prune2: culled " << result.total_culled << " vertices in "
            << result.iterations << " iterations; |H| = " << result.survivors.count()
            << " (n/2 = " << g.num_vertices() / 2 << ")\n";

  // 4. Verify the run is a certified execution of the paper's algorithm.
  const TraceVerification trace = verify_prune_trace(
      g, alive, result, ExpansionKind::Edge, alpha_e * eps, /*require_compact=*/true);
  std::cout << "trace replay: " << (trace.valid ? "valid" : "INVALID — " + trace.reason)
            << "\n";

  // 5. Bracket the expansion of the surviving component.
  if (result.survivors.count() >= 2) {
    const ExpansionBracket bracket =
        expansion_bracket(g, result.survivors, ExpansionKind::Edge);
    std::cout << "edge expansion of H in [" << bracket.lower << ", " << bracket.upper
              << "]  (target: >= " << alpha_e * eps << ")\n";
  }
  return 0;
}
