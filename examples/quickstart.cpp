// Quickstart: the scenario API in five steps.
//
// Every experiment in this library is one pipeline — build a topology,
// injure it, run Prune/Prune2, measure the survivor.  The scenario layer
// (DESIGN.md §6) makes that pipeline a value: describe it as an
// fne::Scenario, hand it to an fne::ScenarioRunner, read the metrics.
//
//   ./example_quickstart [--side=24] [--p=0.05] [--seed=42]
#include <iostream>

#include "api/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);

  // 1. Describe the experiment.  Topology and fault process are registry
  //    names (see `scenario_runner --list` for the full catalog), so the
  //    whole description is plain data — no per-module APIs involved.
  Scenario scenario;
  scenario.name = "quickstart";
  scenario.topology = {"mesh", Params()
                                   .set("side", cli.get_int("side", 24))
                                   .set("dims", std::int64_t{2})};
  scenario.fault = {"random", Params().set("p", cli.get_double("p", 0.05))};
  scenario.prune.kind = ExpansionKind::Edge;   // Prune2, the random-fault algorithm
  scenario.metrics.verify_trace = true;        // replay-certify the run
  scenario.metrics.expansion = true;           // bracket the survivor's expansion
  scenario.seed = cli.get_seed();

  // 2. Bind a runner.  It builds the graph once, resolves alpha (the
  //    measured edge expansion of the fault-free mesh — a real cut, so a
  //    value the graph actually has) and epsilon (Theorem 3.4's
  //    1/(2*max_degree)), and owns one PruneEngine whose workspace will
  //    be reused by every run below.
  ScenarioRunner runner(scenario);
  std::cout << "network: " << runner.graph().summary() << "\n"
            << "alpha_e = " << runner.alpha() << ", eps = " << runner.epsilon()
            << "  ->  culling threshold alpha*eps = " << runner.alpha() * runner.epsilon()
            << "\n";

  // 3. Execute.  One call injects the faults, runs the engine-backed
  //    Prune2 loop, and measures the requested metrics.
  const ScenarioRun run = runner.run_once();
  std::cout << "faults: " << run.faults << " nodes failed, " << run.alive.count()
            << " survive\n"
            << "prune2: culled " << run.prune.total_culled << " vertices in "
            << run.prune.iterations << " iterations; |H| = " << run.prune.survivors.count()
            << " (n/2 = " << runner.graph().num_vertices() / 2 << ")\n";

  // 4. Certify.  The trace replay proves every culled set satisfied its
  //    culling condition — the run is a valid execution of the paper's
  //    algorithm, not just a heuristic's opinion.
  std::cout << "trace replay: "
            << (run.trace->valid ? "valid" : "INVALID — " + run.trace->reason) << "\n";

  // 5. Read the survivor's expansion bracket: [provable lower bound,
  //    constructive upper bound] around the Theorem 3.4 target.
  if (run.expansion.has_value()) {
    std::cout << "edge expansion of H in [" << run.expansion->lower << ", "
              << run.expansion->upper << "]  (target: >= " << run.threshold << ")\n";
  }

  // Bonus: the same scenario, rendered as the standard metrics table —
  // what the scenario_runner CLI prints for any registry-described
  // pipeline.
  std::cout << "\n";
  runner.metrics_table(std::vector<ScenarioRun>{run}).print(std::cout);
  return 0;
}
