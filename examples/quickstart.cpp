// Quickstart: the scenario API in five steps (plus a campaign coda).
//
// Every experiment in this library is one pipeline — build a topology,
// injure it, run Prune/Prune2, measure the survivor.  The scenario layer
// (DESIGN.md §6) makes that pipeline a value: describe it as an
// fne::Scenario, hand it to an fne::ScenarioRunner, read the metrics.
// A batch of such pipelines is a Campaign (DESIGN.md §8) — run many
// scenarios as one schedule, or load them from a JSON file:
//
//   ./scenario_runner --campaign=campaigns/smoke.json --threads=4
//
//   ./example_quickstart [--side=24] [--p=0.05] [--seed=42]
#include <iostream>

#include "api/campaign.hpp"
#include "api/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);

  // 1. Describe the experiment.  Topology and fault process are registry
  //    names (see `scenario_runner --list` for the full catalog), so the
  //    whole description is plain data — no per-module APIs involved.
  Scenario scenario;
  scenario.name = "quickstart";
  scenario.topology = {"mesh", Params()
                                   .set("side", cli.get_int("side", 24))
                                   .set("dims", std::int64_t{2})};
  scenario.fault = {"random", Params().set("p", cli.get_double("p", 0.05))};
  scenario.prune.kind = ExpansionKind::Edge;   // Prune2, the random-fault algorithm
  scenario.metrics.verify_trace = true;        // replay-certify the run
  scenario.metrics.expansion = true;           // bracket the survivor's expansion
  scenario.seed = cli.get_seed();

  // 2. Bind a runner.  It builds the graph once, resolves alpha (the
  //    measured edge expansion of the fault-free mesh — a real cut, so a
  //    value the graph actually has) and epsilon (Theorem 3.4's
  //    1/(2*max_degree)), and owns one PruneEngine whose workspace will
  //    be reused by every run below.
  ScenarioRunner runner(scenario);
  std::cout << "network: " << runner.graph().summary() << "\n"
            << "alpha_e = " << runner.alpha() << ", eps = " << runner.epsilon()
            << "  ->  culling threshold alpha*eps = " << runner.alpha() * runner.epsilon()
            << "\n";

  // 3. Execute.  One call injects the faults, runs the engine-backed
  //    Prune2 loop, and measures the requested metrics.
  const ScenarioRun run = runner.run_once();
  std::cout << "faults: " << run.faults << " nodes failed, " << run.alive.count()
            << " survive\n"
            << "prune2: culled " << run.prune.total_culled << " vertices in "
            << run.prune.iterations << " iterations; |H| = " << run.prune.survivors.count()
            << " (n/2 = " << runner.graph().num_vertices() / 2 << ")\n";

  // 4. Certify.  The trace replay proves every culled set satisfied its
  //    culling condition — the run is a valid execution of the paper's
  //    algorithm, not just a heuristic's opinion.
  std::cout << "trace replay: "
            << (run.trace->valid ? "valid" : "INVALID — " + run.trace->reason) << "\n";

  // 5. Read the survivor's expansion bracket: [provable lower bound,
  //    constructive upper bound] around the Theorem 3.4 target.
  if (run.expansion.has_value()) {
    std::cout << "edge expansion of H in [" << run.expansion->lower << ", "
              << run.expansion->upper << "]  (target: >= " << run.threshold << ")\n";
  }

  // Bonus: the same scenario, rendered as the standard metrics table —
  // what the scenario_runner CLI prints for any registry-described
  // pipeline.
  std::cout << "\n";
  runner.metrics_table(std::vector<ScenarioRun>{run}).print(std::cout);

  // 6. Campaigns: a STUDY is a list of scenarios.  This one sweeps the
  //    fault probability around the value above (monotone mode: the
  //    survivors at p feed the start mask at the next p — same survivors
  //    in this regime, less cull work), scheduled on the process-wide
  //    engine cache.  The same study as a JSON file:
  //
  //      {"name": "quickstart",
  //       "scenarios": [{"name": "p-sweep",
  //         "topology": {"name": "mesh", "params": {"side": 24, "dims": 2}},
  //         "fault":    {"name": "random", "params": {"p": 0.05}},
  //         "prune":    {"kind": "edge"},
  //         "sweep":    {"param": "p", "values": [0.05, 0.15, 0.25],
  //                      "mode": "monotone"}}]}
  //
  //    runnable as `scenario_runner --campaign=that-file.json`.
  Campaign campaign;
  campaign.name = "quickstart-campaign";
  Scenario sweep = scenario;
  sweep.name = "p-sweep";
  sweep.metrics.expansion = false;
  campaign.entries.push_back({sweep, SweepSpec{"p", {0.05, 0.15, 0.25}, SweepMode::kMonotone}});
  const CampaignReport report = CampaignRunner(campaign).run(/*threads=*/2);
  const ScenarioReport& sr = report.scenarios.front();
  std::cout << "\ncampaign '" << report.name << "': " << sr.runs.size()
            << " sweep points, engine iterations = " << sr.engine.iterations << "\n";
  for (std::size_t i = 0; i < sr.runs.size(); ++i) {
    std::cout << "  p = " << sr.sweep->values[i]
              << "  ->  |H|/n = " << sr.runs[i].survivor_fraction(sr.n) << "\n";
  }
  return 0;
}
