// CAN overlay under churn (paper §4): "CAN can tolerate a fault
// probability which is inversely polynomial in its dimension without
// losing too much in its expansion properties."
//
// Scenario-layer version: one Scenario per dimension (topology "can" from
// the registry), a fault-probability sweep through the runner's
// persistent engine, then ongoing churn re-pruned every round through the
// same engine (run_churn).
//
//   ./example_p2p_can [--peers=256] [--seed=42]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "api/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::int64_t peers = cli.get_int("peers", 256);
  const std::uint64_t seed = cli.get_seed();

  std::cout << "CAN overlay churn experiment (" << peers << " peers)\n\n";
  Table table({"dims", "avg degree", "alpha_e", "churn p", "|H|/n", "exp(H) [lo,up]",
               "retention up/alpha"});

  const std::vector<double> churn_ps{0.05, 0.15};
  for (std::int64_t dims = 2; dims <= 4; ++dims) {
    // One scenario = one overlay dimension.  alpha <= 0 means the runner
    // measures the fault-free overlay's edge expansion (upper bracket).
    Scenario scenario;
    scenario.name = "can-d" + std::to_string(dims);
    scenario.topology = {"can", Params().set("peers", peers).set("dims", dims)};
    scenario.fault = {"random", Params()};
    scenario.prune.kind = ExpansionKind::Edge;
    scenario.metrics.expansion = true;
    scenario.seed = seed + static_cast<std::uint64_t>(dims);

    ScenarioRunner runner(scenario);
    // Sweep the fault probability on the one persistent engine.
    const std::vector<ScenarioRun> runs = runner.sweep_fault_param("p", churn_ps);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ScenarioRun& run = runs[i];
      std::string after = "-";
      double retention = 0.0;
      if (run.expansion.has_value()) {
        after = "[" + std::to_string(run.expansion->lower).substr(0, 5) + "," +
                std::to_string(run.expansion->upper).substr(0, 5) + "]";
        retention = runner.alpha() > 0 ? run.expansion->upper / runner.alpha() : 0.0;
      }
      table.row()
          .cell(std::size_t(dims))
          .cell(runner.graph().average_degree(), 3)
          .cell(runner.alpha(), 3)
          .cell(churn_ps[i], 2)
          .cell(run.survivor_fraction(runner.graph().num_vertices()), 3)
          .cell(after)
          .cell(retention, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nhigher dimension -> denser overlay -> better tolerance of the same churn\n"
               "rate (paper §4: admissible fault probability is inversely polynomial in d).\n";

  // Ongoing churn (leave + rejoin) rather than a one-shot failure wave:
  // the overlay must keep a giant — and well-expanding — component
  // throughout.  run_churn re-prunes EVERY round through the runner's
  // persistent engine, so the pruned-survivor column is new information
  // the old simulate_churn-only path never had.
  std::cout << "\nongoing churn (p_leave = 0.02/step, p_join = 0.18/step, 80 steps),\n"
               "re-pruned per round through one persistent engine\n\n";
  Table churn_table({"dims", "mean alive fraction", "min gamma over time", "final gamma",
                     "min |H|/n over time", "prune ms total"});
  for (std::int64_t dims = 2; dims <= 4; ++dims) {
    Scenario scenario;
    scenario.name = "can-churn-d" + std::to_string(dims);
    scenario.topology = {"can", Params().set("peers", peers).set("dims", dims)};
    scenario.prune.kind = ExpansionKind::Edge;
    scenario.prune.fast = true;  // certified-valid culls, cross-round reuse
    scenario.seed = seed + static_cast<std::uint64_t>(dims);

    ScenarioRunner runner(scenario);
    ChurnOptions copts;
    copts.steps = 80;
    copts.seed = seed + 17;
    const ChurnRunTrace trace = runner.run_churn(copts);

    const vid n = runner.graph().num_vertices();
    double mean_alive = 0.0;
    double min_gamma = 1.0;
    double min_pruned = 1.0;
    for (const ChurnRoundRun& r : trace.rounds) {
      mean_alive += static_cast<double>(r.churn.alive_count);
      min_gamma = std::min(min_gamma, r.churn.gamma);
      min_pruned = std::min(min_pruned, static_cast<double>(r.survivors) / n);
    }
    mean_alive /= static_cast<double>(trace.rounds.size()) * n;
    churn_table.row()
        .cell(std::size_t(dims))
        .cell(mean_alive, 3)
        .cell(min_gamma, 3)
        .cell(trace.rounds.back().churn.gamma, 3)
        .cell(min_pruned, 3)
        .cell(trace.total_prune_millis(), 1);
  }
  churn_table.print(std::cout);
  std::cout << "\nsteady-state churn keeps ~90% of peers alive; min gamma shows the overlay\n"
               "never fragments — and improves with dimension, as the span/expansion theory\n"
               "predicts.  min |H|/n is the pruned core: what survives with certified\n"
               "expansion, round after round, on one engine.\n";
  return 0;
}
