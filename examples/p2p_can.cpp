// CAN overlay under churn (paper §4): "CAN can tolerate a fault
// probability which is inversely polynomial in its dimension without
// losing too much in its expansion properties."
//
// We build CAN overlays of increasing dimension, churn peers out at
// random, run Prune2, and report how much of the overlay (and its
// expansion) survives per dimension.
//
//   ./p2p_can [--peers=256] [--seed=42]
#include <iostream>

#include "expansion/bracket.hpp"
#include "faults/churn.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "topology/can_overlay.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const auto peers = static_cast<vid>(cli.get_int("peers", 256));
  const std::uint64_t seed = cli.get_seed();

  std::cout << "CAN overlay churn experiment (" << peers << " peers)\n\n";
  Table table({"dims", "avg degree", "alpha_e [lo,up]", "churn p", "|H|/n",
               "alpha_e(H) [lo,up]", "retention up/up"});

  for (vid dims : {2U, 3U, 4U}) {
    const CanOverlay overlay = can_overlay(peers, dims, seed + dims);
    const Graph& g = overlay.graph;
    BracketOptions bopts;
    bopts.exact_limit = 14;
    const ExpansionBracket before = expansion_bracket(g, ExpansionKind::Edge, bopts);

    for (double p : {0.05, 0.15}) {
      const VertexSet alive = random_node_faults(g, p, seed + dims * 100);
      const double eps = 1.0 / (2.0 * g.max_degree());
      const PruneResult pruned = prune2(g, alive, before.upper, eps);
      std::string after_str = "-";
      double retention = 0.0;
      if (pruned.survivors.count() >= 2) {
        const ExpansionBracket after =
            expansion_bracket(g, pruned.survivors, ExpansionKind::Edge, bopts);
        after_str = "[" + std::to_string(after.lower).substr(0, 5) + "," +
                    std::to_string(after.upper).substr(0, 5) + "]";
        retention = before.upper > 0 ? after.upper / before.upper : 0.0;
      }
      table.row()
          .cell(std::size_t{dims})
          .cell(g.average_degree(), 3)
          .cell("[" + std::to_string(before.lower).substr(0, 5) + "," +
                std::to_string(before.upper).substr(0, 5) + "]")
          .cell(p, 2)
          .cell(static_cast<double>(pruned.survivors.count()) / g.num_vertices(), 3)
          .cell(after_str)
          .cell(retention, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nhigher dimension -> denser overlay -> better tolerance of the same churn\n"
               "rate (paper §4: admissible fault probability is inversely polynomial in d).\n";

  // Ongoing churn (leave + rejoin) rather than a one-shot failure wave:
  // the overlay must keep a giant component throughout.
  std::cout << "\nongoing churn (p_leave = 0.02/step, p_join = 0.18/step, 80 steps)\n\n";
  Table churn_table({"dims", "mean alive fraction", "min gamma over time", "final gamma"});
  for (vid dims : {2U, 3U, 4U}) {
    const CanOverlay overlay = can_overlay(peers, dims, seed + dims);
    ChurnOptions copts;
    copts.steps = 80;
    copts.seed = seed + 17;
    const ChurnTrace trace = simulate_churn(overlay.graph, copts);
    churn_table.row()
        .cell(std::size_t{dims})
        .cell(trace.mean_alive_fraction(overlay.graph.num_vertices()), 3)
        .cell(trace.min_gamma(), 3)
        .cell(trace.steps.back().gamma, 3);
  }
  churn_table.print(std::cout);
  std::cout << "\nsteady-state churn keeps ~90% of peers alive; min gamma shows the overlay\n"
               "never fragments — and improves with dimension, as the span/expansion theory\n"
               "predicts.\n";
  return 0;
}
