// Attack-vs-Prune arena (paper §2): run the adversary portfolio against
// an expander and a mesh with the same fault budget, then let Prune
// recover the good component.  Expanders shrug off Θ(α·n) faults (their
// α is constant); meshes fragment much earlier (α = Θ(1/√n)).
//
//   ./adversarial_attack [--n=256] [--budget=24] [--seed=42]
#include <iostream>

#include "analysis/fragmentation.hpp"
#include "expansion/bracket.hpp"
#include "faults/adversary.hpp"
#include "prune/prune.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const auto n = static_cast<vid>(cli.get_int("n", 256));
  const auto budget = static_cast<vid>(cli.get_int("budget", 24));
  const std::uint64_t seed = cli.get_seed();

  std::cout << "adversary portfolio vs Prune (budget " << budget << " faults)\n\n";

  struct Network {
    std::string name;
    Graph graph;
  };
  const vid side = 16;
  const Network networks[] = {
      {"rand-4-regular n=" + std::to_string(n), random_regular(n, 4, seed)},
      {"mesh 16x16", Mesh::cube(side, 2).graph()},
  };

  Table table({"network", "alpha up", "attack", "gamma after attack", "|H| after prune",
               "exp(H) up"});
  for (const Network& net : networks) {
    const Graph& g = net.graph;
    BracketOptions bopts;
    bopts.exact_limit = 14;
    const ExpansionBracket bracket = expansion_bracket(g, ExpansionKind::Node, bopts);
    const double alpha = bracket.upper;

    struct NamedAttack {
      std::string name;
      AttackResult attack;
    };
    const NamedAttack attacks[] = {
        {"random", random_attack(g, budget, seed)},
        {"high-degree", high_degree_attack(g, budget)},
        {"sweep-cut", sweep_cut_attack(g, budget)},
    };
    for (const auto& [name, attack] : attacks) {
      const VertexSet alive = VertexSet::full(g.num_vertices()) - attack.faults;
      const FragmentationProfile frag = fragmentation_profile(g, alive);
      const PruneResult pruned = prune(g, alive, alpha, 0.5);
      std::string h_exp = "-";
      if (pruned.survivors.count() >= 2) {
        const ExpansionBracket hb =
            expansion_bracket(g, pruned.survivors, ExpansionKind::Node, bopts);
        h_exp = std::to_string(hb.upper).substr(0, 6);
      }
      table.row()
          .cell(net.name)
          .cell(alpha, 3)
          .cell(name)
          .cell(frag.gamma, 3)
          .cell(std::size_t{pruned.survivors.count()})
          .cell(h_exp);
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: with the same budget, the expander keeps a near-complete component\n"
               "at half its expansion (Theorem 2.1 regime), while targeted cuts hurt the mesh\n"
               "far more — its α·n fault tolerance is only Θ(√n) (Theorem 2.5 regime).\n";
  return 0;
}
