// Span explorer (paper §3.3 and §4): compute exact spans of small
// networks and sampled estimates for the families whose span the paper
// conjectures to be O(1).
//
//   ./span_explorer [--samples=16] [--seed=42]
#include <iostream>

#include "span/span.hpp"
#include "topology/butterfly.hpp"
#include "topology/classic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/shuffle_exchange.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const int samples = static_cast<int>(cli.get_int("samples", 16));
  const std::uint64_t seed = cli.get_seed();

  std::cout << "exact spans (exhaustive compact sets + exact Steiner trees)\n\n";
  Table exact_table({"network", "n", "compact sets", "span", "note"});
  exact_table.row().cell("path P_8").cell(std::size_t{8});
  {
    const SpanResult r = exact_span(path_graph(8));
    exact_table.cell(r.sets_examined).cell(r.span, 4).cell("1D mesh: span 1");
  }
  exact_table.row().cell("cycle C_10").cell(std::size_t{10});
  {
    const SpanResult r = exact_span(cycle_graph(10));
    exact_table.cell(r.sets_examined).cell(r.span, 4).cell("arcs: (n/2+1)/2");
  }
  exact_table.row().cell("mesh 4x4").cell(std::size_t{16});
  {
    const SpanResult r = exact_span(Mesh::cube(4, 2).graph());
    exact_table.cell(r.sets_examined).cell(r.span, 4).cell("Theorem 3.6: <= 2");
  }
  exact_table.row().cell("hypercube Q_4").cell(std::size_t{16});
  {
    const SpanResult r = exact_span(hypercube(4));
    exact_table.cell(r.sets_examined).cell(r.span, 4).cell("conjectured O(1)");
  }
  exact_table.print(std::cout);

  std::cout << "\nsampled span estimates (§4 conjecture families)\n\n";
  Table est_table({"network", "n", "estimate", "exact steiner?"});
  SpanEstimateOptions opts;
  opts.samples_per_size = samples;
  opts.seed = seed;
  auto probe = [&](const std::string& name, const Graph& g) {
    const SpanResult r = estimate_span(g, opts);
    est_table.row().cell(name).cell(std::size_t{g.num_vertices()}).cell(r.span, 4).cell(
        r.exact ? "yes" : "no (<= 2x over)");
  };
  probe("butterfly d=5", butterfly(5).graph);
  probe("de Bruijn d=8", debruijn(8));
  probe("shuffle-exchange d=8", shuffle_exchange(8));
  probe("mesh 16x16", Mesh::cube(16, 2).graph());
  est_table.print(std::cout);
  std::cout << "\nflat estimates across sizes support the §4 conjecture that these networks\n"
               "have constant span, hence constant-probability random-fault tolerance via\n"
               "Theorem 3.4.\n";
  return 0;
}
