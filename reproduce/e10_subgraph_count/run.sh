#!/usr/bin/env bash
# E10: certified pruned subgraphs on constant-degree networks (de Bruijn, shuffle-exchange) with verify traces and expansion brackets.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e10_subgraph_count campaigns/e10_subgraph_count.json
