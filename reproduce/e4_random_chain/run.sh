#!/usr/bin/env bash
# E4 (Thm 3.1): random faults on chain expanders across sub/supercritical rates; repeated trials with fixed seeds.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e4_random_chain campaigns/e4_random_chain.json
