#!/usr/bin/env bash
# E7: percolation thresholds -- survivor fraction gamma as a function of monotone random fault rate p at vanishing alpha, on mesh / de Bruijn / hypercube.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e7_percolation campaigns/e7_percolation.json
