#!/usr/bin/env bash
# E11: butterfly vs multibutterfly resilience under monotone hub attacks at matched fault fractions.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e11_multibutterfly campaigns/e11_multibutterfly.json
