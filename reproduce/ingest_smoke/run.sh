#!/usr/bin/env bash
# Ingestion smoke: re-convert the checked-in edge-list fixture with
# edgelist2csr, prove the converter deterministic (byte-compare against
# the committed .csr), then run a `file`-topology campaign on it through
# the store.  Paths in campaigns/ingest_file.json are repo-relative, so
# the campaign runs from $REPO_DIR.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"

CONVERTER="${CONVERTER:-$REPO_DIR/build/edgelist2csr}"
if [ ! -x "$CONVERTER" ]; then
  echo "error: converter '$CONVERTER' not found or not executable." >&2
  echo "build it first:  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR/ingest_smoke"
"$CONVERTER" --in="$REPO_DIR/tests/data/mini_p2p.edges" \
  --out="$OUT_DIR/ingest_smoke/mini_p2p.csr" | tee "$OUT_DIR/ingest_smoke/convert.log"
if ! cmp "$OUT_DIR/ingest_smoke/mini_p2p.csr" "$REPO_DIR/tests/data/mini_p2p.csr"; then
  echo "error: edgelist2csr output differs from the checked-in tests/data/mini_p2p.csr" >&2
  exit 1
fi

cd "$REPO_DIR"
run_campaign_experiment ingest_smoke campaigns/ingest_file.json
