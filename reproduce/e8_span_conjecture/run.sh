#!/usr/bin/env bash
# E8: span conjecture sweep (span_estimate fractions across topologies).
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e8_span_conjecture campaigns/e8_span_conjecture.json
