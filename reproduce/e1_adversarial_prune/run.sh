#!/usr/bin/env bash
# E1 (Thm 2.1): adversarial worst-case faults -- sweep-cut and separator attacks on a random regular graph, hub attack on a hypercube. The pruned survivor set must retain expansion despite targeted damage.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e1_adversarial_prune campaigns/e1_adversarial_prune.json
