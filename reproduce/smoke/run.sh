#!/usr/bin/env bash
# Smoke: the small mixed campaign used by CI; exercises every job kind (reps, monotone chain, independent sweep).
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment smoke campaigns/smoke.json
