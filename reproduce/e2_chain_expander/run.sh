#!/usr/bin/env bash
# E2 (Thm 2.3): chain-of-expanders topology under monotone high-degree hub attacks; growing fault fraction must shear off whole links while the surviving prefix stays an expander.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e2_chain_expander campaigns/e2_chain_expander.json
