#!/usr/bin/env bash
# E9: diameter stretch of the pruned survivor graph via the embedding_quality metric on 2-D and 3-D meshes.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e9_diameter_stretch campaigns/e9_diameter_stretch.json
