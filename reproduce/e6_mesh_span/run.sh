#!/usr/bin/env bash
# E6: mesh span under faults (span/mesh_span metrics); mirrors the mesh-span preset campaign.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e6_mesh_span campaigns/e6_mesh_span.json
