#!/usr/bin/env bash
# E3 (Thm 2.5): bisection faults at near-zero alpha shatter the mesh uniformly; fragmentation of the survivor set is the observable.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e3_uniform_shatter campaigns/e3_uniform_shatter.json
