#!/usr/bin/env bash
# E5 (Thm 3.4): random edge faults on meshes, monotone p-sweep with verified prune traces.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e5_random_prune2 campaigns/e5_random_prune2.json
