# Shared plumbing for the reproduce/ scripts. Sourced, not executed.
#
# Environment knobs (all optional):
#   RUNNER     path to the scenario_runner binary   (default: <repo>/build/scenario_runner)
#   STORE_DIR  content-addressable result store dir (default: <repo>/reproduce-store)
#   OUT_DIR    where payloads and logs are written  (default: <repo>/reproduce-out)
#   THREADS    campaign worker threads              (default: 4)
#
# Payloads are produced with CampaignReport::to_json(false), which is
# deterministic: byte-identical across thread counts and across cold/warm
# store states. That is what makes golden diffing meaningful.

set -euo pipefail

REPRO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_DIR="$(dirname "$REPRO_DIR")"

RUNNER="${RUNNER:-$REPO_DIR/build/scenario_runner}"
STORE_DIR="${STORE_DIR:-$REPO_DIR/reproduce-store}"
OUT_DIR="${OUT_DIR:-$REPO_DIR/reproduce-out}"
THREADS="${THREADS:-4}"

# run_campaign_experiment NAME CAMPAIGN_FILE
#
# Runs one campaign through the result store and leaves behind:
#   $OUT_DIR/NAME/payload.json   deterministic payload (golden-diffable)
#   $OUT_DIR/NAME/run.log        full runner output incl. "store: ..." stats
run_campaign_experiment() {
  local name="$1" campaign="$2"
  if [ ! -x "$RUNNER" ]; then
    echo "error: runner '$RUNNER' not found or not executable." >&2
    echo "build it first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
  mkdir -p "$OUT_DIR/$name"
  "$RUNNER" --campaign="$REPO_DIR/$campaign" --threads="$THREADS" \
    --store="$STORE_DIR" --store-stats \
    --payload="$OUT_DIR/$name/payload.json" | tee "$OUT_DIR/$name/run.log"
}
