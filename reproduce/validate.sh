#!/usr/bin/env bash
# Reproduce the paper experiments through the result store and diff the
# deterministic payloads against the checked-in goldens.
#
# Usage:
#   ./reproduce/validate.sh                 # all experiments (E1-E12 + smoke)
#   ./reproduce/validate.sh e6_mesh_span e8_span_conjecture smoke
#
# Environment:
#   REQUIRE_WARM=1   additionally assert zero recomputation (misses=0) --
#                    i.e. every cell was served from STORE_DIR. Use on a
#                    second pass to prove the store replays the campaign.
#   REGEN=1          refresh goldens from the freshly computed payloads
#                    instead of diffing (use after an intentional payload
#                    schema change; commit the updated golden.json files).
#   RUNNER/STORE_DIR/OUT_DIR/THREADS   see common.sh.

set -euo pipefail
source "$(cd "$(dirname "$0")" && pwd)/common.sh"

ALL_EXPERIMENTS=(
  e1_adversarial_prune
  e2_chain_expander
  e3_uniform_shatter
  e4_random_chain
  e5_random_prune2
  e6_mesh_span
  e7_percolation
  e8_span_conjecture
  e9_diameter_stretch
  e10_subgraph_count
  e11_multibutterfly
  e12_emulation
  smoke
  ingest_smoke
)

if [ "$#" -gt 0 ]; then
  EXPERIMENTS=("$@")
else
  EXPERIMENTS=("${ALL_EXPERIMENTS[@]}")
fi

failures=0
for name in "${EXPERIMENTS[@]}"; do
  dir="$REPRO_DIR/$name"
  if [ ! -x "$dir/run.sh" ]; then
    echo "validate: unknown experiment '$name' (no $dir/run.sh)" >&2
    exit 2
  fi

  echo "=== $name"
  "$dir/run.sh"

  payload="$OUT_DIR/$name/payload.json"
  golden="$dir/golden.json"

  if [ "${REGEN:-0}" = "1" ]; then
    cp "$payload" "$golden"
    echo "--- $name: golden regenerated"
    continue
  fi

  if [ ! -f "$golden" ]; then
    echo "--- $name: FAIL (no golden.json; run with REGEN=1 to create it)" >&2
    failures=$((failures + 1))
    continue
  fi

  if ! cmp -s "$golden" "$payload"; then
    echo "--- $name: FAIL (payload differs from golden)" >&2
    diff "$golden" "$payload" | head -20 >&2 || true
    failures=$((failures + 1))
    continue
  fi

  if [ "${REQUIRE_WARM:-0}" = "1" ]; then
    if ! grep -Eq '^store: hits=[0-9]+ misses=0 ' "$OUT_DIR/$name/run.log"; then
      echo "--- $name: FAIL (expected a fully warm run, got: $(grep '^store:' "$OUT_DIR/$name/run.log" || echo 'no store line'))" >&2
      failures=$((failures + 1))
      continue
    fi
  fi

  echo "--- $name: OK"
done

if [ "$failures" -ne 0 ]; then
  echo "validate: $failures experiment(s) failed" >&2
  exit 1
fi
echo "validate: all ${#EXPERIMENTS[@]} experiment(s) OK"
