#!/usr/bin/env bash
# E12: mesh emulation quality after random edge faults, measured with embedding_quality at two mesh sizes.
source "$(cd "$(dirname "$0")/.." && pwd)/common.sh"
run_campaign_experiment e12_emulation campaigns/e12_emulation.json
