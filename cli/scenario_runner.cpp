// scenario_runner — execute one fne::Scenario from the command line.
//
// The CLI face of the scenario layer (DESIGN.md §6): every topology and
// fault model in the registries is reachable from flags, so any
// paper-style experiment — build, injure, prune, measure — runs without
// writing a driver.
//
//   scenario_runner --list
//       show registered topologies, fault models, and named scenarios
//   scenario_runner --scenario=mesh-random [--reps=3] [--seed=7]
//       run a named preset (overrides apply on top)
//   scenario_runner --topology=hypercube --topo-params=dims=8 \
//       --fault=high_degree --fault-params=frac=0.1 \
//       --kind=node --reps=3 --verify --expansion
//       run an ad-hoc scenario
//   scenario_runner --scenario=can-churn --churn-steps=40
//       additionally drive ongoing churn, re-pruning every round through
//       the runner's persistent engine
//
// Other flags: --alpha=A --eps=E (<= 0: measured / canonical), --fast,
// --threads=N (shard repetitions across an engine pool; results are
// bit-identical for any N — see DESIGN.md §7), --csv (emit CSV instead
// of the aligned table), --json[=path] (machine-readable runs: bare
// --json replaces ALL tables on stdout with one JSON document,
// --json=path keeps the tables and writes the file), --stats (engine
// telemetry after the runs, including the thread count and pooled
// worker engines; table form only).
#include <algorithm>
#include <iostream>

#include "api/registry.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace fne {
namespace {

void list_registries() {
  std::cout << "topologies:\n";
  Table topo({"name", "params", "description"});
  for (const std::string& name : TopologyRegistry::instance().names()) {
    const TopologyEntry& e = TopologyRegistry::instance().at(name);
    std::string params;
    for (const ParamSpec& p : e.params) {
      if (!params.empty()) params += ", ";
      params += p.key;
      if (!p.default_value.empty()) params += "=" + p.default_value;
    }
    topo.row().cell(name).cell(params.empty() ? "-" : params).cell(e.doc);
  }
  topo.print(std::cout);

  std::cout << "\nfault models:\n";
  Table faults({"name", "params", "description"});
  for (const std::string& name : FaultModelRegistry::instance().names()) {
    const FaultModelEntry& e = FaultModelRegistry::instance().at(name);
    std::string params;
    for (const ParamSpec& p : e.params) {
      if (!params.empty()) params += ", ";
      params += p.key;
      if (!p.default_value.empty()) params += "=" + p.default_value;
    }
    faults.row().cell(name).cell(params.empty() ? "-" : params).cell(e.doc);
  }
  faults.print(std::cout);

  std::cout << "\nnamed scenarios:\n";
  Table named({"name", "topology", "fault", "prune"});
  for (const Scenario& s : scenario_catalog()) {
    named.row()
        .cell(s.name)
        .cell(s.topology.name +
              (s.topology.params.empty() ? "" : "(" + s.topology.params.to_string() + ")"))
        .cell(s.fault.name +
              (s.fault.params.empty() ? "" : "(" + s.fault.params.to_string() + ")"))
        .cell(s.prune.kind == ExpansionKind::Node ? "prune (node)" : "prune2 (edge)");
  }
  named.print(std::cout);
}

int run(const Cli& cli) {
  Scenario scenario;
  if (cli.has("scenario")) {
    scenario = named_scenario(cli.get("scenario", ""));
  } else {
    scenario.name = "ad-hoc";
  }

  // Flag overrides apply on top of the preset (or the defaults): parsed
  // keys merge into the preset's params, except when the topology/fault
  // *name* changes — the preset's params belong to the old factory.
  const auto merge = [](Params& into, const std::string& spec) {
    const Params parsed = Params::parse(spec);
    for (const auto& [k, v] : parsed.values()) into.set(k, v);
  };
  if (cli.has("topology") && cli.get("topology", "") != scenario.topology.name) {
    scenario.topology = {cli.get("topology", ""), Params{}};
  }
  if (cli.has("topo-params")) merge(scenario.topology.params, cli.get("topo-params", ""));
  if (cli.has("fault") && cli.get("fault", "") != scenario.fault.name) {
    scenario.fault = {cli.get("fault", ""), Params{}};
  }
  if (cli.has("fault-params")) merge(scenario.fault.params, cli.get("fault-params", ""));
  if (cli.has("kind")) {
    const std::string kind = cli.get("kind", "edge");
    FNE_REQUIRE(kind == "node" || kind == "edge", "--kind must be node or edge");
    scenario.prune.kind = kind == "node" ? ExpansionKind::Node : ExpansionKind::Edge;
  }
  scenario.prune.alpha = cli.get_double("alpha", scenario.prune.alpha);
  scenario.prune.epsilon = cli.get_double("eps", scenario.prune.epsilon);
  scenario.prune.fast = cli.has("fast") || scenario.prune.fast;
  scenario.metrics.verify_trace = cli.has("verify") || scenario.metrics.verify_trace;
  scenario.metrics.expansion = cli.has("expansion") || scenario.metrics.expansion;
  scenario.repetitions = static_cast<int>(cli.get_int("reps", scenario.repetitions));
  scenario.seed = cli.get_seed(scenario.seed);

  const auto threads = static_cast<int>(cli.get_int("threads", 1));
  FNE_REQUIRE(threads >= 1, "--threads must be >= 1");
  // Bare `--json` parses as the value "1": JSON replaces the table on
  // stdout.  `--json=path` keeps the table and writes the file.
  const std::string json_path = cli.get("json", "");
  const bool json_to_stdout = json_path == "1";

  ScenarioRunner runner(std::move(scenario));
  const Scenario& s = runner.scenario();
  if (!json_to_stdout) {
    std::cout << "scenario: " << s.name << "\n"
              << "topology: " << s.topology.name
              << (s.topology.params.empty() ? "" : " (" + s.topology.params.to_string() + ")")
              << " — " << runner.graph().summary() << "\n"
              << "fault:    " << s.fault.name
              << (s.fault.params.empty() ? "" : " (" + s.fault.params.to_string() + ")") << "\n"
              << "prune:    " << (s.prune.kind == ExpansionKind::Node ? "Prune (node)"
                                                                      : "Prune2 (edge)")
              << "  alpha=" << runner.alpha() << "  eps=" << runner.epsilon()
              << "  threshold=" << runner.alpha() * runner.epsilon()
              << (s.prune.fast ? "  [fast]" : "")
              << (threads > 1 ? "  threads=" + std::to_string(threads) : "") << "\n\n";
  }

  const std::vector<ScenarioRun> runs = runner.run_all(threads);
  if (!json_to_stdout) {
    const Table table = runner.metrics_table(runs);
    if (cli.has("csv")) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

  if (!json_path.empty()) {
    JsonReport report("scenario_runner");
    report.top()
        .put("scenario", s.name)
        .put("topology", s.topology.name)
        .put("fault", s.fault.name)
        .put("kind", s.prune.kind == ExpansionKind::Node ? "node" : "edge")
        .put("n", std::size_t{runner.graph().num_vertices()})
        .put("alpha", runner.alpha())
        .put("epsilon", runner.epsilon())
        .put("fast", s.prune.fast)
        .put("repetitions", s.repetitions)
        .put("threads", threads)
        .put("seed", s.seed);
    for (const ScenarioRun& r : runs) {
      report.record("runs")
          .put("rep", r.repetition)
          .put("fault_seed", r.fault_seed)
          .put("finder_seed", r.finder_seed)
          .put("faults", std::size_t{r.faults})
          .put("alive", std::size_t{r.alive.count()})
          .put("survivors", std::size_t{r.prune.survivors.count()})
          .put("culled", std::size_t{r.prune.total_culled})
          .put("iterations", r.prune.iterations)
          .put("millis", r.millis);
    }
    if (json_to_stdout) {
      std::cout << report.dump() << "\n";
    } else {
      report.write(json_path);
    }
  }

  const auto churn_steps = static_cast<int>(cli.get_int("churn-steps", 0));
  if (churn_steps > 0 && !json_to_stdout) {
    ChurnOptions copts;
    copts.steps = churn_steps;
    copts.p_leave = cli.get_double("p-leave", copts.p_leave);
    copts.p_join = cli.get_double("p-join", copts.p_join);
    copts.seed = s.seed + 17;
    const ChurnRunTrace trace = runner.run_churn(copts);
    std::cout << "\nchurn (" << churn_steps << " rounds, p_leave=" << copts.p_leave
              << ", p_join=" << copts.p_join << "), re-pruned per round on one engine:\n";
    Table churn({"round", "alive", "gamma", "|H|", "culled", "iters", "prune ms"});
    const int stride = std::max(1, churn_steps / 10);
    for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
      if (static_cast<int>(i) % stride != 0 && i + 1 != trace.rounds.size()) continue;
      const ChurnRoundRun& r = trace.rounds[i];
      churn.row()
          .cell(std::size_t{i})
          .cell(std::size_t{r.churn.alive_count})
          .cell(r.churn.gamma, 3)
          .cell(std::size_t{r.survivors})
          .cell(std::size_t{r.culled})
          .cell(r.iterations)
          .cell(r.prune_millis, 2);
    }
    churn.print(std::cout);
    std::cout << "total per-round prune time: " << trace.total_prune_millis() << " ms\n";
  }

  if (cli.has("stats") && !json_to_stdout) {
    // Pooled total: the runner's own engine plus every retired worker
    // engine — the same work total regardless of --threads.
    const EngineStats st = runner.total_engine_stats();
    std::cout << "\nengine telemetry (cumulative, " << threads
              << (threads == 1 ? " thread):\n" : " threads, pooled):\n");
    Table stats({"threads", "runs", "iters", "eigensolves", "stale sweeps", "stale hits",
                 "disconnected culls", "relabel BFS", "relabel verts"});
    stats.row()
        .cell(threads)
        .cell(st.runs)
        .cell(st.iterations)
        .cell(st.eigensolves)
        .cell(st.stale_sweeps)
        .cell(st.stale_sweep_hits)
        .cell(st.disconnected_culls)
        .cell(st.relabel_bfs_calls)
        .cell(st.relabel_bfs_vertices);
    stats.print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  const fne::Cli cli(argc, argv);
  if (cli.has("list")) {
    fne::list_registries();
    return 0;
  }
  try {
    return fne::run(cli);
  } catch (const fne::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n(use --list to see registered names and params)\n";
    return 1;
  }
}
