// scenario_runner — execute one fne::Scenario, a fault sweep, or a whole
// Campaign from the command line.
//
// The CLI face of the scenario/campaign layers (DESIGN.md §6, §8): every
// topology and fault model in the registries is reachable from flags,
// and a JSON campaign file runs the full batch pipeline — scenario×rep
// jobs on an ExecutorPool over the process-wide EngineCache.
//
//   scenario_runner --list
//       show registered topologies, fault models, and named scenarios
//   scenario_runner --scenario=mesh-random [--reps=3] [--seed=7]
//       run a named preset (overrides apply on top)
//   scenario_runner --topology=hypercube --topo-params=dims=8 \
//       --fault=high_degree --fault-params=frac=0.1 \
//       --kind=node --reps=3 --verify --expansion
//       run an ad-hoc scenario
//   scenario_runner --scenario=mesh-random --metrics=mesh_span,embedding_quality
//       additionally compute registered metrics (api/metrics.hpp) at
//       their default params; see --list for names
//   scenario_runner --scenario=mesh-random --sweep=p \
//       --sweep-values=0.05,0.15,0.25 [--sweep-mode=monotone]
//       sweep one fault param (monotone mode chains survivors downward —
//       the fault model must declare the param monotone, see --list)
//   scenario_runner --campaign=campaigns/smoke.json [--threads=4]
//       run every scenario of a campaign file; one aggregated report
//   scenario_runner --campaign=catalog [--reps=2]
//       the built-in scenario catalog as a campaign (CI smoke)
//   scenario_runner --campaign=FILE --store=DIR [--store-stats]
//       run the campaign through a persistent ResultStore (DESIGN.md
//       §11): cells already in DIR are served from disk bit-identically,
//       misses are computed and committed.  --resume is --store with the
//       default directory .fne-store — rerun a killed campaign and only
//       the missing cells recompute.  --store-stats prints the hit/miss
//       split afterwards.  --payload=FILE writes the DETERMINISTIC
//       report payload (to_json(false)) for golden comparisons
//       (reproduce/validate.sh).  All four are campaign-only flags.
//   scenario_runner --scenario=can-churn --churn-steps=40
//       additionally drive ongoing churn, re-pruning every round through
//       the runner's persistent engine
//   scenario_runner --campaign=FILE --serve[=PORT] [--workers=N]
//       distributed execution (DESIGN.md §12): serve the campaign's jobs
//       to TCP workers (bare --serve picks an ephemeral port, printed to
//       stderr).  --workers=N additionally spawns N in-process workers —
//       the one-command spelling of a distributed run.  --threads sets
//       the coordinator's LOCAL fallback width; with zero connected
//       workers the run degrades to exactly the local runner.  Knobs:
//       --bind=HOST --job-timeout-ms --retry-budget --backoff-base-ms
//       --backoff-max-ms --heartbeat-ms --idle-grace-ms.  Combines with
//       --store/--payload/--store-stats; the deterministic payload is
//       byte-identical to a local run for any worker count or fault
//       pattern.  A "dist:" telemetry line is printed after the run.
//   scenario_runner --campaign=FILE --connect=HOST:PORT [--worker-name=X]
//       worker mode: pull jobs from a coordinator serving the SAME
//       campaign file (checked via plan fingerprint at handshake),
//       compute them on this process's engine cache, stream results
//       back.  Exit 0 after the coordinator reports the campaign done
//       (or is gone), 1 if it was never reachable, 2 on campaign
//       mismatch.  Workers may be killed and restarted at any time.
//   scenario_runner --daemon[=PORT] [--bind=HOST] [--service-workers=N]
//       [--queue-depth=D] [--queue-deadline-ms=MS] [--max-request-bytes=B]
//       [--cache-budget=MB] [--port-file=PATH]
//       scenario service (DESIGN.md §13): a resident daemon executing
//       campaign requests from many clients over one warm EngineCache.
//       Bare --daemon picks an ephemeral port (printed to stderr;
//       --port-file additionally writes it for scripts).  --threads sets
//       the executor width per request, --service-workers how many
//       requests run concurrently, --queue-depth/--queue-deadline-ms/
//       --max-request-bytes the admission policy (rejected requests
//       carry retry_after_ms), --cache-budget the cache's byte budget in
//       MiB.  SIGTERM/SIGINT shut down cleanly (drain, stats line,
//       exit 0).
//   scenario_runner --send=HOST:PORT --campaign=FILE [--payload=FILE]
//       client mode: submit the campaign file to a running daemon and
//       print (or --payload-write) the DETERMINISTIC report payload —
//       byte-identical to a local --campaign --payload run.  --ping and
//       --service-stats instead probe liveness / fetch service counters.
//       Exit codes: 0 ok, 1 service-side error, 2 connection failure,
//       3 rejected by admission control (backpressure; retry later).
//   scenario_runner --topology=file --topo-params=path=graph.csr ...
//       run on a REAL graph: a binary CSR file produced by
//       tools/edgelist2csr from a text edge list (DESIGN.md §14).  Real
//       graphs are usually disconnected — set --alpha explicitly.  Works
//       everywhere a synthetic topology does: sweeps, campaigns, the
//       store, --serve/--connect workers and the daemon.
//
// Other flags: --alpha=A --eps=E (<= 0: measured / canonical), --fast,
// --spectral-mode=plain|filtered|shift_invert|auto --filter-degree=D
// (eigensolver acceleration for the prune engine's spectral stage and
// for any requested metric that declares the knob; see DESIGN.md §10),
// --threads=N (shard jobs across the engine pool; results are
// bit-identical for any N — see DESIGN.md §7/§8), --csv (emit CSV
// instead of the aligned table), --json[=path] (machine-readable runs:
// bare --json replaces ALL tables on stdout with one JSON document,
// --json=path keeps the tables and writes the file), --stats (engine
// telemetry after the runs; table form only), --cache-budget=MB (byte
// budget for the process EngineCache; LRU-evicts idle entries, results
// unchanged), --cache-stats (cache counters + residency after the run).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "api/campaign.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "api/scenario_cli.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "service/service.hpp"
#include "store/result_store.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace fne {
namespace {

void list_registries() {
  std::cout << "topologies:\n";
  Table topo({"name", "params", "description"});
  for (const std::string& name : TopologyRegistry::instance().names()) {
    const TopologyEntry& e = TopologyRegistry::instance().at(name);
    std::string params;
    for (const ParamSpec& p : e.params) {
      if (!params.empty()) params += ", ";
      params += p.key;
      if (!p.default_value.empty()) params += "=" + p.default_value;
    }
    topo.row().cell(name).cell(params.empty() ? "-" : params).cell(e.doc);
  }
  topo.print(std::cout);

  std::cout << "\nfault models:\n";
  Table faults({"name", "params", "monotone", "description"});
  for (const std::string& name : FaultModelRegistry::instance().names()) {
    const FaultModelEntry& e = FaultModelRegistry::instance().at(name);
    std::string params;
    for (const ParamSpec& p : e.params) {
      if (!params.empty()) params += ", ";
      params += p.key;
      if (!p.default_value.empty()) params += "=" + p.default_value;
    }
    std::string monotone;
    for (const std::string& p : e.monotone_params) {
      if (!monotone.empty()) monotone += ", ";
      monotone += p;
    }
    faults.row()
        .cell(name)
        .cell(params.empty() ? "-" : params)
        .cell(monotone.empty() ? "-" : monotone)
        .cell(e.doc);
  }
  faults.print(std::cout);

  std::cout << "\nmetrics:\n";
  Table metrics({"name", "params", "description"});
  for (const std::string& name : MetricsRegistry::instance().names()) {
    const MetricEntry& e = MetricsRegistry::instance().at(name);
    std::string params;
    for (const ParamSpec& p : e.params) {
      if (!params.empty()) params += ", ";
      params += p.key;
      if (!p.default_value.empty()) params += "=" + p.default_value;
    }
    metrics.row().cell(name).cell(params.empty() ? "-" : params).cell(e.doc);
  }
  metrics.print(std::cout);

  std::cout << "\nnamed scenarios:\n";
  Table named({"name", "topology", "fault", "prune"});
  for (const Scenario& s : scenario_catalog()) {
    named.row()
        .cell(s.name)
        .cell(s.topology.name +
              (s.topology.params.empty() ? "" : "(" + s.topology.params.to_string() + ")"))
        .cell(s.fault.name +
              (s.fault.params.empty() ? "" : "(" + s.fault.params.to_string() + ")"))
        .cell(s.prune.kind == ExpansionKind::Node ? "prune (node)" : "prune2 (edge)");
  }
  named.print(std::cout);
}

[[nodiscard]] int parse_port(const std::string& text, const std::string& flag) {
  int port = 0;
  for (const char c : text) {
    FNE_REQUIRE(c >= '0' && c <= '9', flag + ": bad port '" + text + "'");
    port = port * 10 + (c - '0');
    FNE_REQUIRE(port < 65536, flag + ": bad port '" + text + "'");
  }
  FNE_REQUIRE(!text.empty(), flag + ": bad port '" + text + "'");
  return port;
}

/// --connect: serve as a pull worker for a coordinator running the same
/// campaign.  The worker has no report of its own beyond a summary line;
/// all result-shaping flags belong on the coordinator.
int run_worker(const Cli& cli, Campaign campaign) {
  for (const char* flag : {"serve", "workers", "store", "resume", "store-stats", "payload",
                           "json", "csv", "stats"}) {
    FNE_REQUIRE(!cli.has(flag),
                std::string("--") + flag + " does not apply to --connect (worker mode)");
  }
  const std::string target = cli.get("connect", "");
  FNE_REQUIRE(!target.empty() && target != "1", "--connect needs HOST:PORT (or PORT)");
  WorkerOptions opts;
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    opts.port = parse_port(target, "--connect");
  } else {
    opts.host = target.substr(0, colon);
    opts.port = parse_port(target.substr(colon + 1), "--connect");
  }
  opts.name = cli.get("worker-name", opts.name);
  opts.plan_threads = cli.get_threads(1);
  opts.connect_attempts = static_cast<int>(cli.get_int("connect-attempts", opts.connect_attempts));

  DistWorker worker(std::move(campaign), opts);
  const WorkerReport report = worker.run();
  std::cout << "worker '" << opts.name << "': cells=" << report.cells
            << " metrics=" << report.metrics << " reconnects=" << report.reconnects
            << (report.saw_done ? " (campaign done)" : " (coordinator gone)") << "\n";
  if (report.fatal_mismatch) {
    std::cerr << "error: coordinator refused the handshake: different campaign or protocol\n";
    return 2;
  }
  if (!report.ever_connected) {
    std::cerr << "error: no coordinator reachable at " << target << "\n";
    return 1;
  }
  return 0;
}

// SIGTERM/SIGINT flag for --daemon; sig_atomic_t is all a handler may
// touch, and the main loop polls it.
volatile std::sig_atomic_t g_shutdown = 0;
extern "C" void daemon_signal_handler(int) { g_shutdown = 1; }

/// --daemon: run the scenario service until SIGTERM/SIGINT.
int run_daemon(const Cli& cli) {
  ServiceOptions opts;
  const std::string spec = cli.get("daemon", "");
  if (spec != "1") opts.port = parse_port(spec, "--daemon");
  opts.bind = cli.get("bind", opts.bind);
  opts.workers = static_cast<int>(cli.get_int("service-workers", opts.workers));
  opts.exec_threads = cli.get_threads(1);
  opts.queue_depth = static_cast<std::size_t>(
      cli.get_int("queue-depth", static_cast<std::int64_t>(opts.queue_depth)));
  opts.queue_deadline_ms = static_cast<std::uint64_t>(cli.get_int("queue-deadline-ms", 0));
  opts.max_request_bytes = static_cast<std::size_t>(
      cli.get_int("max-request-bytes", static_cast<std::int64_t>(opts.max_request_bytes)));
  opts.retry_after_ms = static_cast<std::uint64_t>(
      cli.get_int("retry-after-ms", static_cast<std::int64_t>(opts.retry_after_ms)));
  if (cli.has("cache-budget")) {
    opts.cache_budget_bytes = static_cast<std::uint64_t>(cli.get_int("cache-budget", 0)) << 20;
  }

  ScenarioService service(opts);
  service.start();
  std::cerr << "fne-service listening on " << opts.bind << ":" << service.port() << "\n";
  const std::string port_file = cli.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    FNE_REQUIRE(static_cast<bool>(out), "cannot write port file " + port_file);
    out << service.port() << "\n";
  }
  std::signal(SIGTERM, daemon_signal_handler);
  std::signal(SIGINT, daemon_signal_handler);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.stop();
  const ServiceStats st = service.stats();
  const EngineCacheStats cache = EngineCache::instance().stats();
  std::cerr << "fne-service: connections=" << st.connections << " requests=" << st.requests
            << " completed=" << st.completed << " errors=" << st.errors
            << " cancelled=" << st.cancelled << " rejected="
            << (st.rejected_queue_full + st.rejected_expired + st.rejected_oversized)
            << " cache_bytes=" << cache.bytes_resident << " peak_bytes=" << cache.peak_bytes
            << " evictions=" << cache.evictions << "\n";
  if (!port_file.empty()) std::remove(port_file.c_str());
  return 0;
}

/// --send: submit one request to a running daemon.  Exit codes 0 ok,
/// 1 service error, 2 connection/transport failure, 3 rejected.
int run_client(const Cli& cli) {
  const std::string target = cli.get("send", "");
  FNE_REQUIRE(!target.empty() && target != "1", "--send needs HOST:PORT");
  const std::size_t colon = target.rfind(':');
  std::string host = "127.0.0.1";
  int port = 0;
  if (colon == std::string::npos) {
    port = parse_port(target, "--send");
  } else {
    host = target.substr(0, colon);
    port = parse_port(target.substr(colon + 1), "--send");
  }
  const int timeout_ms = static_cast<int>(cli.get_int("timeout-ms", 120000));

  try {
    ServiceClient client(host, port);
    ServiceResponse resp;
    if (cli.has("ping")) {
      resp = client.ping(timeout_ms);
    } else if (cli.has("service-stats")) {
      resp = client.stats(timeout_ms);
    } else {
      const std::string path = cli.get("campaign", "");
      FNE_REQUIRE(!path.empty() && path != "1",
                  "--send needs --campaign=FILE (or --ping / --service-stats)");
      std::ifstream in(path);
      FNE_REQUIRE(static_cast<bool>(in), "cannot read campaign file " + path);
      std::ostringstream text;
      text << in.rdbuf();
      resp = client.campaign(text.str(), static_cast<int>(cli.get_int("threads", 0)), timeout_ms);
    }
    if (resp.rejected()) {
      std::cerr << "rejected: " << resp.message << " (retry_after_ms=" << resp.retry_after_ms
                << ")\n";
      return 3;
    }
    if (!resp.ok()) {
      std::cerr << "error: " << resp.message << "\n";
      return 1;
    }
    const std::string payload_path = cli.get("payload", "");
    if (!payload_path.empty() && payload_path != "1") {
      std::ofstream out(payload_path);
      FNE_REQUIRE(static_cast<bool>(out), "cannot write payload to " + payload_path);
      out << resp.payload << "\n";
      std::cerr << "(payload written to " << payload_path << ")\n";
    } else if (!resp.payload.empty()) {
      std::cout << resp.payload << "\n";
    } else {
      std::cout << "ok\n";
    }
    return 0;
  } catch (const PreconditionError& e) {
    // Everything the client REQUIREs — connect refusal, send failure,
    // response timeout, corrupt stream — is a transport-class failure.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

void print_cache_stats(std::ostream& out) {
  const EngineCacheStats cs = EngineCache::instance().stats();
  out << "cache: leases=" << cs.leases << " engine_hits=" << cs.engine_hits
      << " engine_builds=" << cs.engine_builds << " graph_hits=" << cs.graph_hits
      << " graph_builds=" << cs.graph_builds << " evictions=" << cs.evictions
      << " bytes_resident=" << cs.bytes_resident << " peak_bytes=" << cs.peak_bytes
      << " budget_bytes=" << EngineCache::instance().budget_bytes() << "\n";
}

int run_campaign(const Cli& cli) {
  const std::string spec = cli.get("campaign", "");
  // Scenario-level flags have no campaign meaning (the file/preset owns
  // the scenario fields) — reject them loudly rather than silently
  // returning results the flags did not influence.
  for (const char* flag : {"scenario", "topology", "topo-params", "fault", "fault-params",
                           "kind", "alpha", "eps", "fast", "verify", "expansion", "metrics",
                           "spectral-mode", "filter-degree", "seed", "sweep", "sweep-values",
                           "sweep-mode", "churn-steps"}) {
    FNE_REQUIRE(!cli.has(flag), std::string("--") + flag +
                                    " does not apply to --campaign; set it in the campaign "
                                    "file (or run a single scenario)");
  }
  FNE_REQUIRE(spec == "catalog" || !cli.has("reps"),
              "--reps only applies to --campaign=catalog; file campaigns declare "
              "repetitions per scenario");
  Campaign campaign = spec == "catalog"
                          ? catalog_campaign(static_cast<int>(cli.get_int("reps", 1)))
                          : campaign_from_file(spec);
  if (cli.has("connect")) return run_worker(cli, std::move(campaign));
  FNE_REQUIRE(!cli.has("workers") || cli.has("serve"), "--workers needs --serve");
  const int threads = cli.get_threads(1);
  const std::string json_path = cli.get("json", "");
  const bool json_to_stdout = json_path == "1";

  // --store=DIR / --resume: route the run through a ResultStore.
  // --resume is the convenience spelling with a conventional directory,
  // so "my campaign died, run it again" needs no bookkeeping.
  std::string store_dir = cli.get("store", "");
  FNE_REQUIRE(!cli.has("store") || (!store_dir.empty() && store_dir != "1"),
              "--store needs a directory: --store=DIR");
  if (cli.has("resume") && store_dir.empty()) store_dir = ".fne-store";
  FNE_REQUIRE(!cli.has("store-stats") || !store_dir.empty(),
              "--store-stats needs --store=DIR (or --resume)");
  const std::string payload_path = cli.get("payload", "");
  FNE_REQUIRE(!cli.has("payload") || (!payload_path.empty() && payload_path != "1"),
              "--payload needs a path: --payload=FILE");
  std::unique_ptr<ResultStore> store;
  if (!store_dir.empty()) store = std::make_unique<ResultStore>(store_dir);

  std::optional<DistStats> dist_stats;
  const CampaignReport report = [&] {
    if (!cli.has("serve")) {
      CampaignRunner runner(std::move(campaign));
      return runner.run(threads, store.get());
    }
    DistOptions dopts;
    const std::string serve = cli.get("serve", "");
    if (serve != "1") dopts.port = parse_port(serve, "--serve");
    dopts.bind = cli.get("bind", dopts.bind);
    dopts.local_threads = threads;
    dopts.job_timeout_ms = cli.get_double("job-timeout-ms", dopts.job_timeout_ms);
    dopts.lease_cap_ms = std::max(dopts.lease_cap_ms, dopts.job_timeout_ms);
    dopts.retry_budget = static_cast<int>(cli.get_int("retry-budget", dopts.retry_budget));
    dopts.backoff_base_ms = cli.get_double("backoff-base-ms", dopts.backoff_base_ms);
    dopts.backoff_max_ms = cli.get_double("backoff-max-ms", dopts.backoff_max_ms);
    dopts.heartbeat_ms = cli.get_double("heartbeat-ms", dopts.heartbeat_ms);
    dopts.idle_grace_ms = cli.get_double("idle-grace-ms", dopts.idle_grace_ms);
    const int in_process = static_cast<int>(cli.get_int("workers", 0));

    const Campaign worker_campaign = campaign;  // copied before the move
    DistCoordinator coordinator(std::move(campaign), dopts, store.get());
    std::cerr << "serving campaign on " << dopts.bind << ":" << coordinator.port() << "\n";
    std::vector<std::unique_ptr<DistWorker>> workers;
    std::vector<std::thread> worker_threads;
    for (int i = 0; i < in_process; ++i) {
      WorkerOptions wopts;
      wopts.port = coordinator.port();
      wopts.name = "local-" + std::to_string(i);
      workers.push_back(std::make_unique<DistWorker>(worker_campaign, wopts));
      worker_threads.emplace_back([w = workers.back().get()] { (void)w->run(); });
    }
    CampaignReport rep = coordinator.run();
    for (const auto& w : workers) w->stop();
    for (std::thread& th : worker_threads) th.join();
    dist_stats = coordinator.stats();
    return rep;
  }();

  if (!json_to_stdout) {
    std::cout << "campaign: " << report.name << " — " << report.scenarios.size()
              << " scenarios, " << threads << (threads == 1 ? " thread" : " threads") << ", "
              << report.millis << " ms\n\n";
    Table table({"scenario", "topology", "n", "runs", "mean |H|/n", "culled", "engine iters",
                 "eigensolves", "ms"});
    for (const ScenarioReport& s : report.scenarios) {
      double frac = 0.0;
      std::uint64_t culled = 0;
      for (const ScenarioRun& r : s.runs) {
        frac += r.survivor_fraction(s.n);
        culled += r.prune.total_culled;
      }
      if (!s.runs.empty()) frac /= static_cast<double>(s.runs.size());
      table.row()
          .cell(s.scenario.name)
          .cell(s.scenario.topology.name)
          .cell(std::size_t{s.n})
          .cell(s.runs.size())
          .cell(frac, 3)
          .cell(culled)
          .cell(s.engine.iterations)
          .cell(s.engine.eigensolves)
          .cell(s.millis, 1);
    }
    if (cli.has("csv")) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    if (cli.has("stats")) {
      const EngineStats st = report.total_engine_stats();
      std::cout << "\nengine totals: runs=" << st.runs << " iters=" << st.iterations
                << " eigensolves=" << st.eigensolves << " stale_hits=" << st.stale_sweep_hits
                << " disconnected=" << st.disconnected_culls
                << "\ncache: leases=" << report.cache.leases
                << " engine_hits=" << report.cache.engine_hits
                << " engine_builds=" << report.cache.engine_builds
                << " graph_builds=" << report.cache.graph_builds << "\n";
    }
  }
  if (dist_stats) {
    std::ostream& out = json_to_stdout ? std::cerr : std::cout;
    out << "dist: sessions=" << dist_stats->sessions << " disconnects=" << dist_stats->disconnects
        << " assignments=" << dist_stats->assignments << " timeouts=" << dist_stats->timeouts
        << " requeues=" << dist_stats->requeues << " remote="
        << (dist_stats->remote_cells + dist_stats->remote_metrics) << " local="
        << (dist_stats->local_cells + dist_stats->local_metrics)
        << " duplicates=" << dist_stats->duplicates << " rejected="
        << (dist_stats->rejected_corrupt + dist_stats->rejected_wrong_key +
            dist_stats->rejected_bad_payload)
        << " fallback=" << dist_stats->fallback_jobs << "\n";
  }
  if (cli.has("store-stats")) {
    // Keep a --json stdout stream pure JSON; the stats go to stderr there.
    // The "store: hits=... misses=..." prefix is load-bearing: the
    // reproduce harness greps it to assert warm replays (validate.sh).
    std::ostream& out = json_to_stdout ? std::cerr : std::cout;
    out << "store: hits=" << report.store.hits << " misses=" << report.store.misses
        << " loaded_bytes=" << report.store.bytes_loaded
        << " committed_bytes=" << report.store.bytes_committed
        << " records=" << store->stats().records
        << " corrupt_records=" << report.store.corrupt_records
        << " truncated_bytes=" << report.store.truncated_bytes
        << " rotated_files=" << report.store.rotated_files << "\n";
  }
  if (cli.has("cache-stats")) {
    // Same stream policy as --store-stats: never corrupt a JSON stdout.
    print_cache_stats(json_to_stdout ? std::cerr : std::cout);
  }
  if (!payload_path.empty()) {
    std::ofstream out(payload_path);
    FNE_REQUIRE(static_cast<bool>(out), "cannot write payload to " + payload_path);
    out << report.to_json(/*include_timing=*/false) << "\n";
    std::cerr << "(payload written to " << payload_path << ")\n";
  }
  if (json_to_stdout) {
    std::cout << report.to_json() << "\n";
  } else if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (out) {
      out << report.to_json() << "\n";
      std::cerr << "(json written to " << json_path << ")\n";
    } else {
      std::cerr << "warning: cannot write json report to " << json_path << "\n";
    }
  }
  return 0;
}

int run(const Cli& cli) {
  if (cli.has("daemon")) return run_daemon(cli);
  if (cli.has("send")) return run_client(cli);
  // Local runs honor the same budget flag as the daemon (MiB).
  if (cli.has("cache-budget")) {
    EngineCache::instance().set_budget_bytes(
        static_cast<std::uint64_t>(cli.get_int("cache-budget", 0)) << 20);
  }
  if (cli.has("campaign")) return run_campaign(cli);

  // The result store keys CAMPAIGN cells; a single-scenario run has no
  // store semantics, so reject the flags loudly rather than silently
  // running without them.
  for (const char* flag : {"store", "resume", "store-stats", "payload", "serve", "connect",
                           "workers"}) {
    FNE_REQUIRE(!cli.has(flag),
                std::string("--") + flag + " only applies to --campaign runs");
  }

  Scenario scenario = scenario_from_cli(cli);
  const int threads = cli.get_threads(1);
  // Bare `--json` parses as the value "1": JSON replaces the table on
  // stdout.  `--json=path` keeps the table and writes the file.
  const std::string json_path = cli.get("json", "");
  const bool json_to_stdout = json_path == "1";

  ScenarioRunner runner(std::move(scenario));
  const Scenario& s = runner.scenario();
  if (!json_to_stdout) {
    std::cout << "scenario: " << s.name << "\n"
              << "topology: " << s.topology.name
              << (s.topology.params.empty() ? "" : " (" + s.topology.params.to_string() + ")")
              << " — " << runner.graph().summary() << "\n"
              << "fault:    " << s.fault.name
              << (s.fault.params.empty() ? "" : " (" + s.fault.params.to_string() + ")") << "\n"
              << "prune:    " << (s.prune.kind == ExpansionKind::Node ? "Prune (node)"
                                                                      : "Prune2 (edge)")
              << "  alpha=" << runner.alpha() << "  eps=" << runner.epsilon()
              << "  threshold=" << runner.alpha() * runner.epsilon()
              << (s.prune.fast ? "  [fast]" : "")
              << (threads > 1 ? "  threads=" + std::to_string(threads) : "") << "\n\n";
  }

  // Either a fault-param sweep (--sweep=key) or the scenario's own
  // repetitions.
  std::vector<ScenarioRun> runs;
  std::vector<std::string> labels;
  std::vector<double> sweep_values;
  const bool sweeping = cli.has("sweep");
  const std::string sweep_key = cli.get("sweep", "");
  if (sweeping) {
    sweep_values = cli.get_double_list("sweep-values", "");
    FNE_REQUIRE(!sweep_values.empty(), "--sweep needs --sweep-values=a,b,c");
    const std::string mode_name = cli.get("sweep-mode", "independent");
    FNE_REQUIRE(mode_name == "independent" || mode_name == "monotone",
                "--sweep-mode must be independent or monotone");
    const SweepMode mode =
        mode_name == "monotone" ? SweepMode::kMonotone : SweepMode::kIndependent;
    runs = runner.sweep_fault_param(sweep_key, sweep_values, threads, mode);
    for (const double v : sweep_values) {
      labels.push_back(sweep_key + "=" + std::to_string(v).substr(0, 6));
    }
  } else {
    runs = runner.run_all(threads);
  }

  if (!json_to_stdout) {
    const Table table = runner.metrics_table(runs, labels);
    if (cli.has("csv")) {
      table.write_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

  if (!json_path.empty()) {
    JsonReport report("scenario_runner");
    report.top()
        .put("scenario", s.name)
        .put("topology", s.topology.name)
        .put("fault", s.fault.name)
        .put("kind", s.prune.kind == ExpansionKind::Node ? "node" : "edge")
        .put("n", std::size_t{runner.graph().num_vertices()})
        .put("alpha", runner.alpha())
        .put("epsilon", runner.epsilon())
        .put("fast", s.prune.fast)
        .put("repetitions", s.repetitions)
        .put("threads", threads)
        .put("seed", s.seed);
    if (sweeping) {
      report.top().put("sweep", sweep_key).put_numbers("sweep_values", sweep_values);
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ScenarioRun& r = runs[i];
      auto& record = report.record("runs");
      // Sweep rows carry their x-axis value; repetition rows their rep.
      if (sweeping) record.put("value", sweep_values[i]);
      record.put("rep", r.repetition)
          .put("fault_seed", r.fault_seed)
          .put("finder_seed", r.finder_seed)
          .put("faults", std::size_t{r.faults})
          .put("alive", std::size_t{r.alive.count()})
          .put("survivors", std::size_t{r.prune.survivors.count()})
          .put("culled", std::size_t{r.prune.total_culled})
          .put("iterations", r.prune.iterations)
          .put("millis", r.millis);
      if (!r.metrics.empty()) {
        JsonObject metrics_obj;
        for (const MetricRecord& m : r.metrics) metrics_obj.put_json(m.name, m.payload);
        record.put_json("metrics", metrics_obj.dump());
      }
    }
    if (json_to_stdout) {
      std::cout << report.dump() << "\n";
    } else {
      report.write(json_path);
    }
  }

  const auto churn_steps = static_cast<int>(cli.get_int("churn-steps", 0));
  if (churn_steps > 0 && !json_to_stdout) {
    ChurnOptions copts;
    copts.steps = churn_steps;
    copts.p_leave = cli.get_double("p-leave", copts.p_leave);
    copts.p_join = cli.get_double("p-join", copts.p_join);
    copts.seed = s.seed + 17;
    const ChurnRunTrace trace = runner.run_churn(copts);
    std::cout << "\nchurn (" << churn_steps << " rounds, p_leave=" << copts.p_leave
              << ", p_join=" << copts.p_join << "), re-pruned per round on one engine:\n";
    Table churn({"round", "alive", "gamma", "|H|", "culled", "iters", "prune ms"});
    const int stride = std::max(1, churn_steps / 10);
    for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
      if (static_cast<int>(i) % stride != 0 && i + 1 != trace.rounds.size()) continue;
      const ChurnRoundRun& r = trace.rounds[i];
      churn.row()
          .cell(std::size_t{i})
          .cell(std::size_t{r.churn.alive_count})
          .cell(r.churn.gamma, 3)
          .cell(std::size_t{r.survivors})
          .cell(std::size_t{r.culled})
          .cell(r.iterations)
          .cell(r.prune_millis, 2);
    }
    churn.print(std::cout);
    std::cout << "total per-round prune time: " << trace.total_prune_millis() << " ms\n";
  }

  if (cli.has("stats") && !json_to_stdout) {
    // Pooled total: the runner's primary engine plus every per-job lease
    // — the same work total regardless of --threads.
    const EngineStats st = runner.total_engine_stats();
    std::cout << "\nengine telemetry (cumulative, " << threads
              << (threads == 1 ? " thread):\n" : " threads, pooled):\n");
    Table stats({"threads", "runs", "iters", "eigensolves", "stale sweeps", "stale hits",
                 "disconnected culls", "relabel BFS", "relabel verts"});
    stats.row()
        .cell(threads)
        .cell(st.runs)
        .cell(st.iterations)
        .cell(st.eigensolves)
        .cell(st.stale_sweeps)
        .cell(st.stale_sweep_hits)
        .cell(st.disconnected_culls)
        .cell(st.relabel_bfs_calls)
        .cell(st.relabel_bfs_vertices);
    stats.print(std::cout);
  }
  if (cli.has("cache-stats")) print_cache_stats(json_to_stdout ? std::cerr : std::cout);
  return 0;
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  const fne::Cli cli(argc, argv);
  if (cli.has("list")) {
    fne::list_registries();
    return 0;
  }
  try {
    return fne::run(cli);
  } catch (const fne::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n(use --list to see registered names and params)\n";
    return 1;
  }
}
