// edgelist2csr — canonicalize a text edge list into the binary CSR
// format behind the `file` topology (core/csr_file.hpp, DESIGN.md §14).
//
// The input side is the tolerant reader (core/io.hpp): '#'/'%' comments
// and blank lines are skipped, self loops dropped (counted), duplicate
// edges merged.  The default expects SNAP-style headerless "u v" lines
// and infers n = max id + 1; --header switches to the repo's "n m"
// first-line format, --strict additionally restores the pre-§14 exact
// contract (round-trip use).
//
// Usage:
//   edgelist2csr --in=graph.txt --out=graph.csr [--header] [--strict]
//                [--min-n=N]
//
// Output is deterministic: equal graphs encode to byte-identical files
// (canonical CSR), which is what lets CI regenerate a fixture and `cmp`
// it against the committed copy.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "core/csr_file.hpp"
#include "core/graph.hpp"
#include "core/io.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

int run(int argc, char** argv) {
  const fne::Cli cli(argc, argv);
  const std::string in_path = cli.get("in", "");
  const std::string out_path = cli.get("out", "");
  if (in_path.empty() || out_path.empty()) {
    std::cerr << "usage: edgelist2csr --in=EDGELIST --out=CSR [--header] [--strict]"
                 " [--min-n=N]\n"
                 "  --header   input starts with an \"n m\" line (default: headerless,\n"
                 "             SNAP style, n inferred as max id + 1)\n"
                 "  --strict   exact pre-conversion contract: header required, exactly m\n"
                 "             pairs, self loops fatal\n"
                 "  --min-n=N  floor for the inferred vertex count (headerless only)\n";
    return 2;
  }

  fne::EdgeListOptions opts;
  opts.strict = cli.has("strict");
  opts.header = opts.strict || cli.has("header");
  opts.min_n = static_cast<fne::vid>(cli.get_int("min-n", 0));

  std::ifstream in(in_path);
  FNE_REQUIRE(in.good(), "edgelist2csr: cannot open input '" + in_path + "'");
  fne::EdgeListStats stats;
  const fne::Graph g = fne::read_edge_list(in, opts, &stats);

  fne::CsrFile::write(out_path, g);
  const fne::CsrHeader h = fne::CsrFile::read_header(out_path);

  const std::size_t duplicates = stats.parsed_edges - g.num_edges();
  std::cout << "edgelist2csr: " << in_path << " -> " << out_path << "\n"
            << "  n=" << g.num_vertices() << " m=" << g.num_edges()
            << " checksum=" << h.checksum << "\n"
            << "  comments=" << stats.comment_lines << " blanks=" << stats.blank_lines
            << " self_loops_dropped=" << stats.self_loops
            << " duplicates_merged=" << duplicates << "\n";
  if (opts.header && stats.declared_m != g.num_edges()) {
    std::cout << "  note: header declared m=" << stats.declared_m << ", kept "
              << g.num_edges() << " after cleanup\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "edgelist2csr: " << e.what() << "\n";
    return 1;
  }
}
