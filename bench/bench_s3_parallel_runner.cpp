// S3 — sharded Scenario repetitions across an engine pool.
//
// ScenarioRunner::run_all(threads) executes the embarrassingly-parallel
// dimension of the paper's experiments — independent fault/prune
// repetitions — on one persistent PruneEngine per worker.  Seeds derive
// per repetition (never per thread) and every repetition starts from a
// cold cross-run cache, so the outputs are bit-identical for ANY thread
// count; this bench verifies that contract on every run and measures the
// scaling (target on >= 4 hardware threads: >= 3x at 4 threads vs 1).
//
// Flags: --side=N (default 32), --reps=N (default 200), --faults=P
// (default 0.3), --threads=N (default: hardware), --min-speedup=X
// (sanity floor on the best measured speedup; the default 0.8 tolerates
// pure pool overhead on 1-core CI machines but fails a real regression),
// --seed=S, --json=out.json.
#include "bench_common.hpp"

#include <thread>

#include "api/runner.hpp"

namespace fne {
namespace {

bool identical(const ScenarioRun& a, const ScenarioRun& b) {
  return a.repetition == b.repetition && a.fault_seed == b.fault_seed &&
         a.finder_seed == b.finder_seed && a.alive == b.alive &&
         a.prune.survivors == b.prune.survivors && a.prune.iterations == b.prune.iterations &&
         a.prune.total_culled == b.prune.total_culled;
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto side = static_cast<vid>(cli.get_int("side", 32));
  const int reps = static_cast<int>(cli.get_int("reps", 200));
  const double fault_p = cli.get_double("faults", 0.3);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads = bench::threads_flag(cli);
  const double min_speedup = cli.get_double("min-speedup", 0.8);

  bench::print_header("S3-PARALLEL",
                      "Sharded Scenario repetitions across an engine pool (bit-identical at any "
                      "thread count; target >= 3x at 4 threads on 4+ cores)");

  Scenario scenario;
  scenario.name = "parallel-mesh";
  scenario.topology = {"mesh", Params().set("side", static_cast<std::int64_t>(side))};
  scenario.fault = {"random", Params().set("p", fault_p)};
  scenario.prune.kind = ExpansionKind::Node;
  scenario.prune.alpha = 2.0 / static_cast<double>(side);
  scenario.prune.fast = true;
  scenario.repetitions = reps;
  scenario.seed = seed;

  ScenarioRunner runner(scenario);
  std::cout << "graph: " << runner.graph().summary() << ", " << reps << " repetitions, "
            << hw << " hardware threads\n\n";

  Timer timer;
  const std::vector<ScenarioRun> serial = runner.run_all(1);
  const double serial_ms = timer.millis();

  Table table({"threads", "total ms", "ms/rep", "speedup", "bit-identical to 1 thread"});
  table.row().cell(1).cell(serial_ms, 1).cell(serial_ms / reps, 2).cell(1.0, 2).cell("-");

  bench::JsonReport json("bench_s3_parallel_runner");
  json.top()
      .put("workload",
           "mesh " + std::to_string(side) + "x" + std::to_string(side) + ", " +
               std::to_string(reps) + " reps, fast prune")
      .put("n", std::size_t{runner.graph().num_vertices()})
      .put("reps", reps)
      .put("hardware_threads", static_cast<std::int64_t>(hw));
  json.record("scaling").put("threads", 1).put("millis", serial_ms).put("speedup", 1.0);

  bool all_identical = true;
  double best_speedup = 0.0;  // only measured (and bit-identical) runs count
  std::vector<int> counts{2};
  if (threads > 2) counts.push_back(threads);
  for (int t : counts) {
    timer.reset();
    const std::vector<ScenarioRun> parallel = runner.run_all(t);
    const double ms = timer.millis();
    bool same = parallel.size() == serial.size();
    for (std::size_t i = 0; same && i < serial.size(); ++i) {
      same = identical(serial[i], parallel[i]);
    }
    all_identical = all_identical && same;
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    if (same) best_speedup = std::max(best_speedup, speedup);
    table.row().cell(t).cell(ms, 1).cell(ms / reps, 2).cell(speedup, 2).cell(bench::yesno(same));
    json.record("scaling").put("threads", t).put("millis", ms).put("speedup", speedup);
  }

  bench::print_table(table,
                     "acceptance: every thread count reproduces the 1-thread runs bit for bit\n"
                     "(seeds are per repetition, caches per-rep cold); speedup tracks cores.");

  const bool pass = all_identical && best_speedup >= min_speedup;
  json.top()
      .put("best_speedup", best_speedup)
      .put("bit_identical", all_identical)
      .put("pass", pass);
  if (cli.has("json")) json.write(bench::json_path(cli, "bench_s3_parallel_runner.json"));

  std::cout << "\nbit-identical across thread counts: " << (all_identical ? "PASS" : "FAIL")
            << ", best speedup: " << best_speedup << "x (threshold " << min_speedup << "x: "
            << (best_speedup >= min_speedup ? "PASS" : "FAIL") << ")\n";
  return pass ? 0 : 1;
}
