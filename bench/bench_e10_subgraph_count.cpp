// E10 — Claim 3.2: the number of connected subgraphs spanned by r vertices
// of a graph with maximum degree δ is at most n·δ^{2r} (the Eulerian-walk
// counting argument, Motwani–Raghavan Ex. 5.7).
#include "bench_common.hpp"

#include <cmath>

#include "span/compact_sets.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("E10", "Claim 3.2 — #connected r-subgraphs <= n·δ^{2r}");

  Table table({"graph", "n", "delta", "r", "count", "bound n*d^2r", "ratio", "ok"});

  auto probe = [&](const std::string& name, const Graph& g, vid r_max) {
    const VertexSet all = VertexSet::full(g.num_vertices());
    const double delta = g.max_degree();
    for (vid r = 1; r <= r_max; ++r) {
      const std::uint64_t count = count_connected_subgraphs_with_marked(g, all, r, r);
      const double bound =
          static_cast<double>(g.num_vertices()) * std::pow(delta, 2.0 * r);
      table.row()
          .cell(name)
          .cell(std::size_t{g.num_vertices()})
          .cell(std::size_t{g.max_degree()})
          .cell(std::size_t{r})
          .cell(static_cast<long long>(count))
          .cell(bound, 4)
          .cell(static_cast<double>(count) / bound, 4)
          .cell(bench::yesno(static_cast<double>(count) <= bound));
    }
  };

  probe("cycle C_12", cycle_graph(12), 6);
  probe("mesh 4x4", Mesh::cube(4, 2).graph(), 5);
  probe("mesh 2x2x2", Mesh::cube(2, 3).graph(), 5);
  probe("rand 4-reg n=16", random_regular(16, 4, seed), 5);
  probe("complete K_8", complete_graph(8), 4);

  bench::print_table(table,
                     "paper prediction: ratio <= 1 everywhere (the bound is loose — ratios\n"
                     "shrink rapidly with r, which is what makes the union bound in\n"
                     "Theorem 3.1/3.4 usable).");
  return 0;
}
