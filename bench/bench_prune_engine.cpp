// PERF — PruneEngine vs the stateless prune loop.
//
// The stateless reference recomputes connected components, alive degrees
// and a cold-started Fiedler solve on every cull iteration; the engine
// maintains them incrementally and (in fast mode) skips eigensolves
// whenever sweeping the stale Fiedler ordering already exposes a
// violating set.  This bench times both on the ISSUE's acceptance
// workload — a 64x64 mesh with 30% random node faults, bench_e1-style —
// and checks the two correctness contracts:
//   * deterministic engine output is bit-identical to the reference;
//   * fast-mode traces replay (verify_prune_trace), i.e. every culled set
//     satisfied its culling condition — the paper-level validity notion.
//
// Flags: --side=N (default 64), --faults=P (default 0.3), --trials=N
// (default 1), --alpha=A (default 0.5), --eps=E (default 0.5), --seed=S.
#include "bench_common.hpp"

#include <utility>

#include "faults/fault_model.hpp"
#include "prune/engine.hpp"
#include "prune/prune.hpp"
#include "prune/verify.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

bool identical(const PruneResult& a, const PruneResult& b) {
  if (!(a.survivors == b.survivors) || a.iterations != b.iterations ||
      a.culled.size() != b.culled.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.culled.size(); ++i) {
    if (!(a.culled[i].set == b.culled[i].set) || a.culled[i].boundary != b.culled[i].boundary) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto side = static_cast<vid>(cli.get_int("side", 64));
  const double fault_p = cli.get_double("faults", 0.3);
  const int trials = static_cast<int>(cli.get_int("trials", 1));
  // Default alpha = the fault-free mesh's straight-cut node expansion
  // (~2/side), the honest choice per bench_e1; 0.5·alpha as the threshold
  // keeps Prune in the regime where H stays large and every iteration
  // exercises a full-size cut search.
  const double alpha = cli.get_double("alpha", 2.0 / static_cast<double>(side));
  const double eps = cli.get_double("eps", 0.5);

  bench::print_header(
      "PERF-ENGINE",
      "Incremental PruneEngine vs stateless prune loop (target: >= 3x end-to-end)");

  const Mesh mesh = Mesh::cube(side, 2);
  const Graph& g = mesh.graph();
  const double threshold = alpha * eps;

  Table table({"trial", "n", "alive", "ref ms", "det ms", "fast ms", "det speedup",
               "fast speedup", "det identical", "fast trace ok", "|H| ref", "|H| fast"});

  double total_ref = 0.0;
  double total_fast = 0.0;
  bool all_identical = true;
  bool all_valid = true;

  // One engine per mode: the workspace's Fiedler cache now survives
  // across runs, so sharing an engine would hand the fast run a warm
  // ordering for the *identical* alive mask the det run just solved —
  // inflating the measured fast-mode speedup with work it never paid for.
  // Separate engines still amortize buffers across trials (the honest
  // reuse), but each mode earns its own eigensolves.
  PruneEngine det_engine(g, ExpansionKind::Node);
  PruneEngine fast_engine(g, ExpansionKind::Node);
  EngineStats det_stats;
  EngineStats fast_stats;
  for (int t = 0; t < trials; ++t) {
    const VertexSet alive = random_node_faults(g, fault_p, seed + static_cast<std::uint64_t>(t));
    PruneOptions popts;
    popts.finder.seed = seed + 100 + static_cast<std::uint64_t>(t);

    Timer timer;
    const PruneResult ref = prune_reference(g, alive, alpha, eps, popts);
    const double ref_ms = timer.millis();

    PruneEngineOptions det;
    det.finder = popts.finder;
    EngineStats snapshot = det_engine.stats();
    timer.reset();
    const PruneResult engine_det = det_engine.run(alive, alpha, eps, det);
    const double det_ms = timer.millis();
    det_stats += det_engine.stats() - snapshot;

    PruneEngineOptions fast = PruneEngineOptions::fast();
    fast.finder.seed = popts.finder.seed;
    snapshot = fast_engine.stats();
    timer.reset();
    const PruneResult engine_fast = fast_engine.run(alive, alpha, eps, fast);
    const double fast_ms = timer.millis();
    fast_stats += fast_engine.stats() - snapshot;

    const bool det_identical = identical(ref, engine_det);
    const TraceVerification trace =
        verify_prune_trace(g, alive, engine_fast, ExpansionKind::Node, threshold);
    all_identical = all_identical && det_identical;
    all_valid = all_valid && trace.valid;
    total_ref += ref_ms;
    total_fast += fast_ms;

    table.row()
        .cell(std::size_t(t))
        .cell(std::size_t{g.num_vertices()})
        .cell(std::size_t{alive.count()})
        .cell(ref_ms, 1)
        .cell(det_ms, 1)
        .cell(fast_ms, 1)
        .cell(ref_ms / det_ms, 2)
        .cell(ref_ms / fast_ms, 2)
        .cell(bench::yesno(det_identical))
        .cell(bench::yesno(trace.valid))
        .cell(std::size_t{ref.survivors.count()})
        .cell(std::size_t{engine_fast.survivors.count()});
  }

  bench::print_table(
      table,
      "acceptance: 'det identical' and 'fast trace ok' = yes everywhere, and the fast\n"
      "engine's end-to-end speedup over the stateless path is >= 3x.");

  // Engine telemetry (ROADMAP: expose counters so benches can report how
  // many eigensolves fast mode actually skipped).
  Table stats({"mode", "iters", "eigensolves", "solves/iter", "stale sweeps", "stale hits",
               "hit rate", "disconnected culls", "relabel BFS", "relabel verts"});
  for (const auto& [mode, st] : {std::pair<const char*, const EngineStats*>{"det", &det_stats},
                                 {"fast", &fast_stats}}) {
    stats.row()
        .cell(mode)
        .cell(st->iterations)
        .cell(st->eigensolves)
        .cell(st->iterations > 0
                  ? static_cast<double>(st->eigensolves) / static_cast<double>(st->iterations)
                  : 0.0,
              2)
        .cell(st->stale_sweeps)
        .cell(st->stale_sweep_hits)
        .cell(st->stale_sweeps > 0 ? static_cast<double>(st->stale_sweep_hits) /
                                         static_cast<double>(st->stale_sweeps)
                                   : 0.0,
              2)
        .cell(st->disconnected_culls)
        .cell(st->relabel_bfs_calls)
        .cell(st->relabel_bfs_vertices);
  }
  bench::print_table(stats,
                     "every stale hit is an eigensolve skipped; det mode runs one staged solve\n"
                     "per connected iteration, fast mode's solves/iter shows what remains.");

  const double speedup = total_fast > 0.0 ? total_ref / total_fast : 0.0;
  std::cout << "\noverall fast-mode speedup: " << speedup << "x ("
            << (speedup >= 3.0 ? "PASS" : "FAIL") << " >= 3x), deterministic bit-identical: "
            << (all_identical ? "PASS" : "FAIL")
            << ", fast traces certified: " << (all_valid ? "PASS" : "FAIL") << "\n";
  return (speedup >= 3.0 && all_identical && all_valid) ? 0 : 1;
}
