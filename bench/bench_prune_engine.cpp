// PERF — PruneEngine vs the stateless prune loop.
//
// The stateless reference recomputes connected components, alive degrees
// and a cold-started Fiedler solve on every cull iteration; the engine
// maintains them incrementally and (in fast mode) skips eigensolves
// whenever sweeping the stale Fiedler ordering already exposes a
// violating set.  This bench times both on the ISSUE's acceptance
// workload — a 64x64 mesh with 30% random node faults, bench_e1-style —
// and checks the two correctness contracts:
//   * deterministic engine output is bit-identical to the reference;
//   * fast-mode traces replay (verify_prune_trace), i.e. every culled set
//     satisfied its culling condition — the paper-level validity notion.
//
// The spectral-kernel section isolates this PR's eigensolve speedup: the
// seed's spectral path (MaskedLaplacian full-graph walk + two-pass
// modified Gram–Schmidt Lanczos, kept verbatim below as the baseline)
// against the production path (compact SubCsr apply + CGS2/DGKS
// lanczos_smallest) at the staged iteration caps the engine actually
// runs (40/120), plus the raw operator apply.  Acceptance: the staged
// solves are >= 1.5x single-threaded.
//
// Flags: --side=N (default 64), --faults=P (default 0.3), --trials=N
// (default 1), --alpha=A (default 0.5), --eps=E (default 0.5), --seed=S,
// --json=out.json (machine-readable results), --blocked-side=N (default
// 64), --filtered-side=N (default 96), and the gate thresholds
// --min-spectral-speedup / --min-blocked-speedup (1.5) /
// --min-filtered-speedup (3.0, the PR-6 tentpole acceptance).
#include "bench_common.hpp"

#include <cmath>
#include <utility>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "prune/engine.hpp"
#include "prune/prune.hpp"
#include "prune/verify.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "spectral/tridiag.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

bool identical(const PruneResult& a, const PruneResult& b) {
  if (!(a.survivors == b.survivors) || a.iterations != b.iterations ||
      a.culled.size() != b.culled.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.culled.size(); ++i) {
    if (!(a.culled[i].set == b.culled[i].set) || a.culled[i].boundary != b.culled[i].boundary) {
      return false;
    }
  }
  return true;
}

// --- seed-era spectral path, kept verbatim as the speedup baseline ----
// MGS with two unconditional full passes over the basis, serial
// reductions, MaskedLaplacian operator.  This is what every eigensolve
// cost before the sub-CSR kernels; do not "fix" it.
namespace seed_path {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}
void project_out(const std::vector<std::vector<double>>& basis, std::size_t count,
                 std::vector<double>& x) {
  for (std::size_t i = 0; i < count; ++i) {
    const double c = dot(basis[i], x);
    if (c != 0.0) axpy(-c, basis[i], x);
  }
}

LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                               const std::vector<std::vector<double>>& deflation,
                               const LanczosOptions& options) {
  LanczosResult result;
  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    for (auto& x : b) x /= nb;
  }
  const std::size_t usable = n > defl.size() ? n - defl.size() : 0;
  if (usable == 0) {
    result.converged = true;
    return result;
  }
  const int max_iter = static_cast<int>(
      std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));
  std::vector<std::vector<double>> basis;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;
  Rng rng(options.seed);
  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform01() - 0.5;
  project_out(defl, defl.size(), q);
  {
    const double nq = norm(q);
    for (auto& x : q) x /= nq;
  }
  push_basis(q);
  std::vector<double> w(n);
  for (int j = 0; j < max_iter; ++j) {
    op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    project_out(defl, defl.size(), w);
    for (int pass = 0; pass < 2; ++pass) project_out(basis, basis_count, w);
    const double b = norm(w);
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);
      const std::size_t k = alpha.size();
      const bool conv = std::fabs(b * z[(k - 1) * k]) <= options.tolerance;
      if (conv || last) {
        result.iterations = j + 1;
        result.converged = conv || b < 1e-13;
        result.values.assign(values.begin(), values.begin() + 1);
        result.vectors.assign(1, std::vector<double>(n, 0.0));
        for (std::size_t i = 0; i < k; ++i) axpy(z[i * k], basis[i], result.vectors[0]);
        return result;
      }
    }
    if (b < 1e-13) break;
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }
  return result;
}

}  // namespace seed_path

/// Blocked rank-k solve vs k sequential deflated rank-1 solves — the two
/// ways a consumer gets k eigenpairs out of this library (DESIGN.md §9).
/// Both sides run shift-invert (PR 6): at the side-64 default the plain
/// solvers need tens of seconds to converge (the old side-48 retreat),
/// and Chebyshev filtering erases exactly the per-pair re-convergence
/// waste the shared basis amortizes, leaving shift-invert as the mode
/// where the blocked win is both real and cheap to measure (outer
/// iterations are priced in whole CG solves, so fewer outers == less
/// work).  Returns whether the blocked solve cleared `min_speedup` AND
/// reproduced the sequential eigenvalues to tolerance (a speedup that
/// changes the answers is a bug, not a win).
bool blocked_lanczos_section(const SubCsrLaplacian& lap, const SubCsr& sub, std::uint64_t seed,
                             double min_speedup, bench::JsonReport* json) {
  const std::size_t dim = lap.dim();
  const std::vector<std::vector<double>> ones{std::vector<double>(dim, 1.0)};
  const auto apply = [&lap](const std::vector<double>& x, std::vector<double>& y) {
    lap.apply(x, y);
  };
  constexpr int kPairs = 4;
  // Tolerance/caps at which BOTH sides converge on the probe component —
  // the comparison is matched-accuracy, not matched-budget (a capped
  // unconverged race rewards whoever gives the worse answer).
  constexpr double kTol = 1e-5;
  SpectralAccel accel;
  accel.mode = SpectralMode::kShiftInvert;
  accel.op_upper_bound = gershgorin_upper_bound(sub);
  Timer timer;

  // Sequential baseline: k rank-1 solves, each deflating every eigenvector
  // found so far — the only way the k = 1 kernel reliably resolves the
  // multiplicity-heavy bottom of a mesh Laplacian.
  std::vector<double> seq_values;
  bool seq_converged = true;
  double seq_ms = 0.0;
  {
    timer.reset();
    std::vector<std::vector<double>> defl = ones;
    for (int e = 0; e < kPairs; ++e) {
      LanczosOptions opts;
      opts.tolerance = kTol;
      opts.max_iterations = 600;
      opts.seed = seed + static_cast<std::uint64_t>(e);
      opts.accel = accel;
      const LanczosResult res = lanczos_smallest(apply, dim, defl, opts);
      seq_converged = seq_converged && res.converged;
      seq_values.push_back(res.values.at(0));
      defl.push_back(res.vectors.at(0));
    }
    seq_ms = timer.millis();
  }

  // Blocked: one rank-k solve over one shared block-Krylov basis.
  LanczosResult blocked;
  double blocked_ms = 0.0;
  {
    BlockLanczosOptions opts;
    opts.num_eigenpairs = kPairs;
    opts.tolerance = kTol;
    opts.max_basis = 900;
    opts.seed = seed;
    opts.accel = accel;
    timer.reset();
    blocked = lanczos_smallest_block(apply, dim, ones, opts);
    blocked_ms = timer.millis();
  }

  double max_dev = 0.0;
  for (int e = 0; e < kPairs; ++e) {
    max_dev = std::max(max_dev,
                       std::fabs(seq_values[static_cast<std::size_t>(e)] -
                                 blocked.values.at(static_cast<std::size_t>(e))));
  }
  const bool parity = max_dev <= 1e-4 && seq_converged && blocked.converged;
  const double speedup = blocked_ms > 0.0 ? seq_ms / blocked_ms : 0.0;
  const bool pass = parity && speedup >= min_speedup;

  Table table({"workload", "4x rank-1 ms", "blocked k=4 ms", "speedup", "max |dλ|", "pass"});
  table.row()
      .cell("smallest 4 eigenpairs, dim " + std::to_string(dim))
      .cell(seq_ms, 2)
      .cell(blocked_ms, 2)
      .cell(speedup, 2)
      .cell(max_dev, 8)
      .cell(bench::yesno(pass));
  bench::print_table(table,
                     "4x rank-1 = lanczos_smallest with progressive deflation (the pre-blocked\n"
                     "consumer shape); blocked = one lanczos_smallest_block basis; both sides\n"
                     "shift-invert at matched tolerance.  Acceptance: speedup >= threshold\n"
                     "AND both sides converged AND eigenvalue parity to 1e-4.");
  if (json != nullptr) {
    json->record("kernel")
        .put("workload", "blocked_k4")
        .put("seed_ms", seq_ms)
        .put("sub_csr_ms", blocked_ms)
        .put("speedup", speedup)
        .put("max_eigenvalue_dev", max_dev)
        .put("parity", parity);
  }
  return pass;
}

/// The PR-6 tentpole gate: Chebyshev-filtered blocked solve vs the plain
/// blocked solve at matched tolerance on the largest surviving component
/// of a large faulty mesh, whose clustered bottom spectrum is exactly the
/// regime the filter exists for.  The plain side gets a basis cap large
/// enough to actually converge — the ratio measures work-to-answer at the
/// SAME accuracy, not who hit a cap first.  A shift-invert row rides along
/// as information (its CG inner solves price it differently; it is the
/// near-singular fallback, not the default accelerator).
bool filtered_lanczos_section(const SubCsrLaplacian& lap, const SubCsr& sub, std::uint64_t seed,
                              double min_speedup, bench::JsonReport* json) {
  const std::size_t dim = lap.dim();
  const std::vector<std::vector<double>> ones{std::vector<double>(dim, 1.0)};
  const auto apply = [&lap](const std::vector<double>& x, std::vector<double>& y) {
    lap.apply(x, y);
  };
  constexpr int kPairs = 4;
  constexpr double kTol = 1e-5;
  Timer timer;

  BlockLanczosOptions opts;
  opts.num_eigenpairs = kPairs;
  opts.tolerance = kTol;
  opts.max_basis = 2600;  // generous: the plain side must reach convergence
  opts.seed = seed;
  timer.reset();
  const LanczosResult plain = lanczos_smallest_block(apply, dim, ones, opts);
  const double plain_ms = timer.millis();

  BlockLanczosOptions fopts = opts;
  fopts.accel.mode = SpectralMode::kFiltered;
  fopts.accel.op_upper_bound = gershgorin_upper_bound(sub);
  timer.reset();
  const LanczosResult filtered = lanczos_smallest_block(apply, dim, ones, fopts);
  const double filtered_ms = timer.millis();

  BlockLanczosOptions sopts = opts;
  sopts.accel.mode = SpectralMode::kShiftInvert;
  timer.reset();
  const LanczosResult si = lanczos_smallest_block(apply, dim, ones, sopts);
  const double si_ms = timer.millis();

  double max_dev = 0.0;
  double si_dev = 0.0;
  for (int e = 0; e < kPairs; ++e) {
    const auto idx = static_cast<std::size_t>(e);
    max_dev = std::max(max_dev, std::fabs(plain.values.at(idx) - filtered.values.at(idx)));
    si_dev = std::max(si_dev, std::fabs(plain.values.at(idx) - si.values.at(idx)));
  }
  const bool parity = max_dev <= 1e-4 && plain.converged && filtered.converged;
  const double speedup = filtered_ms > 0.0 ? plain_ms / filtered_ms : 0.0;
  const double si_speedup = si_ms > 0.0 ? plain_ms / si_ms : 0.0;
  const bool pass = parity && speedup >= min_speedup;

  Table table({"mode", "ms", "basis", "speedup", "max |dλ|", "pass"});
  table.row()
      .cell("plain (dim " + std::to_string(dim) + ")")
      .cell(plain_ms, 2)
      .cell(plain.iterations)
      .cell(1.0, 2)
      .cell(0.0, 8)
      .cell(plain.converged ? "(baseline)" : "UNCONVERGED");
  table.row()
      .cell("filtered")
      .cell(filtered_ms, 2)
      .cell(filtered.iterations)
      .cell(speedup, 2)
      .cell(max_dev, 8)
      .cell(bench::yesno(pass));
  table.row()
      .cell("shift_invert")
      .cell(si_ms, 2)
      .cell(si.iterations)
      .cell(si_speedup, 2)
      .cell(si_dev, 8)
      .cell(si.converged ? "(info)" : "(info, unconverged)");
  bench::print_table(
      table,
      "blocked k=4 on the largest component at matched tolerance 1e-5; basis =\n"
      "Krylov vectors consumed (the filtered count includes the 16-iteration plain\n"
      "probe that places the cut).  Acceptance: filtered speedup >= threshold AND\n"
      "both sides converged AND eigenvalue parity to 1e-4.");
  if (json != nullptr) {
    json->record("kernel")
        .put("workload", "filtered_k4")
        .put("seed_ms", plain_ms)
        .put("sub_csr_ms", filtered_ms)
        .put("speedup", speedup)
        .put("max_eigenvalue_dev", max_dev)
        .put("parity", parity);
    json->record("kernel")
        .put("workload", "shift_invert_k4")
        .put("seed_ms", plain_ms)
        .put("sub_csr_ms", si_ms)
        .put("speedup", si_speedup)
        .put("max_eigenvalue_dev", si_dev)
        .put("parity", si.converged);
  }
  return pass;
}

/// Time the seed path against the production path on the post-fault mask;
/// prints the table, fills the JSON records, returns whether both staged
/// solves cleared >= 1.5x.
bool spectral_kernel_section(const Graph& g, const VertexSet& alive, std::uint64_t seed,
                             double min_speedup, bench::JsonReport* json) {
  MaskedLaplacian masked(g, alive);
  SubCsr sub;
  sub.build(g, alive);
  SubCsrLaplacian compact(sub);
  const std::size_t k = masked.dim();
  const std::vector<std::vector<double>> defl{std::vector<double>(k, 1.0)};

  Table table({"workload", "seed path ms", "sub-CSR path ms", "speedup", ">= 1.5x"});
  bool pass = true;
  Timer timer;

  // Raw operator apply: the SpMV at the heart of every Lanczos iteration.
  {
    std::vector<double> x(k), y(k);
    for (std::size_t i = 0; i < k; ++i) x[i] = 0.1 * static_cast<double>(i % 7);
    const int applies = 2000;
    timer.reset();
    for (int i = 0; i < applies; ++i) masked.apply(x, y);
    const double masked_ms = timer.millis();
    timer.reset();
    for (int i = 0; i < applies; ++i) compact.apply(x, y);
    const double sub_ms = timer.millis();
    const double speedup = masked_ms / sub_ms;
    table.row()
        .cell("apply x" + std::to_string(applies))
        .cell(masked_ms, 1)
        .cell(sub_ms, 1)
        .cell(speedup, 2)
        .cell("(info)");
    if (json != nullptr) {
      json->record("kernel")
          .put("workload", "apply")
          .put("seed_ms", masked_ms)
          .put("sub_csr_ms", sub_ms)
          .put("speedup", speedup);
    }
  }

  // Staged eigensolves at the caps the engine's fiedler_sweep escalation
  // actually uses (spectral/sweep: 40 then 120).  The 40-cap stage is the
  // one EVERY fast-mode eigensolve runs (escalation is the rare case), so
  // it carries the acceptance; the 120-cap row is informational — at
  // small n the tridiagonal convergence checks flatten the ratio.
  for (const int cap : {40, 120}) {
    LanczosOptions opts;
    opts.max_iterations = cap;
    opts.tolerance = 1e-8;
    opts.seed = seed;
    const int reps = 6;
    timer.reset();
    for (int r = 0; r < reps; ++r) {
      (void)seed_path::lanczos_smallest(
          [&](const std::vector<double>& x, std::vector<double>& y) { masked.apply(x, y); }, k,
          defl, opts);
    }
    const double old_ms = timer.millis() / reps;
    LanczosScratch scratch;
    LanczosOptions nopts = opts;
    nopts.scratch = &scratch;
    timer.reset();
    for (int r = 0; r < reps; ++r) {
      (void)lanczos_smallest(
          [&](const std::vector<double>& x, std::vector<double>& y) { compact.apply(x, y); }, k,
          defl, nopts);
    }
    const double new_ms = timer.millis() / reps;
    const double speedup = old_ms / new_ms;
    const bool gating = cap == 40;
    if (gating) pass = pass && speedup >= min_speedup;
    table.row()
        .cell("staged solve cap " + std::to_string(cap))
        .cell(old_ms, 2)
        .cell(new_ms, 2)
        .cell(speedup, 2)
        .cell(gating ? bench::yesno(speedup >= min_speedup) : "(info)");
    if (json != nullptr) {
      json->record("kernel")
          .put("workload", "staged_solve_" + std::to_string(cap))
          .put("seed_ms", old_ms)
          .put("sub_csr_ms", new_ms)
          .put("speedup", speedup);
    }
  }

  bench::print_table(
      table,
      "seed path = MaskedLaplacian full-graph walk + two-pass MGS Lanczos (the\n"
      "pre-sub-CSR implementation, kept above as the baseline); sub-CSR path =\n"
      "compact SubCsr apply + CGS2/DGKS lanczos_smallest.  Acceptance: the 40-cap\n"
      "staged solve — the stage every fast-mode eigensolve runs — is >= 1.5x.");
  return pass;
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto side = static_cast<vid>(cli.get_int("side", 64));
  const double fault_p = cli.get_double("faults", 0.3);
  const int trials = static_cast<int>(cli.get_int("trials", 1));
  // Default alpha = the fault-free mesh's straight-cut node expansion
  // (~2/side), the honest choice per bench_e1; 0.5·alpha as the threshold
  // keeps Prune in the regime where H stays large and every iteration
  // exercises a full-size cut search.
  const double alpha = cli.get_double("alpha", 2.0 / static_cast<double>(side));
  const double eps = cli.get_double("eps", 0.5);

  bench::print_header(
      "PERF-ENGINE",
      "Incremental PruneEngine vs stateless prune loop (target: >= 3x end-to-end)");

  const Mesh mesh = Mesh::cube(side, 2);
  const Graph& g = mesh.graph();
  const double threshold = alpha * eps;

  Table table({"trial", "n", "alive", "ref ms", "det ms", "fast ms", "det speedup",
               "fast speedup", "det identical", "fast trace ok", "|H| ref", "|H| fast"});

  double total_ref = 0.0;
  double total_fast = 0.0;
  bool all_identical = true;
  bool all_valid = true;

  // One engine per mode: the workspace's Fiedler cache now survives
  // across runs, so sharing an engine would hand the fast run a warm
  // ordering for the *identical* alive mask the det run just solved —
  // inflating the measured fast-mode speedup with work it never paid for.
  // Separate engines still amortize buffers across trials (the honest
  // reuse), but each mode earns its own eigensolves.
  bench::JsonReport json("bench_prune_engine");
  json.top()
      .put("workload", "mesh " + std::to_string(side) + "x" + std::to_string(side) + ", " +
                           std::to_string(fault_p) + " random node faults")
      .put("n", std::size_t{g.num_vertices()})
      .put("trials", trials)
      .put("threads", bench::max_threads());

  PruneEngine det_engine(g, ExpansionKind::Node);
  PruneEngine fast_engine(g, ExpansionKind::Node);
  EngineStats det_stats;
  EngineStats fast_stats;
  VertexSet first_alive;
  for (int t = 0; t < trials; ++t) {
    const VertexSet alive = random_node_faults(g, fault_p, seed + static_cast<std::uint64_t>(t));
    if (t == 0) first_alive = alive;
    PruneOptions popts;
    popts.finder.seed = seed + 100 + static_cast<std::uint64_t>(t);

    Timer timer;
    const PruneResult ref = prune_reference(g, alive, alpha, eps, popts);
    const double ref_ms = timer.millis();

    PruneEngineOptions det;
    det.finder = popts.finder;
    EngineStats snapshot = det_engine.stats();
    timer.reset();
    const PruneResult engine_det = det_engine.run(alive, alpha, eps, det);
    const double det_ms = timer.millis();
    det_stats += det_engine.stats() - snapshot;

    PruneEngineOptions fast = PruneEngineOptions::fast();
    fast.finder.seed = popts.finder.seed;
    snapshot = fast_engine.stats();
    timer.reset();
    const PruneResult engine_fast = fast_engine.run(alive, alpha, eps, fast);
    const double fast_ms = timer.millis();
    fast_stats += fast_engine.stats() - snapshot;

    const bool det_identical = identical(ref, engine_det);
    const TraceVerification trace =
        verify_prune_trace(g, alive, engine_fast, ExpansionKind::Node, threshold);
    all_identical = all_identical && det_identical;
    all_valid = all_valid && trace.valid;
    total_ref += ref_ms;
    total_fast += fast_ms;

    json.record("per_trial")
        .put("trial", t)
        .put("ref_ms", ref_ms)
        .put("det_ms", det_ms)
        .put("fast_ms", fast_ms)
        .put("det_identical", det_identical)
        .put("fast_trace_valid", trace.valid);

    table.row()
        .cell(std::size_t(t))
        .cell(std::size_t{g.num_vertices()})
        .cell(std::size_t{alive.count()})
        .cell(ref_ms, 1)
        .cell(det_ms, 1)
        .cell(fast_ms, 1)
        .cell(ref_ms / det_ms, 2)
        .cell(ref_ms / fast_ms, 2)
        .cell(bench::yesno(det_identical))
        .cell(bench::yesno(trace.valid))
        .cell(std::size_t{ref.survivors.count()})
        .cell(std::size_t{engine_fast.survivors.count()});
  }

  bench::print_table(
      table,
      "acceptance: 'det identical' and 'fast trace ok' = yes everywhere, and the fast\n"
      "engine's end-to-end speedup over the stateless path is >= 3x.");

  // Engine telemetry (ROADMAP: expose counters so benches can report how
  // many eigensolves fast mode actually skipped).
  Table stats({"mode", "iters", "eigensolves", "solves/iter", "stale sweeps", "stale hits",
               "hit rate", "disconnected culls", "relabel BFS", "relabel verts"});
  for (const auto& [mode, st] : {std::pair<const char*, const EngineStats*>{"det", &det_stats},
                                 {"fast", &fast_stats}}) {
    stats.row()
        .cell(mode)
        .cell(st->iterations)
        .cell(st->eigensolves)
        .cell(st->iterations > 0
                  ? static_cast<double>(st->eigensolves) / static_cast<double>(st->iterations)
                  : 0.0,
              2)
        .cell(st->stale_sweeps)
        .cell(st->stale_sweep_hits)
        .cell(st->stale_sweeps > 0 ? static_cast<double>(st->stale_sweep_hits) /
                                         static_cast<double>(st->stale_sweeps)
                                   : 0.0,
              2)
        .cell(st->disconnected_culls)
        .cell(st->relabel_bfs_calls)
        .cell(st->relabel_bfs_vertices);
  }
  bench::print_table(stats,
                     "every stale hit is an eigensolve skipped; det mode runs one staged solve\n"
                     "per connected iteration, fast mode's solves/iter shows what remains.");

  // The staged-solve ratio is noise-bound at reduced sizes on loaded
  // 1-2 core CI boxes; --min-spectral-speedup relaxes the gate there
  // (the 64x64 acceptance default stays 1.5).
  const double min_spectral = cli.get_double("min-spectral-speedup", 1.5);
  const bool kernel_pass = spectral_kernel_section(g, first_alive, seed, min_spectral, &json);

  // Blocked rank-k kernel acceptance.  The operator is the LARGEST
  // surviving component of a faulty mesh (the subgraph every engine
  // eigensolve actually runs on — the full mask has a high-multiplicity
  // zero eigenvalue that no bottom-spectrum solve should be pointed at),
  // probed at its own side: --blocked-side (default 64, raised from 48 now
  // that both sides run Chebyshev-filtered and converge there within sane
  // caps), so the ratio measures work-to-answer, not who hit a cap first.
  // --min-blocked-speedup relaxes the gate on noise-bound CI boxes.
  const double min_blocked = cli.get_double("min-blocked-speedup", 1.5);
  const auto blocked_side = static_cast<vid>(cli.get_int("blocked-side", 64));
  const Mesh blocked_mesh = Mesh::cube(blocked_side, 2);
  const VertexSet blocked_alive =
      largest_component(blocked_mesh.graph(),
                        random_node_faults(blocked_mesh.graph(), fault_p, seed));
  SubCsr blocked_sub;
  blocked_sub.build(blocked_mesh.graph(), blocked_alive);
  const SubCsrLaplacian blocked_lap(blocked_sub);
  const bool blocked_pass =
      blocked_lanczos_section(blocked_lap, blocked_sub, seed, min_blocked, &json);

  // PR-6 tentpole acceptance: filtered vs plain blocked solve on the
  // largest component of a --filtered-side mesh (default 96 — above
  // kFilteredAutoDim, where kAuto itself would pick the filter).
  // --min-filtered-speedup relaxes the 3x default on reduced-size CI runs.
  const double min_filtered = cli.get_double("min-filtered-speedup", 3.0);
  const auto filtered_side = static_cast<vid>(cli.get_int("filtered-side", 96));
  const Mesh filtered_mesh = Mesh::cube(filtered_side, 2);
  const VertexSet filtered_alive =
      largest_component(filtered_mesh.graph(),
                        random_node_faults(filtered_mesh.graph(), fault_p, seed));
  SubCsr filtered_sub;
  filtered_sub.build(filtered_mesh.graph(), filtered_alive);
  const SubCsrLaplacian filtered_lap(filtered_sub);
  const bool filtered_pass =
      filtered_lanczos_section(filtered_lap, filtered_sub, seed, min_filtered, &json);

  const double speedup = total_fast > 0.0 ? total_ref / total_fast : 0.0;
  json.top()
      .put("ref_ms", total_ref)
      .put("fast_ms", total_fast)
      .put("speedup", speedup)
      .put("det_identical", all_identical)
      .put("traces_valid", all_valid)
      .put("kernel_pass", kernel_pass)
      .put("blocked_pass", blocked_pass)
      .put("filtered_pass", filtered_pass);
  if (cli.has("json")) json.write(bench::json_path(cli, "bench_prune_engine.json"));

  std::cout << "\noverall fast-mode speedup: " << speedup << "x ("
            << (speedup >= 3.0 ? "PASS" : "FAIL") << " >= 3x), deterministic bit-identical: "
            << (all_identical ? "PASS" : "FAIL")
            << ", fast traces certified: " << (all_valid ? "PASS" : "FAIL")
            << ", spectral kernel >= 1.5x: " << (kernel_pass ? "PASS" : "FAIL")
            << ", blocked k=4 >= " << min_blocked << "x: " << (blocked_pass ? "PASS" : "FAIL")
            << ", filtered k=4 >= " << min_filtered << "x: " << (filtered_pass ? "PASS" : "FAIL")
            << "\n";
  return (speedup >= 3.0 && all_identical && all_valid && kernel_pass && blocked_pass &&
          filtered_pass)
             ? 0
             : 1;
}
