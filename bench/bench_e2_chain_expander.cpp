// E2 — Theorem 2.3 + Claim 2.4: the chain-replaced expander H(G, k) has
// expansion Θ(1/k), and failing the δn/2 chain centers (= Θ(α·N) faults,
// N = |H|) shatters it into sublinear components.
#include "bench_common.hpp"

#include "analysis/fragmentation.hpp"
#include "expansion/bracket.hpp"
#include "faults/adversary.hpp"
#include "topology/chain_expander.hpp"
#include "topology/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));

  bench::print_header("E2",
                      "Theorem 2.3 / Claim 2.4 — H(G,k) has expansion Θ(1/k); c·α·N center "
                      "faults break it into sublinear components");

  Table table({"delta", "k", "|H| = N", "exp upper", "claim 2/k", "exp lower", "faults f",
               "f/N", "alpha*N/N = Θ(1/k)", "largest comp", "comp bound 1+δ(k-1)", "gamma"});

  for (vid delta : {4U, 6U}) {
    const Graph base = random_regular(48 * scale, delta, seed + delta);
    for (vid k : {2U, 4U, 8U, 16U}) {
      const ChainExpander h = chain_replace(base, k);
      const vid total = h.graph.num_vertices();

      BracketOptions bopts;
      bopts.exact_limit = 14;
      bopts.seed = seed;
      const ExpansionBracket bracket = expansion_bracket(h.graph, ExpansionKind::Node, bopts);

      const AttackResult attack = chain_center_attack(h);
      const VertexSet alive = VertexSet::full(total) - attack.faults;
      const FragmentationProfile frag = fragmentation_profile(h.graph, alive);

      table.row()
          .cell(std::size_t{delta})
          .cell(std::size_t{k})
          .cell(std::size_t{total})
          .cell(bracket.upper, 4)
          .cell(2.0 / k, 4)
          .cell(bracket.lower, 4)
          .cell(std::size_t{attack.budget_used})
          .cell(static_cast<double>(attack.budget_used) / total, 4)
          .cell(1.0 / k, 4)
          .cell(std::size_t{frag.largest})
          .cell(std::size_t{1 + delta * (k - 1)})
          .cell(frag.gamma, 4);
    }
  }
  bench::print_table(
      table,
      "paper prediction: 'exp upper' tracks 2/k (Claim 2.4); fault fraction f/N tracks Θ(1/k);\n"
      "largest component <= 1 + δ(k-1) (sublinear) and gamma -> 0 as n grows (Theorem 2.3).");
  return 0;
}
