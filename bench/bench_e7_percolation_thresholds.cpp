// E7 — §1.1 survey table: SITE-percolation thresholds of the classical
// families, reproduced through the Campaign API (DESIGN.md §8).
//
// Campaign-port of the old bisection driver, and the dogfooding example
// for the batch layer: every family is a set of campaign entries (one
// per Monte-Carlo trial) sweeping the fault probability, all
// scenario×point jobs scheduled on one ExecutorPool over the shared
// EngineCache.  The prune stage runs at a vanishing threshold
// (alpha ~ 0), where the cull loop reduces to exact largest-component
// extraction — so survivor_fraction(p) IS the percolation functional
// γ(G(p)), and the threshold is read off the sweep where the mean γ
// crosses the target fraction.
//
// Site-percolation literature values (survival probability p_surv):
//   2-D mesh                  p* = 0.5927 (site; Kesten's 1/2 is bond)
//   random 4-regular          p* ~ 1/(d-1) = 1/3 (locally tree-like)
//   butterfly                 0.337 < p* < 0.436 (Karlin–Nelson–Tamaki)
//   hypercube Q_d             p* = Θ(1/d) (AKS give 1/d for bond)
//   complete K_n              γ(s) = s exactly: γ crosses the target AT
//                             the target (method sanity row)
//
// Finite-size estimates drift above the asymptotic threshold; the table
// reports the estimate next to the literature value.  --json=out.json
// archives the per-family estimates and the full γ curves.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "api/campaign.hpp"
#include "util/stats.hpp"

namespace fne {
namespace {

struct Family {
  std::string name;
  TopologySpec topology;
  std::string literature;
};

/// Linear interpolation of the survival probability where the mean-γ
/// curve (indexed by FAULT probability, ascending) crosses `target`.
[[nodiscard]] double crossing_survival(const std::vector<double>& fault_ps,
                                       const std::vector<double>& mean_gamma, double target) {
  for (std::size_t i = 0; i < mean_gamma.size(); ++i) {
    if (mean_gamma[i] <= target) {
      if (i == 0) return 1.0 - fault_ps.front();
      const double g_hi = mean_gamma[i - 1];  // gamma above target
      const double g_lo = mean_gamma[i];
      const double t = g_hi == g_lo ? 0.0 : (g_hi - target) / (g_hi - g_lo);
      const double p_fault = fault_ps[i - 1] + t * (fault_ps[i] - fault_ps[i - 1]);
      return 1.0 - p_fault;
    }
  }
  return 1.0 - fault_ps.back();  // never crossed: threshold below the grid
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const int threads = bench::threads_flag(cli);
  const double gamma_target = cli.get_double("gamma-target", 0.10);

  bench::print_header("E7",
                      "§1.1 — site-percolation thresholds of the classical families, via "
                      "campaign fault sweeps (γ = survivor fraction at vanishing prune "
                      "threshold)");

  const std::vector<Family> families{
      {"complete K_128", {"complete", Params().set("n", std::int64_t{128})}, "γ(s)=s (sanity)"},
      {"random 4-regular",
       {"random_regular", Params().set("n", std::int64_t{1024}).set("degree", std::int64_t{4})},
       "~1/(d-1) = 0.33"},
      {"mesh 32x32", {"mesh", Params().set("side", std::int64_t{32})}, "0.593 (site)"},
      {"mesh 48x48", {"mesh", Params().set("side", std::int64_t{48})}, "0.593 (site)"},
      {"hypercube Q_10", {"hypercube", Params().set("dims", std::int64_t{10})}, "Θ(1/d), bond 0.1"},
      {"butterfly d=7", {"butterfly", Params().set("dims", std::int64_t{7})}, "(0.337, 0.436) KNT"},
  };

  // Fault-probability grid (survival descending 0.95 .. 0.10).
  std::vector<double> fault_ps;
  for (double p = 0.05; p < 0.91; p += 0.05) fault_ps.push_back(p);

  // One campaign: |families| x trials entries, each sweeping the full
  // grid.  Trials shift the scenario seed, so every trial draws fresh
  // fault masks; unseeded families still share ONE graph and engine pool
  // through the cache.
  Campaign campaign;
  campaign.name = "e7-percolation";
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (int t = 0; t < trials; ++t) {
      Scenario s;
      s.name = families[f].name + " trial " + std::to_string(t);
      s.topology = families[f].topology;
      s.fault = {"random", Params().set("p", 0.5)};
      s.prune.kind = ExpansionKind::Node;
      s.prune.alpha = 1e-9;  // vanishing threshold: prune == largest component
      s.seed = seed + 1000 * f + static_cast<std::uint64_t>(t);
      campaign.entries.push_back({std::move(s), SweepSpec{"p", fault_ps}});
    }
  }

  Timer timer;
  CampaignRunner runner(std::move(campaign));
  const CampaignReport report = runner.run(threads);
  const double wall_ms = timer.millis();

  bench::JsonReport json("bench_e7_percolation_thresholds");
  json.top()
      .put("trials", trials)
      .put("threads", threads)
      .put("gamma_target", gamma_target)
      .put("jobs", static_cast<std::uint64_t>(report.total_engine_stats().runs))
      .put("millis", wall_ms);

  Table table({"family", "n", "estimated p* (site)", "literature p*", "gamma@p*"});
  for (std::size_t f = 0; f < families.size(); ++f) {
    // Fold the trial entries of this family into one mean-γ curve.
    std::vector<RunningStats> gamma(fault_ps.size());
    vid n = 0;
    for (int t = 0; t < trials; ++t) {
      const ScenarioReport& sr = report.scenarios[f * static_cast<std::size_t>(trials) +
                                                  static_cast<std::size_t>(t)];
      n = sr.n;
      for (std::size_t i = 0; i < fault_ps.size(); ++i) {
        gamma[i].add(sr.runs[i].survivor_fraction(sr.n));
      }
    }
    std::vector<double> mean(fault_ps.size());
    for (std::size_t i = 0; i < fault_ps.size(); ++i) mean[i] = gamma[i].mean();
    const double p_star = crossing_survival(fault_ps, mean, gamma_target);

    // γ at the grid point nearest the estimate.
    const double fault_at_star = 1.0 - p_star;
    std::size_t nearest = 0;
    for (std::size_t i = 1; i < fault_ps.size(); ++i) {
      if (std::abs(fault_ps[i] - fault_at_star) < std::abs(fault_ps[nearest] - fault_at_star)) {
        nearest = i;
      }
    }
    table.row()
        .cell(families[f].name)
        .cell(std::size_t{n})
        .cell(p_star, 4)
        .cell(families[f].literature)
        .cell(mean[nearest], 3);

    auto& record = json.record("families");
    record.put("family", families[f].name)
        .put("n", static_cast<std::uint64_t>(n))
        .put("p_star_site", p_star)
        .put("literature", families[f].literature);
    std::vector<double> survival(fault_ps.size());
    for (std::size_t i = 0; i < fault_ps.size(); ++i) survival[i] = 1.0 - fault_ps[i];
    record.put_numbers("survival_grid", survival).put_numbers("mean_gamma", mean);
  }

  bench::print_table(
      table,
      "paper prediction (§1.1): the family ORDERING matches the literature\n"
      "(complete << random-d << mesh/butterfly); absolute estimates carry the finite-size\n"
      "bias of the γ-target definition (meshes read low: 10% of n survives slightly below\n"
      "the true site threshold at these sizes).  All " +
          std::to_string(report.total_engine_stats().runs) +
          " sweep jobs ran on one campaign pool (" + std::to_string(threads) + " threads).");

  if (cli.has("json")) {
    json.write(bench::json_path(cli, "bench_e7_percolation_thresholds.json"));
  }
  return 0;
}
