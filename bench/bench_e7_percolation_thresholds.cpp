// E7 — §1.1 survey table: classical critical probabilities reproduced by
// Monte-Carlo percolation + bisection.
//
//   complete graph K_n          p* = 1/(n-1)        (Erdős–Rényi)
//   random graph, d·n/2 edges   p* = 1/d
//   2-D mesh, bond              p* = 1/2            (Kesten)
//   hypercube Q_d               p* = 1/d            (Ajtai–Komlós–Szemerédi)
//   butterfly                   0.337 < p* < 0.436  (Karlin–Nelson–Tamaki)
//
// Finite-size estimates drift above the asymptotic threshold; the table
// reports the estimate alongside the literature value.
#include "bench_common.hpp"

#include "percolation/critical.hpp"
#include "topology/butterfly.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int trials = static_cast<int>(cli.get_int("trials", 20));

  bench::print_header("E7", "§1.1 — critical probabilities of the classical families");

  Table table({"family", "n", "kind", "estimated p*", "literature p*", "gamma@p*"});

  CriticalOptions opts;
  opts.trials_per_probe = trials;
  opts.gamma_target = 0.10;
  opts.seed = seed;

  auto probe = [&](const std::string& name, const Graph& g, PercolationKind kind,
                   const std::string& literature) {
    const CriticalResult r = estimate_critical_probability(g, kind, opts);
    table.row()
        .cell(name)
        .cell(std::size_t{g.num_vertices()})
        .cell(kind == PercolationKind::Bond ? "bond" : "site")
        .cell(r.p_star, 4)
        .cell(literature)
        .cell(r.gamma_at_p_star, 3);
  };

  probe("complete K_128", complete_graph(128), PercolationKind::Bond, "1/127 = 0.0079");
  probe("complete K_512", complete_graph(512), PercolationKind::Bond, "1/511 = 0.0020");
  probe("random m=2n (d=4)", random_with_edges(1024, 2048, seed), PercolationKind::Bond,
        "1/4 = 0.25");
  probe("random 4-regular", random_regular(1024, 4, seed), PercolationKind::Bond,
        "~1/(d-1) = 0.33");
  probe("mesh 32x32", Mesh::cube(32, 2).graph(), PercolationKind::Bond, "1/2 (Kesten)");
  probe("mesh 48x48", Mesh::cube(48, 2).graph(), PercolationKind::Bond, "1/2 (Kesten)");
  probe("mesh 32x32 site", Mesh::cube(32, 2).graph(), PercolationKind::Site, "0.593 (site)");
  probe("hypercube Q_10", hypercube(10), PercolationKind::Bond, "1/10 = 0.1 (AKS)");
  probe("hypercube Q_12", hypercube(12), PercolationKind::Bond, "1/12 = 0.083 (AKS)");
  probe("butterfly d=7", butterfly(7).graph, PercolationKind::Site, "(0.337, 0.436) KNT");
  probe("butterfly d=8", butterfly(8).graph, PercolationKind::Site, "(0.337, 0.436) KNT");

  bench::print_table(
      table,
      "paper prediction (§1.1): estimates approach the literature thresholds from above as n\n"
      "grows; orderings match (complete << random-d << hypercube << butterfly < mesh).");
  return 0;
}
