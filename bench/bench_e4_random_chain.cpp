// E4 — Theorem 3.1: random faults with probability Θ(α) = Θ(1/k) shatter
// the chain expander H(G, k): no linear-sized component survives.
//
// Sweep the fault probability around 1/k and record γ(G^(p)); the curve
// must collapse near p = 4·ln(δ)/k (the proof's threshold) while staying
// near 1 for p << 1/k.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "percolation/percolation.hpp"
#include "topology/chain_expander.hpp"
#include "topology/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));
  const int trials = static_cast<int>(cli.get_int("trials", 16));

  bench::print_header("E4",
                      "Theorem 3.1 — fault probability Θ(1/k) shatters H(G,k): random faults "
                      "can be as catastrophic as adversarial ones");

  const vid delta = 4;
  const Graph base = random_regular(32 * scale, delta, seed);

  Table table({"k", "N", "fault p", "p*k", "mean gamma", "ci95", "regime"});
  for (vid k : {4U, 8U, 16U}) {
    const ChainExpander h = chain_replace(base, k);
    const double threshold = 4.0 * std::log(static_cast<double>(delta)) / k;
    const std::vector<std::pair<double, std::string>> probes{
        {0.05 / k, "p << 1/k (survive)"},
        {0.2 / k, "below"},
        {1.0 / k, "p = 1/k"},
        {std::min(threshold, 0.9), "paper threshold 4lnδ/k"},
        {std::min(2.0 * threshold, 0.95), "above"},
    };
    for (const auto& [p, regime] : probes) {
      const PercolationResult r =
          percolate(h.graph, PercolationKind::Site, 1.0 - p, trials, seed + k);
      table.row()
          .cell(std::size_t{k})
          .cell(std::size_t{h.graph.num_vertices()})
          .cell(p, 4)
          .cell(p * k, 3)
          .cell(r.gamma.mean(), 4)
          .cell(r.gamma.ci95_halfwidth(), 2)
          .cell(regime);
    }
  }
  bench::print_table(
      table,
      "paper prediction: gamma ≈ 1 for p << 1/k and gamma -> 0 (sublinear largest component)\n"
      "once p reaches the Θ(1/k) threshold — the collapse point scales with 1/k, i.e. with the\n"
      "expansion α = Θ(1/k) of H (Theorem 3.1).");
  return 0;
}
