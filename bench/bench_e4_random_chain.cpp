// E4 — Theorem 3.1: random faults with probability Θ(α) = Θ(1/k) shatter
// the chain expander H(G, k): no linear-sized component survives.
//
// Campaign-port (DESIGN.md §8): every (k, p) cell is one campaign entry
// — topology "chain_expander" through the registry, fault "random",
// `trials` repetitions — and ALL cells run as one scenario×rep job list
// on the campaign pool.  The cells of one k share a single cached graph
// and engine pool (same scenario seed -> same build seed), so the whole
// sweep builds 3 graphs instead of one per cell.  γ(G^(p)) is the
// survivor fraction at a vanishing prune threshold (exact largest
// component), measured per repetition and averaged.
//
// The curve must collapse near p = 4·ln(δ)/k (the proof's threshold)
// while staying near 1 for p << 1/k.  --json=out.json archives the
// cells.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "api/campaign.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));
  const int trials = static_cast<int>(cli.get_int("trials", 8));
  const int threads = bench::threads_flag(cli);

  bench::print_header("E4",
                      "Theorem 3.1 — fault probability Θ(1/k) shatters H(G,k): random faults "
                      "can be as catastrophic as adversarial ones (campaign-driven)");

  const vid delta = 4;
  const std::int64_t base_n = 32 * static_cast<std::int64_t>(scale);

  struct Cell {
    vid k;
    double p;
    std::string regime;
  };
  std::vector<Cell> cells;
  Campaign campaign;
  campaign.name = "e4-random-chain";
  for (const vid k : {4U, 8U, 16U}) {
    const double threshold = 4.0 * std::log(static_cast<double>(delta)) / k;
    const std::vector<std::pair<double, std::string>> probes{
        {0.05 / k, "p << 1/k (survive)"},
        {0.2 / k, "below"},
        {1.0 / k, "p = 1/k"},
        {std::min(threshold, 0.9), "paper threshold 4lnδ/k"},
        {std::min(2.0 * threshold, 0.95), "above"},
    };
    for (const auto& [p, regime] : probes) {
      Scenario s;
      s.name = "k=" + std::to_string(k) + " p=" + std::to_string(p).substr(0, 6);
      s.topology = {"chain_expander", Params()
                                          .set("base_n", base_n)
                                          .set("base_degree", std::int64_t{delta})
                                          .set("k", static_cast<std::int64_t>(k))};
      s.fault = {"random", Params().set("p", p)};
      s.prune.kind = ExpansionKind::Node;
      s.prune.alpha = 1e-9;  // vanishing threshold: survivors == largest component
      s.repetitions = trials;
      // One seed per k: every cell of that k shares the SAME cached base
      // graph (and engine pool); repetitions draw the per-rep fault seeds.
      s.seed = seed + k;
      campaign.entries.push_back({std::move(s), std::nullopt});
      cells.push_back({k, p, regime});
    }
  }

  Timer timer;
  CampaignRunner runner(std::move(campaign));
  const CampaignReport report = runner.run(threads);
  const double wall_ms = timer.millis();

  bench::JsonReport json("bench_e4_random_chain");
  json.top()
      .put("base_n", base_n)
      .put("trials", trials)
      .put("threads", threads)
      .put("millis", wall_ms)
      .put("graph_builds", report.cache.graph_builds);

  Table table({"k", "N", "fault p", "p*k", "mean gamma", "ci95", "regime"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const ScenarioReport& sr = report.scenarios[c];
    RunningStats gamma;
    for (const ScenarioRun& r : sr.runs) gamma.add(r.survivor_fraction(sr.n));
    table.row()
        .cell(std::size_t{cells[c].k})
        .cell(std::size_t{sr.n})
        .cell(cells[c].p, 4)
        .cell(cells[c].p * cells[c].k, 3)
        .cell(gamma.mean(), 4)
        .cell(gamma.ci95_halfwidth(), 2)
        .cell(cells[c].regime);
    json.record("cells")
        .put("k", static_cast<std::uint64_t>(cells[c].k))
        .put("n", static_cast<std::uint64_t>(sr.n))
        .put("p", cells[c].p)
        .put("mean_gamma", gamma.mean())
        .put("ci95", gamma.ci95_halfwidth())
        .put("regime", cells[c].regime);
  }
  bench::print_table(
      table,
      "paper prediction: gamma ≈ 1 for p << 1/k and gamma -> 0 (sublinear largest component)\n"
      "once p reaches the Θ(1/k) threshold — the collapse point scales with 1/k, i.e. with\n"
      "the expansion α = Θ(1/k) of H (Theorem 3.1).  One campaign, " +
          std::to_string(report.total_engine_stats().runs) + " jobs, " +
          std::to_string(report.cache.graph_builds) + " graphs built.");

  if (cli.has("json")) json.write(bench::json_path(cli, "bench_e4_random_chain.json"));
  return 0;
}
