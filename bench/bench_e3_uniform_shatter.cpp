// E3 — Theorem 2.5: every graph of uniform expansion α(·) is shattered
// into sub-εn components by O(log(1/ε)/ε · α(n)·n) adversarial faults
// chosen by recursive bisection.
//
// Meshes are the canonical uniform-expansion family (α(n) ≈ d·n^{-1/d}).
// The bench runs the proof's own adversary and compares the faults spent
// to α(n)·n.
#include "bench_common.hpp"

#include <cmath>

#include "analysis/fragmentation.hpp"
#include "expansion/profile.hpp"
#include "expansion/uniform.hpp"
#include "faults/adversary.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));

  bench::print_header("E3",
                      "Theorem 2.5 — recursive bisection shatters uniform-expansion graphs "
                      "with O(log(1/ε)/ε · α(n)·n) faults");

  const double epsilon = cli.get_double("epsilon", 0.1);

  Table table({"mesh", "n", "alpha(n)~", "alpha*n", "eps", "faults", "faults/(alpha*n)",
               "paper O(log(1/e)/e)", "largest", "eps*n", "gamma", "rounds"});

  struct Case {
    std::string name;
    Mesh mesh;
  };
  std::vector<Case> cases;
  cases.push_back({"2D 16x16", Mesh::cube(16, 2)});
  cases.push_back({"2D 24x24", Mesh::cube(24, 2)});
  if (scale >= 1) cases.push_back({"2D 32x32", Mesh::cube(32, 2)});
  cases.push_back({"3D 8x8x8", Mesh::cube(8, 3)});

  for (const Case& c : cases) {
    const Graph& g = c.mesh.graph();
    const vid n = g.num_vertices();
    const double d = c.mesh.dims();
    // Node expansion of the d-dim side-s mesh is ~ s^{d-1}/(s^d / 2) ≈ 2/s.
    const double side = static_cast<double>(c.mesh.sides()[0]);
    const double alpha_n = 2.0 / side;

    BisectionOptions opts;
    opts.epsilon = epsilon;
    opts.cut_options.exact_limit = 14;
    opts.cut_options.seed = seed;
    const AttackResult attack = bisection_attack(g, opts);
    const VertexSet alive = VertexSet::full(n) - attack.faults;
    const FragmentationProfile frag = fragmentation_profile(g, alive);

    const double alpha_times_n = alpha_n * n;
    table.row()
        .cell(c.name)
        .cell(std::size_t{n})
        .cell(alpha_n, 4)
        .cell(alpha_times_n, 4)
        .cell(epsilon, 3)
        .cell(std::size_t{attack.budget_used})
        .cell(static_cast<double>(attack.budget_used) / alpha_times_n, 3)
        .cell(std::log(1.0 / epsilon) / epsilon, 3)
        .cell(std::size_t{frag.largest})
        .cell(epsilon * n, 4)
        .cell(frag.gamma, 4)
        .cell(attack.rounds.size());
    (void)d;
  }
  bench::print_table(
      table,
      "paper prediction: faults/(α(n)·n) stays below the O(log(1/ε)/ε) constant across sizes\n"
      "and dimensions while every surviving component is < ε·n ('largest' < 'eps*n').");

  // Supporting evidence for the *hypothesis* of Theorem 2.5: meshes have
  // uniform expansion.  The exact isoperimetric profile of small meshes
  // follows the d-dimensional surface law b(s) ~ c·s^((d-1)/d), so every
  // size-m subgraph has expansion O(alpha(m)).
  Table profile_table({"mesh", "s", "min edge boundary b(s)", "surface law c*s^((d-1)/d)",
                       "b(s)/s (= alpha at s)"});
  struct ProfCase {
    std::string name;
    Mesh mesh;
    double d;
  };
  const ProfCase prof_cases[] = {
      {"2D 4x4", Mesh::cube(4, 2), 2.0},
      {"3D 2x2x4", Mesh({2, 2, 4}), 3.0},
  };
  for (const ProfCase& c : prof_cases) {
    const IsoperimetricProfile prof = isoperimetric_profile(c.mesh.graph());
    for (std::size_t s : {1UL, 2UL, 4UL, 8UL}) {
      if (s >= prof.edge_boundary.size()) continue;
      profile_table.row()
          .cell(c.name)
          .cell(s)
          .cell(prof.edge_boundary[s])
          .cell(2.0 * std::pow(static_cast<double>(s), (c.d - 1.0) / c.d), 3)
          .cell(static_cast<double>(prof.edge_boundary[s]) / static_cast<double>(s), 3);
    }
  }
  bench::print_table(profile_table,
                     "uniform expansion evidence: b(s) tracks the surface law, so α(m) decays\n"
                     "polynomially with subgraph size — the hypothesis Theorem 2.5 needs.");
  return 0;
}
