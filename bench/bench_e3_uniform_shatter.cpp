// E3 — Theorem 2.5: every graph of uniform expansion α(·) is shattered
// into sub-εn components by O(log(1/ε)/ε · α(n)·n) adversarial faults
// chosen by recursive bisection.
//
// Meshes are the canonical uniform-expansion family (α(n) ≈ d·n^{-1/d}).
// The bench runs the proof's own adversary and compares the faults spent
// to α(n)·n.
//
// Scenario-layer version: topology and adversary both resolve through the
// registries ("mesh" × "bisection"); no prune stage runs because the
// claim is about the raw shatter profile, so this driver is the fault
// injection plus analysis.  (The bisection rounds count of the old
// hand-wired driver is not part of the registry's uniform alive-mask
// contract and was dropped.)
#include "bench_common.hpp"

#include <cmath>

#include "analysis/fragmentation.hpp"
#include "api/registry.hpp"
#include "expansion/profile.hpp"
#include "expansion/uniform.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));

  bench::print_header("E3",
                      "Theorem 2.5 — recursive bisection shatters uniform-expansion graphs "
                      "with O(log(1/ε)/ε · α(n)·n) faults");

  const double epsilon = cli.get_double("epsilon", 0.1);

  Table table({"mesh", "n", "alpha(n)~", "alpha*n", "eps", "faults", "faults/(alpha*n)",
               "paper O(log(1/e)/e)", "largest", "eps*n", "gamma"});

  struct Case {
    std::string name;
    std::int64_t side;
    std::int64_t dims;
  };
  std::vector<Case> cases;
  cases.push_back({"2D 16x16", 16, 2});
  cases.push_back({"2D 24x24", 24, 2});
  if (scale >= 1) cases.push_back({"2D 32x32", 32, 2});
  cases.push_back({"3D 8x8x8", 8, 3});

  for (const Case& c : cases) {
    const Graph g = TopologyRegistry::instance().build(
        "mesh", Params().set("side", c.side).set("dims", c.dims), seed);
    const vid n = g.num_vertices();
    // Node expansion of the d-dim side-s mesh is ~ s^{d-1}/(s^d / 2) ≈ 2/s.
    const double alpha_n = 2.0 / static_cast<double>(c.side);

    const VertexSet alive = FaultModelRegistry::instance().build(
        "bisection", g, Params().set("epsilon", epsilon), seed);
    const vid faults = n - alive.count();
    const FragmentationProfile frag = fragmentation_profile(g, alive);

    const double alpha_times_n = alpha_n * n;
    table.row()
        .cell(c.name)
        .cell(std::size_t{n})
        .cell(alpha_n, 4)
        .cell(alpha_times_n, 4)
        .cell(epsilon, 3)
        .cell(std::size_t{faults})
        .cell(static_cast<double>(faults) / alpha_times_n, 3)
        .cell(std::log(1.0 / epsilon) / epsilon, 3)
        .cell(std::size_t{frag.largest})
        .cell(epsilon * n, 4)
        .cell(frag.gamma, 4);
  }
  bench::print_table(
      table,
      "paper prediction: faults/(α(n)·n) stays below the O(log(1/ε)/ε) constant across sizes\n"
      "and dimensions while every surviving component is < ε·n ('largest' < 'eps*n').");

  // Supporting evidence for the *hypothesis* of Theorem 2.5: meshes have
  // uniform expansion.  The exact isoperimetric profile of small meshes
  // follows the d-dimensional surface law b(s) ~ c·s^((d-1)/d), so every
  // size-m subgraph has expansion O(alpha(m)).
  Table profile_table({"mesh", "s", "min edge boundary b(s)", "surface law c*s^((d-1)/d)",
                       "b(s)/s (= alpha at s)"});
  struct ProfCase {
    std::string name;
    Mesh mesh;
    double d;
  };
  const ProfCase prof_cases[] = {
      {"2D 4x4", Mesh::cube(4, 2), 2.0},
      {"3D 2x2x4", Mesh({2, 2, 4}), 3.0},
  };
  for (const ProfCase& c : prof_cases) {
    const IsoperimetricProfile prof = isoperimetric_profile(c.mesh.graph());
    for (std::size_t s : {1UL, 2UL, 4UL, 8UL}) {
      if (s >= prof.edge_boundary.size()) continue;
      profile_table.row()
          .cell(c.name)
          .cell(s)
          .cell(prof.edge_boundary[s])
          .cell(2.0 * std::pow(static_cast<double>(s), (c.d - 1.0) / c.d), 3)
          .cell(static_cast<double>(prof.edge_boundary[s]) / static_cast<double>(s), 3);
    }
  }
  bench::print_table(profile_table,
                     "uniform expansion evidence: b(s) tracks the surface law, so α(m) decays\n"
                     "polynomially with subgraph size — the hypothesis Theorem 2.5 needs.");
  return 0;
}
