// E8 — §4 open problem: the paper conjectures that butterfly,
// shuffle-exchange and de Bruijn networks have span O(1).
//
// We produce sampled span estimates across sizes: a flat trend in n is
// evidence for the conjecture (a growing trend against).  The hypercube
// and CAN overlay are included for context.
//
// Campaign port (DESIGN.md §9): every family is a registry topology and
// the estimate is the 'span_estimate' MetricsRegistry entry, so the whole
// experiment is one campaign over the engine cache — the same study that
// campaigns/e8_span_conjecture.json runs from the CLI.
//
// Flags: --samples=N (default 12, per size fraction), --seed=S,
// --threads=N, --json=out.json (the aggregated campaign report).
#include "bench_common.hpp"

#include "api/campaign.hpp"
#include "api/scenario.hpp"

namespace fne {
namespace {

[[nodiscard]] CampaignEntry probe_entry(const std::string& label, const std::string& topology,
                                        Params params, double alpha, int samples,
                                        std::uint64_t seed) {
  Scenario s;
  s.name = label;
  s.topology = {topology, std::move(params)};
  s.fault = {"random", Params{{"p", "0"}}};  // span is a fault-free quantity
  s.prune.kind = ExpansionKind::Edge;
  s.prune.alpha = alpha;  // explicit: skip the bracket measurement, prune is a no-op here
  s.metrics.fragmentation = false;
  s.metrics.requests = {
      {"span_estimate", Params{}.set("samples", static_cast<std::int64_t>(samples))}};
  s.seed = seed;
  return {std::move(s), std::nullopt};
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int samples = static_cast<int>(cli.get_int("samples", 12));
  const int threads = bench::threads_flag(cli);

  bench::print_header("E8", "§4 conjecture — butterfly / shuffle-exchange / de Bruijn "
                            "have span O(1)");

  Campaign campaign;
  campaign.name = "e8_span_conjecture";
  const auto dim_params = [](vid d) {
    return Params{}.set("dims", static_cast<std::int64_t>(d));
  };
  for (vid d : {4U, 5U, 6U}) {
    campaign.entries.push_back(probe_entry("butterfly d=" + std::to_string(d), "butterfly",
                                           dim_params(d), 0.2, samples, seed));
  }
  for (vid d : {5U, 7U, 9U}) {
    campaign.entries.push_back(probe_entry("debruijn d=" + std::to_string(d), "debruijn",
                                           dim_params(d), 0.2, samples, seed));
  }
  for (vid d : {5U, 7U, 9U}) {
    campaign.entries.push_back(probe_entry("shuffle-exch d=" + std::to_string(d),
                                           "shuffle_exchange", dim_params(d), 0.2, samples,
                                           seed));
  }
  for (vid d : {5U, 7U, 9U}) {
    campaign.entries.push_back(probe_entry("hypercube d=" + std::to_string(d), "hypercube",
                                           dim_params(d), 0.5, samples, seed));
  }
  for (vid dims : {2U, 3U}) {
    campaign.entries.push_back(probe_entry(
        "CAN " + std::to_string(dims) + "D 256 peers", "can",
        Params{}.set("peers", std::int64_t{256}).set("dims", static_cast<std::int64_t>(dims)),
        0.1, samples, seed));
  }

  CampaignRunner runner(std::move(campaign));
  const CampaignReport report = runner.run(threads);

  Table table({"family", "n", "sampled sets", "span estimate", "steiner exact?"});
  for (const ScenarioReport& sr : report.scenarios) {
    const JsonValue payload = JsonValue::parse(sr.runs.at(0).metrics.at(0).payload);
    table.row()
        .cell(sr.scenario.name)
        .cell(std::size_t{sr.n})
        .cell(static_cast<std::uint64_t>(payload.at("sets_examined").as_int()))
        .cell(payload.at("span").as_number(), 4)
        .cell(bench::yesno(payload.at("exact").as_bool()));
  }
  bench::print_table(
      table,
      "paper conjecture (§4): the estimate stays O(1) (flat in n) for the three conjectured\n"
      "families.  Estimates are lower bounds on σ when Steiner trees are exact; with\n"
      "approximate trees each ratio can overshoot by at most 2x (see span/span.hpp).");

  if (cli.has("json")) {
    bench::write_json_text(bench::json_path(cli, "bench_e8_span_conjecture.json"),
                           report.to_json());
  }
  return 0;
}
