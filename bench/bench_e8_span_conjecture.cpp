// E8 — §4 open problem: the paper conjectures that butterfly,
// shuffle-exchange and de Bruijn networks have span O(1).
//
// We produce sampled span estimates across sizes: a flat trend in n is
// evidence for the conjecture (a growing trend against).  The hypercube
// and CAN overlay are included for context.
#include "bench_common.hpp"

#include "span/span.hpp"
#include "topology/butterfly.hpp"
#include "topology/can_overlay.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int samples = static_cast<int>(cli.get_int("samples", 12));

  bench::print_header("E8", "§4 conjecture — butterfly / shuffle-exchange / de Bruijn "
                            "have span O(1)");

  Table table({"family", "n", "sampled sets", "span estimate", "steiner exact?"});

  SpanEstimateOptions opts;
  opts.samples_per_size = samples;
  opts.seed = seed;
  opts.size_fractions = {0.05, 0.1, 0.2, 0.35, 0.5};

  auto probe = [&](const std::string& name, const Graph& g) {
    const SpanResult r = estimate_span(g, opts);
    table.row()
        .cell(name)
        .cell(std::size_t{g.num_vertices()})
        .cell(r.sets_examined)
        .cell(r.span, 4)
        .cell(bench::yesno(r.exact));
  };

  for (vid d : {4U, 5U, 6U}) probe("butterfly d=" + std::to_string(d), butterfly(d).graph);
  for (vid d : {5U, 7U, 9U}) probe("debruijn d=" + std::to_string(d), debruijn(d));
  for (vid d : {5U, 7U, 9U}) {
    probe("shuffle-exch d=" + std::to_string(d), shuffle_exchange(d));
  }
  for (vid d : {5U, 7U, 9U}) probe("hypercube d=" + std::to_string(d), hypercube(d));
  probe("CAN 2D 256 peers", can_overlay(256, 2, seed).graph);
  probe("CAN 3D 256 peers", can_overlay(256, 3, seed).graph);

  bench::print_table(
      table,
      "paper conjecture (§4): the estimate stays O(1) (flat in n) for the three conjectured\n"
      "families.  Estimates are lower bounds on σ when Steiner trees are exact; with\n"
      "approximate trees each ratio can overshoot by at most 2x (see span/span.hpp).");
  return 0;
}
