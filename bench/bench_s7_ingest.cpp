// S7 — real-graph ingestion pipeline (DESIGN.md §14).
//
// Acceptance claims:
//
//   1. Convert-once pays off: loading a binary CSR file (mmap or
//      buffered) is substantially faster than re-parsing the text edge
//      list it was converted from — the whole point of edgelist2csr.
//      Gate: csr load (either mode) <= text parse time.
//
//   2. Load-mode equivalence: mmap and buffered loads decode the SAME
//      graph (vertex count, edge count, canonical re-encoding) — the
//      perf choice cannot change a result bit.
//
//   3. Throughput scales: edges/second for parse, convert and load are
//      reported across --scale'd synthetic graphs so the trajectory is
//      a diffable artifact, not a one-off.
//
// Flags: --scale=N (vertex multiplier, default 1), --trials=N (default
// 3, best-of), --json=out.json.
#include "bench_common.hpp"

#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/csr_file.hpp"
#include "core/graph.hpp"
#include "core/io.hpp"
#include "util/require.hpp"

namespace {

/// A messy SNAP-style text edge list over a preferential-attachment-ish
/// graph: comments, blank lines, duplicates, self loops — the shape the
/// tolerant reader exists for.  Deterministic per (n, seed).
[[nodiscard]] std::string synthetic_edge_list(fne::vid n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::ostringstream os;
  os << "# synthetic ingest bench graph n=" << n << "\n";
  os << "# FromNodeId\tToNodeId\n";
  std::vector<fne::vid> targets;
  targets.reserve(static_cast<std::size_t>(n) * 3);
  targets.push_back(0);
  for (fne::vid v = 1; v < n; ++v) {
    // Ring + two skewed attachments per vertex.
    os << v - 1 << "\t" << v << "\n";
    for (int k = 0; k < 2; ++k) {
      const fne::vid u = targets[rng() % targets.size()];
      if (u != v) os << v << "\t" << u << "\n";
      if ((rng() & 15) == 0) os << v << "\t" << v << "\n";    // self loop
      if ((rng() & 15) == 1) os << u << "\t" << v << "\n";    // duplicate
    }
    targets.push_back(v);
    targets.push_back(v);
  }
  os << n - 1 << "\t0\n";
  return os.str();
}

template <typename Fn>
[[nodiscard]] double best_of(int trials, const Fn& fn) {
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    const fne::Timer timer;
    fn();
    const double ms = timer.millis();
    if (t == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  FNE_REQUIRE(scale >= 1 && trials >= 1, "S7: --scale and --trials must be >= 1");

  bench::print_header("S7", "ingestion: text parse vs binary CSR load (mmap/buffered), "
                            "load-mode equivalence");

  bench::JsonReport report("bench_s7_ingest");
  report.top()
      .put("scale", static_cast<std::int64_t>(scale))
      .put("trials", trials)
      .put("threads", bench::max_threads());

  Table table({"n", "m", "text parse ms", "convert ms", "mmap load ms",
               "buffered load ms", "load speedup", "ok"});
  bool all_ok = true;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fne_bench_s7";
  std::filesystem::create_directories(dir);

  for (const vid base : {vid{2000}, vid{8000}, vid{32000}}) {
    const vid n = base * scale;
    const std::string text = synthetic_edge_list(n, 7 + n);

    EdgeListOptions opts;
    opts.header = false;
    Graph parsed = Graph::from_edges(0, {});
    const double parse_ms = best_of(trials, [&] {
      std::istringstream in(text);
      parsed = read_edge_list(in, opts);
    });

    const std::string path = (dir / ("s7_" + std::to_string(n) + ".csr")).string();
    const double convert_ms = best_of(trials, [&] { CsrFile::write(path, parsed); });

    Graph via_mmap = Graph::from_edges(0, {});
    const double mmap_ms = best_of(trials, [&] {
      via_mmap = CsrFile::open(path, CsrFile::Load::kAuto).to_graph();
    });
    Graph via_buffer = Graph::from_edges(0, {});
    const double buffer_ms = best_of(trials, [&] {
      via_buffer = CsrFile::open(path, CsrFile::Load::kBuffer).to_graph();
    });

    // Equivalence: both load modes reproduce the parsed graph exactly
    // (canonical encoding is unique per graph value).
    const std::string canon = CsrFile::encode(parsed);
    const bool ok = CsrFile::encode(via_mmap) == canon &&
                    CsrFile::encode(via_buffer) == canon &&
                    std::min(mmap_ms, buffer_ms) <= parse_ms;
    all_ok = all_ok && ok;

    const double speedup = parse_ms / std::max(1e-9, std::min(mmap_ms, buffer_ms));
    table.row()
        .cell(static_cast<std::size_t>(parsed.num_vertices()))
        .cell(static_cast<std::size_t>(parsed.num_edges()))
        .cell(parse_ms)
        .cell(convert_ms)
        .cell(mmap_ms)
        .cell(buffer_ms)
        .cell(speedup, 2)
        .cell(ok ? "yes" : "NO");

    report.record("sizes")
        .put("n", static_cast<std::uint64_t>(parsed.num_vertices()))
        .put("m", static_cast<std::uint64_t>(parsed.num_edges()))
        .put("parse_ms", parse_ms)
        .put("convert_ms", convert_ms)
        .put("mmap_load_ms", mmap_ms)
        .put("buffered_load_ms", buffer_ms)
        .put("load_speedup", speedup)
        .put("ok", ok);
  }

  bench::print_table(table,
                     "load speedup = text parse / min(load mode); ok requires identical "
                     "graphs and load <= parse");
  report.top().put("all_ok", all_ok);

  if (cli.has("json")) {
    (void)bench::write_json_text(bench::json_path(cli, "bench_s7_ingest.json"), report.dump());
  }

  if (!all_ok) {
    std::cerr << "S7: FAILED (load slower than parse, or load modes disagree)\n";
    return 1;
  }
  return 0;
}
