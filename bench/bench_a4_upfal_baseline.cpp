// A4 — baseline comparison: Upfal's degree pruning vs the paper's Prune.
//
// §1.1: "Upfal's pruning does not guarantee a large component of good
// expansion".  We build a network where degree pruning provably keeps a
// bottleneck (two grids joined by a path survive the degree rule intact)
// and show that Prune removes it, preserving the expansion — plus a
// same-budget comparison on an expander where both do fine on size but
// only Prune certifies the expansion.
#include "bench_common.hpp"

#include "expansion/bracket.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune.hpp"
#include "prune/upfal.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

Graph bridged_grids(vid side) {
  // Two side x side grids joined by a single edge: the §1.3 bottleneck.
  std::vector<Edge> edges;
  const Mesh half = Mesh::cube(side, 2);
  const vid n = half.num_vertices();
  for (const Edge& e : half.graph().edges()) {
    edges.push_back(e);
    edges.push_back({e.u + n, e.v + n});
  }
  edges.push_back({n - 1, n});
  return Graph::from_edges(2 * n, edges);
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("A4", "baseline — Upfal degree pruning vs Prune: size vs expansion "
                            "guarantees");

  Table table({"network", "fault p", "method", "|H|", "exp(H) [lo,up]", "keeps bottleneck?"});

  BracketOptions bopts;
  bopts.exact_limit = 14;
  bopts.seed = seed;

  auto fmt_bracket = [](const ExpansionBracket& b) {
    return "[" + std::to_string(b.lower).substr(0, 6) + "," +
           std::to_string(b.upper).substr(0, 6) + "]";
  };

  struct Case {
    std::string name;
    Graph graph;
    double alpha;
  };
  std::vector<Case> cases;
  cases.push_back({"bridged 8x8 grids", bridged_grids(8), 0.2});
  cases.push_back({"rand 4-reg n=256", random_regular(256, 4, seed), 0.45});

  for (const Case& c : cases) {
    const Graph& g = c.graph;
    for (double p : {0.0, 0.05}) {
      const VertexSet alive =
          p == 0.0 ? VertexSet::full(g.num_vertices()) : random_node_faults(g, p, seed + 3);

      const UpfalResult upfal = upfal_prune(g, alive, 0.5);
      const PruneResult ours = prune(g, alive, c.alpha, 0.5);

      for (int method = 0; method < 2; ++method) {
        const VertexSet& survivors = method == 0 ? upfal.survivors : ours.survivors;
        std::string bracket_str = "-";
        bool bottleneck = false;
        if (survivors.count() >= 2) {
          const ExpansionBracket b = expansion_bracket(g, survivors, ExpansionKind::Node, bopts);
          bracket_str = fmt_bracket(b);
          // A bottleneck survived if the best cut of H is far below the
          // target expansion level.
          bottleneck = b.upper < 0.25 * c.alpha;
        }
        table.row()
            .cell(c.name)
            .cell(p, 3)
            .cell(method == 0 ? "Upfal (degree)" : "Prune (ours)")
            .cell(std::size_t{survivors.count()})
            .cell(bracket_str)
            .cell(bottleneck ? "YES (bad)" : "no");
      }
    }
  }
  bench::print_table(
      table,
      "reading (§1.1): Upfal's degree rule keeps more vertices but retains the bridge\n"
      "bottleneck (expansion upper bound collapses); Prune trades a bounded number of\n"
      "vertices for a certified expansion floor — exactly the distinction the paper draws.");
  return 0;
}
