// S6 — scenario service under open-loop load (DESIGN.md §13).
//
// Acceptance claims:
//
//   1. Tail latency: an open-loop mixed-scenario load (arrivals on a
//      fixed schedule, independent of completions — latency includes
//      any queueing the service caused) has p99 within --max-overhead
//      (default 1.5x) of the committed baseline's p99
//      (reproduce/baselines/BENCH_s6_service.json).  --max-p99-ms
//      overrides the gate with an absolute ceiling; a missing baseline
//      file skips the gate (first run on a new machine).
//
//   2. Bounded memory: cycling through many DISTINCT topologies with a
//      cache budget holds the cache's resident bytes at or under
//      budget * 1.10 with evictions actually firing, while the same
//      cycle unbounded grows to >= 2x the budget.  Process RSS
//      (/proc/self/status VmRSS) is reported alongside for the
//      operational view.
//
//   3. Determinism under eviction and concurrency: the service's
//      campaign payload during the budget-thrash phase is byte-identical
//      to a local single-threaded run.
//
// Flags: --requests=N (default 60), --qps=Q (default 25), --clients=C
// (default 6), --service-workers=W (default 2), --threads=T (exec width,
// default 2), --sides=K (distinct topologies in the budget phase,
// default 10), --max-overhead=X, --max-p99-ms=MS, --baseline=FILE,
// --json=out.json.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "api/campaign.hpp"
#include "api/executor.hpp"
#include "service/service.hpp"
#include "util/require.hpp"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// VmRSS from /proc/self/status in bytes (0 when unavailable — the
/// bench then reports 0 and still gates on the cache gauges, which are
/// deterministic where RSS is allocator-weather).
[[nodiscard]] std::uint64_t rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::uint64_t kb = 0;
      for (const char c : line) {
        if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      }
      return kb * 1024;
    }
  }
  return 0;
}

[[nodiscard]] double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size()))) ;
  return sorted[std::min(sorted.size() - 1, idx == 0 ? 0 : idx - 1)];
}

/// One small campaign per mesh side — the distinct-key generator for
/// both the mixed load and the budget cycle.
[[nodiscard]] std::string mesh_campaign(int side, const char* kind, double p) {
  std::string s = std::to_string(side);
  return std::string("{\"name\": \"svc-mesh") + s +
         "\", \"scenarios\": [{\"name\": \"m" + s +
         "\", \"topology\": {\"name\": \"mesh\", \"params\": {\"side\": " + s +
         ", \"dims\": 2}}, \"fault\": {\"name\": \"random\", \"params\": {\"p\": " +
         std::to_string(p) + "}}, \"prune\": {\"kind\": \"" + kind +
         "\", \"alpha\": 0.25}, \"repetitions\": 1}]}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fne;
  using fne::bench::JsonReport;
  const Cli cli(argc, argv);

  const int requests = static_cast<int>(cli.get_int("requests", 60));
  const double qps = cli.get_double("qps", 25.0);
  const int clients = static_cast<int>(cli.get_int("clients", 6));
  const int service_workers = static_cast<int>(cli.get_int("service-workers", 2));
  const int exec_threads = static_cast<int>(cli.get_int("threads", 2));
  const int sides = static_cast<int>(cli.get_int("sides", 10));
  const double max_overhead = cli.get_double("max-overhead", 1.5);
  const double max_p99_override = cli.get_double("max-p99-ms", 0.0);
  const std::string baseline_path =
      cli.get("baseline", "reproduce/baselines/BENCH_s6_service.json");

  bench::print_header("S6", "scenario service: tail latency under open-loop load, "
                            "bounded cache memory, determinism under eviction");

  EngineCache::instance().set_budget_bytes(0);
  EngineCache::instance().clear();

  ServiceOptions opts;
  opts.workers = service_workers;
  opts.exec_threads = exec_threads;
  opts.queue_depth = static_cast<std::size_t>(std::max(64, requests));
  ScenarioService service(opts);
  service.start();

  // The request mix: three scenario shapes (two node meshes, one edge
  // mesh).  Warm each once so the measured phase sees the daemon's
  // steady state — resident graphs, pooled engines.
  const std::vector<std::string> mix = {
      mesh_campaign(10, "node", 0.10),
      mesh_campaign(12, "edge", 0.08),
      mesh_campaign(14, "node", 0.12),
  };
  {
    ServiceClient warm("127.0.0.1", service.port());
    for (const std::string& c : mix) {
      const ServiceResponse r = warm.campaign(c);
      FNE_REQUIRE(r.ok(), "warm-up request failed: " + r.message);
    }
  }

  // --- claim 1: open-loop latency --------------------------------------
  std::vector<double> latency(static_cast<std::size_t>(requests), 0.0);
  std::vector<char> failed(static_cast<std::size_t>(requests), 0);
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      ServiceClient client("127.0.0.1", service.port());
      for (int i = c; i < requests; i += clients) {
        // Open-loop: the schedule is fixed up front; a slow service
        // pays its own backlog in the measured latency.
        const auto scheduled =
            t0 + std::chrono::microseconds(static_cast<std::int64_t>(1e6 * i / qps));
        std::this_thread::sleep_until(scheduled);
        const ServiceResponse resp =
            client.campaign(mix[static_cast<std::size_t>(i) % mix.size()]);
        latency[static_cast<std::size_t>(i)] = ms_between(scheduled, Clock::now());
        if (!resp.ok()) failed[static_cast<std::size_t>(i)] = 1;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_ms = ms_between(t0, Clock::now());
  const int failures = static_cast<int>(std::count(failed.begin(), failed.end(), 1));

  std::vector<double> sorted = latency;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = percentile(sorted, 0.50);
  const double p99 = percentile(sorted, 0.99);
  const double p999 = percentile(sorted, 0.999);
  const double achieved_qps = 1000.0 * requests / wall_ms;

  // Baseline gate: committed p99 x overhead, or the absolute override.
  double baseline_p99 = 0.0;
  bool have_baseline = false;
  {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      const JsonValue v = JsonValue::parse(text.str());
      if (const JsonValue* f = v.find("p99_ms")) {
        baseline_p99 = f->as_number();
        have_baseline = true;
      }
    }
  }
  double p99_gate = max_p99_override;
  if (p99_gate <= 0.0 && have_baseline) p99_gate = baseline_p99 * max_overhead;
  const bool latency_pass = failures == 0 && (p99_gate <= 0.0 || p99 <= p99_gate);

  Table lat({"requests", "qps target", "qps achieved", "p50 ms", "p99 ms", "p999 ms",
             "gate p99 ms", "pass"});
  lat.row()
      .cell(requests)
      .cell(qps, 4)
      .cell(achieved_qps, 4)
      .cell(p50, 3)
      .cell(p99, 3)
      .cell(p999, 3)
      .cell(p99_gate, 3)
      .cell(bench::yesno(latency_pass));
  bench::print_table(lat, p99_gate <= 0.0 ? "(no baseline — latency gate skipped)" : "");

  // --- claims 2 + 3: cache budget and determinism under eviction -------
  // Cycle `sides` DISTINCT topologies twice, unbounded: residency grows
  // with every new key.  Then impose budget = max/4 and cycle again:
  // residency must cap at budget (+10%) with real evictions, and the
  // service payload must still match a local run byte for byte.
  const auto cycle = [&](std::uint64_t* max_resident) {
    ServiceClient client("127.0.0.1", service.port());
    std::string last_payload;
    for (int lap = 0; lap < 2; ++lap) {
      for (int s = 0; s < sides; ++s) {
        const ServiceResponse r = client.campaign(mesh_campaign(8 + 2 * s, "node", 0.1));
        FNE_REQUIRE(r.ok(), "budget-phase request failed: " + r.message);
        last_payload = r.payload;
        *max_resident = std::max(*max_resident, EngineCache::instance().stats().bytes_resident);
      }
    }
    return last_payload;
  };

  EngineCache::instance().clear();
  const std::uint64_t rss_unbounded_before = rss_bytes();
  std::uint64_t unbounded_max = 0;
  (void)cycle(&unbounded_max);
  const std::uint64_t rss_unbounded_after = rss_bytes();

  const std::uint64_t budget = std::max<std::uint64_t>(unbounded_max / 4, 64 * 1024);
  EngineCache::instance().clear();
  EngineCache::instance().set_budget_bytes(budget);
  const EngineCacheStats before_bounded = EngineCache::instance().stats();
  const std::uint64_t rss_bounded_before = rss_bytes();
  std::uint64_t bounded_max = 0;
  const std::string service_payload = cycle(&bounded_max);
  const std::uint64_t rss_bounded_after = rss_bytes();
  const EngineCacheStats bounded_delta = EngineCache::instance().stats() - before_bounded;

  CampaignRunner local(campaign_from_json(mesh_campaign(8 + 2 * (sides - 1), "node", 0.1)));
  const std::string local_payload = local.run(1).to_json(/*include_timing=*/false);
  const bool identical = service_payload == local_payload;

  const bool grows = unbounded_max >= 2 * budget;
  const bool capped = bounded_max <= budget + budget / 10;
  const bool evicted = bounded_delta.evictions > 0;
  const bool budget_pass = grows && capped && evicted && identical;

  Table mem({"phase", "cache max bytes", "budget", "evictions", "rss before MB", "rss after MB",
             "payload identical"});
  mem.row()
      .cell("unbounded")
      .cell(std::size_t{unbounded_max})
      .cell("-")
      .cell("-")
      .cell(static_cast<double>(rss_unbounded_before) / 1048576.0, 4)
      .cell(static_cast<double>(rss_unbounded_after) / 1048576.0, 4)
      .cell("-");
  mem.row()
      .cell("budgeted")
      .cell(std::size_t{bounded_max})
      .cell(std::size_t{budget})
      .cell(bounded_delta.evictions)
      .cell(static_cast<double>(rss_bounded_before) / 1048576.0, 4)
      .cell(static_cast<double>(rss_bounded_after) / 1048576.0, 4)
      .cell(bench::yesno(identical));
  bench::print_table(
      mem, std::string("budget gates: grows>=2x=") + bench::yesno(grows) +
               " capped<=1.1x=" + bench::yesno(capped) + " evictions>0=" + bench::yesno(evicted));

  service.stop();
  EngineCache::instance().set_budget_bytes(0);
  EngineCache::instance().clear();

  const bool pass = latency_pass && budget_pass;
  std::cout << "\nS6 " << (pass ? "PASS" : "FAIL") << "\n";

  const std::string json = bench::json_path(cli, "BENCH_s6_service.json");
  if (!json.empty()) {
    JsonReport report("bench_s6_service");
    report.top()
        .put("requests", requests)
        .put("qps_target", qps)
        .put("qps_achieved", achieved_qps)
        .put("clients", clients)
        .put("service_workers", service_workers)
        .put("exec_threads", exec_threads)
        .put("p50_ms", p50)
        .put("p99_ms", p99)
        .put("p999_ms", p999)
        .put("p99_gate_ms", p99_gate)
        .put("failures", failures)
        .put("unbounded_max_bytes", unbounded_max)
        .put("budget_bytes", budget)
        .put("bounded_max_bytes", bounded_max)
        .put("evictions", bounded_delta.evictions)
        .put("rss_unbounded_mb", static_cast<double>(rss_unbounded_after) / 1048576.0)
        .put("rss_bounded_mb", static_cast<double>(rss_bounded_after) / 1048576.0)
        .put("payload_identical", identical)
        .put("pass", pass);
    (void)report.write(json);
  }
  return pass ? 0 : 1;
}
