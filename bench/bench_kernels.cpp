// Microbenchmarks of the library's core kernels (google-benchmark).
//
// These do not reproduce paper claims — they track the cost of the
// primitives every experiment is built from, so regressions in the
// substrate are caught independently of the experiment tables.
#include <benchmark/benchmark.h>

#include "core/traversal.hpp"
#include "expansion/exact.hpp"
#include "expansion/sweep.hpp"
#include "faults/fault_model.hpp"
#include "percolation/percolation.hpp"
#include "prune/engine.hpp"
#include "prune/prune2.hpp"
#include "span/steiner.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/kernels.hpp"
#include "spectral/operator.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

void BM_GraphConstruction(benchmark::State& state) {
  const vid side = static_cast<vid>(state.range(0));
  for (auto _ : state) {
    const Mesh m = Mesh::cube(side, 2);
    benchmark::DoNotOptimize(m.graph().num_edges());
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_GraphConstruction)->Arg(16)->Arg(64);

void BM_ConnectedComponents(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  for (auto _ : state) {
    const Components comps = connected_components(m.graph(), alive);
    benchmark::DoNotOptimize(comps.sizes.size());
  }
  state.SetItemsProcessed(state.iterations() * m.num_vertices());
}
BENCHMARK(BM_ConnectedComponents)->Arg(32)->Arg(64);

void BM_BfsDistances(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet all = VertexSet::full(m.num_vertices());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(m.graph(), all, 0));
  }
  state.SetItemsProcessed(state.iterations() * m.num_vertices());
}
BENCHMARK(BM_BfsDistances)->Arg(32)->Arg(64);

void BM_ExactExpansionScan(benchmark::State& state) {
  const Graph g = random_regular(static_cast<vid>(state.range(0)), 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_expansion(g, ExpansionKind::Edge).expansion);
  }
}
BENCHMARK(BM_ExactExpansionScan)->Arg(16)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_MaskedLaplacianApply(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  const MaskedLaplacian lap(m.graph(), alive);
  std::vector<double> x(lap.dim(), 1.0), y(lap.dim(), 0.0);
  for (auto _ : state) {
    lap.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lap.dim()));
}
BENCHMARK(BM_MaskedLaplacianApply)->Arg(32)->Arg(64);

void BM_SubCsrApply(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  SubCsr sub;
  sub.build(m.graph(), alive);
  const SubCsrLaplacian lap(sub);
  std::vector<double> x(lap.dim(), 1.0), y(lap.dim(), 0.0);
  for (auto _ : state) {
    lap.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(lap.dim()));
}
BENCHMARK(BM_SubCsrApply)->Arg(32)->Arg(64);

void BM_SubCsrBuild(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  SubCsr sub;
  for (auto _ : state) {
    sub.build(m.graph(), alive);
    benchmark::DoNotOptimize(sub.adj.data());
  }
  state.SetItemsProcessed(state.iterations() * m.num_vertices());
}
BENCHMARK(BM_SubCsrBuild)->Arg(32)->Arg(64);

// The SIMD-annotated chunked reduction (spectral/kernels.hpp): lane-tree
// dot inside fixed 1024-element chunks.  The argument straddles
// kSpectralParallelDim (8192), so both the serial and the OMP chunk path
// are measured — the vectorization win is tracked here, not assumed.
void BM_SpectralDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1.0 + 1e-6 * static_cast<double>(i % 997);
    b[i] = 2.0 - 1e-6 * static_cast<double>(i % 991);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spectral_dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * sizeof(double)));
}
BENCHMARK(BM_SpectralDot)->Arg(4096)->Arg(16384)->Arg(262144);

void BM_SpectralAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 + 1e-6 * static_cast<double>(i % 997);
  for (auto _ : state) {
    spectral_axpy(1e-9, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(3 * n * sizeof(double)));
}
BENCHMARK(BM_SpectralAxpy)->Arg(4096)->Arg(16384)->Arg(262144);

void BM_FiedlerVector(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet all = VertexSet::full(m.num_vertices());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_vector(m.graph(), all).lambda2);
  }
}
BENCHMARK(BM_FiedlerVector)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FiedlerSweep(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet all = VertexSet::full(m.num_vertices());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fiedler_sweep(m.graph(), all, ExpansionKind::Edge).expansion);
  }
}
BENCHMARK(BM_FiedlerSweep)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_PercolationTrials(benchmark::State& state) {
  const Mesh m = Mesh::cube(32, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        percolate(m.graph(), PercolationKind::Bond, 0.5, static_cast<int>(state.range(0)), 3)
            .gamma.mean());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PercolationTrials)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_SteinerApprox(benchmark::State& state) {
  const Mesh m = Mesh::cube(16, 2);
  std::vector<vid> terminals;
  for (vid i = 0; i < static_cast<vid>(state.range(0)); ++i) {
    terminals.push_back((i * 37 + 11) % m.num_vertices());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(steiner_approx(m.graph(), terminals).tree_nodes);
  }
}
BENCHMARK(BM_SteinerApprox)->Arg(4)->Arg(12);

void BM_SteinerExact(benchmark::State& state) {
  const Mesh m = Mesh::cube(8, 2);
  std::vector<vid> terminals;
  for (vid i = 0; i < static_cast<vid>(state.range(0)); ++i) {
    terminals.push_back((i * 17 + 3) % m.num_vertices());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(steiner_exact(m.graph(), terminals).tree_nodes);
  }
}
BENCHMARK(BM_SteinerExact)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Prune2EndToEnd(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.05, 13);
  const double alpha_e = 2.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prune2(m.graph(), alive, alpha_e, 0.125).survivors.count());
  }
}
BENCHMARK(BM_Prune2EndToEnd)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_PruneEngineFastEndToEnd(benchmark::State& state) {
  const Mesh m = Mesh::cube(static_cast<vid>(state.range(0)), 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.05, 13);
  const double alpha_e = 2.0 / static_cast<double>(state.range(0));
  PruneEngine engine(m.graph(), ExpansionKind::Edge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.run(alive, alpha_e, 0.125, PruneEngineOptions::fast()).survivors.count());
  }
}
BENCHMARK(BM_PruneEngineFastEndToEnd)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_EdgeBoundarySize(benchmark::State& state) {
  const Mesh m = Mesh::cube(64, 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  // A small connected side: the word-level kernel iterates the cheaper
  // endpoint set (alive & ~S evaluated per 64-bit word).
  VertexSet s(m.num_vertices());
  alive.for_each([&](vid v) {
    if (s.count() < static_cast<vid>(state.range(0))) s.set(v);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_boundary_size(m.graph(), alive, s));
  }
}
BENCHMARK(BM_EdgeBoundarySize)->Arg(64)->Arg(1024);

void BM_NodeBoundarySize(benchmark::State& state) {
  const Mesh m = Mesh::cube(64, 2);
  const VertexSet alive = random_node_faults(m.graph(), 0.3, 7);
  VertexSet s(m.num_vertices());
  alive.for_each([&](vid v) {
    if (s.count() < static_cast<vid>(state.range(0))) s.set(v);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(node_boundary_size(m.graph(), alive, s));
  }
}
BENCHMARK(BM_NodeBoundarySize)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace fne

BENCHMARK_MAIN();
