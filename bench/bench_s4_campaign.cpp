// S4 — the campaign batch driver over the process-wide engine cache
// (DESIGN.md §8).
//
// Two acceptance claims:
//
//   1. Throughput: running the full scenario catalog through
//      CampaignRunner at T threads beats the serial per-scenario loop
//      (fresh ScenarioRunner + run_all(1) per scenario — the pre-campaign
//      driver shape) by >= 2.5x at 4 threads on 4+ cores, while the
//      report's deterministic payload stays BYTE-identical for any
//      thread count (verified on every run).
//
//   2. Monotone sweeps: chaining a declared-monotone fault sweep
//      (survivors of p_low feed p_high) cuts engine cull work >= 1.5x
//      vs independent points (EngineStats-verified) and reproduces the
//      independent survivors bit for bit in deterministic mode.
//
// Flags: --reps=N (default 4: catalog repetitions), --threads=N
// (default: hardware), --side=N (monotone sweep mesh side, default 32),
// --min-speedup=X (sanity floor on the measured campaign speedup; the
// default 0.8 tolerates pure pool overhead on 1-core CI machines but
// fails a real regression), --min-cullwork-ratio=X (default 1.5),
// --seed=S, --json=out.json.
#include "bench_common.hpp"

#include <filesystem>
#include <thread>

#include "api/campaign.hpp"
#include "api/runner.hpp"
#include "store/result_store.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int reps = static_cast<int>(cli.get_int("reps", 4));
  const auto side = static_cast<vid>(cli.get_int("side", 32));
  const int threads = bench::threads_flag(cli);
  const double min_speedup = cli.get_double("min-speedup", 0.8);
  const double min_cullwork = cli.get_double("min-cullwork-ratio", 1.5);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::print_header("S4-CAMPAIGN",
                      "Campaign batch driver over the engine cache (>= 2.5x at 4 threads on "
                      "4+ cores; monotone sweeps cut cull work >= 1.5x; reports bit-identical "
                      "for any thread count)");

  bench::JsonReport json("bench_s4_campaign");
  json.top()
      .put("reps", reps)
      .put("threads", threads)
      .put("hardware_threads", static_cast<std::int64_t>(hw))
      .put("omp_threads", bench::max_threads());

  // -------------------------------------------------------------------------
  // 1. Catalog campaign vs the serial per-scenario loop.
  // -------------------------------------------------------------------------
  Campaign catalog = catalog_campaign(reps);
  for (CampaignEntry& e : catalog.entries) e.scenario.seed += seed;  // --seed shifts the study
  std::cout << "catalog: " << catalog.entries.size() << " scenarios x " << reps
            << " repetitions, " << hw << " hardware threads\n\n";

  // The pre-campaign driver shape: one scenario at a time, one engine
  // lineage, no cross-scenario scheduling.  Cold cache for a fair start.
  EngineCache::instance().clear();
  Timer timer;
  std::size_t serial_runs = 0;
  for (const CampaignEntry& e : catalog.entries) {
    ScenarioRunner runner(e.scenario);
    serial_runs += runner.run_all(1).size();
  }
  const double serial_ms = timer.millis();

  CampaignRunner campaign_runner(catalog);
  EngineCache::instance().clear();
  timer.reset();
  const CampaignReport serial_report = campaign_runner.run(1);
  const double campaign1_ms = timer.millis();
  const std::string payload = serial_report.to_json(/*include_timing=*/false);

  Table scaling({"driver", "threads", "total ms", "speedup vs loop", "payload identical"});
  scaling.row().cell("serial loop").cell(1).cell(serial_ms, 1).cell(1.0, 2).cell("-");
  scaling.row()
      .cell("campaign")
      .cell(1)
      .cell(campaign1_ms, 1)
      .cell(serial_ms / campaign1_ms, 2)
      .cell("yes");
  json.record("scaling").put("driver", "serial_loop").put("threads", 1).put("millis", serial_ms);
  json.record("scaling").put("driver", "campaign").put("threads", 1).put("millis", campaign1_ms);

  bool payload_identical = true;
  double best_speedup = serial_ms / campaign1_ms;
  std::vector<int> counts{2};
  if (threads > 2) counts.push_back(threads);
  for (const int t : counts) {
    EngineCache::instance().clear();
    timer.reset();
    const CampaignReport report = campaign_runner.run(t);
    const double ms = timer.millis();
    const bool same = report.to_json(false) == payload;
    payload_identical = payload_identical && same;
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    if (same) best_speedup = std::max(best_speedup, speedup);
    scaling.row().cell("campaign").cell(t).cell(ms, 1).cell(speedup, 2).cell(bench::yesno(same));
    json.record("scaling").put("driver", "campaign").put("threads", t).put("millis", ms).put(
        "speedup", speedup);
  }
  bench::print_table(scaling,
                     "speedup = serial per-scenario loop time / campaign wall time; the\n"
                     "deterministic payload (to_json without timing) must match at every T.");
  std::cout << "serial loop runs: " << serial_runs
            << ", campaign runs: " << serial_report.total_engine_stats().runs << "\n";

  // -------------------------------------------------------------------------
  // 2. Monotone sweep vs independent points.
  // -------------------------------------------------------------------------
  Scenario sweep;
  sweep.name = "monotone-mesh";
  sweep.topology = {"mesh", Params().set("side", static_cast<std::int64_t>(side))};
  sweep.fault = {"random", Params().set("p", 0.05)};
  sweep.prune.kind = ExpansionKind::Edge;
  sweep.prune.alpha = 2.0 / static_cast<double>(side);
  sweep.seed = seed;
  const std::vector<double> values = cli.get_double_list(
      "sweep-values", "0.05,0.1,0.15,0.2,0.25,0.3,0.35");

  ScenarioRunner indep_runner(sweep);
  timer.reset();
  const std::vector<ScenarioRun> indep = indep_runner.sweep_fault_param("p", values);
  const double indep_ms = timer.millis();
  const EngineStats indep_stats = indep_runner.total_engine_stats();

  ScenarioRunner mono_runner(sweep);
  timer.reset();
  const std::vector<ScenarioRun> mono =
      mono_runner.sweep_fault_param("p", values, 1, SweepMode::kMonotone);
  const double mono_ms = timer.millis();
  const EngineStats mono_stats = mono_runner.total_engine_stats();

  bool parity = indep.size() == mono.size();
  for (std::size_t i = 0; parity && i < indep.size(); ++i) {
    parity = indep[i].prune.survivors == mono[i].prune.survivors;
  }
  const double cullwork_ratio =
      mono_stats.iterations > 0
          ? static_cast<double>(indep_stats.iterations) / static_cast<double>(mono_stats.iterations)
          : static_cast<double>(indep_stats.iterations);

  Table monotone({"mode", "points", "engine iters", "eigensolves", "relabel verts", "ms",
                  "survivors identical"});
  monotone.row()
      .cell("independent")
      .cell(values.size())
      .cell(indep_stats.iterations)
      .cell(indep_stats.eigensolves)
      .cell(indep_stats.relabel_bfs_vertices)
      .cell(indep_ms, 1)
      .cell("-");
  monotone.row()
      .cell("monotone")
      .cell(values.size())
      .cell(mono_stats.iterations)
      .cell(mono_stats.eigensolves)
      .cell(mono_stats.relabel_bfs_vertices)
      .cell(mono_ms, 1)
      .cell(bench::yesno(parity));
  bench::print_table(
      monotone,
      "monotone chains survivors(p_low) ∩ alive(p_high) as the next start mask; cull work\n"
      "(engine iterations) must drop >= " + std::to_string(min_cullwork).substr(0, 4) +
          "x while deterministic-mode survivors stay bit-identical.");

  // -------------------------------------------------------------------------
  // 3. Result store: cold commit vs warm replay (DESIGN.md §11).
  // -------------------------------------------------------------------------
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "fne_bench_s4_store").string();
  std::filesystem::remove_all(store_dir);
  ResultStore store(store_dir);
  EngineCache::instance().clear();
  timer.reset();
  const CampaignReport cold_report = campaign_runner.run(threads, &store);
  const double cold_ms = timer.millis();
  timer.reset();
  const CampaignReport warm_report = campaign_runner.run(threads, &store);
  const double warm_ms = timer.millis();
  const bool store_identical =
      cold_report.to_json(false) == payload && warm_report.to_json(false) == payload;
  const bool warm_all_hits = warm_report.store.misses == 0 &&
                             warm_report.store.hits == cold_report.store.misses;
  const double replay_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  Table store_table({"pass", "hits", "misses", "committed KB", "ms", "payload identical"});
  store_table.row()
      .cell("cold")
      .cell(cold_report.store.hits)
      .cell(cold_report.store.misses)
      .cell(static_cast<double>(cold_report.store.bytes_committed) / 1024.0, 1)
      .cell(cold_ms, 1)
      .cell(bench::yesno(cold_report.to_json(false) == payload));
  store_table.row()
      .cell("warm")
      .cell(warm_report.store.hits)
      .cell(warm_report.store.misses)
      .cell(static_cast<double>(warm_report.store.bytes_committed) / 1024.0, 1)
      .cell(warm_ms, 1)
      .cell(bench::yesno(warm_report.to_json(false) == payload));
  bench::print_table(store_table,
                     "cold run computes every cell and commits it; the warm run must serve\n"
                     "every cell from the store (misses = 0) and reproduce the payload.");
  json.record("store").put("pass", "cold").put("millis", cold_ms).put(
      "misses", cold_report.store.misses);
  json.record("store").put("pass", "warm").put("millis", warm_ms).put(
      "hits", warm_report.store.hits).put("replay_speedup", replay_speedup);
  std::filesystem::remove_all(store_dir);

  const bool pass = payload_identical && parity && best_speedup >= min_speedup &&
                    cullwork_ratio >= min_cullwork && store_identical && warm_all_hits;
  json.top()
      .put("best_speedup", best_speedup)
      .put("payload_identical", payload_identical)
      .put("monotone_parity", parity)
      .put("cullwork_ratio", cullwork_ratio)
      .put("store_payload_identical", store_identical)
      .put("store_warm_all_hits", warm_all_hits)
      .put("store_replay_speedup", replay_speedup)
      .put("pass", pass);
  if (cli.has("json")) json.write(bench::json_path(cli, "bench_s4_campaign.json"));

  std::cout << "\npayload bit-identical across thread counts: "
            << (payload_identical ? "PASS" : "FAIL")
            << "\nmonotone survivors == independent survivors: " << (parity ? "PASS" : "FAIL")
            << "\nmonotone cull-work saving: " << cullwork_ratio << "x (threshold "
            << min_cullwork << "x: " << (cullwork_ratio >= min_cullwork ? "PASS" : "FAIL")
            << ")\nbest campaign speedup: " << best_speedup << "x (threshold " << min_speedup
            << "x: " << (best_speedup >= min_speedup ? "PASS" : "FAIL") << ")\n";
  return pass ? 0 : 1;
}
