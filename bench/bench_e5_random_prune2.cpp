// E5 — Theorem 3.4: for fault probability p <= 1/(2e·δ^{4σ}) and
// ε <= 1/(2δ), Prune2(ε) returns H with |H| >= n/2 and edge expansion
// >= ε·α_e (whp).  Meshes have σ = 2 (Theorem 3.6), so the admissible p
// is tiny; we run at the theorem's p and far beyond it to show both the
// guarantee and the (much larger) practical margin.
#include "bench_common.hpp"

#include "expansion/bracket.hpp"
#include "faults/fault_model.hpp"
#include "prune/engine.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("E5",
                      "Theorem 3.4 — Prune2(ε) under random faults keeps |H| >= n/2 with edge "
                      "expansion >= ε·α_e for p <= 1/(2e·δ^{4σ})");

  Table table({"mesh", "n", "alpha_e", "eps", "fault p", "p vs thm", "|H|", "n/2", "size ok",
               "exp(H) up", "thr eps*a_e", "trace ok", "compact ok"});

  struct Case {
    std::string name;
    Mesh mesh;
    double alpha_e;  // straight-cut edge expansion of the fault-free mesh
  };
  std::vector<Case> cases;
  cases.push_back({"2D 24x24", Mesh::cube(24, 2), 24.0 / 288.0});
  cases.push_back({"2D 32x32", Mesh::cube(32, 2), 32.0 / 512.0});
  cases.push_back({"3D 8x8x8", Mesh::cube(8, 3), 64.0 / 256.0});

  for (const Case& c : cases) {
    const Graph& g = c.mesh.graph();
    const vid n = g.num_vertices();
    const double delta = g.max_degree();
    const double sigma = 2.0;  // Theorem 3.6
    const double p_theorem = theorem34_fault_probability(delta, sigma);
    const double eps = 1.0 / (2.0 * delta);

    // One engine drives the whole probability sweep: its workspace
    // (Krylov basis, BFS queues, degree tables) is reused across runs,
    // and the deterministic configuration is bit-identical to prune2().
    PruneEngine engine(g, ExpansionKind::Edge);
    for (double p : {p_theorem, 0.01, 0.03}) {
      const VertexSet alive = random_node_faults(g, p, seed + n);
      PruneEngineOptions opts;
      opts.finder.seed = seed;
      const PruneResult result = engine.run(alive, c.alpha_e, eps, opts);

      const TraceVerification trace = verify_prune_trace(
          g, alive, result, ExpansionKind::Edge, c.alpha_e * eps, /*require_compact=*/false);
      const TraceVerification compact = verify_prune_trace(
          g, alive, result, ExpansionKind::Edge, c.alpha_e * eps, /*require_compact=*/true);

      std::string h_up = "-";
      if (result.survivors.count() >= 2) {
        BracketOptions bopts;
        bopts.exact_limit = 14;
        bopts.seed = seed + 3;
        h_up = std::to_string(
                   expansion_bracket(g, result.survivors, ExpansionKind::Edge, bopts).upper)
                   .substr(0, 6);
      }
      table.row()
          .cell(c.name)
          .cell(std::size_t{n})
          .cell(c.alpha_e, 3)
          .cell(eps, 3)
          .cell(p, 3)
          .cell(p <= p_theorem ? "<= thm" : "beyond")
          .cell(std::size_t{result.survivors.count()})
          .cell(std::size_t{n / 2})
          .cell(bench::yesno(result.survivors.count() >= n / 2))
          .cell(h_up)
          .cell(c.alpha_e * eps, 4)
          .cell(bench::yesno(trace.valid))
          .cell(bench::yesno(compact.valid));
    }
  }
  bench::print_table(
      table,
      "paper prediction: at p <= 1/(2e·δ^{4σ}) every row has size ok / trace ok / compact ok;\n"
      "the 'beyond' rows probe the slack between the conservative bound and actual resilience\n"
      "(the guarantee is expected to persist far beyond the theorem's p on meshes).");
  return 0;
}
