// E5 — Theorem 3.4: for fault probability p <= 1/(2e·δ^{4σ}) and
// ε <= 1/(2δ), Prune2(ε) returns H with |H| >= n/2 and edge expansion
// >= ε·α_e (whp).  Meshes have σ = 2 (Theorem 3.6), so the admissible p
// is tiny; we run at the theorem's p and far beyond it to show both the
// guarantee and the (much larger) practical margin.
//
// Scenario-layer version: one Scenario per mesh, the probability sweep
// through ScenarioRunner::sweep_fault_param — every run of a mesh reuses
// the same persistent engine (Krylov basis, BFS queues, degree tables).
#include "bench_common.hpp"

#include <string>
#include <vector>

#include "api/runner.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("E5",
                      "Theorem 3.4 — Prune2(ε) under random faults keeps |H| >= n/2 with edge "
                      "expansion >= ε·α_e for p <= 1/(2e·δ^{4σ})");

  Table table({"mesh", "n", "alpha_e", "eps", "fault p", "p vs thm", "|H|", "n/2", "size ok",
               "exp(H) up", "thr eps*a_e", "trace ok"});

  struct Case {
    std::string name;
    std::int64_t side;
    std::int64_t dims;
    double alpha_e;  // straight-cut edge expansion of the fault-free mesh
  };
  const std::vector<Case> cases{
      {"2D 24x24", 24, 2, 24.0 / 288.0},
      {"2D 32x32", 32, 2, 32.0 / 512.0},
      {"3D 8x8x8", 8, 3, 64.0 / 256.0},
  };

  for (const Case& c : cases) {
    Scenario scenario;
    scenario.name = c.name;
    scenario.topology = {"mesh", Params().set("side", c.side).set("dims", c.dims)};
    scenario.fault = {"random", Params()};
    scenario.prune.kind = ExpansionKind::Edge;
    scenario.prune.alpha = c.alpha_e;  // epsilon <= 0 resolves to 1/(2δ)
    scenario.metrics.verify_trace = true;
    scenario.metrics.expansion = true;
    scenario.seed = seed + static_cast<std::uint64_t>(c.side * c.dims);

    // One runner per mesh: its engine drives the whole probability sweep,
    // reusing every workspace buffer across the runs.
    ScenarioRunner runner(std::move(scenario));
    const vid n = runner.graph().num_vertices();
    const double delta = runner.graph().max_degree();
    const double sigma = 2.0;  // Theorem 3.6
    const double p_theorem = theorem34_fault_probability(delta, sigma);

    const std::vector<double> probes{p_theorem, 0.01, 0.03};
    const std::vector<ScenarioRun> runs = runner.sweep_fault_param("p", probes);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ScenarioRun& result = runs[i];
      std::string h_up = "-";
      if (result.expansion.has_value()) {
        h_up = std::to_string(result.expansion->upper).substr(0, 6);
      }
      table.row()
          .cell(c.name)
          .cell(std::size_t{n})
          .cell(runner.alpha(), 3)
          .cell(runner.epsilon(), 3)
          .cell(probes[i], 3)
          .cell(probes[i] <= p_theorem ? "<= thm" : "beyond")
          .cell(std::size_t{result.prune.survivors.count()})
          .cell(std::size_t{n / 2})
          .cell(bench::yesno(result.prune.survivors.count() >= n / 2))
          .cell(h_up)
          .cell(result.threshold, 4)
          .cell(bench::yesno(result.trace.has_value() && result.trace->valid));
    }
  }
  bench::print_table(
      table,
      "paper prediction: at p <= 1/(2e·δ^{4σ}) every row has size ok / trace ok;\n"
      "the 'beyond' rows probe the slack between the conservative bound and actual resilience\n"
      "(the guarantee is expected to persist far beyond the theorem's p on meshes).");
  return 0;
}
