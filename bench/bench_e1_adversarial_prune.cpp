// E1 — Theorem 2.1: with f adversarial node faults and k·f/α <= n/4,
// Prune(1 - 1/k) returns H with |H| >= n - k·f/α and node expansion
// >= (1 - 1/k)·α.
//
// Scenario-layer version: each family is a Scenario (topology by registry
// name), the attack portfolio is the fault-model registry, and one
// ScenarioRunner per family drives every (k, attack) cell on one
// persistent engine — the runner also measures the honest α (the
// constructive upper bound of the fault-free bracket) that the theorem's
// budget is computed from.
#include "bench_common.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "api/runner.hpp"
#include "prune/verify.hpp"

namespace fne {
namespace {

struct Family {
  std::string name;
  TopologySpec topology;
};

void run(const Family& family, double k, std::uint64_t seed, Table& table) {
  Scenario scenario;
  scenario.name = family.name;
  scenario.topology = family.topology;
  scenario.prune.kind = ExpansionKind::Node;
  scenario.prune.epsilon = 1.0 - 1.0 / k;
  scenario.metrics.verify_trace = true;
  scenario.metrics.expansion = true;
  scenario.metrics.bracket_exact_limit = 16;
  scenario.seed = seed;

  ScenarioRunner runner(std::move(scenario));
  const vid n = runner.graph().num_vertices();
  // α must be a value the graph *actually has*: the runner measured the
  // constructive upper bound (a real cut) — using a larger α would make
  // the theorem's precondition easier but its conclusion unverifiable.
  const double alpha = runner.alpha();
  const vid f_max = static_cast<vid>(alpha * n / (4.0 * k));
  const vid f = std::max<vid>(1, f_max / 2);  // half the admissible budget

  const std::vector<std::pair<std::string, Params>> attacks{
      {"random_exact", Params().set("budget", std::int64_t{f})},
      {"high_degree", Params().set("budget", std::int64_t{f})},
      {"sweep_cut", Params().set("budget", std::int64_t{f})},
  };
  for (const auto& [attack_name, params] : attacks) {
    runner.set_fault({attack_name, params});
    const ScenarioRun result = runner.run_once();
    const Theorem21Check check = check_theorem21_size(n, alpha, result.faults, k,
                                                      result.prune.survivors.count());
    std::string h_expansion = "-";
    if (result.expansion.has_value()) {
      h_expansion = std::to_string(result.expansion->upper).substr(0, 6);
    }
    table.row()
        .cell(family.name)
        .cell(std::size_t{n})
        .cell(alpha, 3)
        .cell(k, 2)
        .cell(std::size_t{result.faults})
        .cell(attack_name)
        .cell(std::size_t{result.prune.survivors.count()})
        .cell(check.size_bound, 4)
        .cell(bench::yesno(check.size_ok && check.precondition_ok))
        .cell(result.threshold, 3)
        .cell(h_expansion)
        .cell(bench::yesno(result.trace.has_value() && result.trace->valid));
  }
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<std::int64_t>(cli.get_int("scale", 1));

  bench::print_header("E1",
                      "Theorem 2.1 — Prune keeps |H| >= n - k·f/α with expansion (1-1/k)·α "
                      "under any adversarial fault set with k·f/α <= n/4");

  Table table({"family", "n", "alpha", "k", "f", "attack", "|H|", "bound n-kf/a", "size ok",
               "thr (1-1/k)a", "exp(H) upper", "trace ok"});
  std::vector<Family> families;
  families.push_back(
      {"rand-4-reg",
       {"random_regular", Params().set("n", 256 * scale).set("degree", std::int64_t{4})}});
  families.push_back(
      {"rand-6-reg",
       {"random_regular", Params().set("n", 256 * scale).set("degree", std::int64_t{6})}});
  families.push_back({"hypercube-8", {"hypercube", Params().set("dims", std::int64_t{8})}});
  for (const Family& family : families) {
    for (double k : {2.0, 4.0}) run(family, k, seed, table);
  }
  bench::print_table(
      table,
      "paper prediction: 'size ok' and 'trace ok' = yes everywhere, and exp(H) upper >= thr\n"
      "(exp(H) is the constructive upper bound of H's expansion bracket; thr = (1-1/k)·α).");
  return 0;
}
