// E1 — Theorem 2.1: with f adversarial node faults and k·f/α <= n/4,
// Prune(1 - 1/k) returns H with |H| >= n - k·f/α and node expansion
// >= (1 - 1/k)·α.
//
// We run the attack portfolio at the maximum admissible budget on
// expander-like families, execute Prune, replay-verify its trace, and
// compare |H| against the theorem's bound.
#include "bench_common.hpp"

#include "expansion/bracket.hpp"
#include "faults/adversary.hpp"
#include "prune/engine.hpp"
#include "prune/prune.hpp"
#include "prune/verify.hpp"
#include "topology/hypercube.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

struct Family {
  std::string name;
  Graph graph;
};

void run(const Family& family, double k, std::uint64_t seed, Table& table) {
  const Graph& g = family.graph;
  const vid n = g.num_vertices();

  BracketOptions bopts;
  bopts.exact_limit = 16;
  bopts.seed = seed;
  const ExpansionBracket bracket = expansion_bracket(g, ExpansionKind::Node, bopts);
  // α must be a value the graph *actually has*: the constructive upper
  // bound (a real cut) is the honest choice — using a larger α would make
  // the theorem's precondition easier but its conclusion unverifiable.
  const double alpha = bracket.upper;
  const vid f_max = static_cast<vid>(alpha * n / (4.0 * k));
  const vid f = std::max<vid>(1, f_max / 2);  // half the admissible budget

  struct NamedAttack {
    std::string name;
    AttackResult attack;
  };
  std::vector<NamedAttack> attacks;
  attacks.push_back({"random", random_attack(g, f, seed)});
  attacks.push_back({"high-degree", high_degree_attack(g, f)});
  CutFinderOptions copts;
  copts.exact_limit = 14;
  copts.seed = seed;
  attacks.push_back({"sweep-cut", sweep_cut_attack(g, f, copts)});

  // One engine across the attack portfolio: workspace buffers amortize
  // over the runs, and deterministic mode keeps the table bit-identical
  // to the stateless prune() it replaces.
  PruneEngine engine(g, ExpansionKind::Node);
  for (const auto& [attack_name, attack] : attacks) {
    const VertexSet alive = VertexSet::full(n) - attack.faults;
    PruneEngineOptions popts;
    popts.finder.seed = seed + 1;
    const double eps = 1.0 - 1.0 / k;
    const PruneResult result = engine.run(alive, alpha, eps, popts);
    const Theorem21Check check =
        check_theorem21_size(n, alpha, attack.budget_used, k, result.survivors.count());
    const TraceVerification trace =
        verify_prune_trace(g, alive, result, ExpansionKind::Node, alpha * eps);

    // Expansion of H: bracket it (upper side is a real cut of H, so
    // "upper >= threshold" is the meaningful check).
    std::string h_expansion = "-";
    if (result.survivors.count() >= 2) {
      BracketOptions hopts = bopts;
      hopts.seed = seed + 2;
      const ExpansionBracket hb =
          expansion_bracket(g, result.survivors, ExpansionKind::Node, hopts);
      h_expansion = std::to_string(hb.upper).substr(0, 6);
    }
    table.row()
        .cell(family.name)
        .cell(std::size_t{n})
        .cell(alpha, 3)
        .cell(k, 2)
        .cell(std::size_t{attack.budget_used})
        .cell(attack_name)
        .cell(std::size_t{result.survivors.count()})
        .cell(check.size_bound, 4)
        .cell(bench::yesno(check.size_ok && check.precondition_ok))
        .cell(alpha * eps, 3)
        .cell(h_expansion)
        .cell(bench::yesno(trace.valid));
  }
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto scale = static_cast<vid>(cli.get_int("scale", 1));

  bench::print_header("E1",
                      "Theorem 2.1 — Prune keeps |H| >= n - k·f/α with expansion (1-1/k)·α "
                      "under any adversarial fault set with k·f/α <= n/4");

  Table table({"family", "n", "alpha", "k", "f", "attack", "|H|", "bound n-kf/a", "size ok",
               "thr (1-1/k)a", "exp(H) upper", "trace ok"});
  std::vector<Family> families;
  families.push_back({"rand-4-reg", random_regular(256 * scale, 4, seed)});
  families.push_back({"rand-6-reg", random_regular(256 * scale, 6, seed + 1)});
  families.push_back({"hypercube-8", hypercube(8)});
  for (const Family& family : families) {
    for (double k : {2.0, 4.0}) run(family, k, seed, table);
  }
  bench::print_table(
      table,
      "paper prediction: 'size ok' and 'trace ok' = yes everywhere, and exp(H) upper >= thr\n"
      "(exp(H) is the constructive upper bound of H's expansion bracket; thr = (1-1/k)·α).");
  return 0;
}
