// A3 — ablation: exact Dreyfus–Wagner vs metric-closure 2-approximation
// on the boundary-spanning trees used for span estimation.
#include "bench_common.hpp"

#include "core/traversal.hpp"
#include "span/compact_sets.hpp"
#include "span/steiner.hpp"
#include "topology/butterfly.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int samples = static_cast<int>(cli.get_int("samples", 25));

  bench::print_header("A3", "ablation — Steiner engines: Dreyfus–Wagner exact vs 2-approx MST");

  Table table({"graph", "sets", "mean approx/exact", "max approx/exact", "theory max",
               "exact ms/set", "approx ms/set"});

  struct Case {
    std::string name;
    Graph graph;
  };
  const Case cases[] = {
      {"mesh 8x8", Mesh::cube(8, 2).graph()},
      {"mesh 4x4x4", Mesh::cube(4, 3).graph()},
      {"butterfly d=4", butterfly(4).graph},
  };

  Rng rng(seed);
  for (const Case& c : cases) {
    const VertexSet all = VertexSet::full(c.graph.num_vertices());
    RunningStats ratio;
    double max_ratio = 0.0;
    double exact_ms = 0.0, approx_ms = 0.0;
    int used = 0;
    for (int s = 0; s < samples; ++s) {
      const vid target = 2 + static_cast<vid>(rng.uniform(c.graph.num_vertices() / 4));
      const VertexSet u = sample_compact_set(c.graph, target, rng.next());
      if (u.empty()) continue;
      const std::vector<vid> terminals = node_boundary(c.graph, all, u).to_vector();
      if (terminals.empty() ||
          !dreyfus_wagner_feasible(c.graph.num_vertices(),
                                   static_cast<vid>(terminals.size()))) {
        continue;
      }
      Timer te;
      const SteinerResult exact = steiner_exact(c.graph, terminals);
      exact_ms += te.millis();
      Timer ta;
      const SteinerResult approx = steiner_approx(c.graph, terminals);
      approx_ms += ta.millis();
      ++used;
      const double r = exact.tree_edges == 0
                           ? 1.0
                           : static_cast<double>(approx.tree_edges) / exact.tree_edges;
      ratio.add(r);
      if (r > max_ratio) max_ratio = r;
    }
    table.row()
        .cell(c.name)
        .cell(static_cast<long long>(used))
        .cell(used > 0 ? ratio.mean() : 0.0, 4)
        .cell(max_ratio, 4)
        .cell("2·(1-1/t)")
        .cell(used > 0 ? exact_ms / used : 0.0, 3)
        .cell(used > 0 ? approx_ms / used : 0.0, 3);
  }
  bench::print_table(
      table,
      "reading: the approximation stays well inside its 2x guarantee (typically < 1.15x on\n"
      "mesh boundaries) at a fraction of the exact engine's cost — justifying the dispatch\n"
      "thresholds in span/steiner.hpp for large-graph span estimation.");
  return 0;
}
