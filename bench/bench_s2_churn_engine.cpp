// S2 — churn re-pruning through one persistent PruneEngine.
//
// A churn process perturbs the alive set only slightly per round, so
// re-running a stateless prune loop from scratch every round wastes
// nearly all of its work: components, degrees and the Fiedler ordering
// barely change.  ScenarioRunner::run_churn threads every round through
// ONE engine whose workspace survives across rounds (ROADMAP: "reuse
// component state across *rounds*, not just within one run").
//
// This bench drives the identical churn fault stream three ways —
// per-round stateless prune2_reference, runner churn in deterministic
// mode, runner churn in fast mode — and reports total prune time and the
// engine telemetry (how many eigensolves fast mode skipped).
//
// Flags: --side=N (default 32), --steps=N (default 30), --p-leave, --p-join,
// --seed=S, --json=out.json (machine-readable results).
#include "bench_common.hpp"

#include <utility>

#include "api/runner.hpp"
#include "faults/churn.hpp"
#include "prune/prune2.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto side = static_cast<vid>(cli.get_int("side", 32));
  const int steps = static_cast<int>(cli.get_int("steps", 30));

  bench::print_header("S2-CHURN",
                      "Persistent PruneEngine across churn rounds vs per-round stateless "
                      "pruning (acceptance: engine beats stateless end-to-end)");

  Scenario scenario;
  scenario.name = "churn-mesh";
  scenario.topology = {"mesh", Params().set("side", static_cast<std::int64_t>(side))};
  scenario.prune.kind = ExpansionKind::Edge;
  scenario.prune.alpha = 2.0 / static_cast<double>(side);  // straight-line cut
  scenario.seed = seed;

  ChurnOptions copts;
  copts.steps = steps;
  copts.p_leave = cli.get_double("p-leave", 0.04);
  copts.p_join = cli.get_double("p-join", 0.2);
  copts.seed = seed + 17;

  // 1. Runner, deterministic: one engine, bit-identical per round to the
  //    stateless reference at the same finder seed.
  ScenarioRunner det_runner(scenario);
  Timer timer;
  const ChurnRunTrace det = det_runner.run_churn(copts);
  const double det_ms = timer.millis();

  // 2. Runner, fast mode: stale-sweep/warm-start/early-exit on top.
  Scenario fast_scenario = scenario;
  fast_scenario.prune.fast = true;
  ScenarioRunner fast_runner(fast_scenario);
  timer.reset();
  const ChurnRunTrace fast = fast_runner.run_churn(copts);
  const double fast_ms = timer.millis();

  // 3. Per-round stateless loop on the identical fault stream and finder
  //    seeds (ChurnProcess replays bit-identically).
  // Parity gate: per-round survivor *counts* must match, and the final
  // round's survivor *set* must be bit-identical (the trace only stores
  // counts per round; full per-round set identity is regression-tested in
  // tests/test_scenario_runner.cpp and tests/test_prune_engine.cpp).
  ChurnProcess process(det_runner.graph(), copts);
  double ref_ms = 0.0;
  bool det_matches_ref = true;
  for (int t = 0; t < steps; ++t) {
    (void)process.step();
    Prune2Options popts;
    popts.finder.seed = det.rounds[static_cast<std::size_t>(t)].finder_seed;
    timer.reset();
    const PruneResult r = prune2_reference(det_runner.graph(), process.alive(),
                                           det_runner.alpha(), det_runner.epsilon(), popts);
    ref_ms += timer.millis();
    det_matches_ref = det_matches_ref &&
                      r.survivors.count() == det.rounds[static_cast<std::size_t>(t)].survivors;
    if (t + 1 == steps) {
      det_matches_ref = det_matches_ref && det.final_survivors == r.survivors;
    }
  }

  Table table({"mode", "rounds", "total prune ms", "ms/round", "speedup vs stateless",
               "det == stateless"});
  table.row()
      .cell("stateless prune2_reference")
      .cell(steps)
      .cell(ref_ms, 1)
      .cell(ref_ms / steps, 2)
      .cell(1.0, 2)
      .cell("-");
  table.row()
      .cell("engine (deterministic)")
      .cell(steps)
      .cell(det_ms, 1)
      .cell(det_ms / steps, 2)
      .cell(ref_ms / det_ms, 2)
      .cell(bench::yesno(det_matches_ref));
  table.row()
      .cell("engine (fast)")
      .cell(steps)
      .cell(fast_ms, 1)
      .cell(fast_ms / steps, 2)
      .cell(ref_ms / fast_ms, 2)
      .cell("n/a (culls differ)");
  bench::print_table(
      table,
      "acceptance: the fast engine beats per-round stateless pruning; the deterministic\n"
      "row is the correctness control — survivor counts match the stateless reference\n"
      "every round and the final-round survivor set is bit-identical (fast mode culls\n"
      "different, still-certified sets; per-round set identity is regression-tested).");

  Table stats({"mode", "engine runs", "iters", "eigensolves", "stale sweeps", "stale hits",
               "disconnected culls", "relabel BFS", "relabel verts"});
  for (const auto& [mode, st] :
       {std::pair<const char*, EngineStats>{"deterministic", det_runner.engine_stats()},
        std::pair<const char*, EngineStats>{"fast", fast_runner.engine_stats()}}) {
    stats.row()
        .cell(mode)
        .cell(st.runs)
        .cell(st.iterations)
        .cell(st.eigensolves)
        .cell(st.stale_sweeps)
        .cell(st.stale_sweep_hits)
        .cell(st.disconnected_culls)
        .cell(st.relabel_bfs_calls)
        .cell(st.relabel_bfs_vertices);
  }
  bench::print_table(stats,
                     "fast mode's stale hits are eigensolves the engine never ran; relabel\n"
                     "totals show how little of the graph each round's cull actually touches.");

  const double speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;

  if (cli.has("json")) {
    bench::JsonReport json("bench_s2_churn_engine");
    json.top()
        .put("workload", "mesh " + std::to_string(side) + "x" + std::to_string(side) + ", " +
                             std::to_string(steps) + " churn rounds")
        .put("n", std::size_t{det_runner.graph().num_vertices()})
        .put("rounds", steps)
        .put("threads", bench::max_threads())
        .put("stateless_ms", ref_ms)
        .put("det_ms", det_ms)
        .put("fast_ms", fast_ms)
        .put("speedup", speedup)
        .put("det_matches_reference", det_matches_ref);
    for (const auto& [mode, ms] :
         {std::pair<const char*, double>{"stateless", ref_ms}, {"det", det_ms},
          {"fast", fast_ms}}) {
      json.record("modes").put("mode", mode).put("millis", ms).put(
          "speedup", ms > 0.0 ? ref_ms / ms : 0.0);
    }
    json.write(bench::json_path(cli, "bench_s2_churn_engine.json"));
  }

  std::cout << "\nfast engine vs stateless per-round: " << speedup << "x ("
            << (speedup > 1.0 ? "PASS" : "FAIL") << " > 1x), deterministic parity: "
            << (det_matches_ref ? "PASS" : "FAIL") << "\n";
  return (speedup > 1.0 && det_matches_ref) ? 0 : 1;
}
