// E6 — Theorem 3.6 + Lemma 3.7: the d-dimensional mesh has span 2.
//
// Three measurements:
//  (a) exact span of small meshes (exhaustive compact sets + exact Steiner);
//  (b) the constructive virtual-edge tree on sampled compact sets of larger
//      meshes: ratio <= 2 always (this is the theorem's own construction);
//  (c) Lemma 3.7 connectivity of (B, Ev) on every sampled set.
#include "bench_common.hpp"

#include <algorithm>

#include "span/compact_sets.hpp"
#include "span/mesh_span.hpp"
#include "span/span.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int samples = static_cast<int>(cli.get_int("samples", 40));

  bench::print_header("E6", "Theorem 3.6 — the d-dimensional mesh has span 2 "
                            "(Lemma 3.7: virtual boundary graphs are connected)");

  // (a) exact span of small meshes.
  Table exact_table({"mesh", "n", "compact sets", "exact span", "paper bound", "ok"});
  struct SmallCase {
    std::string name;
    Mesh mesh;
  };
  const SmallCase small_cases[] = {
      {"1D path-8", Mesh({8})},        {"2D 3x3", Mesh({3, 3})},
      {"2D 4x4", Mesh({4, 4})},        {"2D 3x5", Mesh({3, 5})},
      {"3D 2x2x2", Mesh::cube(2, 3)},  {"3D 3x3x2", Mesh({3, 3, 2})},
  };
  for (const SmallCase& c : small_cases) {
    const SpanResult r = exact_span(c.mesh.graph());
    exact_table.row()
        .cell(c.name)
        .cell(std::size_t{c.mesh.num_vertices()})
        .cell(r.sets_examined)
        .cell(r.span, 4)
        .cell(2.0, 2)
        .cell(bench::yesno(r.span <= 2.0 + 1e-9));
  }
  bench::print_table(exact_table,
                     "paper prediction: exact span <= 2 for every d >= 2 mesh "
                     "(1D meshes have span 1: compact sets are prefixes).");

  // (b)+(c) constructive tree + Lemma 3.7 on larger meshes.
  Table big_table({"mesh", "n", "sampled sets", "lemma 3.7 ok", "max tree ratio",
                   "paper bound", "max |B|"});
  struct BigCase {
    std::string name;
    Mesh mesh;
  };
  const BigCase big_cases[] = {
      {"2D 16x16", Mesh::cube(16, 2)},
      {"3D 6x6x6", Mesh::cube(6, 3)},
      {"4D 4x4x4x4", Mesh::cube(4, 4)},
  };
  Rng rng(seed);
  for (const BigCase& c : big_cases) {
    const vid n = c.mesh.num_vertices();
    int produced = 0;
    int lemma_ok = 0;
    double max_ratio = 0.0;
    vid max_boundary = 0;
    for (int s = 0; s < samples; ++s) {
      const vid target = 2 + static_cast<vid>(rng.uniform(n / 3));
      const VertexSet u = sample_compact_set(c.mesh.graph(), target, rng.next());
      if (u.empty()) continue;
      ++produced;
      if (virtual_boundary_connected(c.mesh, u)) ++lemma_ok;
      const ConstructiveSpanTree tree = mesh_boundary_span_tree(c.mesh, u);
      max_ratio = std::max(max_ratio, tree.ratio);
      max_boundary = std::max(max_boundary, tree.boundary_size);
    }
    big_table.row()
        .cell(c.name)
        .cell(std::size_t{n})
        .cell(static_cast<long long>(produced))
        .cell(std::to_string(lemma_ok) + "/" + std::to_string(produced))
        .cell(max_ratio, 4)
        .cell(2.0, 2)
        .cell(std::size_t{max_boundary});
  }
  bench::print_table(big_table,
                     "paper prediction: Lemma 3.7 holds for every compact set (connected count =\n"
                     "sample count) and the constructive tree never exceeds 2|B| - 1 nodes\n"
                     "(max tree ratio < 2).");
  return 0;
}
