// E6 — Theorem 3.6 + Lemma 3.7: the d-dimensional mesh has span 2.
//
// Three measurements, all produced by the campaign pipeline (this bench
// is the dogfooding port of DESIGN.md §9 — every mesh goes through
// TopologyRegistry/mesh_for() and the 'mesh_span' MetricsRegistry entry;
// no hand-built coordinate objects):
//  (a) exact span of small meshes (exhaustive compact sets + exact Steiner);
//  (b) the constructive virtual-edge tree on sampled compact sets of larger
//      meshes: ratio <= 2 always (this is the theorem's own construction);
//  (c) Lemma 3.7 connectivity of (B, Ev) on every sampled set.
//
// Flags: --samples=N (default 40, sampled sets per big mesh), --seed=S,
// --threads=N, --json=out.json (the aggregated campaign report).
#include "bench_common.hpp"

#include "api/campaign.hpp"
#include "api/scenario.hpp"

namespace fne {
namespace {

/// One campaign entry probing Theorem 3.6 on a side^dims mesh.
[[nodiscard]] CampaignEntry mesh_entry(const std::string& name, vid side, vid dims,
                                       int samples, std::uint64_t seed) {
  Scenario s;
  s.name = name;
  s.topology = {"mesh", Params{}
                            .set("side", static_cast<std::int64_t>(side))
                            .set("dims", static_cast<std::int64_t>(dims))};
  s.fault = {"random", Params{{"p", "0"}}};  // the theorem is about the fault-free mesh
  s.prune.kind = ExpansionKind::Edge;
  s.prune.alpha = 2.0 / static_cast<double>(side);
  s.metrics.fragmentation = false;
  s.metrics.requests = {
      {"mesh_span", Params{}.set("samples", static_cast<std::int64_t>(samples))}};
  s.seed = seed;
  return {std::move(s), std::nullopt};
}

}  // namespace
}  // namespace fne

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int samples = static_cast<int>(cli.get_int("samples", 40));
  const int threads = bench::threads_flag(cli);

  bench::print_header("E6", "Theorem 3.6 — the d-dimensional mesh has span 2 "
                            "(Lemma 3.7: virtual boundary graphs are connected)");

  // Small meshes get the exhaustive exact span (the metric turns it on
  // automatically at n <= 24); big meshes get the sampled constructive
  // tree.  Everything is one campaign over the engine cache.
  Campaign campaign;
  campaign.name = "e6_mesh_span";
  struct Case {
    const char* name;
    vid side, dims;
    bool big;
  };
  const Case cases[] = {
      {"1D path-8", 8, 1, false},  {"2D 3x3", 3, 2, false},      {"2D 4x4", 4, 2, false},
      {"3D 2x2x2", 2, 3, false},   {"2D 16x16", 16, 2, true},    {"3D 6x6x6", 6, 3, true},
      {"4D 4x4x4x4", 4, 4, true},
  };
  for (const Case& c : cases) {
    campaign.entries.push_back(mesh_entry(c.name, c.side, c.dims, c.big ? samples : 8, seed));
  }

  CampaignRunner runner(std::move(campaign));
  const CampaignReport report = runner.run(threads);

  Table exact_table({"mesh", "n", "compact sets", "exact span", "paper bound", "ok"});
  Table big_table({"mesh", "n", "sampled sets", "lemma 3.7 ok", "max tree ratio",
                   "paper bound", "max |B|"});
  for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
    const ScenarioReport& sr = report.scenarios[i];
    const JsonValue payload = JsonValue::parse(sr.runs.at(0).metrics.at(0).payload);
    if (!cases[i].big) {
      exact_table.row()
          .cell(sr.scenario.name)
          .cell(std::size_t{sr.n})
          .cell(static_cast<std::uint64_t>(payload.at("exact_sets").as_int()))
          .cell(payload.at("exact_span").as_number(), 4)
          .cell(2.0, 2)
          .cell(bench::yesno(payload.at("exact_bound_ok").as_bool()));
    } else {
      const auto produced = payload.at("sampled_sets").as_int();
      big_table.row()
          .cell(sr.scenario.name)
          .cell(std::size_t{sr.n})
          .cell(static_cast<long long>(produced))
          .cell(std::to_string(payload.at("lemma37_ok").as_int()) + "/" +
                std::to_string(produced))
          .cell(payload.at("max_tree_ratio").as_number(), 4)
          .cell(2.0, 2)
          .cell(static_cast<std::uint64_t>(payload.at("max_boundary").as_int()));
    }
  }
  bench::print_table(exact_table,
                     "paper prediction: exact span <= 2 for every d >= 2 mesh "
                     "(1D meshes have span 1: compact sets are prefixes).");
  bench::print_table(big_table,
                     "paper prediction: Lemma 3.7 holds for every compact set (connected count =\n"
                     "sample count) and the constructive tree never exceeds 2|B| - 1 nodes\n"
                     "(max tree ratio < 2).");

  if (cli.has("json")) {
    bench::write_json_text(bench::json_path(cli, "bench_e6_mesh_span.json"),
                           report.to_json());
  }
  return 0;
}
