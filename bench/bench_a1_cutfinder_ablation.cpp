// A1 — ablation: which cut-finder strategies realize the existential step
// of Prune?  We disable portfolio members one at a time and compare the
// quality (ratio found) and cost (wall time) of the violating sets.
#include "bench_common.hpp"

#include "expansion/cut_finder.hpp"
#include "expansion/exact.hpp"
#include "faults/fault_model.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("A1", "ablation — cut-finder portfolio (exhaustive / spectral / balls)");

  Table table({"graph", "n", "threshold", "config", "found", "ratio", "|S|", "ms"});

  struct Case {
    std::string name;
    Graph graph;
    double threshold;
  };
  std::vector<Case> cases;
  {
    const Mesh m = Mesh::cube(20, 2);
    cases.push_back({"mesh 20x20 (faulty)", m.graph(), 0.25});
  }
  cases.push_back({"rand 4-reg n=128", random_regular(128, 4, seed), 0.7});
  cases.push_back({"path P_18 (exact range)", Graph{}, 0.34});
  cases.back().graph = Mesh({18}).graph();  // 1-D mesh; threshold 0.34 > 1/9

  struct Config {
    std::string name;
    bool exact, spectral, balls;
  };
  const Config configs[] = {
      {"full portfolio", true, true, true},
      {"no exhaustive", false, true, true},
      {"spectral only", false, true, false},
      {"balls only", false, false, true},
  };

  for (const Case& c : cases) {
    const VertexSet alive = random_node_faults(c.graph, 0.1, seed + c.graph.num_vertices());
    for (const Config& config : configs) {
      CutFinderOptions opts;
      opts.use_exact = config.exact;
      opts.use_spectral = config.spectral;
      opts.use_balls = config.balls;
      opts.seed = seed;
      Timer timer;
      const auto hit =
          find_violating_set(c.graph, alive, ExpansionKind::Node, c.threshold, opts);
      const double ms = timer.millis();
      table.row()
          .cell(c.name)
          .cell(std::size_t{c.graph.num_vertices()})
          .cell(c.threshold, 3)
          .cell(config.name)
          .cell(bench::yesno(hit.has_value()))
          .cell(hit ? hit->expansion : -1.0, 4)
          .cell(hit ? std::size_t{hit->side.count()} : std::size_t{0})
          .cell(ms, 3);
    }
  }
  bench::print_table(
      table,
      "reading: the full portfolio should find violations whenever any single strategy does;\n"
      "spectral sweeps dominate on meshes, exhaustive mode is definitive on tiny pieces, and\n"
      "ball cuts are the cheap fallback.  This justifies the portfolio as the constructive\n"
      "substitute for the paper's existential 'while ∃ S_i' (DESIGN.md §1).");
  return 0;
}
