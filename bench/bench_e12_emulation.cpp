// E12 — §1.2: emulation of the fault-free mesh by its faulty self.
//
// Cole–Maggs–Sitaraman claim constant (amortized) slowdown for n^{1-ε}
// worst-case faults and (in the conference version) for constant random
// fault probability on the 2-D mesh.  We build the natural static
// embedding of the ideal mesh into the pruned survivors and measure the
// Leighton–Maggs–Rao slowdown proxy load + congestion + dilation.
#include "bench_common.hpp"

#include <cmath>

#include "analysis/embedding.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("E12",
                      "§1.2 — static emulation of the fault-free mesh by its pruned faulty "
                      "self: slowdown proxy load + congestion + dilation");

  Table table({"mesh", "n", "fault p", "|H|/n", "load", "congestion", "dilation",
               "avg dilation", "slowdown proxy", "paper"});

  struct Case {
    std::string name;
    Mesh mesh;
    double alpha_e;
  };
  const Case cases[] = {
      {"2D 16x16", Mesh::cube(16, 2), 2.0 / 16.0},
      {"2D 24x24", Mesh::cube(24, 2), 2.0 / 24.0},
      {"2D 32x32", Mesh::cube(32, 2), 2.0 / 32.0},
      {"3D 8x8x8", Mesh::cube(8, 3), 64.0 / 256.0},
  };

  for (const Case& c : cases) {
    const Graph& g = c.mesh.graph();
    const vid n = g.num_vertices();
    const double eps = 1.0 / (2.0 * g.max_degree());
    // Worst-case regime proxy: exactly n^{2/3} random-placed faults
    // (n^{1-ε} with ε = 1/3); random regime: constant p.
    const auto f_sub = static_cast<vid>(std::pow(static_cast<double>(n), 2.0 / 3.0));
    struct Regime {
      std::string label;
      VertexSet alive;
    };
    const Regime regimes[] = {
        {"n^(2/3) faults", random_exact_node_faults(g, f_sub, seed + n)},
        {"p = 0.05", random_node_faults(g, 0.05, seed + n + 1)},
        {"p = 0.10", random_node_faults(g, 0.10, seed + n + 2)},
    };
    for (const Regime& regime : regimes) {
      const PruneResult pruned = prune2(g, regime.alive, c.alpha_e, eps);
      if (pruned.survivors.count() < 2) continue;
      const SelfEmbedding e = embed_into_survivors(g, pruned.survivors);
      table.row()
          .cell(c.name + ", " + regime.label)
          .cell(std::size_t{n})
          .cell(1.0 - static_cast<double>(regime.alive.count()) / n, 3)
          .cell(static_cast<double>(pruned.survivors.count()) / n, 3)
          .cell(std::size_t{e.quality.load})
          .cell(e.quality.congestion)
          .cell(static_cast<std::size_t>(e.quality.dilation))
          .cell(e.quality.average_dilation, 3)
          .cell(e.quality.slowdown())
          .cell("O(1) slowdown");
    }
  }
  bench::print_table(
      table,
      "paper prediction (§1.2, Cole–Maggs–Sitaraman): slowdown stays a small constant —\n"
      "independent of n — in both the n^{1-ε} worst-case-fault and constant-p random-fault\n"
      "regimes (the LMR bound O(load + congestion + dilation) is what a step-by-step\n"
      "emulation would pay).");
  return 0;
}
