// E9 — §4 discussion: the pruned component of a faulty mesh keeps
// distances within O(log n) stretch (via the expansion-diameter relation
// diam = O(α^{-1} log n) of Leighton–Rao), generalizing the 2-D results
// of Raghavan / Kaklamanis et al. / Mathies to higher dimensions.
#include "bench_common.hpp"

#include <cmath>

#include "analysis/distance.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto pairs = static_cast<vid>(cli.get_int("pairs", 120));

  bench::print_header("E9", "§4 — pruned faulty meshes keep O(log n) distance stretch "
                            "and diameter O(α^{-1} log n)");

  Table table({"mesh", "n", "fault p", "|H|/n", "mean stretch", "max stretch", "log n",
               "diam(H) sampled", "fault-free diam", "alpha^-1 log n"});

  struct Case {
    std::string name;
    Mesh mesh;
    double alpha_e;
  };
  const Case cases[] = {
      {"2D 24x24", Mesh::cube(24, 2), 24.0 / 288.0},
      {"2D 32x32", Mesh::cube(32, 2), 32.0 / 512.0},
      {"3D 8x8x8", Mesh::cube(8, 3), 64.0 / 256.0},
  };

  for (const Case& c : cases) {
    const Graph& g = c.mesh.graph();
    const vid n = g.num_vertices();
    const VertexSet all = VertexSet::full(n);
    const double delta = g.max_degree();
    const double eps = 1.0 / (2.0 * delta);

    for (double p : {0.02, 0.05, 0.10}) {
      const VertexSet alive = random_node_faults(g, p, seed + static_cast<vid>(p * 1000) + n);
      Prune2Options opts;
      opts.finder.seed = seed;
      const PruneResult pruned = prune2(g, alive, c.alpha_e, eps, opts);
      if (pruned.survivors.count() < 2) continue;

      const StretchResult stretch =
          distance_stretch(g, all, pruned.survivors, pairs, seed + 7);
      const DistanceSample dist = sample_distances(g, pruned.survivors, 16, seed + 9);
      const DistanceSample ref = sample_distances(g, all, 16, seed + 9);

      table.row()
          .cell(c.name)
          .cell(std::size_t{n})
          .cell(p, 3)
          .cell(static_cast<double>(pruned.survivors.count()) / n, 3)
          .cell(stretch.stretch.count() > 0 ? stretch.stretch.mean() : 0.0, 3)
          .cell(stretch.max_stretch, 3)
          .cell(std::log2(static_cast<double>(n)), 3)
          .cell(std::size_t{dist.max_distance})
          .cell(std::size_t{ref.max_distance})
          .cell(std::log2(static_cast<double>(n)) / c.alpha_e, 4);
    }
  }
  bench::print_table(
      table,
      "paper prediction (§4): mean/max stretch stay O(log n) — in practice close to 1 for\n"
      "these p — and the pruned diameter stays below α_e^{-1}·log n across dimensions,\n"
      "matching Raghavan/Kaklamanis/Mathies in 2D and generalizing to d > 2.");
  return 0;
}
