// E11 — §1.1 (Leighton–Maggs / Upfal context): the multibutterfly keeps
// n - O(f) inputs and outputs connected under ANY f node faults, while
// the plain butterfly is far more fragile against targeted faults.
//
// We run the attack portfolio with equal budgets on both networks and
// report the I/O survival census.
#include "bench_common.hpp"

#include "faults/adversary.hpp"
#include "topology/butterfly.hpp"
#include "topology/multibutterfly.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const auto dims = static_cast<vid>(cli.get_int("dims", 7));

  bench::print_header("E11",
                      "§1.1 — multibutterfly keeps n - O(f) inputs/outputs under adversarial "
                      "faults; the plain butterfly does not");

  const Butterfly bf = butterfly(dims);
  const Multibutterfly mb = multibutterfly(dims, 2, seed);
  const vid n_inputs = vid{1} << dims;

  VertexSet bf_inputs(bf.graph.num_vertices());
  VertexSet bf_outputs(bf.graph.num_vertices());
  for (vid r = 0; r < bf.rows; ++r) {
    bf_inputs.set(bf.id_of(0, r));
    bf_outputs.set(bf.id_of(bf.levels - 1, r));
  }

  Table table({"network", "n_io", "attack", "f", "inputs alive", "outputs alive",
               "inputs lost / f", "paper"});

  auto run = [&](const std::string& name, const Graph& g, const VertexSet& inputs,
                 const VertexSet& outputs) {
    for (vid f : {n_inputs / 16, n_inputs / 8, n_inputs / 4}) {
      struct NamedAttack {
        std::string name;
        AttackResult attack;
      };
      const NamedAttack attacks[] = {
          {"random", random_attack(g, f, seed)},
          {"high-degree", high_degree_attack(g, f)},
          {"separator", separator_attack(g, f, seed)},
      };
      for (const auto& [attack_name, attack] : attacks) {
        const VertexSet alive = VertexSet::full(g.num_vertices()) - attack.faults;
        const IoConnectivity io = io_connectivity(g, alive, inputs, outputs);
        const vid lost = n_inputs - io.inputs_connected;
        table.row()
            .cell(name)
            .cell(std::size_t{n_inputs})
            .cell(attack_name)
            .cell(std::size_t{attack.budget_used})
            .cell(std::size_t{io.inputs_connected})
            .cell(std::size_t{io.outputs_connected})
            .cell(attack.budget_used > 0
                      ? static_cast<double>(lost) / attack.budget_used
                      : 0.0,
                  3)
            .cell(name == "multibutterfly" ? "lost = O(f)" : "(fragile)");
      }
    }
  };
  run("butterfly", bf.graph, bf_inputs, bf_outputs);
  run("multibutterfly", mb.graph, mb.inputs(), mb.outputs());

  bench::print_table(
      table,
      "paper prediction (§1.1, Leighton–Maggs): for the multibutterfly 'inputs lost / f' is a\n"
      "small constant for EVERY attack; the plain butterfly's unique-path structure makes it\n"
      "much more fragile under targeted (separator/high-degree) faults of the same budget.");
  return 0;
}
