// A2 — ablation: Lemma 3.3 compactification on/off inside Prune2.
//
// Without compactification the culled sets are still valid cuts, but they
// need not be compact — Claim 3.5 ("every maximal culled region is
// compact") is what the probabilistic argument of Theorem 3.4 counts, so
// turning it off breaks the *proof structure* even when the output looks
// similar.  The table quantifies both effects.
#include "bench_common.hpp"

#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"
#include "topology/mesh.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("A2", "ablation — Prune2 with and without Lemma 3.3 compactification");

  Table table({"mesh", "fault p", "compactify", "|H|", "iters", "culled", "trace ok",
               "all culled compact"});

  const double alpha_e = 32.0 / 512.0;
  const Mesh mesh = Mesh::cube(32, 2);
  const Graph& g = mesh.graph();
  const double eps = 1.0 / 8.0;

  // Fault rates high enough to actually fragment the grid fringe (site
  // survival threshold of the 2-D lattice is ~0.593, i.e. p ~ 0.407).
  for (double p : {0.15, 0.30, 0.40}) {
    const VertexSet alive = random_node_faults(g, p, seed + static_cast<vid>(1000 * p));
    for (bool compact_on : {true, false}) {
      Prune2Options opts;
      opts.compactify_enabled = compact_on;
      opts.finder.seed = seed;
      const PruneResult result = prune2(g, alive, alpha_e, eps, opts);
      const TraceVerification trace = verify_prune_trace(
          g, alive, result, ExpansionKind::Edge, alpha_e * eps, /*require_compact=*/false);
      const TraceVerification compact = verify_prune_trace(
          g, alive, result, ExpansionKind::Edge, alpha_e * eps, /*require_compact=*/true);
      table.row()
          .cell(mesh.graph().summary())
          .cell(p, 3)
          .cell(compact_on ? "on" : "off")
          .cell(std::size_t{result.survivors.count()})
          .cell(static_cast<long long>(result.iterations))
          .cell(std::size_t{result.total_culled})
          .cell(bench::yesno(trace.valid))
          .cell(bench::yesno(compact.valid));
    }
  }
  bench::print_table(
      table,
      "reading: with compactification ON every culled region is compact (Claim 3.5's invariant\n"
      "holds by construction); OFF may still produce a large H, but the compact-replay column\n"
      "can fail — the Theorem 3.4 counting argument no longer covers such runs.");
  return 0;
}
