// S1 — supplementary: the §1.3 application claims.
//
// "Research on load balancing has shown that if the expansion basically
// stays the same, the ability of a network to balance load basically
// stays the same", and "one can still achieve almost everywhere
// agreement".  We measure both applications directly on pruned faulty
// networks against their fault-free baselines.
#include "bench_common.hpp"

#include "analysis/agreement.hpp"
#include "analysis/load_balance.hpp"
#include "analysis/routing.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune.hpp"
#include "prune/prune2.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();

  bench::print_header("S1", "§1.3 applications — load balancing and almost-everywhere "
                            "agreement survive pruning");

  // --- load balancing -----------------------------------------------------
  Table lb({"network", "n", "fault p", "|H|/n", "rounds (fault-free)", "rounds (pruned H)",
            "ratio"});
  struct Case {
    std::string name;
    Graph graph;
    double alpha;
    bool edge_mode;
  };
  const Case cases[] = {
      {"mesh 16x16", Mesh::cube(16, 2).graph(), 2.0 / 16.0, true},
      {"rand 6-reg n=256", random_regular(256, 6, seed), 0.8, false},
  };
  for (const Case& c : cases) {
    const Graph& g = c.graph;
    const VertexSet all = VertexSet::full(g.num_vertices());
    DiffusionOptions dopts;
    dopts.tolerance = 0.05;
    const DiffusionResult clean =
        diffuse_point_load(g, all, 0, static_cast<double>(g.num_vertices()), dopts);
    for (double p : {0.03, 0.08}) {
      const VertexSet alive = random_node_faults(g, p, seed + static_cast<vid>(p * 100));
      const double eps = 1.0 / (2.0 * g.max_degree());
      const PruneResult pruned = c.edge_mode ? prune2(g, alive, c.alpha, eps)
                                             : prune(g, alive, c.alpha, 0.5);
      if (pruned.survivors.count() < 2) continue;
      const DiffusionResult faulty =
          diffuse_point_load(g, pruned.survivors, pruned.survivors.first(),
                             static_cast<double>(pruned.survivors.count()), dopts);
      lb.row()
          .cell(c.name)
          .cell(std::size_t{g.num_vertices()})
          .cell(p, 3)
          .cell(static_cast<double>(pruned.survivors.count()) / g.num_vertices(), 3)
          .cell(static_cast<long long>(clean.rounds))
          .cell(static_cast<long long>(faulty.rounds))
          .cell(clean.rounds > 0 ? static_cast<double>(faulty.rounds) / clean.rounds : 0.0, 3);
    }
  }
  bench::print_table(lb,
                     "paper prediction (§1.3, citing Ghosh et al.): rounds-to-balance on the\n"
                     "pruned component stays within a small constant of the fault-free count\n"
                     "(diffusion rate is governed by λ2, which pruning preserves).");

  // --- almost-everywhere agreement ----------------------------------------
  Table ag({"network", "n", "byzantine", "fault p", "agreeing honest fraction", "rounds"});
  for (const Case& c : cases) {
    const Graph& g = c.graph;
    Rng rng(seed + 1);
    for (double p : {0.0, 0.05}) {
      const VertexSet alive =
          p == 0.0 ? VertexSet::full(g.num_vertices())
                   : random_node_faults(g, p, seed + 13);
      const PruneResult pruned = c.edge_mode
                                     ? prune2(g, alive, c.alpha, 1.0 / (2.0 * g.max_degree()))
                                     : prune(g, alive, c.alpha, 0.5);
      if (pruned.survivors.count() < 8) continue;
      // ~2% Byzantine among survivors.
      const std::vector<vid> verts = pruned.survivors.to_vector();
      VertexSet byz(g.num_vertices());
      const vid byz_count = std::max<vid>(1, static_cast<vid>(verts.size()) / 50);
      for (vid i : rng.sample_without_replacement(static_cast<vid>(verts.size()), byz_count)) {
        byz.set(verts[i]);
      }
      AgreementOptions aopts;
      aopts.seed = seed + 2;
      const AgreementResult r =
          iterated_majority_agreement(g, pruned.survivors, byz, aopts);
      ag.row()
          .cell(c.name)
          .cell(std::size_t{pruned.survivors.count()})
          .cell(std::size_t{byz_count})
          .cell(p, 3)
          .cell(r.agreement_fraction, 4)
          .cell(static_cast<long long>(r.rounds));
    }
  }
  bench::print_table(ag,
                     "paper prediction (§1.3, citing Upfal / Ben-Or–Ron): almost-everywhere\n"
                     "agreement — all but a small fraction of honest survivors settle on the\n"
                     "initial majority bit, with or without pruning-level faults.");

  // --- permutation routing -------------------------------------------------
  Table rt({"network", "n", "fault p", "|H|/n", "congestion (fault-free)",
            "congestion (pruned H)", "ratio"});
  for (const Case& c : cases) {
    const Graph& g = c.graph;
    const VertexSet all = VertexSet::full(g.num_vertices());
    const RoutingResult clean = route_random_permutation(g, all, seed + 31);
    for (double p : {0.03, 0.08}) {
      const VertexSet alive = random_node_faults(g, p, seed + static_cast<vid>(p * 100));
      const double eps = 1.0 / (2.0 * g.max_degree());
      const PruneResult pruned = c.edge_mode ? prune2(g, alive, c.alpha, eps)
                                             : prune(g, alive, c.alpha, 0.5);
      if (pruned.survivors.count() < 2) continue;
      const RoutingResult faulty = route_random_permutation(g, pruned.survivors, seed + 31);
      rt.row()
          .cell(c.name)
          .cell(std::size_t{g.num_vertices()})
          .cell(p, 3)
          .cell(static_cast<double>(pruned.survivors.count()) / g.num_vertices(), 3)
          .cell(clean.max_edge_load)
          .cell(faulty.max_edge_load)
          .cell(clean.max_edge_load > 0
                    ? static_cast<double>(faulty.max_edge_load) / clean.max_edge_load
                    : 0.0,
                3);
    }
  }
  bench::print_table(rt,
                     "paper prediction (§1.3, citing Scheideler): permutation-routing congestion\n"
                     "scales as ~1/α_e; since pruning preserves the expansion, congestion on H\n"
                     "stays within a small constant of the fault-free value.");
  return 0;
}
