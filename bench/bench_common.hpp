// Shared scaffolding for the experiment benches.
//
// Every E*/A* binary regenerates one experiment from EXPERIMENTS.md: it
// prints a header naming the paper claim, then a markdown table whose
// rows include the paper's predicted quantity next to the measured one.
// All binaries run with no arguments (CI mode: small sizes, seconds of
// runtime) and accept --scale=N / --trials=N / --samples=N to grow the
// workloads.  Setting the environment variable FNE_CSV_DIR additionally
// dumps every printed table as CSV into that directory for plotting.
//
// Perf benches additionally accept --json=out.json and emit a
// machine-readable JsonReport (workload, millis, speedups, thread count)
// so CI can archive BENCH_*.json artifacts and the perf trajectory of a
// kernel is a diffable file, not a scrollback screenshot.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne::bench {

/// OpenMP worker count the process would use (1 when built without it);
/// reported in JSON results so perf numbers are attributable.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

namespace detail {
inline std::string& current_experiment() {
  static std::string id = "experiment";
  return id;
}
inline int& table_counter() {
  static int counter = 0;
  return counter;
}
}  // namespace detail

inline void print_header(const std::string& id, const std::string& claim) {
  detail::current_experiment() = id;
  detail::table_counter() = 0;
  std::cout << "\n=== " << id << " — " << claim << " ===\n\n";
}

inline void print_table(const Table& table, const std::string& note = "") {
  table.print(std::cout);
  if (!note.empty()) std::cout << "\n" << note << "\n";
  std::cout.flush();
  if (const char* dir = std::getenv("FNE_CSV_DIR"); dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + detail::current_experiment() + "_t" +
                             std::to_string(detail::table_counter()++) + ".csv";
    std::ofstream out(path);
    if (out) {
      table.write_csv(out);
      std::cout << "(csv written to " << path << ")\n";
    }
  }
}

inline const char* yesno(bool b) { return b ? "yes" : "NO"; }

/// Resolve the --json flag to a file path: bare `--json` parses as the
/// value "1" and means "use the bench's default filename".  (Alias for
/// the shared util/cli helper; the CLI and every bench resolve the flag
/// the same way.)
inline std::string json_path(const Cli& cli, const std::string& fallback) {
  return json_flag_path(cli, fallback);
}

/// Resolve --threads for scaling benches: absent defaults to hardware
/// concurrency (never less than 1), explicit values are validated.
inline int threads_flag(const Cli& cli) { return cli.get_threads(0); }

/// Write an already-encoded JSON document (e.g. CampaignReport::to_json)
/// to `path`, with the same stderr status convention as JsonReport::write.
inline bool write_json_text(const std::string& path, const std::string& encoded) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write json report to " << path << "\n";
    return false;
  }
  out << encoded << "\n";
  std::cerr << "(json written to " << path << ")\n";
  return true;
}

/// Machine-readable bench results (see util/json.hpp): top-level scalars
/// (workload, millis, speedup, threads, pass/fail) plus named arrays of
/// per-row records, written to the --json=path file.
using JsonObject = fne::JsonObject;
using JsonReport = fne::JsonReport;

}  // namespace fne::bench
