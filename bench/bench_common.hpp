// Shared scaffolding for the experiment benches.
//
// Every E*/A* binary regenerates one experiment from EXPERIMENTS.md: it
// prints a header naming the paper claim, then a markdown table whose
// rows include the paper's predicted quantity next to the measured one.
// All binaries run with no arguments (CI mode: small sizes, seconds of
// runtime) and accept --scale=N / --trials=N / --samples=N to grow the
// workloads.  Setting the environment variable FNE_CSV_DIR additionally
// dumps every printed table as CSV into that directory for plotting.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fne::bench {

namespace detail {
inline std::string& current_experiment() {
  static std::string id = "experiment";
  return id;
}
inline int& table_counter() {
  static int counter = 0;
  return counter;
}
}  // namespace detail

inline void print_header(const std::string& id, const std::string& claim) {
  detail::current_experiment() = id;
  detail::table_counter() = 0;
  std::cout << "\n=== " << id << " — " << claim << " ===\n\n";
}

inline void print_table(const Table& table, const std::string& note = "") {
  table.print(std::cout);
  if (!note.empty()) std::cout << "\n" << note << "\n";
  std::cout.flush();
  if (const char* dir = std::getenv("FNE_CSV_DIR"); dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + detail::current_experiment() + "_t" +
                             std::to_string(detail::table_counter()++) + ".csv";
    std::ofstream out(path);
    if (out) {
      table.write_csv(out);
      std::cout << "(csv written to " << path << ")\n";
    }
  }
}

inline const char* yesno(bool b) { return b ? "yes" : "NO"; }

}  // namespace fne::bench
