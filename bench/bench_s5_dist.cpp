// S5 — fault-tolerant distributed campaign execution (DESIGN.md §12).
//
// Acceptance claims:
//
//   1. Correctness under distribution: the coordinator + W pull workers
//      produce a deterministic payload BYTE-identical to the local
//      CampaignRunner — verified on every mode below.
//
//   2. Correctness under chaos: the same holds with every worker behind
//      a seeded FaultyTransport (drops + corruption + disconnects);
//      faults cost retries, never results.
//
//   3. Graceful degradation: a coordinator with ZERO workers completes
//      via its local executor within --max-overhead of the plain local
//      runner (default 2.0; the gap is scheduler polling, not compute).
//
// Flags: --reps=N (catalog repetitions, default 1), --threads=N
// (coordinator local width, default: hardware), --workers=W (default 2),
// --max-overhead=X, --seed=S, --json=out.json.
#include "bench_common.hpp"

#include <memory>
#include <thread>
#include <vector>

#include "api/campaign.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"

namespace {

struct DistResult {
  std::string payload;
  double millis = 0.0;
  fne::DistStats stats;
};

[[nodiscard]] DistResult run_dist(const fne::Campaign& campaign, int local_threads, int workers,
                                  const fne::FaultSchedule& faults) {
  using namespace fne;
  DistOptions opts;
  opts.local_threads = local_threads;
  opts.job_timeout_ms = 2000;
  opts.heartbeat_ms = 100;
  opts.retry_budget = 3;
  opts.backoff_base_ms = 10;
  opts.backoff_max_ms = 200;
  opts.idle_grace_ms = 100;
  opts.poll_ms = 10;

  EngineCache::instance().clear();
  Timer timer;
  DistCoordinator coordinator(campaign, opts);
  std::vector<std::unique_ptr<DistWorker>> pool;
  std::vector<std::thread> threads;
  for (int i = 0; i < workers; ++i) {
    WorkerOptions w;
    w.port = coordinator.port();
    w.name = "bench-" + std::to_string(i);
    w.recv_timeout_ms = 25;
    w.idle_timeout_ms = 1000;
    w.faults = faults;
    w.faults.seed += static_cast<std::uint64_t>(i) * 7919;
    pool.push_back(std::make_unique<DistWorker>(campaign, w));
    threads.emplace_back([p = pool.back().get()] { (void)p->run(); });
  }
  const CampaignReport report = coordinator.run();
  DistResult out;
  out.millis = timer.millis();
  for (const auto& w : pool) w->stop();
  for (std::thread& th : threads) th.join();
  out.payload = report.to_json(/*include_timing=*/false);
  out.stats = coordinator.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fne;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_seed();
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  const int threads = bench::threads_flag(cli);
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const double max_overhead = cli.get_double("max-overhead", 2.0);

  bench::print_header("S5-DIST",
                      "Distributed campaign execution: coordinator + pull workers over TCP "
                      "loopback; payload byte-identical to local under clean, chaotic and "
                      "zero-worker conditions; zero-worker degradation within the overhead "
                      "budget");

  bench::JsonReport json("bench_s5_dist");
  json.top().put("reps", reps).put("threads", threads).put("workers", workers);

  Campaign campaign = catalog_campaign(reps);
  for (CampaignEntry& e : campaign.entries) e.scenario.seed += seed;
  std::cout << "campaign: " << campaign.entries.size() << " scenarios x " << reps
            << " repetitions, " << workers << " workers, " << threads
            << " coordinator threads\n\n";

  // Local reference.
  EngineCache::instance().clear();
  Timer timer;
  CampaignRunner runner(campaign);
  const std::string reference = runner.run(threads).to_json(/*include_timing=*/false);
  const double local_ms = timer.millis();

  // Clean distributed run.
  const DistResult clean = run_dist(campaign, threads, workers, FaultSchedule{});

  // Chaotic distributed run: every worker drops, corrupts and
  // disconnects on a seeded schedule.
  FaultSchedule chaos;
  chaos.seed = seed + 101;
  chaos.drop = 0.1;
  chaos.corrupt = 0.05;
  chaos.disconnect = 0.05;
  const DistResult faulty = run_dist(campaign, threads, workers, chaos);

  // Zero-worker degradation.
  const DistResult fallback = run_dist(campaign, threads, 0, FaultSchedule{});
  const double overhead = local_ms > 0.0 ? fallback.millis / local_ms : 0.0;

  Table table({"mode", "workers", "ms", "remote", "local", "requeues", "rejected",
               "payload identical"});
  table.row().cell("local runner").cell("-").cell(local_ms, 4).cell("-").cell("-").cell("-")
      .cell("-").cell("-");
  const auto add = [&](const char* mode, int w, const DistResult& r) {
    const bool same = r.payload == reference;
    table.row()
        .cell(mode)
        .cell(w)
        .cell(r.millis, 4)
        .cell(r.stats.remote_cells + r.stats.remote_metrics)
        .cell(r.stats.local_cells + r.stats.local_metrics)
        .cell(r.stats.requeues)
        .cell(r.stats.rejected_corrupt + r.stats.rejected_wrong_key +
              r.stats.rejected_bad_payload)
        .cell(bench::yesno(same));
    json.record("modes")
        .put("mode", mode)
        .put("workers", w)
        .put("millis", r.millis)
        .put("requeues", static_cast<std::int64_t>(r.stats.requeues))
        .put("payload_identical", same);
    return same;
  };
  const bool clean_same = add("dist clean", workers, clean);
  const bool chaos_same = add("dist chaos", workers, faulty);
  const bool fallback_same = add("dist no workers", 0, fallback);
  bench::print_table(table,
                     "every mode must reproduce the local runner's deterministic payload\n"
                     "byte for byte; chaos buys requeues/rejections, never different bits.");

  const bool overhead_ok = overhead <= max_overhead;
  const bool pass = clean_same && chaos_same && fallback_same && overhead_ok;
  json.top()
      .put("local_millis", local_ms)
      .put("fallback_overhead", overhead)
      .put("max_overhead", max_overhead)
      .put("pass", pass);
  if (cli.has("json")) json.write(bench::json_path(cli, "bench_s5_dist.json"));

  std::cout << "\npayload identical (clean / chaos / no-workers): "
            << (clean_same ? "PASS" : "FAIL") << " / " << (chaos_same ? "PASS" : "FAIL")
            << " / " << (fallback_same ? "PASS" : "FAIL")
            << "\nzero-worker overhead vs local: " << overhead << "x (threshold "
            << max_overhead << "x: " << (overhead_ok ? "PASS" : "FAIL") << ")\n";
  return pass ? 0 : 1;
}
