// EngineCache byte-budget contracts (DESIGN.md §13): memory accounting,
// LRU eviction of unleased entries, the eviction counters/gauges, lease
// safety (a leased engine is never evicted), and the property the whole
// design leans on — eviction CANNOT change results.  The determinism
// matrix at the bottom runs one campaign under {no budget, a budget so
// tight every lease thrashes, a budget imposed mid-run} × threads
// {1, 2, 4} and requires the deterministic payload byte-identical
// throughout.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/campaign.hpp"
#include "api/executor.hpp"
#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "prune/engine.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

/// Every budget test owns the process cache: clear it, zero the budget,
/// restore on exit so test order cannot leak state.
class CacheBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineCache::instance().set_budget_bytes(0);
    EngineCache::instance().clear();
  }
  void TearDown() override {
    EngineCache::instance().set_budget_bytes(0);
    EngineCache::instance().clear();
  }

  static Params mesh_params(int side) {
    return Params{{"side", std::to_string(side)}, {"dims", "2"}};
  }
};

TEST_F(CacheBudgetTest, GraphMemoryBytesScalesWithSize) {
  const Graph small = Mesh::cube(8, 2).graph();
  const Graph large = Mesh::cube(32, 2).graph();
  EXPECT_GT(small.memory_bytes(), sizeof(Graph));
  EXPECT_GT(large.memory_bytes(), 10 * small.memory_bytes())
      << "16x the vertices must dominate the fixed overhead";
}

TEST_F(CacheBudgetTest, EngineMemoryBytesGrowsWithUse) {
  const Graph g = Mesh::cube(16, 2).graph();
  PruneEngine engine(g, ExpansionKind::Node);
  const std::size_t fresh = engine.memory_bytes();
  const VertexSet alive = VertexSet::full(g.num_vertices());
  (void)engine.run(alive, 0.25, 0.1);
  EXPECT_GT(engine.memory_bytes(), fresh)
      << "a run warms the workspace pools; the footprint must see them";
}

TEST_F(CacheBudgetTest, ResidencyTracksInsertsLeasesAndClear) {
  EngineCache& cache = EngineCache::instance();
  EXPECT_EQ(cache.stats().bytes_resident, 0u);

  const auto g = cache.graph("mesh", mesh_params(12), 0);
  const std::uint64_t graph_bytes = cache.stats().bytes_resident;
  EXPECT_EQ(graph_bytes, g->memory_bytes());

  // A leased engine is the lease's, not the cache's: residency holds
  // only the graph until the engine is returned.
  {
    EngineLease lease = cache.lease("mesh", mesh_params(12), 0, ExpansionKind::Node);
    EXPECT_EQ(cache.stats().bytes_resident, graph_bytes);
  }
  EXPECT_GT(cache.stats().bytes_resident, graph_bytes) << "release re-pools the engine";
  EXPECT_GE(cache.stats().peak_bytes, cache.stats().bytes_resident);

  cache.clear();
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
  EXPECT_GT(cache.stats().peak_bytes, 0u) << "the high-water mark survives clear()";
}

TEST_F(CacheBudgetTest, ZeroBudgetMeansUnbounded) {
  EngineCache& cache = EngineCache::instance();
  const EngineCacheStats before = cache.stats();
  for (int side = 8; side <= 20; side += 4) (void)cache.graph("mesh", mesh_params(side), 0);
  EXPECT_EQ((cache.stats() - before).evictions, 0u);
  EXPECT_EQ(cache.cached_graphs(), 4u);
}

TEST_F(CacheBudgetTest, BudgetEvictsLeastRecentlyUsedGraphFirst)
{
  EngineCache& cache = EngineCache::instance();
  const EngineCacheStats start = cache.stats();
  const auto a = cache.graph("mesh", mesh_params(10), 0);
  const auto b = cache.graph("mesh", mesh_params(11), 0);
  const auto c = cache.graph("mesh", mesh_params(12), 0);
  // Touch a and c so b is the LRU entry.
  (void)cache.graph("mesh", mesh_params(10), 0);
  (void)cache.graph("mesh", mesh_params(12), 0);

  const std::uint64_t resident = cache.stats().bytes_resident;
  cache.set_budget_bytes(resident - 1);  // one eviction's worth of pressure
  EXPECT_EQ((cache.stats() - start).evictions, 1u);
  EXPECT_EQ(cache.cached_graphs(), 2u);
  // b rebuilt => build counter moves; a and c still hit.
  const EngineCacheStats before = cache.stats();
  (void)cache.graph("mesh", mesh_params(10), 0);
  (void)cache.graph("mesh", mesh_params(12), 0);
  EXPECT_EQ((cache.stats() - before).graph_builds, 0u);
  (void)cache.graph("mesh", mesh_params(11), 0);
  EXPECT_EQ((cache.stats() - before).graph_builds, 1u) << "the LRU victim was b";
}

TEST_F(CacheBudgetTest, EvictingAGraphAlsoEvictsItsIdleEngines) {
  EngineCache& cache = EngineCache::instance();
  const EngineCacheStats before = cache.stats();
  { EngineLease l = cache.lease("mesh", mesh_params(10), 0, ExpansionKind::Node); }
  EXPECT_EQ(cache.idle_engines(), 1u);
  cache.set_budget_bytes(1);  // nothing fits
  EXPECT_EQ(cache.cached_graphs(), 0u);
  EXPECT_EQ(cache.idle_engines(), 0u)
      << "an idle engine pinning an evicted graph must go with it";
  EXPECT_EQ((cache.stats() - before).evictions, 2u);
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST_F(CacheBudgetTest, LeasedEnginesSurviveAnyBudget) {
  EngineCache& cache = EngineCache::instance();
  EngineLease lease = cache.lease("mesh", mesh_params(10), 0, ExpansionKind::Node);
  cache.set_budget_bytes(1);
  // The graph entry was evicted, but the lease's shared_ptr keeps the
  // graph alive and the engine is untouched: runs still work.
  const VertexSet alive = VertexSet::full(lease.graph().num_vertices());
  const PruneResult r = lease.engine().run(alive, 0.25, 0.1);
  EXPECT_GT(r.survivors.count(), 0u);
  lease.release();  // over-budget release: engine is measured, then evicted
  EXPECT_EQ(cache.idle_engines(), 0u);
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST_F(CacheBudgetTest, ThrashingBudgetStillServesEveryLease) {
  EngineCache& cache = EngineCache::instance();
  cache.set_budget_bytes(1);
  const EngineCacheStats before = cache.stats();
  for (int i = 0; i < 3; ++i) {
    EngineLease lease = cache.lease("mesh", mesh_params(10), 0, ExpansionKind::Node);
    const VertexSet alive = VertexSet::full(lease.graph().num_vertices());
    (void)lease.engine().run(alive, 0.25, 0.1);
  }
  const EngineCacheStats delta = cache.stats() - before;
  EXPECT_EQ(delta.leases, 3u);
  EXPECT_EQ(delta.engine_builds, 3u) << "every lease cold-builds under a 1-byte budget";
  EXPECT_GE(delta.evictions, 3u);
}

// ---------------------------------------------------------------------------
// Eviction determinism (the satellite matrix): one campaign, identical
// deterministic payload under every budget schedule and thread count.
// ---------------------------------------------------------------------------

[[nodiscard]] Campaign budget_probe_campaign() {
  // Two topologies so eviction has real churn, sweeps + metrics so the
  // payload exercises every report shape.
  return campaign_from_json(R"({
    "name": "budget-probe",
    "scenarios": [
      {"name": "m12", "topology": {"name": "mesh", "params": {"side": 12, "dims": 2}},
       "fault": {"name": "random", "params": {"p": 0.12}},
       "prune": {"kind": "node", "alpha": 0.25}, "repetitions": 3},
      {"name": "m14-sweep", "topology": {"name": "mesh", "params": {"side": 14, "dims": 2}},
       "fault": {"name": "random", "params": {"p": 0.1}},
       "prune": {"kind": "edge", "alpha": 0.125},
       "sweep": {"param": "p", "values": [0.05, 0.15], "mode": "monotone"}},
      {"name": "hc8", "topology": {"name": "hypercube", "params": {"dims": 8}},
       "fault": {"name": "random", "params": {"p": 0.1}},
       "prune": {"kind": "node", "alpha": 0.25}, "repetitions": 2}
    ]})");
}

TEST(CacheBudgetDeterminismSlow, PayloadByteIdenticalUnderEvictionSchedules) {
  EngineCache& cache = EngineCache::instance();
  cache.set_budget_bytes(0);
  cache.clear();

  // Reference: unbounded cache, single thread.
  CampaignRunner ref_runner(budget_probe_campaign());
  const std::string reference = ref_runner.run(1).to_json(/*include_timing=*/false);

  for (const int threads : {1, 2, 4}) {
    // (a) no budget, warm cache from the previous lap.
    {
      SCOPED_TRACE("no budget, threads=" + std::to_string(threads));
      CampaignRunner runner(budget_probe_campaign());
      EXPECT_EQ(runner.run(threads).to_json(false), reference);
    }
    // (b) a budget so tight every lease is a cold rebuild (thrash).
    {
      SCOPED_TRACE("thrash budget, threads=" + std::to_string(threads));
      cache.set_budget_bytes(1);
      const EngineCacheStats before = cache.stats();
      CampaignRunner runner(budget_probe_campaign());
      EXPECT_EQ(runner.run(threads).to_json(false), reference);
      EXPECT_GT((cache.stats() - before).evictions, 0u) << "the budget must actually thrash";
      cache.set_budget_bytes(0);
    }
    // (c) budget imposed mid-run: warm the cache, then clamp it while
    // entries are resident, then run again.
    {
      SCOPED_TRACE("mid-run clamp, threads=" + std::to_string(threads));
      CampaignRunner warm(budget_probe_campaign());
      EXPECT_EQ(warm.run(threads).to_json(false), reference);
      cache.set_budget_bytes(cache.stats().bytes_resident / 2);  // evicts ~half NOW
      CampaignRunner runner(budget_probe_campaign());
      EXPECT_EQ(runner.run(threads).to_json(false), reference);
      cache.set_budget_bytes(0);
    }
  }
  cache.set_budget_bytes(0);
  cache.clear();
}

}  // namespace
}  // namespace fne
