#include "topology/multibutterfly.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "faults/adversary.hpp"
#include "faults/fault_model.hpp"
#include "topology/butterfly.hpp"

namespace fne {
namespace {

TEST(Multibutterfly, StructureCounts) {
  const Multibutterfly mb = multibutterfly(4, 2, 7);
  EXPECT_EQ(mb.rows, 16U);
  EXPECT_EQ(mb.levels, 5U);
  EXPECT_EQ(mb.graph.num_vertices(), 80U);
  EXPECT_EQ(mb.inputs().count(), 16U);
  EXPECT_EQ(mb.outputs().count(), 16U);
}

TEST(Multibutterfly, IsConnected) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Multibutterfly mb = multibutterfly(5, 2, seed);
    EXPECT_TRUE(is_connected(mb.graph, VertexSet::full(mb.graph.num_vertices())))
        << "seed=" << seed;
  }
}

TEST(Multibutterfly, EdgesRespectLevelStructure) {
  const Multibutterfly mb = multibutterfly(4, 2, 3);
  for (const Edge& e : mb.graph.edges()) {
    EXPECT_EQ(mb.level_of(e.v), mb.level_of(e.u) + 1);
  }
}

TEST(Multibutterfly, EdgesStayInsideBlocks) {
  // An edge from level l must keep the top l row bits (same block).
  const Multibutterfly mb = multibutterfly(4, 2, 5);
  for (const Edge& e : mb.graph.edges()) {
    const vid l = mb.level_of(e.u);
    const vid shift = mb.dims - l;
    EXPECT_EQ(mb.row_of(e.u) >> shift, mb.row_of(e.v) >> shift);
  }
}

TEST(Multibutterfly, ForwardDegreeIsTwiceSplitterDegree) {
  const Multibutterfly mb = multibutterfly(4, 2, 9);
  for (vid r = 0; r < mb.rows; ++r) {
    vid forward = 0;
    for (vid w : mb.graph.neighbors(mb.id_of(0, r))) {
      if (mb.level_of(w) == 1) ++forward;
    }
    EXPECT_EQ(forward, 4U) << "row " << r;  // 2 directions x degree 2
  }
}

TEST(Multibutterfly, DeterministicUnderSeed) {
  const Multibutterfly a = multibutterfly(4, 2, 11);
  const Multibutterfly b = multibutterfly(4, 2, 11);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(Multibutterfly, ToleratesRandomFaultsBetterThanStructureLoss) {
  // §1.1 Leighton–Maggs: n - O(f) inputs stay connected.
  const Multibutterfly mb = multibutterfly(6, 2, 13);
  const vid f = 16;
  const AttackResult attack = random_attack(mb.graph, f, 3);
  const VertexSet alive = VertexSet::full(mb.graph.num_vertices()) - attack.faults;
  const IoConnectivity io = io_connectivity(mb.graph, alive, mb.inputs(), mb.outputs());
  EXPECT_GE(io.inputs_connected + 2 * f, mb.rows);
  EXPECT_GE(io.outputs_connected + 2 * f, mb.rows);
}

TEST(IoConnectivity, CountsOnlyLargestComponent) {
  const Butterfly bf = butterfly(3);
  VertexSet alive = VertexSet::full(bf.graph.num_vertices());
  VertexSet inputs(bf.graph.num_vertices());
  VertexSet outputs(bf.graph.num_vertices());
  for (vid r = 0; r < bf.rows; ++r) {
    inputs.set(bf.id_of(0, r));
    outputs.set(bf.id_of(bf.levels - 1, r));
  }
  const IoConnectivity full = io_connectivity(bf.graph, alive, inputs, outputs);
  EXPECT_EQ(full.inputs_connected, bf.rows);
  EXPECT_EQ(full.outputs_connected, bf.rows);

  // Killing input row 0's two level-1 neighbors isolates BOTH inputs 0
  // and 1 (rows 0 and 1 share their level-1 targets — exactly the
  // butterfly fragility §1.1 contrasts with the multibutterfly).
  for (vid w : bf.graph.neighbors(bf.id_of(0, 0))) alive.reset(w);
  const IoConnectivity cut = io_connectivity(bf.graph, alive, inputs, outputs);
  EXPECT_EQ(cut.inputs_connected, bf.rows - 2);
}

TEST(IoConnectivity, EmptyAliveSet) {
  const Butterfly bf = butterfly(2);
  const IoConnectivity io = io_connectivity(bf.graph, VertexSet(bf.graph.num_vertices()),
                                            VertexSet(bf.graph.num_vertices()),
                                            VertexSet(bf.graph.num_vertices()));
  EXPECT_EQ(io.largest_component, 0U);
}

TEST(Multibutterfly, ParameterValidation) {
  EXPECT_THROW((void)multibutterfly(0, 2, 1), PreconditionError);
  EXPECT_THROW((void)multibutterfly(4, 0, 1), PreconditionError);
}

}  // namespace
}  // namespace fne
