#include "spectral/expander_certificate.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "expansion/exact.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

TEST(ExpanderCertificate, CompleteGraphSpectrum) {
  // K_n adjacency spectrum: n-1 once, -1 with multiplicity n-1.
  const ExpanderCertificate cert = certify_expander(complete_graph(8));
  ASSERT_TRUE(cert.converged);
  EXPECT_NEAR(cert.lambda2_adj, -1.0, 1e-6);
  EXPECT_NEAR(cert.lambda_min_adj, -1.0, 1e-6);
  EXPECT_NEAR(cert.spectral_gap, 8.0, 1e-6);
  EXPECT_TRUE(cert.is_ramanujan);
}

TEST(ExpanderCertificate, CycleSpectrum) {
  // C_n: λ₂(A) = 2cos(2π/n), λ_min = -2 (even n).
  const vid n = 12;
  const ExpanderCertificate cert = certify_expander(cycle_graph(n));
  ASSERT_TRUE(cert.converged);
  EXPECT_NEAR(cert.lambda2_adj, 2.0 * std::cos(2.0 * M_PI / n), 1e-6);
  EXPECT_NEAR(cert.lambda_min_adj, -2.0, 1e-6);
}

TEST(ExpanderCertificate, HypercubeSpectrum) {
  // Q_d adjacency eigenvalues are d - 2i: λ₂ = d-2, λ_min = -d.
  const ExpanderCertificate cert = certify_expander(hypercube(4));
  ASSERT_TRUE(cert.converged);
  EXPECT_NEAR(cert.lambda2_adj, 2.0, 1e-6);
  EXPECT_NEAR(cert.lambda_min_adj, -4.0, 1e-6);
  EXPECT_NEAR(cert.edge_expansion_lower, 1.0, 1e-6);  // matches exact αe = 1
}

TEST(ExpanderCertificate, MixingBoundBelowExactExpansion) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = random_regular(14, 4, seed);
    const ExpanderCertificate cert = certify_expander(g, seed);
    const double exact = exact_expansion(g, ExpansionKind::Edge).expansion;
    EXPECT_LE(cert.edge_expansion_lower, exact + 1e-6) << "seed=" << seed;
  }
}

TEST(ExpanderCertificate, RandomRegularIsNearRamanujan) {
  // Friedman: random d-regular graphs are almost Ramanujan; at n = 256
  // λ should be close to (and often within) 2·sqrt(d-1).
  const Graph g = random_regular(256, 4, 9);
  const ExpanderCertificate cert = certify_expander(g, 9);
  ASSERT_TRUE(cert.converged);
  EXPECT_LT(cert.lambda, 2.0 * std::sqrt(3.0) + 0.45);
  EXPECT_GT(cert.spectral_gap, 0.5);
}

TEST(ExpanderCertificate, IrregularGraphRejected) {
  EXPECT_THROW((void)certify_expander(path_graph(5)), PreconditionError);
}

TEST(ExpanderCertificate, MaskedRegularSubgraph) {
  // A cycle with vertices removed is irregular -> rejected under mask.
  const Graph g = cycle_graph(8);
  VertexSet alive = VertexSet::full(8);
  alive.reset(0);
  EXPECT_THROW((void)certify_expander(g, alive), PreconditionError);
  EXPECT_NO_THROW((void)certify_expander(g, VertexSet::full(8)));
}

}  // namespace
}  // namespace fne
