#include "util/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fne {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0U);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng root(23);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root1(29), root2(29);
  Rng a = root1.fork(5);
  Rng b = root2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> data{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = data;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, data);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (std::uint32_t n : {10U, 100U, 1000U}) {
    for (std::uint32_t k : {0U, 1U, 5U, n / 2, n}) {
      auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (auto v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementSparsePath) {
  Rng rng(41);
  // k*8 < n triggers Floyd's algorithm.
  auto sample = rng.sample_without_replacement(10000, 20);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20U);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(43);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression pin: splitmix64 of state 0 is a fixed constant.
  std::uint64_t t = 0;
  EXPECT_EQ(splitmix64(t), a);
}

}  // namespace
}  // namespace fne
