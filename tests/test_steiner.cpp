#include "span/steiner.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

void expect_tree_spans(const Graph& g, const SteinerResult& tree,
                       const std::vector<vid>& terminals) {
  for (vid t : terminals) EXPECT_TRUE(tree.nodes.test(t));
  EXPECT_TRUE(is_connected_subset(g, VertexSet::full(g.num_vertices()), tree.nodes));
  EXPECT_EQ(tree.nodes.count(), tree.tree_nodes);
}

TEST(SteinerExact, SingleTerminal) {
  const Graph g = path_graph(5);
  const SteinerResult t = steiner_exact(g, {3});
  EXPECT_EQ(t.tree_nodes, 1U);
  EXPECT_EQ(t.tree_edges, 0U);
  EXPECT_TRUE(t.nodes.test(3));
}

TEST(SteinerExact, PathEndpointsNeedWholePath) {
  const Graph g = path_graph(7);
  const SteinerResult t = steiner_exact(g, {0, 6});
  EXPECT_EQ(t.tree_edges, 6U);
  EXPECT_EQ(t.tree_nodes, 7U);
  expect_tree_spans(g, t, {0, 6});
}

TEST(SteinerExact, StarLeavesRouteThroughHub) {
  const Graph g = star_graph(6);
  const SteinerResult t = steiner_exact(g, {1, 2, 3});
  EXPECT_EQ(t.tree_nodes, 4U);  // three leaves + hub
  EXPECT_TRUE(t.nodes.test(0));
  expect_tree_spans(g, t, {1, 2, 3});
}

TEST(SteinerExact, GridSteinerPoint) {
  // Terminals at (0,2), (2,0), (2,4), optimal tree uses the cross point.
  const Mesh m({3, 5});
  const std::vector<vid> terminals{m.id_of({0, 2}), m.id_of({2, 0}), m.id_of({2, 4})};
  // Median point (2,2): each terminal is 2 steps away → 6 edges total.
  const SteinerResult t = steiner_exact(m.graph(), terminals);
  EXPECT_EQ(t.tree_edges, 6U);
  expect_tree_spans(m.graph(), t, terminals);
}

TEST(SteinerExact, CycleUsesShorterArc) {
  const Graph g = cycle_graph(10);
  const SteinerResult t = steiner_exact(g, {0, 3});
  EXPECT_EQ(t.tree_edges, 3U);
}

TEST(SteinerApprox, AlwaysSpansAndWithinTwiceOptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(16, 0.25, rng.next());
    if (!is_connected(g, VertexSet::full(16))) continue;
    const vid t = 2 + static_cast<vid>(rng.uniform(4));
    const auto terms_idx = rng.sample_without_replacement(16, t);
    const std::vector<vid> terminals(terms_idx.begin(), terms_idx.end());
    const SteinerResult exact = steiner_exact(g, terminals);
    const SteinerResult approx = steiner_approx(g, terminals);
    expect_tree_spans(g, approx, terminals);
    EXPECT_GE(approx.tree_edges + 1e-12, exact.tree_edges);
    EXPECT_LE(approx.tree_edges, 2 * exact.tree_edges + 1)
        << "trial " << trial << " t=" << t;
  }
}

TEST(SteinerApprox, ExactOnTwoTerminals) {
  // With 2 terminals both engines return a shortest path.
  const Mesh m({5, 5});
  const std::vector<vid> terminals{m.id_of({0, 0}), m.id_of({4, 4})};
  const SteinerResult exact = steiner_exact(m.graph(), terminals);
  const SteinerResult approx = steiner_approx(m.graph(), terminals);
  EXPECT_EQ(exact.tree_edges, 8U);
  EXPECT_EQ(approx.tree_edges, 8U);
}

TEST(SteinerDispatch, PicksEngineByBudget) {
  const Graph g = path_graph(10);
  EXPECT_TRUE(steiner_tree(g, {0, 9}).exact);
  EXPECT_TRUE(dreyfus_wagner_feasible(10, 2));
  EXPECT_FALSE(dreyfus_wagner_feasible(1 << 20, 18));
  EXPECT_FALSE(dreyfus_wagner_feasible(100, 19));
}

TEST(SteinerExact, DisconnectedTerminalsRejected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)steiner_exact(g, {0, 2}), PreconditionError);
  EXPECT_THROW((void)steiner_approx(g, {0, 2}), PreconditionError);
}

TEST(SteinerExact, EmptyTerminalsRejected) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)steiner_exact(g, {}), PreconditionError);
}

TEST(SteinerExact, TreeEdgesMatchNodeCount) {
  Rng rng(19);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = erdos_renyi(14, 0.3, rng.next());
    if (!is_connected(g, VertexSet::full(14))) continue;
    const auto terms_idx = rng.sample_without_replacement(14, 3);
    const SteinerResult t = steiner_exact(g, {terms_idx[0], terms_idx[1], terms_idx[2]});
    EXPECT_EQ(t.tree_nodes, t.tree_edges + 1);
  }
}

}  // namespace
}  // namespace fne
