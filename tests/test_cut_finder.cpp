#include "expansion/cut_finder.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/exact.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

void expect_valid_violation(const Graph& g, const VertexSet& alive, const CutWitness& w,
                            ExpansionKind kind, double threshold) {
  const vid size = w.side.count();
  ASSERT_GT(size, 0U);
  EXPECT_LE(2 * size, alive.count());
  EXPECT_TRUE(w.side.is_subset_of(alive));
  const std::size_t boundary = kind == ExpansionKind::Node
                                   ? node_boundary_size(g, alive, w.side)
                                   : edge_boundary_size(g, alive, w.side);
  EXPECT_LE(static_cast<double>(boundary), threshold * size + 1e-12);
  if (kind == ExpansionKind::Edge) {
    EXPECT_TRUE(is_connected_subset(g, alive, w.side));
  }
}

TEST(CutFinder, FindsDetachedComponents) {
  const Graph g = Graph::from_edges(7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {5, 6}});
  const VertexSet alive = VertexSet::full(7);
  for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
    const auto hit = find_violating_set(g, alive, kind, 0.0);
    ASSERT_TRUE(hit.has_value());
    expect_valid_violation(g, alive, *hit, kind, 0.0);
    EXPECT_DOUBLE_EQ(hit->expansion, 0.0);
  }
}

TEST(CutFinder, NodeModeReturnsAllMinorComponentsAtOnce) {
  const Graph g = Graph::from_edges(9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {7, 8}});
  const auto hit = find_violating_set(g, VertexSet::full(9), ExpansionKind::Node, 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->side.count(), 4U);  // both small components {5,6}, {7,8}
}

TEST(CutFinder, ExactModeIsDefinitiveBelowThreshold) {
  // Cycle C_12: α = 2/6 = 1/3.  A threshold below 1/3 must find nothing.
  const Graph g = cycle_graph(12);
  const VertexSet alive = VertexSet::full(12);
  const auto miss = find_violating_set(g, alive, ExpansionKind::Node, 0.33);
  EXPECT_FALSE(miss.has_value());
  const auto hit = find_violating_set(g, alive, ExpansionKind::Node, 1.0 / 3.0);
  ASSERT_TRUE(hit.has_value());
  expect_valid_violation(g, alive, *hit, ExpansionKind::Node, 1.0 / 3.0);
}

TEST(CutFinder, EdgeModeFindsBridgeCutOnBarbell) {
  const Graph g = barbell_graph(8);
  const VertexSet alive = VertexSet::full(16);
  // One clique side: cut 1, size 8 → ratio 1/8.
  const auto hit = find_violating_set(g, alive, ExpansionKind::Edge, 0.2);
  ASSERT_TRUE(hit.has_value());
  expect_valid_violation(g, alive, *hit, ExpansionKind::Edge, 0.2);
  EXPECT_EQ(hit->side.count(), 8U);
}

TEST(CutFinder, HeuristicPathStillFindsObviousCut) {
  // Two 5x5 grids joined by one edge, n = 50 > exact_limit.
  std::vector<Edge> edges;
  const Mesh m({5, 5});
  for (const Edge& e : m.graph().edges()) {
    edges.push_back(e);
    edges.push_back({e.u + 25, e.v + 25});
  }
  edges.push_back({24, 25});
  const Graph g = Graph::from_edges(50, edges);
  const VertexSet alive = VertexSet::full(50);
  CutFinderOptions opts;
  opts.exact_limit = 10;
  const auto hit = find_violating_set(g, alive, ExpansionKind::Edge, 0.1, opts);
  ASSERT_TRUE(hit.has_value());
  expect_valid_violation(g, alive, *hit, ExpansionKind::Edge, 0.1);
}

TEST(CutFinder, ReturnedSetsAlwaysValid) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(18, 0.25, rng.next());
    const VertexSet alive = VertexSet::full(18);
    const double threshold = 0.2 + rng.uniform01();
    for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
      const auto hit = find_violating_set(g, alive, kind, threshold);
      if (hit.has_value()) expect_valid_violation(g, alive, *hit, kind, threshold);
    }
  }
}

TEST(CutFinder, RespectsAliveMask) {
  const Graph g = path_graph(12);
  VertexSet alive = VertexSet::full(12);
  alive.reset(6);  // split into 0..5 and 7..11
  const auto hit = find_violating_set(g, alive, ExpansionKind::Node, 0.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->side.is_subset_of(alive));
  EXPECT_EQ(hit->side.count(), 5U);  // smaller piece 7..11
}

TEST(CutFinder, TinyAliveSetsReturnNothing) {
  const Graph g = path_graph(5);
  EXPECT_FALSE(find_violating_set(g, VertexSet::of(5, {2}), ExpansionKind::Node, 10.0));
  EXPECT_FALSE(find_violating_set(g, VertexSet(5), ExpansionKind::Edge, 10.0));
}

TEST(CutFinder, NegativeThresholdRejected) {
  const Graph g = path_graph(5);
  EXPECT_THROW(
      (void)find_violating_set(g, VertexSet::full(5), ExpansionKind::Node, -1.0),
      PreconditionError);
}

}  // namespace
}  // namespace fne
