#include "percolation/percolation.hpp"

#include <gtest/gtest.h>

#include "percolation/critical.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

TEST(Percolation, FullSurvivalKeepsEverything) {
  const Graph g = cycle_graph(30);
  const PercolationResult r = percolate(g, PercolationKind::Site, 1.0, 5, 1);
  EXPECT_DOUBLE_EQ(r.gamma.mean(), 1.0);
  const PercolationResult rb = percolate(g, PercolationKind::Bond, 1.0, 5, 1);
  EXPECT_DOUBLE_EQ(rb.gamma.mean(), 1.0);
}

TEST(Percolation, ZeroSurvivalKillsEverything) {
  const Graph g = cycle_graph(30);
  const PercolationResult r = percolate(g, PercolationKind::Site, 0.0, 5, 1);
  EXPECT_DOUBLE_EQ(r.gamma.mean(), 0.0);
  // Bond percolation at p=0 leaves isolated vertices: γ = 1/n.
  const PercolationResult rb = percolate(g, PercolationKind::Bond, 0.0, 5, 1);
  EXPECT_DOUBLE_EQ(rb.gamma.mean(), 1.0 / 30.0);
}

TEST(Percolation, DeterministicAcrossRuns) {
  const Mesh m({12, 12});
  const PercolationResult a = percolate(m.graph(), PercolationKind::Site, 0.7, 16, 9);
  const PercolationResult b = percolate(m.graph(), PercolationKind::Site, 0.7, 16, 9);
  EXPECT_DOUBLE_EQ(a.gamma.mean(), b.gamma.mean());
  EXPECT_DOUBLE_EQ(a.gamma.variance(), b.gamma.variance());
}

TEST(Percolation, GammaMonotoneInSurvivalProbability) {
  const Mesh m({16, 16});
  double prev = -1.0;
  for (double p : {0.3, 0.5, 0.7, 0.9}) {
    const PercolationResult r = percolate(m.graph(), PercolationKind::Site, p, 24, 5);
    EXPECT_GE(r.gamma.mean() + 0.05, prev) << "p=" << p;  // slack for MC noise
    prev = r.gamma.mean();
  }
}

TEST(Percolation, TrialCountRecorded) {
  const Graph g = cycle_graph(10);
  const PercolationResult r = percolate(g, PercolationKind::Site, 0.5, 33, 2);
  EXPECT_EQ(r.trials, 33);
  EXPECT_EQ(r.gamma.count(), 33U);
}

TEST(Percolation, InvalidParametersRejected) {
  const Graph g = cycle_graph(10);
  EXPECT_THROW((void)percolate(g, PercolationKind::Site, 1.5, 5, 1), PreconditionError);
  EXPECT_THROW((void)percolate(g, PercolationKind::Site, 0.5, 0, 1), PreconditionError);
}

TEST(Critical, CompleteGraphThresholdNearOneOverN) {
  // §1.1: p* = 1/(n-1) for K_n (bond percolation = G(n, p)).
  const Graph g = complete_graph(64);
  CriticalOptions opts;
  opts.trials_per_probe = 16;
  const CriticalResult r = estimate_critical_probability(g, PercolationKind::Bond, opts);
  EXPECT_LT(r.p_star, 0.08);  // 1/63 ≈ 0.016 with generous finite-size slack
  EXPECT_GT(r.p_star, 0.003);
}

TEST(Critical, Mesh2DBondNearHalf) {
  // Kesten: p* = 1/2 for the 2-D lattice; finite 24x24 estimate is loose.
  const Mesh m({24, 24});
  CriticalOptions opts;
  opts.gamma_target = 0.2;
  opts.trials_per_probe = 12;
  const CriticalResult r = estimate_critical_probability(m.graph(), PercolationKind::Bond, opts);
  EXPECT_GT(r.p_star, 0.3);
  EXPECT_LT(r.p_star, 0.7);
}

TEST(Critical, DenserGraphsPercolateEarlier) {
  const Graph sparse = cycle_graph(256);
  const Graph dense = hypercube(8);
  CriticalOptions opts;
  opts.trials_per_probe = 10;
  const double p_sparse =
      estimate_critical_probability(sparse, PercolationKind::Site, opts).p_star;
  const double p_dense =
      estimate_critical_probability(dense, PercolationKind::Site, opts).p_star;
  EXPECT_LT(p_dense, p_sparse);
}

TEST(Critical, TargetValidation) {
  const Graph g = cycle_graph(10);
  CriticalOptions opts;
  opts.gamma_target = 0.0;
  EXPECT_THROW((void)estimate_critical_probability(g, PercolationKind::Site, opts),
               PreconditionError);
}

}  // namespace
}  // namespace fne
