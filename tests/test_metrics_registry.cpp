// MetricsRegistry contracts (DESIGN.md §9): registry round-trips and
// param validation, campaign-JSON metric requests (unknown names and
// undeclared params rejected loudly), per-run metric records through
// ScenarioRunner, byte-identical campaign payloads across thread counts
// and warm/cold EngineCache states, and property tests for mesh_span /
// embedding_quality on the shared graph-family fixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "api/campaign.hpp"
#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "core/traversal.hpp"
#include "graph_cases.hpp"
#include "span/span.hpp"
#include "topology/mesh.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

// ---------------------------------------------------------------------------
// Registry basics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ListsTheBuiltins) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  for (const char* name : {"fragmentation", "expansion_bracket", "verify_trace", "mesh_span",
                           "span_estimate", "embedding_quality", "expander_certificate"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.at(name).doc.empty());
  }
  EXPECT_FALSE(reg.contains("no_such_metric"));
}

TEST(MetricsRegistry, UnknownNamesFailNamingTheRegisteredOnes) {
  try {
    (void)MetricsRegistry::instance().at("mesh_spam");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown metric 'mesh_spam'"), std::string::npos) << what;
    EXPECT_NE(what.find("mesh_span"), std::string::npos) << "must list registered names";
  }
}

TEST(MetricsRegistry, RejectsUndeclaredParams) {
  try {
    MetricsRegistry::instance().check("mesh_span", Params{{"sampels", "3"}});
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("has no param 'sampels'"), std::string::npos) << what;
    EXPECT_NE(what.find("samples"), std::string::npos) << "must list declared keys";
  }
  // Declared params pass.
  MetricsRegistry::instance().check("mesh_span", Params{{"samples", "3"}});
}

// ---------------------------------------------------------------------------
// Campaign JSON round-trip
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CampaignJsonRoundTripsMetricRequests) {
  const std::string text = R"({
    "scenarios": [
      {"name": "span-probe",
       "topology": {"name": "mesh", "params": {"side": 8, "dims": 2}},
       "prune": {"alpha": 0.25},
       "metrics": {"fragmentation": false,
                   "requests": [{"name": "mesh_span", "params": {"samples": 5}},
                                {"name": "embedding_quality"}]}}
    ]})";
  const Campaign c = campaign_from_json(text);
  ASSERT_EQ(c.entries.size(), 1u);
  const MetricsSpec& spec = c.entries[0].scenario.metrics;
  EXPECT_FALSE(spec.fragmentation);
  ASSERT_EQ(spec.requests.size(), 2u);
  EXPECT_EQ(spec.requests[0].name, "mesh_span");
  EXPECT_EQ(spec.requests[0].params.get_int("samples", 0), 5);
  EXPECT_EQ(spec.requests[1].name, "embedding_quality");
  EXPECT_TRUE(spec.requests[1].params.empty());
}

TEST(MetricsRegistry, CampaignJsonRejectsUnknownMetricsAndParams) {
  // Unknown metric name: rejected at parse time, naming the registry.
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"metrics": {"requests": [{"name": "mesh_spam"}]}}]})"),
               PreconditionError);
  // Undeclared metric param: same.
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"metrics": {"requests": [{"name": "mesh_span", "params": {"smaples": 2}}]}}]})"),
               PreconditionError);
  // Unknown key inside a request entry: same unknown-key style.
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"metrics": {"requests": [{"nam": "mesh_span"}]}}]})"),
               PreconditionError);
}

TEST(MetricsRegistry, SpectralModeParamsValidatedAtCheckTime) {
  // Declared on both spectral metrics, value-checked by the entry's
  // validate hook — so a typo'd mode fails in check(), i.e. at campaign
  // parse time, not mid-batch in compute().
  for (const char* metric : {"embedding_quality", "expander_certificate"}) {
    MetricsRegistry::instance().check(metric, Params{{"spectral_mode", "filtered"}});
    MetricsRegistry::instance().check(
        metric, Params{{"spectral_mode", "shift_invert"}, {"filter_degree", "8"}});
    try {
      MetricsRegistry::instance().check(metric, Params{{"spectral_mode", "cheby"}});
      FAIL() << "expected PreconditionError";
    } catch (const PreconditionError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("cheby"), std::string::npos) << what;
      EXPECT_NE(what.find("shift_invert"), std::string::npos) << "must list valid modes";
    }
    EXPECT_THROW(
        MetricsRegistry::instance().check(metric, Params{{"filter_degree", "-2"}}),
        PreconditionError);
  }
  // Campaign JSON inherits the rejection through the same check() call.
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"metrics": {"requests": [{"name": "embedding_quality",
                                 "params": {"spectral_mode": "cheby"}}]}}]})"),
               PreconditionError);
}

TEST(MetricsRegistry, CampaignJsonParsesPruneSpectralMode) {
  const Campaign c = campaign_from_json(R"({"scenarios": [
      {"topology": {"name": "mesh", "params": {"side": 8, "dims": 2}},
       "prune": {"alpha": 0.25, "spectral_mode": "filtered", "filter_degree": 10}}]})");
  ASSERT_EQ(c.entries.size(), 1u);
  EXPECT_EQ(c.entries[0].scenario.prune.finder.spectral_mode, SpectralMode::kFiltered);
  EXPECT_EQ(c.entries[0].scenario.prune.finder.filter_degree, 10);
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"prune": {"spectral_mode": "sideways"}}]})"),
               PreconditionError);
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"prune": {"filter_degree": -1}}]})"),
               PreconditionError);
}

TEST(MetricsRegistry, RunnerValidatesRequestsEagerly) {
  Scenario s;
  s.topology = {"mesh", Params{{"side", "8"}}};
  s.prune.alpha = 0.25;
  s.metrics.requests = {{"no_such_metric", Params{}}};
  EXPECT_THROW((void)ScenarioRunner(s), PreconditionError);
  Scenario bad_param = s;
  bad_param.metrics.requests = {{"mesh_span", Params{{"bogus", "1"}}}};
  EXPECT_THROW((void)ScenarioRunner(bad_param), PreconditionError);
}

TEST(MetricsRegistry, DuplicateRequestsAreRejectedEverywhere) {
  // Records are keyed by name in report payloads; a duplicate request
  // would silently emit duplicate JSON keys, so every seam rejects it.
  Scenario s;
  s.topology = {"mesh", Params{{"side", "8"}}};
  s.prune.alpha = 0.25;
  s.metrics.requests = {{"fragmentation", Params{}}, {"fragmentation", Params{}}};
  EXPECT_THROW((void)ScenarioRunner(s), PreconditionError);
  Campaign campaign;
  campaign.entries.push_back({s, std::nullopt});
  EXPECT_THROW((void)CampaignRunner(std::move(campaign)), PreconditionError);
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [
      {"metrics": {"requests": [{"name": "fragmentation"},
                                {"name": "fragmentation"}]}}]})"),
               PreconditionError);
}

TEST(MetricsRegistry, CatalogPresetsCarryMetricRequests) {
  const Scenario e6 = named_scenario("mesh-span");
  ASSERT_EQ(e6.metrics.requests.size(), 2u);
  EXPECT_EQ(e6.metrics.requests[0].name, "mesh_span");
  const Scenario e8 = named_scenario("span-conjecture");
  ASSERT_EQ(e8.metrics.requests.size(), 2u);
  EXPECT_EQ(e8.metrics.requests[0].name, "span_estimate");
}

// ---------------------------------------------------------------------------
// Records through the runner
// ---------------------------------------------------------------------------

[[nodiscard]] Scenario metric_scenario() {
  Scenario s;
  s.name = "metric-run";
  s.topology = {"mesh", Params{{"side", "10"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.1"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.alpha = 0.2;
  s.seed = 4242;
  s.metrics.requests = {{"mesh_span", Params{{"samples", "6"}}},
                        {"embedding_quality", Params{}},
                        {"fragmentation", Params{}}};
  return s;
}

TEST(MetricsRegistry, RunnerProducesOneRecordPerRequestInOrder) {
  ScenarioRunner runner(metric_scenario());
  const ScenarioRun run = runner.run_once(0);
  ASSERT_EQ(run.metrics.size(), 3u);
  EXPECT_EQ(run.metrics[0].name, "mesh_span");
  EXPECT_EQ(run.metrics[1].name, "embedding_quality");
  EXPECT_EQ(run.metrics[2].name, "fragmentation");
  for (const MetricRecord& m : run.metrics) {
    EXPECT_FALSE(m.brief.empty());
    const JsonValue payload = JsonValue::parse(m.payload);
    EXPECT_TRUE(payload.is_object()) << m.name;
  }
  // The registered fragmentation metric agrees with the legacy bool path.
  const JsonValue frag = JsonValue::parse(run.metrics[2].payload);
  EXPECT_DOUBLE_EQ(frag.at("gamma").as_number(), run.fragmentation.gamma);
  EXPECT_EQ(static_cast<std::size_t>(frag.at("components").as_int()),
            run.fragmentation.num_components);
}

TEST(MetricsRegistry, RecordsArePureFunctionsOfScenarioAndRep) {
  ScenarioRunner a(metric_scenario());
  ScenarioRunner b(metric_scenario());
  const ScenarioRun ra = a.run_once(1);
  const ScenarioRun rb = b.run_isolated(metric_scenario().fault, 1);
  ASSERT_EQ(ra.metrics.size(), rb.metrics.size());
  for (std::size_t i = 0; i < ra.metrics.size(); ++i) {
    EXPECT_EQ(ra.metrics[i].payload, rb.metrics[i].payload) << ra.metrics[i].name;
  }
  // Different repetitions draw different metric seeds (sampled metrics
  // must not alias across reps).
  const ScenarioRun r0 = a.run_once(0);
  EXPECT_NE(r0.metrics[0].payload, ra.metrics[0].payload)
      << "rep 0 and rep 1 sampled identical compact sets — seed derivation collapsed";
}

TEST(MetricsRegistry, MeshSpanRejectsNonMeshTopologies) {
  Scenario s = metric_scenario();
  s.topology = {"hypercube", Params{{"dims", "4"}}};
  s.prune.alpha = 0.5;
  s.metrics.requests = {{"mesh_span", Params{}}};
  ScenarioRunner runner(s);
  EXPECT_THROW((void)runner.run_once(0), PreconditionError);
}

// ---------------------------------------------------------------------------
// Determinism: thread counts and cache states (slow suite)
// ---------------------------------------------------------------------------

[[nodiscard]] Campaign metric_campaign() {
  Campaign campaign;
  campaign.name = "metrics-determinism";
  {
    Scenario s = metric_scenario();
    s.repetitions = 3;
    campaign.entries.push_back({s, std::nullopt});
  }
  {
    Scenario s;
    s.name = "certificate";
    s.topology = {"random_regular", Params{{"n", "128"}, {"degree", "4"}}};
    s.fault = {"random", Params{{"p", "0.05"}}};
    s.prune.kind = ExpansionKind::Node;
    s.seed = 77;
    s.repetitions = 2;
    s.metrics.requests = {{"expander_certificate", Params{}},
                          {"span_estimate", Params{{"samples", "2"}}}};
    campaign.entries.push_back({s, std::nullopt});
  }
  return campaign;
}

TEST(MetricsDeterminismSlow, CampaignPayloadByteIdenticalAcrossThreadCounts) {
  CampaignRunner runner(metric_campaign());
  const std::string payload = runner.run(1).to_json(/*include_timing=*/false);
  EXPECT_NE(payload.find("\"metrics\""), std::string::npos);
  EXPECT_NE(payload.find("\"mesh_span\""), std::string::npos);
  EXPECT_NE(payload.find("\"expander_certificate\""), std::string::npos);
  for (const int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    EXPECT_EQ(payload, runner.run(threads).to_json(false));
  }
}

TEST(MetricsDeterminismSlow, CampaignPayloadByteIdenticalWarmAndColdCache) {
  EngineCache::instance().clear();
  CampaignRunner runner(metric_campaign());
  const std::string cold = runner.run(2).to_json(false);
  const EngineCacheStats before = EngineCache::instance().stats();
  const std::string warm = runner.run(2).to_json(false);
  const EngineCacheStats delta = EngineCache::instance().stats() - before;
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(delta.graph_builds, 0u) << "warm run must reuse every cached graph";
}

// ---------------------------------------------------------------------------
// Property tests: mesh_span on tiny enumerable meshes (slow suite)
// ---------------------------------------------------------------------------

/// Compute a metric directly against a fabricated run (survivors = mask).
[[nodiscard]] MetricRecord compute_on_mask(const std::string& metric, const Params& params,
                                           const Scenario& scenario, const Graph& g,
                                           VertexSet mask, std::uint64_t seed) {
  ScenarioRun run;
  run.alive = mask;
  run.prune.survivors = std::move(mask);
  const MetricContext ctx{g, scenario, run, 0.5, 0.5, seed};
  return MetricsRegistry::instance().compute(metric, ctx, params);
}

TEST(MeshSpanPropertySlow, ExactValuesOnTinyEnumerableMeshes) {
  struct Case {
    vid side, dims;
  };
  for (const Case c : {Case{8, 1}, Case{3, 2}, Case{4, 2}, Case{2, 3}}) {
    SCOPED_TRACE(std::to_string(c.side) + "^" + std::to_string(c.dims));
    Scenario s;
    s.topology = {"mesh", Params{}
                              .set("side", static_cast<std::int64_t>(c.side))
                              .set("dims", static_cast<std::int64_t>(c.dims))};
    const Mesh mesh = Mesh::cube(c.side, c.dims);
    const Graph& g = mesh.graph();
    const MetricRecord rec = compute_on_mask("mesh_span", Params{{"samples", "4"}}, s, g,
                                             VertexSet::full(g.num_vertices()), 3);
    const JsonValue payload = JsonValue::parse(rec.payload);
    // The metric's exhaustive branch must agree with the span oracle
    // (payload doubles round-trip through 12-digit JSON).
    const SpanResult oracle = exact_span(g);
    EXPECT_NEAR(payload.at("exact_span").as_number(), oracle.span, 1e-9);
    EXPECT_EQ(static_cast<std::uint64_t>(payload.at("exact_sets").as_int()),
              oracle.sets_examined);
    EXPECT_TRUE(payload.at("exact_bound_ok").as_bool());
    if (c.dims == 1) EXPECT_NEAR(payload.at("exact_span").as_number(), 1.0, 1e-9);
    // Theorem 3.6's own construction stays within its bound and Lemma 3.7
    // holds on every sampled set.
    EXPECT_TRUE(payload.at("tree_bound_ok").as_bool());
    EXPECT_EQ(payload.at("lemma37_ok").as_int(), payload.at("sampled_sets").as_int());
  }
}

TEST(MeshSpanPropertySlow, SampledBoundsHoldOnBiggerMeshes) {
  for (const vid side : {10U, 14U}) {
    SCOPED_TRACE(side);
    Scenario s;
    s.topology = {"mesh", Params{}.set("side", static_cast<std::int64_t>(side))};
    const Mesh mesh = Mesh::cube(side, 2);
    const Graph& g = mesh.graph();
    const MetricRecord rec = compute_on_mask("mesh_span", Params{{"samples", "12"}}, s, g,
                                             VertexSet::full(g.num_vertices()), side);
    const JsonValue payload = JsonValue::parse(rec.payload);
    EXPECT_GT(payload.at("sampled_sets").as_int(), 0);
    EXPECT_EQ(payload.at("lemma37_ok").as_int(), payload.at("sampled_sets").as_int());
    EXPECT_LE(payload.at("max_tree_ratio").as_number(), 2.0 + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Property tests: embedding_quality on the shared fixtures (slow suite)
// ---------------------------------------------------------------------------

class EmbeddingPropertySlow : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(EmbeddingPropertySlow, IdentityEmbeddingAndPigeonholeUnderGrowingFaults) {
  const Graph g = GetParam().make();
  const vid n = g.num_vertices();
  Scenario s;  // topology spec unused by embedding_quality

  // No faults: the embedding is the identity — load 1, every guest edge
  // routed on itself.
  {
    const MetricRecord rec = compute_on_mask("embedding_quality", Params{}, s, g,
                                             VertexSet::full(n), 1);
    const JsonValue payload = JsonValue::parse(rec.payload);
    ASSERT_TRUE(payload.at("defined").as_bool());
    EXPECT_EQ(payload.at("load").as_int(), 1);
    EXPECT_LE(payload.at("dilation").as_int(), 1);
    EXPECT_LE(payload.at("congestion").as_int(), 1);
    EXPECT_EQ(static_cast<vid>(payload.at("host").as_int()),
              largest_component(g, VertexSet::full(n)).count());
  }

  // Growing fault sets: the 'random' model's masks NEST under one seed
  // (the registry's monotone coupling), so the host shrinks monotonically
  // and the pigeonhole bound load >= ceil(n / host) tightens.
  vid prev_host = n + 1;
  for (const double p : {0.1, 0.25, 0.4}) {
    SCOPED_TRACE(p);
    const VertexSet mask = FaultModelRegistry::instance().build(
        "random", g, Params{}.set("p", p), 555);
    if (mask.empty()) break;
    const MetricRecord rec = compute_on_mask("embedding_quality", Params{}, s, g, mask, 2);
    const JsonValue payload = JsonValue::parse(rec.payload);
    ASSERT_TRUE(payload.at("defined").as_bool());
    const auto host = static_cast<vid>(payload.at("host").as_int());
    EXPECT_LE(host, prev_host) << "largest component cannot grow as the mask shrinks";
    prev_host = host;
    const auto load = static_cast<std::uint64_t>(payload.at("load").as_int());
    EXPECT_GE(load * host, static_cast<std::uint64_t>(n)) << "pigeonhole violated";
    EXPECT_LE(payload.at("average_dilation").as_number(),
              static_cast<double>(payload.at("dilation").as_int()) + 1e-12);
    // Spectral profile: k = 2 nontrivial eigenvalues of a connected host
    // are positive and ascending.
    if (payload.find("spectral") != nullptr) {
      const auto& lams = payload.at("spectral").items();
      ASSERT_EQ(lams.size(), 2u);
      EXPECT_GT(lams[0].as_number(), 0.0);
      EXPECT_LE(lams[0].as_number(), lams[1].as_number() + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, EmbeddingPropertySlow,
    ::testing::Values(testing::GraphCase{testing::Family::Mesh2D, 12, 1},
                      testing::GraphCase{testing::Family::Mesh3D, 5, 1},
                      testing::GraphCase{testing::Family::Hypercube, 7, 1},
                      testing::GraphCase{testing::Family::DeBruijn, 7, 1},
                      testing::GraphCase{testing::Family::RandomRegular4, 128, 9},
                      testing::GraphCase{testing::Family::Butterfly, 4, 1}),
    testing::GraphCaseName{});

}  // namespace
}  // namespace fne
