// Real-graph ingestion (DESIGN.md §14): the tolerant edge-list reader,
// the checked-in mini_p2p fixture with pinned reference statistics, the
// `file` topology through the registry and EngineCache (content-salted
// keys), and campaign payload byte-identity on a file-backed graph
// across thread counts, store states and load modes.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/campaign.hpp"
#include "api/executor.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "core/csr_file.hpp"
#include "core/graph.hpp"
#include "core/io.hpp"
#include "core/traversal.hpp"
#include "core/vertex_set.hpp"
#include "store/key.hpp"
#include "store/result_store.hpp"
#include "topology/mesh.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

namespace fs = std::filesystem;

const std::string kFixtureEdges = std::string(FNE_REPO_DIR) + "/tests/data/mini_p2p.edges";
const std::string kFixtureCsr = std::string(FNE_REPO_DIR) + "/tests/data/mini_p2p.csr";

[[nodiscard]] std::string tmp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / ("fne_ingest_" + name)).string();
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (eid e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].u, b.edges()[e].u);
    EXPECT_EQ(a.edges()[e].v, b.edges()[e].v);
  }
}

// ---------------------------------------------------------------------------
// Tolerant reader
// ---------------------------------------------------------------------------

TEST(EdgeListTolerant, SkipsCommentsBlanksAndSelfLoopsMergesDuplicates) {
  std::stringstream in(
      "# SNAP-style comment\n"
      "% matrix-market-style comment\n"
      "5 4\n"
      "\n"
      "0 1\n"
      "1 0\n"    // duplicate (reversed)
      "2 2\n"    // self loop
      "  1\t2\n"
      "3 4\n");
  EdgeListStats stats;
  const Graph g = read_edge_list(in, {}, &stats);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(stats.comment_lines, 2u);
  EXPECT_EQ(stats.blank_lines, 1u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.parsed_edges, 4u);  // before dedup
  EXPECT_EQ(stats.declared_n, 5u);
  EXPECT_EQ(stats.declared_m, 4u);
}

TEST(EdgeListTolerant, HeaderCountDisagreeingWithStreamIsNotFatal) {
  // The declared m is a hint; the stream decides.
  std::stringstream in("3 999\n0 1\n1 2\n");
  EdgeListStats stats;
  const Graph g = read_edge_list(in, {}, &stats);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(stats.declared_m, 999u);
}

TEST(EdgeListTolerant, HeaderlessInfersVertexCountFromMaxId) {
  std::stringstream in("# no header\n7 3\n3 5\n");
  EdgeListOptions opts;
  opts.header = false;
  const Graph g = read_edge_list(in, opts);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListTolerant, MinNFloorsTheInferredCount) {
  std::stringstream in("0 1\n");
  EdgeListOptions opts;
  opts.header = false;
  opts.min_n = 10;
  EXPECT_EQ(read_edge_list(in, opts).num_vertices(), 10u);
}

TEST(EdgeListTolerant, RejectsMalformedLinesAndOutOfRangeIds) {
  {
    std::stringstream in("2 1\n0 one\n");
    EXPECT_THROW((void)read_edge_list(in), PreconditionError);
  }
  {
    std::stringstream in("2 1\n0 1 2\n");  // three tokens
    EXPECT_THROW((void)read_edge_list(in), PreconditionError);
  }
  {
    std::stringstream in("2 1\n0 5\n");  // id outside declared [0, n)
    EXPECT_THROW((void)read_edge_list(in), PreconditionError);
  }
  {
    std::stringstream in("# only comments\n");
    EXPECT_THROW((void)read_edge_list(in), PreconditionError);  // missing header
  }
}

TEST(EdgeListTolerant, OutOfRangeIdsRejectedEvenOnSelfLoops) {
  // Regression: the self-loop drop used to run before the range check,
  // so "7 7" under a declared n=3 was silently skipped while "7 8" was
  // a fatal error — inconsistent validation of the same malformed id.
  {
    std::stringstream in("3 2\n0 1\n7 7\n");
    EXPECT_THROW((void)read_edge_list(in), PreconditionError);
  }
  {
    // Headerless: a self-loop beyond the 32-bit id space is rejected
    // like any other oversized id, not dropped.
    std::stringstream in("0 1\n2147483648 2147483648\n");
    EdgeListOptions opts;
    opts.header = false;
    EXPECT_THROW((void)read_edge_list(in, opts), PreconditionError);
  }
}

TEST(EdgeListStrict, PreservesThePreIngestionContract) {
  EdgeListOptions strict;
  strict.strict = true;
  {
    // Round trip: write_edge_list output is exactly the strict format.
    const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
    std::stringstream io;
    write_edge_list(io, g);
    expect_graphs_equal(read_edge_list(io, strict), g);
  }
  {
    std::stringstream in("# comment\n2 1\n0 1\n");  // comments are NOT skipped
    EXPECT_THROW((void)read_edge_list(in, strict), PreconditionError);
  }
  {
    std::stringstream in("2 1\n1 1\n");  // self loops are fatal (from_edges)
    EXPECT_THROW((void)read_edge_list(in, strict), PreconditionError);
  }
}

TEST(EdgeListStrict, UntrustedHeaderCountCannotBuyAnUnboundedReserve) {
  // A corrupt header declaring 2^40 edges over an empty stream must fail
  // with a clean truncation error immediately — not attempt a 16 TiB
  // reserve first (the pre-§14 bug at io.cpp's edges.reserve(m)).
  EdgeListOptions strict;
  strict.strict = true;
  {
    std::stringstream in("4 1099511627776\n0 1\n");
    EXPECT_THROW((void)read_edge_list(in, strict), PreconditionError);
  }
  {
    std::stringstream in("4 1099511627776\n0 1\n");
    EXPECT_EQ(read_edge_list(in).num_edges(), 1u);  // tolerant: m is a hint
  }
}

// ---------------------------------------------------------------------------
// The checked-in fixture, against pinned reference values
// ---------------------------------------------------------------------------

constexpr vid kFixtureN = 96;
constexpr eid kFixtureM = 205;

[[nodiscard]] Graph load_fixture_text(EdgeListStats* stats = nullptr) {
  std::ifstream in(kFixtureEdges);
  EXPECT_TRUE(in.good()) << kFixtureEdges;
  EdgeListOptions opts;
  opts.header = false;
  opts.min_n = kFixtureN;
  return read_edge_list(in, opts, stats);
}

TEST(MiniP2pFixture, TextParseMatchesPinnedShapeAndStats) {
  EdgeListStats stats;
  const Graph g = load_fixture_text(&stats);
  EXPECT_EQ(g.num_vertices(), kFixtureN);
  EXPECT_EQ(g.num_edges(), kFixtureM);
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(stats.blank_lines, 7u);
  EXPECT_EQ(stats.self_loops, 5u);
  EXPECT_EQ(stats.parsed_edges - g.num_edges(), 31u) << "duplicates merged";
}

TEST(MiniP2pFixture, DegreeHistogramIsPinned) {
  const Graph g = load_fixture_text();
  std::map<vid, int> hist;
  for (vid v = 0; v < g.num_vertices(); ++v) ++hist[g.degree(v)];
  const std::map<vid, int> expected = {{0, 2}, {1, 13}, {2, 9},  {3, 13}, {4, 16}, {5, 16},
                                       {6, 10}, {7, 9},  {8, 3}, {9, 3},  {10, 1}, {12, 1}};
  EXPECT_EQ(hist, expected);
}

TEST(MiniP2pFixture, ComponentsAndEccentricityArePinned) {
  const Graph g = load_fixture_text();
  const VertexSet all = VertexSet::full(g.num_vertices());
  const Components comps = connected_components(g, all);
  EXPECT_EQ(comps.count(), 6u);

  const std::vector<std::uint32_t> dist = bfs_distances(g, all, 0);
  std::uint32_t ecc = 0;
  std::size_t reached = 0;
  for (const std::uint32_t d : dist) {
    if (d == kUnreached) continue;
    ++reached;
    ecc = std::max(ecc, d);
  }
  EXPECT_EQ(ecc, 6u);
  EXPECT_EQ(reached, 80u) << "vertex 0's component";
}

TEST(MiniP2pFixture, CheckedInCsrMatchesTheTextSourceByteForByte) {
  // The committed .csr IS the canonical encoding of the committed .edges:
  // decoding it yields the parsed graph, and re-encoding the parsed
  // graph reproduces the file bytes (what CI's cmp relies on).
  const Graph parsed = load_fixture_text();
  const CsrFile f = CsrFile::open(kFixtureCsr);
  expect_graphs_equal(f.to_graph(), parsed);
  EXPECT_EQ(CsrFile::encode(parsed), read_file(kFixtureCsr));
}

// ---------------------------------------------------------------------------
// The `file` topology through the registry and the cache
// ---------------------------------------------------------------------------

TEST(FileTopology, RegisteredWithExpectedNAndBuildContract) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  ASSERT_TRUE(reg.contains("file"));
  EXPECT_FALSE(reg.at("file").seeded);

  const Params p{{"path", kFixtureCsr}};
  EXPECT_EQ(reg.expected_n("file", p), kFixtureN);
  const Graph g = reg.build("file", p, /*seed=*/123);
  EXPECT_EQ(g.num_vertices(), kFixtureN);
  EXPECT_EQ(g.num_edges(), kFixtureM);

  // Buffered load builds the identical graph.
  expect_graphs_equal(reg.build("file", Params{{"path", kFixtureCsr}, {"mmap", "0"}}, 0), g);
}

TEST(FileTopology, RejectsMissingPathUndeclaredParamsAndCommas) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  EXPECT_THROW((void)reg.expected_n("file", Params{}), PreconditionError);
  EXPECT_THROW((void)reg.build("file", Params{}, 0), PreconditionError);
  EXPECT_THROW((void)reg.build("file", Params{{"path", kFixtureCsr}, {"typo", "1"}}, 0),
               PreconditionError);
  EXPECT_THROW((void)reg.expected_n("file", Params{{"path", "a,b.csr"}}), PreconditionError);
  EXPECT_THROW((void)reg.expected_n("file", Params{{"path", tmp_path("absent.csr")}}),
               PreconditionError);
}

TEST(FileTopology, CacheSaltInvalidatesOnFileRewrite) {
  // The EngineCache key folds in the file's content checksum: rewriting
  // the file in place (same path, same params) must yield the NEW graph,
  // never a stale cached one.
  const std::string path = tmp_path("rewrite.csr");
  CsrFile::write(path, Graph::from_edges(8, {{0, 1}, {1, 2}}));
  const Params p{{"path", path}};
  EngineCache& cache = EngineCache::instance();

  const auto first = cache.graph("file", p, 0);
  EXPECT_EQ(first->num_vertices(), 8u);
  // Seed variation folds to one key (unseeded): same object.
  EXPECT_EQ(cache.graph("file", p, 77).get(), first.get());

  CsrFile::write(path, Graph::from_edges(12, {{0, 1}, {2, 3}, {10, 11}}));
  const auto second = cache.graph("file", p, 0);
  EXPECT_EQ(second->num_vertices(), 12u);
  EXPECT_NE(second.get(), first.get());
}

TEST(FileTopology, StoreCellKeyFoldsInTheContentSalt) {
  // The persistent store must obey the same staleness rule as the
  // EngineCache: rewriting a .csr in place changes the cell key, so a
  // resumed campaign never reuses cells computed on the old graph.
  const std::string path = tmp_path("storekey.csr");
  CsrFile::write(path, Graph::from_edges(8, {{0, 1}, {1, 2}}));
  Scenario s;
  s.name = "storekey";
  s.topology = {"file", Params{{"path", path}}};
  s.fault = {"random", Params{{"p", "0.2"}}};

  const std::string key = store_cell_key(s, s.fault, 0);
  EXPECT_NE(key.find("|topo_salt=" + path + "#"), std::string::npos);
  EXPECT_EQ(key, store_cell_key(s, s.fault, 0)) << "keys are deterministic";

  CsrFile::write(path, Graph::from_edges(8, {{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_NE(store_cell_key(s, s.fault, 0), key)
      << "rewriting the file must change the cell identity";

  // Synthetic topologies carry no salt component.
  Scenario mesh = s;
  mesh.topology = {"mesh", Params{{"side", "4"}, {"dims", "2"}}};
  EXPECT_EQ(store_cell_key(mesh, mesh.fault, 0).find("|topo_salt="), std::string::npos);
}

TEST(FileTopology, MeshForRejectsTheFileTopologyCleanly) {
  // mesh_for REQUIREs mesh structure; a structureless entry must fail
  // loudly, not crash.
  EXPECT_THROW((void)mesh_for("file", Params{{"path", kFixtureCsr}}), PreconditionError);
}

TEST(TopologyRegistry, MeshForRangeChecksSideAndDims) {
  // Regression: mesh_for used to cast get_int straight to vid, so a
  // negative side/dims wrapped to a huge unsigned value instead of
  // failing the range check.
  EXPECT_THROW((void)mesh_for("mesh", Params{{"side", "-3"}, {"dims", "2"}}),
               PreconditionError);
  EXPECT_THROW((void)mesh_for("mesh", Params{{"side", "8"}, {"dims", "-1"}}),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Campaigns on a file topology
// ---------------------------------------------------------------------------

[[nodiscard]] Campaign fixture_campaign(const std::string& csr_path, const char* mmap) {
  Campaign campaign;
  campaign.name = "ingest-determinism";
  Scenario s;
  s.name = "mini-p2p-random";
  s.topology = {"file", Params{{"path", csr_path}, {"mmap", mmap}}};
  s.fault = {"random", Params{{"p", "0.25"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.fast = true;
  // The fixture is disconnected (6 components), so measured alpha would
  // be 0: pin it, like any real-dataset campaign must.
  s.prune.alpha = 0.125;
  s.repetitions = 3;
  s.seed = 1404;
  campaign.entries.push_back({s, std::nullopt});
  Scenario h = s;
  h.name = "mini-p2p-high-degree";
  h.fault = {"high_degree", Params{{"frac", "0.15"}}};
  h.repetitions = 1;
  campaign.entries.push_back({h, std::nullopt});
  return campaign;
}

TEST(FileCampaignSlow, PayloadByteIdenticalAcrossThreadsStoreStateAndLoadMode) {
  CampaignRunner runner(fixture_campaign(kFixtureCsr, "1"));
  const std::string reference = runner.run(2).to_json(/*include_timing=*/false);

  const std::string dir = tmp_path("campaign-store");
  fs::remove_all(dir);
  ResultStore store(dir);
  const CampaignReport cold = runner.run(2, &store);
  EXPECT_EQ(cold.store.hits, 0u);
  EXPECT_EQ(cold.to_json(false), reference);
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    const CampaignReport warm = runner.run(threads, &store);
    EXPECT_EQ(warm.store.misses, 0u) << "warm store must serve every cell";
    EXPECT_EQ(warm.to_json(false), reference);
  }

  // Buffered load: the payload differs only in the declared topo_params
  // string ("mmap=0" vs "mmap=1") — every computed bit is identical.
  CampaignRunner buffered(fixture_campaign(kFixtureCsr, "0"));
  std::string buffered_payload = buffered.run(2).to_json(false);
  std::size_t swaps = 0;
  for (std::size_t at = buffered_payload.find("mmap=0"); at != std::string::npos;
       at = buffered_payload.find("mmap=0", at + 1)) {
    buffered_payload.replace(at, 6, "mmap=1");
    ++swaps;
  }
  EXPECT_EQ(swaps, 2u) << "one topo_params string per campaign entry";
  EXPECT_EQ(buffered_payload, reference);
}

}  // namespace
}  // namespace fne
