#include "span/span.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

TEST(ExactSpan, PathSpanIsOne) {
  // Compact sets of a path are prefixes/suffixes: |Γ(U)| = 1 and P(U) is
  // that single node, so σ = 1.
  const SpanResult r = exact_span(path_graph(8));
  EXPECT_DOUBLE_EQ(r.span, 1.0);
  EXPECT_TRUE(r.exact);
}

TEST(ExactSpan, CycleSpanKnown) {
  // Compact sets of C_n are arcs: boundary = 2 nodes at arc distance
  // min(len+1, n-len-1) apart; P(U) is the shorter connecting path.  The
  // worst arc yields σ = (floor(n/2) + 1) / 2.
  const SpanResult r = exact_span(cycle_graph(8));
  EXPECT_DOUBLE_EQ(r.span, 2.5);
  EXPECT_EQ(r.worst_boundary, 2U);
  EXPECT_EQ(r.worst_tree_nodes, 5U);
}

TEST(ExactSpan, Mesh2DAtMostTwo) {
  // Theorem 3.6: span of the d-dimensional mesh is 2.
  for (auto sides : {std::vector<vid>{3, 3}, std::vector<vid>{4, 4}, std::vector<vid>{2, 2, 2}}) {
    const Mesh m(sides);
    const SpanResult r = exact_span(m.graph());
    EXPECT_LE(r.span, 2.0) << "mesh " << m.graph().summary();
    EXPECT_GE(r.span, 1.0);
  }
}

TEST(ExactSpan, ReportsWitness) {
  const SpanResult r = exact_span(cycle_graph(6));
  EXPECT_GT(r.sets_examined, 0ULL);
  EXPECT_FALSE(r.worst_set.empty());
  EXPECT_DOUBLE_EQ(r.span, static_cast<double>(r.worst_tree_nodes) / r.worst_boundary);
}

TEST(EstimateSpan, LowerBoundsExactOnSmallMesh) {
  const Mesh m({4, 4});
  const SpanResult exact = exact_span(m.graph());
  SpanEstimateOptions opts;
  opts.samples_per_size = 16;
  const SpanResult est = estimate_span(m.graph(), opts);
  // Sampled max with exact Steiner trees can never exceed the true span.
  EXPECT_LE(est.span, exact.span + 1e-9);
  EXPECT_GT(est.span, 0.0);
}

TEST(EstimateSpan, MeshEstimateStaysBelowTwo) {
  const Mesh m({12, 12});
  SpanEstimateOptions opts;
  opts.samples_per_size = 8;
  const SpanResult est = estimate_span(m.graph(), opts);
  // With exact Steiner trees the estimate is <= σ = 2; approximate trees
  // could double it, so allow the documented 2x slack only when inexact.
  const double limit = est.exact ? 2.0 : 4.0;
  EXPECT_LE(est.span, limit + 1e-9);
}

TEST(EstimateSpan, HypercubeSmallSpanEvidence) {
  // §4 conjectures O(1) span for hypercube-like networks.
  const Graph g = hypercube(6);
  SpanEstimateOptions opts;
  opts.samples_per_size = 6;
  const SpanResult est = estimate_span(g, opts);
  EXPECT_GT(est.sets_examined, 0ULL);
  EXPECT_LT(est.span, 6.0);
}

TEST(EstimateSpan, DeterministicUnderSeed) {
  const Mesh m({8, 8});
  SpanEstimateOptions opts;
  opts.samples_per_size = 4;
  const SpanResult a = estimate_span(m.graph(), opts);
  const SpanResult b = estimate_span(m.graph(), opts);
  EXPECT_DOUBLE_EQ(a.span, b.span);
  EXPECT_EQ(a.sets_examined, b.sets_examined);
}

}  // namespace
}  // namespace fne
