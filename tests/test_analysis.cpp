#include <gtest/gtest.h>

#include "analysis/distance.hpp"
#include "analysis/fragmentation.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

TEST(Distance, ExactDiameterKnownGraphs) {
  EXPECT_EQ(exact_diameter(path_graph(7), VertexSet::full(7)), 6U);
  EXPECT_EQ(exact_diameter(cycle_graph(8), VertexSet::full(8)), 4U);
  EXPECT_EQ(exact_diameter(hypercube(5), VertexSet::full(32)), 5U);
  const Mesh m({4, 5});
  EXPECT_EQ(exact_diameter(m.graph(), VertexSet::full(20)), 7U);
}

TEST(Distance, DiameterRespectsMask) {
  const Graph g = cycle_graph(10);
  VertexSet alive = VertexSet::full(10);
  alive.reset(0);  // becomes a 9-path
  EXPECT_EQ(exact_diameter(g, alive), 8U);
}

TEST(Distance, ExactDiameterRequiresConnectivity) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)exact_diameter(g, VertexSet::full(4)), PreconditionError);
}

TEST(Distance, SampledBoundsExact) {
  const Mesh m({6, 6});
  const VertexSet all = VertexSet::full(36);
  const DistanceSample s = sample_distances(m.graph(), all, 36, 3);
  EXPECT_EQ(s.max_distance, exact_diameter(m.graph(), all));
  EXPECT_GT(s.distances.mean(), 0.0);
}

TEST(Distance, StretchIdentityWhenMasksEqual) {
  const Mesh m({5, 5});
  const VertexSet all = VertexSet::full(25);
  const StretchResult r = distance_stretch(m.graph(), all, all, 50, 7);
  EXPECT_GT(r.pairs, 0U);
  EXPECT_DOUBLE_EQ(r.max_stretch, 1.0);
  EXPECT_EQ(r.disconnected_pairs, 0U);
}

TEST(Distance, StretchDetectsDetours) {
  // Cycle with one vertex removed: antipodal pairs take the long way.
  const Graph g = cycle_graph(12);
  VertexSet pruned = VertexSet::full(12);
  pruned.reset(0);
  const StretchResult r = distance_stretch(g, VertexSet::full(12), pruned, 200, 9);
  EXPECT_GT(r.max_stretch, 1.0);
}

TEST(Distance, StretchCountsDisconnections) {
  const Graph g = path_graph(10);
  VertexSet pruned = VertexSet::full(10);
  pruned.reset(5);
  const StretchResult r = distance_stretch(g, VertexSet::full(10), pruned, 200, 11);
  EXPECT_GT(r.disconnected_pairs, 0U);
}

TEST(Fragmentation, IntactGraph) {
  const Graph g = cycle_graph(12);
  const FragmentationProfile f = fragmentation_profile(g, VertexSet::full(12));
  EXPECT_EQ(f.largest, 12U);
  EXPECT_DOUBLE_EQ(f.gamma, 1.0);
  EXPECT_EQ(f.num_components, 1U);
}

TEST(Fragmentation, SizesSortedDescending) {
  const Graph g = path_graph(10);
  VertexSet alive = VertexSet::full(10);
  alive.reset(2);
  alive.reset(7);  // pieces: {0,1}, {3..6}, {8,9}
  const FragmentationProfile f = fragmentation_profile(g, alive);
  EXPECT_EQ(f.num_components, 3U);
  EXPECT_EQ(f.sizes_desc, (std::vector<vid>{4, 2, 2}));
  EXPECT_DOUBLE_EQ(f.gamma, 0.4);
}

TEST(Fragmentation, EmptyAliveSet) {
  const Graph g = path_graph(5);
  const FragmentationProfile f = fragmentation_profile(g, VertexSet(5));
  EXPECT_EQ(f.largest, 0U);
  EXPECT_EQ(f.num_components, 0U);
  EXPECT_DOUBLE_EQ(f.gamma, 0.0);
}

}  // namespace
}  // namespace fne
