#include "prune/compact.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/uniform.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

double edge_ratio(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  return static_cast<double>(edge_boundary_size(g, alive, s)) /
         static_cast<double>(s.count());
}

TEST(Compactify, AlreadyCompactSetUnchanged) {
  const Graph g = cycle_graph(10);
  const VertexSet all = VertexSet::full(10);
  const VertexSet arc = VertexSet::of(10, {2, 3, 4});
  EXPECT_EQ(compactify(g, all, arc), arc);
}

TEST(Compactify, Case2PicksDetachedComponent) {
  // Path 0..8; S = {4} splits the complement into 0..3 and 5..8 (each has
  // one cut edge, ratio 1/4 < S's ratio 2). Lemma 3.3 case 2.
  const Graph g = path_graph(9);
  const VertexSet all = VertexSet::full(9);
  const VertexSet s = VertexSet::of(9, {4});
  const VertexSet k = compactify(g, all, s);
  EXPECT_TRUE(is_compact(g, all, k));
  EXPECT_LE(edge_ratio(g, all, k), edge_ratio(g, all, s) + 1e-12);
  EXPECT_EQ(k.count(), 4U);
}

TEST(Compactify, Case1TakesComplementOfBigComponent) {
  // Path 0..9; S = {1}: complement components {0} and {2..9} (size 8 >= 5).
  // Case 1: K = alive \ {2..9} = {0, 1}, compact and cheaper than S.
  const Graph g = path_graph(10);
  const VertexSet all = VertexSet::full(10);
  const VertexSet s = VertexSet::of(10, {1});
  const VertexSet k = compactify(g, all, s);
  EXPECT_TRUE(is_compact(g, all, k));
  EXPECT_TRUE(s.is_subset_of(k));
  EXPECT_EQ(k.to_vector(), (std::vector<vid>{0, 1}));
  EXPECT_LE(edge_ratio(g, all, k), edge_ratio(g, all, s) + 1e-12);
}

TEST(Compactify, PropertyOnRandomMeshSets) {
  const Mesh m({7, 7});
  const Graph& g = m.graph();
  const VertexSet all = VertexSet::full(49);
  Rng rng(3);
  int nontrivial = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const vid size = 2 + static_cast<vid>(rng.uniform(20));
    const VertexSet s = random_connected_set(g, all, size, rng.next());
    if (s.empty() || 2 * s.count() > 49) continue;
    const VertexSet k = compactify(g, all, s);
    EXPECT_TRUE(is_compact(g, all, k)) << "trial " << trial;
    EXPECT_LE(edge_ratio(g, all, k), edge_ratio(g, all, s) + 1e-12) << "trial " << trial;
    if (!(k == s)) ++nontrivial;
  }
  // The sampler produces some non-compact sets, so compactify must have
  // done real work at least once.
  EXPECT_GT(nontrivial, 0);
}

TEST(Compactify, PropertyOnRandomRegular) {
  const Graph g = random_regular(30, 4, 9);
  const VertexSet all = VertexSet::full(30);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const vid size = 2 + static_cast<vid>(rng.uniform(13));
    const VertexSet s = random_connected_set(g, all, size, rng.next());
    if (s.empty() || 2 * s.count() > 30) continue;
    const VertexSet k = compactify(g, all, s);
    EXPECT_TRUE(is_compact(g, all, k));
    EXPECT_LE(edge_ratio(g, all, k), edge_ratio(g, all, s) + 1e-12);
  }
}

TEST(Compactify, WorksUnderAliveMask) {
  const Graph g = path_graph(12);
  VertexSet alive = VertexSet::full(12);
  alive.reset(11);
  const VertexSet s = VertexSet::of(12, {5});
  const VertexSet k = compactify(g, alive, s);
  EXPECT_TRUE(k.is_subset_of(alive));
  EXPECT_TRUE(is_compact(g, alive, k));
}

TEST(Compactify, PreconditionsEnforced) {
  const Graph g = path_graph(8);
  const VertexSet all = VertexSet::full(8);
  EXPECT_THROW((void)compactify(g, all, VertexSet(8)), PreconditionError);               // empty
  EXPECT_THROW((void)compactify(g, all, VertexSet::of(8, {0, 2})), PreconditionError);   // split
  EXPECT_THROW((void)compactify(g, all, VertexSet::of(8, {0, 1, 2, 3, 4})),
               PreconditionError);  // > half
}

}  // namespace
}  // namespace fne
