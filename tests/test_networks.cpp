#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "topology/butterfly.hpp"
#include "topology/classic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"

namespace fne {
namespace {

TEST(Hypercube, CountsAndRegularity) {
  for (vid d = 1; d <= 6; ++d) {
    const Graph g = hypercube(d);
    EXPECT_EQ(g.num_vertices(), vid{1} << d);
    EXPECT_EQ(g.num_edges(), (std::size_t{1} << (d - 1)) * d);
    EXPECT_TRUE(g.is_regular());
    EXPECT_EQ(g.max_degree(), d);
    EXPECT_TRUE(is_connected(g, VertexSet::full(g.num_vertices())));
  }
}

TEST(Hypercube, EdgesAreHammingNeighbors) {
  const Graph g = hypercube(4);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(__builtin_popcount(e.u ^ e.v), 1) << e.u << "-" << e.v;
  }
}

TEST(Butterfly, UnwrappedCounts) {
  const Butterfly bf = butterfly(3);
  EXPECT_EQ(bf.levels, 4U);
  EXPECT_EQ(bf.rows, 8U);
  EXPECT_EQ(bf.graph.num_vertices(), 32U);
  // Each of the 3 level transitions contributes 2 edges per row.
  EXPECT_EQ(bf.graph.num_edges(), 48U);
  EXPECT_EQ(bf.graph.min_degree(), 2U);
  EXPECT_EQ(bf.graph.max_degree(), 4U);
  EXPECT_TRUE(is_connected(bf.graph, VertexSet::full(bf.graph.num_vertices())));
}

TEST(Butterfly, WrappedIsFourRegular) {
  const Butterfly bf = butterfly(3, /*wrapped=*/true);
  EXPECT_EQ(bf.graph.num_vertices(), 24U);
  EXPECT_TRUE(bf.graph.is_regular());
  EXPECT_EQ(bf.graph.max_degree(), 4U);
  EXPECT_TRUE(is_connected(bf.graph, VertexSet::full(bf.graph.num_vertices())));
}

TEST(Butterfly, LevelRowHelpers) {
  const Butterfly bf = butterfly(3);
  const vid v = bf.id_of(2, 5);
  EXPECT_EQ(bf.level_of(v), 2U);
  EXPECT_EQ(bf.row_of(v), 5U);
}

TEST(Butterfly, StraightAndCrossEdgesExist) {
  const Butterfly bf = butterfly(3);
  EXPECT_TRUE(bf.graph.has_edge(bf.id_of(0, 3), bf.id_of(1, 3)));          // straight
  EXPECT_TRUE(bf.graph.has_edge(bf.id_of(0, 3), bf.id_of(1, 3 ^ 1)));      // cross level 0
  EXPECT_TRUE(bf.graph.has_edge(bf.id_of(1, 3), bf.id_of(2, 3 ^ 2)));      // cross level 1
}

TEST(DeBruijn, CountsAndConnectivity) {
  for (vid d = 3; d <= 8; ++d) {
    const Graph g = debruijn(d);
    EXPECT_EQ(g.num_vertices(), vid{1} << d);
    EXPECT_LE(g.max_degree(), 4U);
    EXPECT_TRUE(is_connected(g, VertexSet::full(g.num_vertices()))) << "d=" << d;
  }
}

TEST(DeBruijn, ShiftNeighborsPresent) {
  const Graph g = debruijn(4);
  // 0b0101 -> shifts 0b1010 and 0b1011.
  EXPECT_TRUE(g.has_edge(0b0101, 0b1010));
  EXPECT_TRUE(g.has_edge(0b0101, 0b1011));
}

TEST(ShuffleExchange, CountsAndConnectivity) {
  for (vid d = 3; d <= 8; ++d) {
    const Graph g = shuffle_exchange(d);
    EXPECT_EQ(g.num_vertices(), vid{1} << d);
    EXPECT_LE(g.max_degree(), 3U);
    EXPECT_TRUE(is_connected(g, VertexSet::full(g.num_vertices()))) << "d=" << d;
  }
}

TEST(ShuffleExchange, ExchangeAndShuffleEdges) {
  const Graph g = shuffle_exchange(3);
  EXPECT_TRUE(g.has_edge(0b010, 0b011));  // exchange
  EXPECT_TRUE(g.has_edge(0b011, 0b110));  // shuffle (cyclic left shift)
}

TEST(Classic, PathCycleCompleteStar) {
  EXPECT_EQ(path_graph(5).num_edges(), 4U);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5U);
  EXPECT_EQ(complete_graph(6).num_edges(), 15U);
  EXPECT_EQ(star_graph(5).num_edges(), 4U);
  EXPECT_EQ(star_graph(5).degree(0), 4U);
}

TEST(Classic, BarbellStructure) {
  const Graph g = barbell_graph(4);
  EXPECT_EQ(g.num_vertices(), 8U);
  EXPECT_EQ(g.num_edges(), 2U * 6U + 1U);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(is_connected(g, VertexSet::full(8)));
}

TEST(Classic, DegenerateSizesRejected) {
  EXPECT_THROW((void)cycle_graph(2), PreconditionError);
  EXPECT_THROW((void)star_graph(1), PreconditionError);
  EXPECT_THROW((void)barbell_graph(1), PreconditionError);
}

}  // namespace
}  // namespace fne
