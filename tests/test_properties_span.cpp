// Property suite: span / compact-set / Steiner invariants swept over
// mesh geometries (Theorem 3.6 territory) and the §4 conjecture families.
#include <memory>

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "span/compact_sets.hpp"
#include "span/mesh_span.hpp"
#include "span/span.hpp"
#include "span/steiner.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

struct MeshCase {
  std::vector<vid> sides;
  bool wrap = false;

  [[nodiscard]] std::string label() const {
    std::string s = wrap ? "torus" : "mesh";
    for (vid side : sides) s += "_" + std::to_string(side);
    return s;
  }
  friend std::ostream& operator<<(std::ostream& os, const MeshCase& c) {
    return os << c.label();
  }
};

class MeshSpanProperties : public ::testing::TestWithParam<MeshCase> {
 protected:
  void SetUp() override { mesh_ = std::make_unique<Mesh>(GetParam().sides, GetParam().wrap); }
  std::unique_ptr<Mesh> mesh_;
};

TEST_P(MeshSpanProperties, SampledCompactSetsAreCompact) {
  Rng rng(7);
  const Graph& g = mesh_->graph();
  const VertexSet all = VertexSet::full(g.num_vertices());
  for (int trial = 0; trial < 12; ++trial) {
    const vid target = 1 + static_cast<vid>(rng.uniform(g.num_vertices() / 2));
    const VertexSet s = sample_compact_set(g, target, rng.next());
    if (s.empty()) continue;
    EXPECT_TRUE(is_compact(g, all, s)) << "trial " << trial;
  }
}

TEST_P(MeshSpanProperties, Lemma37VirtualBoundaryConnected) {
  // Lemma 3.7 is a statement about Z^d (meshes); tori admit compact
  // wrap-around bands whose boundary splits into disjoint rings — see
  // TorusBandBreaksLemma37 below.
  if (GetParam().wrap) GTEST_SKIP() << "Lemma 3.7 does not extend to tori";
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const vid target =
        1 + static_cast<vid>(rng.uniform(mesh_->num_vertices() / 3));
    const VertexSet s = sample_compact_set(mesh_->graph(), target, rng.next());
    if (s.empty()) continue;
    EXPECT_TRUE(virtual_boundary_connected(*mesh_, s)) << "trial " << trial;
  }
}

TEST_P(MeshSpanProperties, ConstructiveTreeWithinTheorem36Bound) {
  if (GetParam().wrap) GTEST_SKIP() << "Theorem 3.6's construction needs Lemma 3.7 (no tori)";
  Rng rng(13);
  for (int trial = 0; trial < 12; ++trial) {
    const vid target =
        1 + static_cast<vid>(rng.uniform(mesh_->num_vertices() / 3));
    const VertexSet s = sample_compact_set(mesh_->graph(), target, rng.next());
    if (s.empty()) continue;
    const ConstructiveSpanTree tree = mesh_boundary_span_tree(*mesh_, s);
    EXPECT_LE(tree.tree_edges, 2 * (tree.boundary_size - 1));
    EXPECT_LE(tree.tree_nodes, 2 * tree.boundary_size - 1);
    EXPECT_LT(tree.ratio, 2.0);
  }
}

TEST_P(MeshSpanProperties, ConstructiveTreeDominatesSteinerOptimum) {
  // The Theorem 3.6 tree is a feasible boundary-spanning tree, so the
  // optimal Steiner tree can only be smaller.
  Rng rng(17);
  const Graph& g = mesh_->graph();
  const VertexSet all = VertexSet::full(g.num_vertices());
  for (int trial = 0; trial < 6; ++trial) {
    const VertexSet s = sample_compact_set(g, 3, rng.next());
    if (s.empty()) continue;
    const std::vector<vid> terminals = node_boundary(g, all, s).to_vector();
    if (terminals.empty() ||
        !dreyfus_wagner_feasible(g.num_vertices(), static_cast<vid>(terminals.size()))) {
      continue;
    }
    const ConstructiveSpanTree constructive = mesh_boundary_span_tree(*mesh_, s);
    const SteinerResult optimal = steiner_exact(g, terminals);
    EXPECT_LE(optimal.tree_nodes, constructive.tree_nodes);
  }
}

TEST_P(MeshSpanProperties, ApproxSteinerWithinTwiceOptimal) {
  Rng rng(19);
  const Graph& g = mesh_->graph();
  const VertexSet all = VertexSet::full(g.num_vertices());
  for (int trial = 0; trial < 6; ++trial) {
    const VertexSet s = sample_compact_set(g, 2, rng.next());
    if (s.empty()) continue;
    const std::vector<vid> terminals = node_boundary(g, all, s).to_vector();
    if (terminals.empty() ||
        !dreyfus_wagner_feasible(g.num_vertices(), static_cast<vid>(terminals.size()))) {
      continue;
    }
    const SteinerResult exact = steiner_exact(g, terminals);
    const SteinerResult approx = steiner_approx(g, terminals);
    EXPECT_GE(approx.tree_edges, exact.tree_edges);
    EXPECT_LE(approx.tree_edges, 2 * exact.tree_edges + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MeshSpanProperties,
    ::testing::Values(MeshCase{{9}}, MeshCase{{5, 5}}, MeshCase{{8, 8}}, MeshCase{{3, 7}},
                      MeshCase{{4, 4, 4}}, MeshCase{{3, 3, 3}}, MeshCase{{2, 3, 4}},
                      MeshCase{{3, 3, 2, 2}}, MeshCase{{6, 6}, true},
                      MeshCase{{4, 4, 4}, true}),
    [](const ::testing::TestParamInfo<MeshCase>& info) { return info.param.label(); });

// Negative result worth pinning: Lemma 3.7 does NOT extend to tori.  A
// band wrapping one dimension is compact (band and complement band are
// both connected) but its boundary is two disjoint rings with no virtual
// edges between them.
TEST(TorusCounterexample, TorusBandBreaksLemma37) {
  const Mesh torus({6, 6}, /*wrap=*/true);
  VertexSet band(36);
  for (vid col = 0; col < 6; ++col) {
    band.set(torus.id_of({0, col}));
    band.set(torus.id_of({1, col}));
  }
  ASSERT_TRUE(is_compact(torus.graph(), VertexSet::full(36), band));
  EXPECT_FALSE(virtual_boundary_connected(torus, band));
}

// Exact span <= 2 on every small mesh geometry (exhaustive).
class ExactMeshSpan : public ::testing::TestWithParam<MeshCase> {};

TEST_P(ExactMeshSpan, SpanAtMostTwo) {
  const Mesh mesh(GetParam().sides, GetParam().wrap);
  const SpanResult r = exact_span(mesh.graph());
  EXPECT_LE(r.span, 2.0 + 1e-9);
  EXPECT_GE(r.span, 1.0);
}

INSTANTIATE_TEST_SUITE_P(SmallGeometries, ExactMeshSpan,
                         ::testing::Values(MeshCase{{2, 2}}, MeshCase{{3, 3}},
                                           MeshCase{{2, 5}}, MeshCase{{4, 4}},
                                           MeshCase{{2, 2, 2}}, MeshCase{{2, 2, 3}},
                                           MeshCase{{2, 2, 2, 2}}),
                         [](const ::testing::TestParamInfo<MeshCase>& info) {
                           return info.param.label();
                         });

}  // namespace
}  // namespace fne
