#include "core/vertex_set.hpp"

#include <gtest/gtest.h>

namespace fne {
namespace {

TEST(VertexSet, EmptyAndFull) {
  VertexSet empty(100);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0U);
  const VertexSet full = VertexSet::full(100);
  EXPECT_EQ(full.count(), 100U);
  for (vid v = 0; v < 100; ++v) EXPECT_TRUE(full.test(v));
}

TEST(VertexSet, FullMasksTailBits) {
  // Universe not a multiple of 64: the last word must not leak bits.
  for (vid n : {1U, 63U, 64U, 65U, 100U, 127U, 128U, 129U}) {
    EXPECT_EQ(VertexSet::full(n).count(), n) << "n=" << n;
    EXPECT_EQ(VertexSet::full(n).complement().count(), 0U) << "n=" << n;
  }
}

TEST(VertexSet, SetResetFlip) {
  VertexSet s(70);
  s.set(0);
  s.set(69);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(69));
  EXPECT_EQ(s.count(), 2U);
  s.reset(0);
  EXPECT_FALSE(s.test(0));
  s.flip(69);
  EXPECT_FALSE(s.test(69));
  s.flip(69);
  EXPECT_TRUE(s.test(69));
}

TEST(VertexSet, OfRejectsOutOfUniverse) {
  EXPECT_THROW((void)VertexSet::of(10, {10}), PreconditionError);
}

TEST(VertexSet, ToVectorSortedAscending) {
  const VertexSet s = VertexSet::of(100, {5, 90, 2, 64, 63});
  EXPECT_EQ(s.to_vector(), (std::vector<vid>{2, 5, 63, 64, 90}));
}

TEST(VertexSet, FirstAndNextAfter) {
  const VertexSet s = VertexSet::of(200, {3, 64, 130});
  EXPECT_EQ(s.first(), 3U);
  EXPECT_EQ(s.next_after(3), 64U);
  EXPECT_EQ(s.next_after(64), 130U);
  EXPECT_EQ(s.next_after(130), kInvalidVertex);
  EXPECT_EQ(VertexSet(10).first(), kInvalidVertex);
}

TEST(VertexSet, SetAlgebra) {
  const VertexSet a = VertexSet::of(10, {1, 2, 3});
  const VertexSet b = VertexSet::of(10, {3, 4});
  EXPECT_EQ((a | b).to_vector(), (std::vector<vid>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).to_vector(), (std::vector<vid>{3}));
  EXPECT_EQ((a - b).to_vector(), (std::vector<vid>{1, 2}));
  EXPECT_EQ((a ^ b).to_vector(), (std::vector<vid>{1, 2, 4}));
}

TEST(VertexSet, ComplementRoundTrip) {
  const VertexSet a = VertexSet::of(77, {0, 10, 76});
  EXPECT_EQ(a.complement().complement(), a);
  EXPECT_EQ(a.complement().count(), 74U);
}

TEST(VertexSet, SubsetAndIntersection) {
  const VertexSet a = VertexSet::of(10, {1, 2});
  const VertexSet b = VertexSet::of(10, {1, 2, 3});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(VertexSet::of(10, {5})));
}

TEST(VertexSet, MismatchedUniversesRejected) {
  VertexSet a(10);
  const VertexSet b(11);
  EXPECT_THROW(a |= b, PreconditionError);
}

TEST(VertexSet, ForEachVisitsAllInOrder) {
  const VertexSet s = VertexSet::of(300, {0, 64, 128, 255, 299});
  std::vector<vid> seen;
  s.for_each([&](vid v) { seen.push_back(v); });
  EXPECT_EQ(seen, s.to_vector());
}

TEST(VertexSet, EqualityIsStructural) {
  EXPECT_EQ(VertexSet::of(10, {1, 2}), VertexSet::of(10, {2, 1}));
  EXPECT_NE(VertexSet::of(10, {1}), VertexSet::of(10, {2}));
}

TEST(VertexSet, IntersectionCountMatchesMaterializedAnd) {
  const VertexSet a = VertexSet::of(200, {0, 1, 63, 64, 65, 127, 128, 199});
  const VertexSet b = VertexSet::of(200, {1, 63, 65, 100, 128, 150});
  EXPECT_EQ(a.intersection_count(b), (a & b).count());
  EXPECT_EQ(a.intersection_count(b), 4U);
  EXPECT_EQ(a.intersection_count(VertexSet(200)), 0U);
  EXPECT_EQ(a.intersection_count(a), a.count());
}

TEST(VertexSet, DifferenceCountMatchesMaterializedDiff) {
  const VertexSet a = VertexSet::of(200, {0, 1, 63, 64, 65, 127, 128, 199});
  const VertexSet b = VertexSet::of(200, {1, 63, 65, 100, 128, 150});
  EXPECT_EQ(a.difference_count(b), (a - b).count());
  EXPECT_EQ(b.difference_count(a), (b - a).count());
  EXPECT_EQ(a.difference_count(a), 0U);
  EXPECT_EQ(a.difference_count(VertexSet(200)), a.count());
}

TEST(VertexSet, ForEachInBothVisitsIntersectionInOrder) {
  const VertexSet a = VertexSet::of(300, {0, 5, 64, 128, 255, 299});
  const VertexSet b = VertexSet::of(300, {5, 64, 200, 299});
  std::vector<vid> seen;
  a.for_each_in_both(b, [&](vid v) { seen.push_back(v); });
  EXPECT_EQ(seen, (a & b).to_vector());
}

TEST(VertexSet, ForEachInDiffVisitsDifferenceInOrder) {
  const VertexSet a = VertexSet::of(300, {0, 5, 64, 128, 255, 299});
  const VertexSet b = VertexSet::of(300, {5, 64, 200, 299});
  std::vector<vid> seen;
  a.for_each_in_diff(b, [&](vid v) { seen.push_back(v); });
  EXPECT_EQ(seen, (a - b).to_vector());
  // Diff against the empty set is the set itself.
  seen.clear();
  a.for_each_in_diff(VertexSet(300), [&](vid v) { seen.push_back(v); });
  EXPECT_EQ(seen, a.to_vector());
}

TEST(VertexSet, WordKernelsRejectMismatchedUniverses) {
  const VertexSet a(64);
  const VertexSet b(65);
  EXPECT_THROW(a.for_each_in_both(b, [](vid) {}), PreconditionError);
  EXPECT_THROW(a.for_each_in_diff(b, [](vid) {}), PreconditionError);
  EXPECT_THROW((void)a.intersection_count(b), PreconditionError);
  EXPECT_THROW((void)a.difference_count(b), PreconditionError);
}

}  // namespace
}  // namespace fne
