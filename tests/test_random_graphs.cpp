#include "topology/random_graphs.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/traversal.hpp"

namespace fne {
namespace {

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi(10, 0.0, 1).num_edges(), 0U);
  EXPECT_EQ(erdos_renyi(10, 1.0, 1).num_edges(), 45U);
}

TEST(ErdosRenyi, DeterministicUnderSeed) {
  const Graph a = erdos_renyi(50, 0.1, 99);
  const Graph b = erdos_renyi(50, 0.1, 99);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (eid e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const vid n = 200;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, 7);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4.0 * std::sqrt(expected));
}

TEST(RandomRegular, ProducesSimpleRegularGraph) {
  for (vid d : {3U, 4U, 6U}) {
    const Graph g = random_regular(64, d, 5);
    EXPECT_TRUE(g.is_regular()) << "d=" << d;
    EXPECT_EQ(g.max_degree(), d);
    EXPECT_EQ(g.num_edges(), 64U * d / 2);
  }
}

TEST(RandomRegular, TypicallyConnectedForDGe3) {
  // d >= 3 random regular graphs are connected whp; check several seeds.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_regular(128, 4, seed);
    EXPECT_TRUE(is_connected(g, VertexSet::full(128))) << "seed=" << seed;
  }
}

TEST(RandomRegular, ParityRejected) {
  EXPECT_THROW((void)random_regular(5, 3, 1), PreconditionError);
  EXPECT_THROW((void)random_regular(4, 4, 1), PreconditionError);
}

TEST(RandomRegular, DeterministicUnderSeed) {
  const Graph a = random_regular(32, 4, 123);
  const Graph b = random_regular(32, 4, 123);
  for (eid e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(RandomWithEdges, ExactEdgeCount) {
  const Graph g = random_with_edges(40, 100, 3);
  EXPECT_EQ(g.num_edges(), 100U);
  EXPECT_EQ(g.num_vertices(), 40U);
}

TEST(RandomWithEdges, RejectsImpossibleCount) {
  EXPECT_THROW((void)random_with_edges(4, 7, 1), PreconditionError);
}

TEST(RandomWithEdges, FullCliqueReachable) {
  const Graph g = random_with_edges(6, 15, 2);
  EXPECT_EQ(g.num_edges(), 15U);
}

}  // namespace
}  // namespace fne
