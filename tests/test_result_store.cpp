// Result-store contracts (DESIGN.md §11): record codec round-trips and
// total decode, content-key shape, log persistence and first-write-wins,
// every corruption path degrading to recompute (torn tail, checksum
// flip, foreign file, unknown schema version), cross-process dedup via
// tail rescans, and the campaign-level story — the deterministic payload
// is byte-identical for disabled / cold / warm / mixed store state at
// any thread count, and a killed-then-resumed campaign recomputes only
// the missing cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "api/campaign.hpp"
#include "api/runner.hpp"
#include "store/key.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"

namespace fne {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty directory under the test tmpdir.
[[nodiscard]] std::string fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fne_store_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

[[nodiscard]] fs::path log_of(const std::string& dir) {
  return fs::path(dir) / "cells.log";
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

[[nodiscard]] Scenario small_scenario() {
  Scenario s;
  s.name = "store-unit";
  s.topology = {"mesh", Params{{"side", "10"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.2"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.alpha = 0.2;
  s.metrics.verify_trace = true;
  s.metrics.expansion = true;
  s.seed = 404;
  return s;
}

TEST(CellRecord, RoundTripsAComputedRunFieldForField) {
  ScenarioRunner runner(small_scenario());
  const ScenarioRun run = runner.run_isolated(runner.scenario().fault, 0);
  const std::string payload = encode_runs({&run, 1});
  const auto decoded = decode_runs(payload);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  const ScenarioRun& d = decoded->front();
  EXPECT_EQ(d.repetition, run.repetition);
  EXPECT_EQ(d.fault_seed, run.fault_seed);
  EXPECT_EQ(d.finder_seed, run.finder_seed);
  EXPECT_EQ(d.faults, run.faults);
  EXPECT_TRUE(d.alive == run.alive);
  EXPECT_TRUE(d.prune.survivors == run.prune.survivors);
  EXPECT_EQ(d.prune.total_culled, run.prune.total_culled);
  EXPECT_EQ(d.prune.iterations, run.prune.iterations);
  // Doubles round-trip by bit pattern, not by formatting.
  EXPECT_EQ(d.threshold, run.threshold);
  EXPECT_EQ(d.millis, run.millis);
  EXPECT_EQ(d.fragmentation.largest, run.fragmentation.largest);
  EXPECT_EQ(d.fragmentation.gamma, run.fragmentation.gamma);
  EXPECT_EQ(d.fragmentation.sizes_desc, run.fragmentation.sizes_desc);
  ASSERT_EQ(d.expansion.has_value(), run.expansion.has_value());
  if (run.expansion.has_value()) {
    EXPECT_EQ(d.expansion->lower, run.expansion->lower);
    EXPECT_EQ(d.expansion->upper, run.expansion->upper);
    EXPECT_EQ(d.expansion->exact, run.expansion->exact);
  }
  ASSERT_TRUE(d.trace.has_value());
  EXPECT_EQ(d.trace->valid, run.trace->valid);
  EXPECT_EQ(d.engine.runs, run.engine.runs);
  EXPECT_EQ(d.engine.iterations, run.engine.iterations);
  EXPECT_EQ(d.engine.eigensolves, run.engine.eigensolves);
}

TEST(CellRecord, DecodeIsTotalOnMalformedInput) {
  ScenarioRunner runner(small_scenario());
  const ScenarioRun run = runner.run_isolated(runner.scenario().fault, 0);
  const std::string payload = encode_runs({&run, 1});

  EXPECT_FALSE(decode_runs("").has_value());
  EXPECT_FALSE(decode_runs("garbage").has_value());
  // Every strict prefix is a short read somewhere, never a crash.
  for (std::size_t cut : {std::size_t{1}, std::size_t{7}, payload.size() / 2,
                          payload.size() - 1}) {
    EXPECT_FALSE(decode_runs(std::string_view(payload).substr(0, cut)).has_value())
        << "prefix of " << cut << " bytes must fail to decode";
  }
  // Trailing garbage is rejected too (the frame length said otherwise).
  EXPECT_FALSE(decode_runs(payload + "x").has_value());
  // Unknown format word.
  std::string wrong_format = payload;
  wrong_format[0] = static_cast<char>(0x7F);
  EXPECT_FALSE(decode_runs(wrong_format).has_value());
}

TEST(CellKey, NamesEveryInputAndSeparatesCells) {
  const Scenario s = small_scenario();
  const std::string key = store_cell_key(s, s.fault, 0);
  EXPECT_EQ(key.find("fne-cell|schema=1|"), 0u);
  EXPECT_NE(key.find("|topo=mesh|"), std::string::npos);
  EXPECT_NE(key.find("|fault=random|"), std::string::npos);
  EXPECT_NE(key.find("|rep=0"), std::string::npos);

  EXPECT_NE(key, store_cell_key(s, s.fault, 1)) << "rep is part of the cell identity";
  Scenario other_seed = s;
  other_seed.seed = 405;
  EXPECT_NE(key, store_cell_key(other_seed, other_seed.fault, 0));
  Scenario other_metrics = s;
  other_metrics.metrics.expansion = false;
  EXPECT_NE(key, store_cell_key(other_metrics, other_metrics.fault, 0));
  FaultSpec heavier = s.fault;
  heavier.params.set("p", 0.3);
  EXPECT_NE(key, store_cell_key(s, heavier, 0));

  const SweepSpec sweep{"p", {0.1, 0.2}, SweepMode::kMonotone};
  const std::string chain_key = store_cell_key(s, s.fault, 0, &sweep);
  EXPECT_NE(chain_key, key);
  EXPECT_NE(chain_key.find("|sweep=p:monotone:"), std::string::npos);
  EXPECT_EQ(chain_key, store_cell_key(s, s.fault, 0, &sweep)) << "keys are deterministic";
}

// ---------------------------------------------------------------------------
// ResultStore file behavior
// ---------------------------------------------------------------------------

TEST(ResultStore, RoundTripsAndPersistsAcrossReopen) {
  const std::string dir = fresh_dir("roundtrip");
  {
    ResultStore store(dir);
    EXPECT_FALSE(store.load("k1").has_value());
    store.put("k1", "payload-one");
    store.put("k2", std::string("\x00\xff binary \n ok", 15));
    EXPECT_EQ(store.load("k1").value_or(""), "payload-one");
    const StoreStats st = store.stats();
    EXPECT_EQ(st.records, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.bytes_committed, 11u + 15u);
  }
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.stats().records, 2u);
  EXPECT_EQ(reopened.load("k1").value_or(""), "payload-one");
  EXPECT_EQ(reopened.load("k2").value_or(""), std::string("\x00\xff binary \n ok", 15));
  EXPECT_EQ(reopened.stats().truncated_bytes, 0u);
  EXPECT_EQ(reopened.stats().corrupt_records, 0u);
}

TEST(ResultStore, FirstWriteWinsOnDuplicateKeys) {
  const std::string dir = fresh_dir("dupes");
  ResultStore store(dir);
  store.put("k", "first");
  const std::uint64_t committed = store.stats().bytes_committed;
  store.put("k", "second");
  EXPECT_EQ(store.stats().bytes_committed, committed) << "duplicate put must not append";
  EXPECT_EQ(store.load("k").value_or(""), "first");
}

TEST(ResultStore, TruncatedTailIsDroppedAndTheCellRecomputable) {
  const std::string dir = fresh_dir("torn");
  {
    ResultStore store(dir);
    store.put("k1", "intact-payload");
    store.put("k2", "doomed-payload");
  }
  // Simulate a process killed mid-append: cut into k2's frame.
  const std::string bytes = read_file(log_of(dir));
  write_file(log_of(dir), bytes.substr(0, bytes.size() - 5));

  ResultStore store(dir);
  EXPECT_EQ(store.stats().records, 1u);
  EXPECT_GT(store.stats().truncated_bytes, 0u);
  EXPECT_EQ(store.load("k1").value_or(""), "intact-payload");
  EXPECT_FALSE(store.load("k2").has_value()) << "torn cell degrades to a miss";
  // The miss is recommittable, and the log is clean again afterwards.
  store.put("k2", "doomed-payload");
  EXPECT_EQ(store.load("k2").value_or(""), "doomed-payload");
  ResultStore again(dir);
  EXPECT_EQ(again.stats().records, 2u);
  EXPECT_EQ(again.stats().truncated_bytes, 0u);
}

TEST(ResultStore, ChecksumMismatchSkipsOnlyTheCorruptRecord) {
  const std::string dir = fresh_dir("checksum");
  std::uint64_t before_k2 = 0;
  {
    ResultStore store(dir);
    store.put("k1", "aaaa");
    before_k2 = fs::file_size(log_of(dir));
    store.put("k2", "bbbb");
    store.put("k3", "cccc");
  }
  // Flip one byte inside k2's payload (its frame starts at before_k2;
  // the payload's last byte is the last byte of the frame).
  std::string bytes = read_file(log_of(dir));
  const std::size_t flip = static_cast<std::size_t>(before_k2) + 24 + 2 + 4 - 1;
  bytes[flip] = static_cast<char>(bytes[flip] ^ 0x5A);
  write_file(log_of(dir), bytes);

  ResultStore store(dir);
  EXPECT_EQ(store.stats().records, 2u);
  EXPECT_EQ(store.stats().corrupt_records, 1u);
  EXPECT_EQ(store.stats().truncated_bytes, 0u) << "framing intact: nothing to truncate";
  EXPECT_EQ(store.load("k1").value_or(""), "aaaa");
  EXPECT_FALSE(store.load("k2").has_value());
  EXPECT_EQ(store.load("k3").value_or(""), "cccc") << "records after the bad one survive";
  store.put("k2", "bbbb");
  EXPECT_EQ(store.load("k2").value_or(""), "bbbb");
}

TEST(ResultStore, UnknownSchemaVersionRotatesAsideAndStartsFresh) {
  const std::string dir = fresh_dir("schema");
  {
    ResultStore store(dir);
    store.put("k", "old-world");
  }
  // Bump the on-disk version to something this build does not read.
  std::string bytes = read_file(log_of(dir));
  bytes[8] = 99;
  write_file(log_of(dir), bytes);

  ResultStore store(dir);
  EXPECT_EQ(store.stats().records, 0u) << "unknown schema degrades to recompute";
  EXPECT_FALSE(store.load("k").has_value());
  store.put("k", "new-world");
  EXPECT_EQ(store.load("k").value_or(""), "new-world");
  EXPECT_TRUE(fs::exists(fs::path(dir) / "cells.log.v99"))
      << "the unreadable log is preserved, not destroyed";
}

TEST(ResultStore, ForeignFileRotatesToBadAndStartsFresh) {
  const std::string dir = fresh_dir("foreign");
  fs::create_directories(dir);
  write_file(log_of(dir), "this is not a store log at all");
  ResultStore store(dir);
  EXPECT_EQ(store.stats().records, 0u);
  store.put("k", "v");
  EXPECT_EQ(store.load("k").value_or(""), "v");
  EXPECT_TRUE(fs::exists(fs::path(dir) / "cells.log.bad"));
}

TEST(ResultStore, TwoStoresOnOneDirectoryDedupViaRefresh) {
  const std::string dir = fresh_dir("two-writers");
  ResultStore a(dir);
  ResultStore b(dir);
  a.put("ka", "from-a");
  EXPECT_FALSE(b.load("ka").has_value()) << "b has not rescanned yet";
  b.refresh();
  EXPECT_EQ(b.load("ka").value_or(""), "from-a");
  // b appends while a holds an older tail position; a's next put rescans
  // and picks b's record up without rewriting it.
  b.put("kb", "from-b");
  a.put("kc", "from-a-too");
  EXPECT_EQ(a.load("kb").value_or(""), "from-b");
  // Both race the same key: two frames may land, first wins everywhere.
  a.put("shared", "identical-bytes");
  b.put("shared", "identical-bytes");
  a.refresh();
  b.refresh();
  EXPECT_EQ(a.load("shared").value_or(""), "identical-bytes");
  EXPECT_EQ(b.load("shared").value_or(""), "identical-bytes");
  ResultStore fresh(dir);
  EXPECT_EQ(fresh.stats().records, 4u);
}

// ---------------------------------------------------------------------------
// Campaign through the store
// ---------------------------------------------------------------------------

/// Small campaign covering all three job kinds: independent repetitions,
/// a monotone chain (one cell), and independent sweep points.  6 jobs.
[[nodiscard]] Campaign store_campaign() {
  Campaign campaign;
  campaign.name = "store-determinism";
  {
    Scenario s;
    s.name = "reps";
    s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.25"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.fast = true;
    s.repetitions = 3;
    s.seed = 81;
    campaign.entries.push_back({s, std::nullopt});
  }
  {
    Scenario s;
    s.name = "chain";
    s.topology = {"mesh", Params{{"side", "16"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.1"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.alpha = 0.125;
    s.metrics.verify_trace = true;
    s.seed = 82;
    campaign.entries.push_back({s, SweepSpec{"p", {0.1, 0.2, 0.3}, SweepMode::kMonotone}});
  }
  {
    Scenario s;
    s.name = "points";
    s.topology = {"hypercube", Params{{"dims", "6"}}};
    s.fault = {"high_degree", Params{{"frac", "0.1"}}};
    s.prune.kind = ExpansionKind::Node;
    s.seed = 83;
    campaign.entries.push_back(
        {s, SweepSpec{"frac", {0.05, 0.15}, SweepMode::kIndependent}});
  }
  return campaign;
}

constexpr std::uint64_t kStoreCampaignJobs = 6;  // 3 reps + 1 chain + 2 points

TEST(CampaignStore, PayloadIsByteIdenticalDisabledColdWarmAtAnyThreadCount) {
  const std::string dir = fresh_dir("campaign-payload");
  CampaignRunner runner(store_campaign());
  const std::string reference = runner.run(2).to_json(/*include_timing=*/false);

  ResultStore store(dir);
  const CampaignReport cold = runner.run(2, &store);
  EXPECT_TRUE(cold.store_enabled);
  EXPECT_EQ(cold.store.hits, 0u);
  EXPECT_EQ(cold.store.misses, kStoreCampaignJobs);
  EXPECT_GT(cold.store.bytes_committed, 0u);
  EXPECT_EQ(cold.to_json(false), reference)
      << "store commits must not perturb the deterministic payload";

  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    const CampaignReport warm = runner.run(threads, &store);
    EXPECT_EQ(warm.store.hits, kStoreCampaignJobs);
    EXPECT_EQ(warm.store.misses, 0u);
    EXPECT_EQ(warm.to_json(false), reference)
        << "a fully store-served run must reproduce the payload byte for byte";
  }
  // Hit/miss telemetry lives in the timing payload only.
  EXPECT_EQ(cold.to_json(false).find("\"store\""), std::string::npos);
  EXPECT_NE(cold.to_json(true).find("\"store\""), std::string::npos);
}

TEST(CampaignStore, WarmRunPersistsAcrossProcessReopen) {
  const std::string dir = fresh_dir("campaign-reopen");
  CampaignRunner runner(store_campaign());
  std::string cold_payload;
  {
    ResultStore store(dir);
    cold_payload = runner.run(2, &store).to_json(false);
  }
  ResultStore reopened(dir);
  const CampaignReport warm = runner.run(2, &reopened);
  EXPECT_EQ(warm.store.hits, kStoreCampaignJobs);
  EXPECT_EQ(warm.store.misses, 0u);
  EXPECT_EQ(warm.to_json(false), cold_payload);
}

TEST(CampaignStore, MixedHitMissSplitStillReproducesThePayload) {
  const std::string dir = fresh_dir("campaign-mixed");
  Campaign full = store_campaign();
  Campaign first_only;
  first_only.name = full.name;
  first_only.entries.push_back(full.entries[0]);

  ResultStore store(dir);
  // Pre-commit only entry 0's cells (3 rep jobs)...
  (void)CampaignRunner(first_only).run(1, &store);
  // ...then the full campaign: those 3 hit, the other 3 compute.
  CampaignRunner runner(full);
  const CampaignReport mixed = runner.run(4, &store);
  EXPECT_EQ(mixed.store.hits, 3u);
  EXPECT_EQ(mixed.store.misses, kStoreCampaignJobs - 3u);
  EXPECT_EQ(mixed.to_json(false), runner.run(4).to_json(false));
}

TEST(CampaignStore, KilledCampaignResumesRecomputingOnlyMissingCells) {
  const std::string dir = fresh_dir("campaign-resume");
  CampaignRunner runner(store_campaign());
  std::string payload;
  {
    ResultStore store(dir);
    payload = runner.run(1, &store).to_json(false);
  }
  // Simulate a kill during the last commit: tear the final frame.
  const std::string bytes = read_file(log_of(dir));
  write_file(log_of(dir), bytes.substr(0, bytes.size() - 7));

  ResultStore store(dir);
  EXPECT_EQ(store.stats().records, kStoreCampaignJobs - 1u);
  const CampaignReport resumed = runner.run(2, &store);
  EXPECT_EQ(resumed.store.hits, kStoreCampaignJobs - 1u)
      << "every previously committed cell must be served from the store";
  EXPECT_EQ(resumed.store.misses, 1u) << "only the torn cell recomputes";
  EXPECT_EQ(resumed.to_json(false), payload);
  // The store is whole again: a third run is all hits.
  const CampaignReport healed = runner.run(2, &store);
  EXPECT_EQ(healed.store.misses, 0u);
}

TEST(CampaignStore, CorruptRecordDegradesToRecomputeNotCrash) {
  const std::string dir = fresh_dir("campaign-corrupt");
  CampaignRunner runner(store_campaign());
  std::string payload;
  {
    ResultStore store(dir);
    payload = runner.run(1, &store).to_json(false);
  }
  // Flip a byte in the middle of the log: ONE record's checksum breaks.
  std::string bytes = read_file(log_of(dir));
  const std::size_t flip = bytes.size() / 2;
  bytes[flip] = static_cast<char>(bytes[flip] ^ 0x5A);
  write_file(log_of(dir), bytes);

  ResultStore store(dir);
  const CampaignReport report = runner.run(2, &store);
  EXPECT_EQ(report.store.misses, 1u);
  EXPECT_EQ(report.store.hits, kStoreCampaignJobs - 1u);
  EXPECT_EQ(report.to_json(false), payload);
}

TEST(CampaignStore, TwoRunnersOnOneStoreDirDedup) {
  // Two campaign runs sharing one directory through separate store
  // objects (the two-process picture): the second store picks the first
  // run's cells up at refresh() and computes nothing.
  const std::string dir = fresh_dir("campaign-dedup");
  CampaignRunner runner(store_campaign());
  ResultStore a(dir);
  ResultStore b(dir);  // opened before a committed anything
  const std::string payload = runner.run(2, &a).to_json(false);
  const CampaignReport via_b = runner.run(2, &b);
  EXPECT_EQ(via_b.store.hits, kStoreCampaignJobs);
  EXPECT_EQ(via_b.store.misses, 0u);
  EXPECT_EQ(via_b.to_json(false), payload);
}

}  // namespace
}  // namespace fne
