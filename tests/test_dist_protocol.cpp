// Wire-protocol contracts for the distributed campaign runtime
// (DESIGN.md §12): frame + payload codecs round-trip; the FrameBuffer is
// an incremental TOTAL decoder — byte-at-a-time delivery, random garbage
// prefixes, truncations at every boundary, single flipped bits and
// absurd length fields all yield clean rejections (kNeedMore/kCorrupt),
// never a misparsed message, an exception, or a crash.  Bytes on this
// surface are hostile by assumption; these are the fuzz-style tests the
// chaos matrix leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/message.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

[[nodiscard]] std::vector<Message> sample_messages() {
  std::vector<Message> out;
  out.push_back({MsgType::kHello, encode_hello({0x1234abcdu, "worker-7"})});
  out.push_back({MsgType::kWelcome, encode_welcome({true, ""})});
  out.push_back({MsgType::kWelcome, encode_welcome({false, "campaign mismatch"})});
  out.push_back({MsgType::kPull, ""});
  JobPayload job;
  job.index = 42;
  job.kind = 3;
  job.key = "entry=chain|rep=0|p=0.1,0.2,0.3";
  job.lease_ms = 10000;
  job.heartbeat_ms = 250;
  job.parent_runs = std::string("\x01\x02\x00\xff", 4);
  out.push_back({MsgType::kJob, encode_job(job)});
  out.push_back({MsgType::kWait, encode_wait({125})});
  out.push_back({MsgType::kDone, ""});
  ResultPayload result;
  result.index = 7;
  result.kind = 0;
  result.key = "entry=reps|rep=2";
  result.data = std::string(300, '\x5a') + std::string(1, '\0') + "tail";
  out.push_back({MsgType::kResult, encode_result(result)});
  out.push_back({MsgType::kHeartbeat, encode_heartbeat({9})});
  return out;
}

TEST(DistProtocol, TypedPayloadsRoundTrip) {
  const HelloPayload hello{0xfeedfacecafebeefull, "w"};
  const auto hello2 = decode_hello(encode_hello(hello));
  ASSERT_TRUE(hello2.has_value());
  EXPECT_EQ(hello2->fingerprint, hello.fingerprint);
  EXPECT_EQ(hello2->worker_name, hello.worker_name);

  JobPayload job;
  job.index = 123456789;
  job.kind = 2;
  job.key = "some|cell|key";
  job.lease_ms = 5000;
  job.heartbeat_ms = 100;
  job.parent_runs = std::string("\x00\x01\x02", 3);
  const auto job2 = decode_job(encode_job(job));
  ASSERT_TRUE(job2.has_value());
  EXPECT_EQ(job2->index, job.index);
  EXPECT_EQ(job2->kind, job.kind);
  EXPECT_EQ(job2->key, job.key);
  EXPECT_EQ(job2->lease_ms, job.lease_ms);
  EXPECT_EQ(job2->heartbeat_ms, job.heartbeat_ms);
  EXPECT_EQ(job2->parent_runs, job.parent_runs);

  ResultPayload result;
  result.index = 3;
  result.kind = 1;
  result.key = "k";
  result.data = std::string(1000, '\xaa');
  const auto result2 = decode_result(encode_result(result));
  ASSERT_TRUE(result2.has_value());
  EXPECT_EQ(result2->index, result.index);
  EXPECT_EQ(result2->kind, result.kind);
  EXPECT_EQ(result2->key, result.key);
  EXPECT_EQ(result2->data, result.data);

  const MetricRecordWire metric{"expansion_bracket", R"({"lower":0.1})", "0.1..0.2"};
  const auto metric2 = decode_metric_record(encode_metric_record(metric));
  ASSERT_TRUE(metric2.has_value());
  EXPECT_EQ(metric2->name, metric.name);
  EXPECT_EQ(metric2->payload, metric.payload);
  EXPECT_EQ(metric2->brief, metric.brief);

  const auto wait = decode_wait(encode_wait({77}));
  ASSERT_TRUE(wait.has_value());
  EXPECT_EQ(wait->retry_ms, 77u);
  const auto hb = decode_heartbeat(encode_heartbeat({31}));
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->index, 31u);
}

TEST(DistProtocol, TypedDecodersRejectTrailingGarbage) {
  EXPECT_FALSE(decode_hello(encode_hello({1, "x"}) + "!").has_value());
  EXPECT_FALSE(decode_wait(encode_wait({1}) + std::string(1, '\0')).has_value());
  EXPECT_FALSE(decode_heartbeat(encode_heartbeat({1}) + "z").has_value());
  EXPECT_FALSE(decode_result(encode_result({1, 0, "k", "d"}) + "??").has_value());
}

TEST(DistProtocol, FramesRoundTripWholeAndByteAtATime) {
  const std::vector<Message> messages = sample_messages();
  std::string stream;
  for (const Message& m : messages) stream += encode_frame(m);

  for (const std::size_t chunk : {stream.size(), std::size_t{1}, std::size_t{7}}) {
    SCOPED_TRACE(chunk);
    FrameBuffer buf;
    Message out;
    std::vector<Message> decoded;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      buf.append(std::string_view(stream).substr(at, chunk));
      while (buf.next(out) == FrameBuffer::Next::kMessage) decoded.push_back(out);
    }
    ASSERT_EQ(decoded.size(), messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(decoded[i].type, messages[i].type);
      EXPECT_EQ(decoded[i].payload, messages[i].payload);
    }
    EXPECT_EQ(buf.pending_bytes(), 0u);
  }
}

TEST(DistProtocol, RandomGarbagePrefixPoisonsTheStream) {
  Rng rng(2024);
  const std::string frame = encode_frame({MsgType::kPull, ""});
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(1 + rng.uniform(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform(256));
    // A prefix that happens to BE a valid frame start is not garbage;
    // the chance of forging magic+type+checksum is negligible, but rule
    // out the trivial collision of starting with the real magic.
    if (garbage.size() >= 4 && garbage.compare(0, 4, frame, 0, 4) == 0) continue;

    FrameBuffer buf;
    Message out;
    buf.append(garbage);
    buf.append(frame);
    FrameBuffer::Next last = FrameBuffer::Next::kNeedMore;
    for (int i = 0; i < 4; ++i) last = buf.next(out);
    EXPECT_EQ(last, FrameBuffer::Next::kCorrupt)
        << "garbage must poison the stream permanently, even with a valid "
           "frame appended after it";
  }
}

TEST(DistProtocol, EveryTruncationIsNeedMoreNeverAMessage) {
  const std::string frame = encode_frame({MsgType::kResult, encode_result({5, 0, "key", "data"})});
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    FrameBuffer buf;
    Message out;
    buf.append(std::string_view(frame).substr(0, keep));
    EXPECT_EQ(buf.next(out), FrameBuffer::Next::kNeedMore) << "keep=" << keep;
    // Delivering the remainder completes the frame: truncation is a
    // pause, not damage.
    buf.append(std::string_view(frame).substr(keep));
    EXPECT_EQ(buf.next(out), FrameBuffer::Next::kMessage) << "keep=" << keep;
    EXPECT_EQ(out.payload, encode_result({5, 0, "key", "data"}));
  }
}

TEST(DistProtocol, AnySingleBitFlipNeverYieldsAMessage) {
  const std::string frame =
      encode_frame({MsgType::kJob, encode_job({9, 1, "cell|key", 1000, 50, ""})});
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      FrameBuffer buf;
      Message out;
      buf.append(mutated);
      const FrameBuffer::Next got = buf.next(out);
      // A flip in the length field can make the frame look longer
      // (kNeedMore); any flip that lets a frame complete must fail the
      // checksum (kCorrupt).  What can never happen is a message.
      EXPECT_NE(got, FrameBuffer::Next::kMessage) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(DistProtocol, OversizedLengthFieldIsRejectedBeforeBuffering) {
  // Hand-build a header claiming a ~1 GiB payload; the decoder must
  // reject it from the header alone instead of waiting for a gigabyte.
  std::string frame = encode_frame({MsgType::kPull, ""});
  frame[8] = '\x00';
  frame[9] = '\x00';
  frame[10] = '\x00';
  frame[11] = '\x40';  // len = 0x40000000
  FrameBuffer buf;
  Message out;
  buf.append(frame);
  EXPECT_EQ(buf.next(out), FrameBuffer::Next::kCorrupt);
}

TEST(DistProtocol, UnknownTypeAndBadMagicAreCorrupt) {
  {
    std::string frame = encode_frame({MsgType::kPull, ""});
    frame[4] = '\x63';  // type = 99: out of range even with a fixed checksum
    FrameBuffer buf;
    Message out;
    buf.append(frame);
    EXPECT_EQ(buf.next(out), FrameBuffer::Next::kCorrupt);
  }
  {
    std::string frame = encode_frame({MsgType::kPull, ""});
    frame[0] = 'X';
    FrameBuffer buf;
    Message out;
    buf.append(frame);
    EXPECT_EQ(buf.next(out), FrameBuffer::Next::kCorrupt);
  }
}

TEST(DistProtocol, FuzzedDecodersNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes(rng.uniform(64), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.uniform(256));
    (void)decode_hello(bytes);
    (void)decode_welcome(bytes);
    (void)decode_job(bytes);
    (void)decode_wait(bytes);
    (void)decode_result(bytes);
    (void)decode_heartbeat(bytes);
    (void)decode_metric_record(bytes);
    FrameBuffer buf;
    Message out;
    buf.append(bytes);
    (void)buf.next(out);
  }
}

TEST(DistProtocol, WireFingerprintMixesVersionAndPlan) {
  EXPECT_EQ(wire_fingerprint(7), wire_fingerprint(7));
  EXPECT_NE(wire_fingerprint(7), wire_fingerprint(8));
  EXPECT_NE(wire_fingerprint(7), 7u) << "the mix must not be the identity";
}

}  // namespace
}  // namespace fne
