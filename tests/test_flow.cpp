#include "expansion/flow.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

TEST(Flow, PathHasSinglePath) {
  const Graph g = path_graph(6);
  const VertexSet all = VertexSet::full(6);
  EXPECT_EQ(max_edge_disjoint_paths(g, all, 0, 5), 1U);
  EXPECT_EQ(max_vertex_disjoint_paths(g, all, 0, 5), 1U);
}

TEST(Flow, CycleHasTwoPaths) {
  const Graph g = cycle_graph(8);
  const VertexSet all = VertexSet::full(8);
  EXPECT_EQ(max_edge_disjoint_paths(g, all, 0, 4), 2U);
  EXPECT_EQ(max_vertex_disjoint_paths(g, all, 0, 4), 2U);
}

TEST(Flow, CompleteGraphPaths) {
  const vid n = 7;
  const Graph g = complete_graph(n);
  const VertexSet all = VertexSet::full(n);
  // Edge-disjoint s-t paths in K_n: n-1 (direct + via each other vertex).
  EXPECT_EQ(max_edge_disjoint_paths(g, all, 0, 1), n - 1);
  EXPECT_EQ(max_vertex_disjoint_paths(g, all, 0, 1), n - 1);
}

TEST(Flow, HypercubeConnectivityEqualsDegree) {
  for (vid d : {3U, 4U}) {
    const Graph g = hypercube(d);
    const VertexSet all = VertexSet::full(g.num_vertices());
    EXPECT_EQ(edge_connectivity(g, all), d) << "d=" << d;
    EXPECT_EQ(vertex_connectivity(g, all), d) << "d=" << d;
  }
}

TEST(Flow, MeshCornerLimitsConnectivity) {
  const Mesh m({4, 4});
  const VertexSet all = VertexSet::full(16);
  EXPECT_EQ(edge_connectivity(m.graph(), all), 2U);    // corner degree
  EXPECT_EQ(vertex_connectivity(m.graph(), all), 2U);  // corner neighbors
}

TEST(Flow, BarbellBridgeIsTheCut) {
  const Graph g = barbell_graph(5);
  const VertexSet all = VertexSet::full(10);
  EXPECT_EQ(edge_connectivity(g, all), 1U);
  EXPECT_EQ(vertex_connectivity(g, all), 1U);
  EXPECT_EQ(max_edge_disjoint_paths(g, all, 1, 6), 1U);
}

TEST(Flow, CompleteGraphVertexConnectivity) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(vertex_connectivity(g, VertexSet::full(6)), 5U);
}

TEST(Flow, MasksReduceConnectivity) {
  const Graph g = cycle_graph(8);
  VertexSet alive = VertexSet::full(8);
  alive.reset(2);  // cycle becomes a path
  EXPECT_EQ(max_edge_disjoint_paths(g, alive, 0, 4), 1U);
  EXPECT_EQ(edge_connectivity(g, alive), 1U);
}

TEST(Flow, DisconnectedReturnsZero) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const VertexSet all = VertexSet::full(4);
  EXPECT_EQ(edge_connectivity(g, all), 0U);
  EXPECT_EQ(vertex_connectivity(g, all), 0U);
  EXPECT_EQ(max_edge_disjoint_paths(g, all, 0, 2), 0U);
}

TEST(Flow, MengerLowerBoundsMinDegree) {
  // κ(G) <= λ(G) <= δ_min(G) (Whitney); equality on random regular whp.
  const Graph g = random_regular(32, 4, 17);
  const VertexSet all = VertexSet::full(32);
  const auto lambda = edge_connectivity(g, all);
  const auto kappa = vertex_connectivity(g, all);
  EXPECT_LE(kappa, lambda);
  EXPECT_LE(lambda, g.min_degree());
  EXPECT_GE(kappa, 1U);
}

TEST(Flow, EndpointValidation) {
  const Graph g = path_graph(4);
  const VertexSet all = VertexSet::full(4);
  EXPECT_THROW((void)max_edge_disjoint_paths(g, all, 0, 0), PreconditionError);
  VertexSet alive = all;
  alive.reset(3);
  EXPECT_THROW((void)max_edge_disjoint_paths(g, alive, 0, 3), PreconditionError);
}

TEST(Flow, EdgeCutMatchesBoundaryOnWitness) {
  // The s-t min cut lower-bounds any edge boundary separating s from t.
  const Mesh m({5, 5});
  const Graph& g = m.graph();
  const VertexSet all = VertexSet::full(25);
  const vid s = m.id_of({0, 0});
  const vid t = m.id_of({4, 4});
  const auto cut = max_edge_disjoint_paths(g, all, s, t);
  // Any separating set has >= cut edges; the row cut {row 0, ...} has 5.
  EXPECT_LE(cut, 5U);
  EXPECT_GE(cut, 2U);
}

}  // namespace
}  // namespace fne
