#include "faults/fault_model.hpp"

#include <gtest/gtest.h>

#include "analysis/fragmentation.hpp"
#include "faults/adversary.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

TEST(FaultModel, ZeroAndOneProbabilities) {
  const Graph g = cycle_graph(20);
  EXPECT_EQ(random_node_faults(g, 0.0, 1).count(), 20U);
  EXPECT_EQ(random_node_faults(g, 1.0, 1).count(), 0U);
  EXPECT_EQ(random_edge_faults(g, 0.0, 1).count(), 20U);
  EXPECT_EQ(random_edge_faults(g, 1.0, 1).count(), 0U);
}

TEST(FaultModel, DeterministicUnderSeed) {
  const Graph g = cycle_graph(50);
  EXPECT_EQ(random_node_faults(g, 0.3, 7), random_node_faults(g, 0.3, 7));
}

TEST(FaultModel, SurvivalRateNearExpectation) {
  const Graph g = Mesh({40, 40}).graph();
  const VertexSet alive = random_node_faults(g, 0.25, 3);
  EXPECT_NEAR(static_cast<double>(alive.count()) / 1600.0, 0.75, 0.05);
}

TEST(FaultModel, ExactFaultCount) {
  const Graph g = cycle_graph(30);
  const VertexSet alive = random_exact_node_faults(g, 12, 5);
  EXPECT_EQ(alive.count(), 18U);
  EXPECT_THROW((void)random_exact_node_faults(g, 31, 5), PreconditionError);
}

TEST(Adversary, ChainCenterAttackUsesOneFaultPerEdge) {
  const Graph base = random_regular(16, 4, 1);
  const ChainExpander h = chain_replace(base, 4);
  const AttackResult attack = chain_center_attack(h);
  EXPECT_EQ(attack.budget_used, base.num_edges());
  // Every fault is a chain interior, never an original vertex.
  attack.faults.for_each([&](vid v) { EXPECT_FALSE(h.is_original(v)); });
}

TEST(Adversary, BisectionAttackShattersMesh) {
  const Mesh m({12, 12});
  BisectionOptions opts;
  opts.epsilon = 0.2;
  const AttackResult attack = bisection_attack(m.graph(), opts);
  const VertexSet alive = VertexSet::full(144) - attack.faults;
  const FragmentationProfile frag = fragmentation_profile(m.graph(), alive);
  EXPECT_LT(frag.gamma, 0.2 + 0.05);
  // Theorem 2.5 economy: the attack should spend far fewer than n faults.
  EXPECT_LT(attack.budget_used, 72U);
}

TEST(Adversary, SweepCutAttackRespectsBudget) {
  const Mesh m({10, 10});
  const AttackResult attack = sweep_cut_attack(m.graph(), 15);
  EXPECT_LE(attack.budget_used, 15U);
  EXPECT_EQ(attack.faults.count(), attack.budget_used);
}

TEST(Adversary, HighDegreeAttackTakesHubsFirst) {
  const Graph g = star_graph(10);
  const AttackResult attack = high_degree_attack(g, 1);
  EXPECT_TRUE(attack.faults.test(0));  // the hub
  const VertexSet alive = VertexSet::full(10) - attack.faults;
  EXPECT_EQ(fragmentation_profile(g, alive).largest, 1U);
}

TEST(Adversary, RandomAttackBudgetExact) {
  const Graph g = cycle_graph(40);
  const AttackResult attack = random_attack(g, 10, 3);
  EXPECT_EQ(attack.faults.count(), 10U);
  EXPECT_EQ(random_attack(g, 10, 3).faults, attack.faults);  // deterministic
}

TEST(Adversary, BudgetGuards) {
  const Graph g = cycle_graph(5);
  EXPECT_THROW((void)high_degree_attack(g, 6), PreconditionError);
  EXPECT_THROW((void)random_attack(g, 6, 1), PreconditionError);
}

}  // namespace
}  // namespace fne
