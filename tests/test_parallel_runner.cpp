// Parallel scenario execution contracts (DESIGN.md §7): run_all and
// sweep_fault_param produce bit-identical ScenarioRuns for ANY thread
// count (seeds per repetition, caches per-repetition cold), worker
// telemetry folds into total_engine_stats, errors propagate without
// poisoning the runner, and the percolation layer's chunk-merged stats
// are thread-count independent.
#include <gtest/gtest.h>

#include "api/runner.hpp"
#include "percolation/percolation.hpp"
#include "topology/mesh.hpp"
#include "util/require.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {
namespace {

[[nodiscard]] Scenario parallel_scenario(bool fast) {
  Scenario s;
  s.name = "parallel-test";
  s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.25"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.fast = fast;
  s.repetitions = 6;
  s.seed = 424242;
  return s;
}

void expect_identical(const ScenarioRun& a, const ScenarioRun& b) {
  EXPECT_EQ(a.repetition, b.repetition);
  EXPECT_EQ(a.fault_seed, b.fault_seed);
  EXPECT_EQ(a.finder_seed, b.finder_seed);
  EXPECT_TRUE(a.alive == b.alive);
  EXPECT_TRUE(a.prune.survivors == b.prune.survivors);
  EXPECT_EQ(a.prune.iterations, b.prune.iterations);
  ASSERT_EQ(a.prune.culled.size(), b.prune.culled.size());
  for (std::size_t i = 0; i < a.prune.culled.size(); ++i) {
    EXPECT_TRUE(a.prune.culled[i].set == b.prune.culled[i].set);
    EXPECT_EQ(a.prune.culled[i].boundary, b.prune.culled[i].boundary);
  }
}

TEST(ParallelRunner, RunAllIsBitIdenticalAcrossThreadCounts) {
  for (const bool fast : {false, true}) {
    SCOPED_TRACE(fast ? "fast" : "deterministic");
    const Scenario s = parallel_scenario(fast);
    const std::vector<ScenarioRun> serial = ScenarioRunner(s).run_all(1);
    bool any_culled = false;
    for (const ScenarioRun& r : serial) any_culled = any_culled || r.prune.total_culled > 0;
    EXPECT_TRUE(any_culled) << "workload too gentle to exercise the cull loop";
    for (const int threads : {2, 4}) {
      SCOPED_TRACE(threads);
      const std::vector<ScenarioRun> parallel = ScenarioRunner(s).run_all(threads);
      ASSERT_EQ(serial.size(), parallel.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(i);
        expect_identical(serial[i], parallel[i]);
      }
    }
  }
}

TEST(ParallelRunner, RunAllOnOneRunnerMatchesFreshRunner) {
  // A runner with prior history (warm engine from run_once/churn) must
  // still produce the pure run_all results: every repetition starts cold.
  const Scenario s = parallel_scenario(true);
  ScenarioRunner warmed(s);
  (void)warmed.run_once(0);  // leaves a warm Fiedler cache behind
  const std::vector<ScenarioRun> after_history = warmed.run_all(1);
  const std::vector<ScenarioRun> fresh = ScenarioRunner(s).run_all(3);
  ASSERT_EQ(after_history.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(after_history[i], fresh[i]);
  }
}

TEST(ParallelRunner, SweepIsBitIdenticalAcrossThreadCounts) {
  Scenario s = parallel_scenario(true);
  s.metrics.verify_trace = false;
  ScenarioRunner runner(s);
  const std::vector<double> ps{0.05, 0.15, 0.25, 0.35};
  const std::vector<ScenarioRun> serial = runner.sweep_fault_param("p", ps, 1);
  const std::vector<ScenarioRun> parallel = runner.sweep_fault_param("p", ps, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
  // The runner's own fault spec is never mutated by a sweep.
  EXPECT_EQ(runner.scenario().fault.params.get_double("p", 0.0), 0.25);
}

TEST(ParallelRunner, PooledStatsAccountForEveryRepetition) {
  const Scenario s = parallel_scenario(true);
  ScenarioRunner serial_runner(s);
  (void)serial_runner.run_all(1);
  const EngineStats serial_stats = serial_runner.total_engine_stats();
  EXPECT_EQ(serial_stats.runs, static_cast<std::uint64_t>(s.repetitions));

  ScenarioRunner pooled_runner(s);
  (void)pooled_runner.run_all(3);
  const EngineStats pooled_stats = pooled_runner.total_engine_stats();
  EXPECT_EQ(pooled_stats.runs, static_cast<std::uint64_t>(s.repetitions));
  // Work totals are placement-independent: same culls, same iterations.
  EXPECT_EQ(serial_stats.iterations, pooled_stats.iterations);
  EXPECT_EQ(serial_stats.disconnected_culls, pooled_stats.disconnected_culls);
}

TEST(ParallelRunner, WorkerErrorsPropagateWithoutPoisoningTheRunner) {
  Scenario s = parallel_scenario(false);
  s.metrics.verify_trace = false;
  ScenarioRunner runner(s);
  const std::vector<double> ps{0.1, 0.2};
  EXPECT_THROW((void)runner.sweep_fault_param("no_such_key", ps, 2), PreconditionError);
  EXPECT_FALSE(runner.scenario().fault.params.has("no_such_key"));
  // Still usable afterwards.
  const std::vector<ScenarioRun> runs = runner.sweep_fault_param("p", ps, 2);
  EXPECT_EQ(runs.size(), ps.size());
}

TEST(ParallelRunner, PercolationStatsAreThreadCountIndependent) {
  const Mesh m = Mesh::cube(12, 2);
  const PercolationResult reference = percolate(m.graph(), PercolationKind::Site, 0.7, 37, 5);
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    const PercolationResult again = percolate(m.graph(), PercolationKind::Site, 0.7, 37, 5);
    SCOPED_TRACE(threads);
    EXPECT_EQ(reference.gamma.count(), again.gamma.count());
    EXPECT_EQ(reference.gamma.mean(), again.gamma.mean());
    EXPECT_EQ(reference.gamma.variance(), again.gamma.variance());
    EXPECT_EQ(reference.gamma.min(), again.gamma.min());
    EXPECT_EQ(reference.gamma.max(), again.gamma.max());
  }
  omp_set_num_threads(saved);
#else
  const PercolationResult again = percolate(m.graph(), PercolationKind::Site, 0.7, 37, 5);
  EXPECT_EQ(reference.gamma.mean(), again.gamma.mean());
#endif
  EXPECT_EQ(reference.gamma.count(), 37u);
}

}  // namespace
}  // namespace fne
