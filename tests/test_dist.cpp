// Distributed campaign execution contracts (DESIGN.md §12).  The core
// claim under test: for ANY worker count, ANY seeded fault schedule, and
// ANY kill pattern, the coordinator's deterministic payload
// (CampaignReport::to_json(false)) is byte-identical to a local
// single-process CampaignRunner — faults move work around, they never
// change results.  Plus the robustness mechanics one by one: zero-worker
// degradation, fingerprint handshake, duplicate completions, wrong-key
// rejection, garbage connections, zombie workers reaped by lease
// deadline, and store commits from a distributed run replaying warm.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/campaign.hpp"
#include "dist/coordinator.hpp"
#include "dist/message.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "util/timer.hpp"

namespace fne {
namespace {

namespace fs = std::filesystem;

/// Small campaign exercising every job kind: independent reps with a
/// SPLIT metric (kMetric jobs), a monotone chain (one serial cell), and
/// independent sweep points.  2 cells + 2 metrics + 1 chain + 2 points
/// = 7 jobs.
[[nodiscard]] Campaign dist_campaign() {
  Campaign campaign;
  campaign.name = "dist-chaos";
  {
    Scenario s;
    s.name = "reps-split";
    s.topology = {"mesh", Params{{"side", "10"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.2"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.fast = true;
    s.repetitions = 2;
    s.seed = 91;
    s.metrics.requests.push_back({"expansion_bracket", Params{}});
    campaign.entries.push_back({s, std::nullopt});
  }
  {
    Scenario s;
    s.name = "chain";
    s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.1"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.alpha = 0.125;
    s.seed = 92;
    campaign.entries.push_back({s, SweepSpec{"p", {0.1, 0.25, 0.4}, SweepMode::kMonotone}});
  }
  {
    Scenario s;
    s.name = "points";
    s.topology = {"hypercube", Params{{"dims", "5"}}};
    s.fault = {"high_degree", Params{{"frac", "0.1"}}};
    s.prune.kind = ExpansionKind::Node;
    s.seed = 93;
    campaign.entries.push_back({s, SweepSpec{"frac", {0.05, 0.2}, SweepMode::kIndependent}});
  }
  return campaign;
}

/// A one-entry campaign for the cheap tier-1 tests.
[[nodiscard]] Campaign tiny_campaign() {
  Campaign campaign;
  campaign.name = "dist-tiny";
  Scenario s;
  s.name = "tiny";
  s.topology = {"mesh", Params{{"side", "8"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.2"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.fast = true;
  s.repetitions = 2;
  s.seed = 17;
  campaign.entries.push_back({s, std::nullopt});
  return campaign;
}

/// Fast-converging coordinator knobs for tests: short leases, quick
/// fallback, tight polling.
[[nodiscard]] DistOptions test_options() {
  DistOptions opts;
  opts.local_threads = 2;
  opts.job_timeout_ms = 400;
  opts.lease_cap_ms = 2000;
  opts.heartbeat_ms = 50;
  opts.retry_budget = 2;
  opts.backoff_base_ms = 10;
  opts.backoff_max_ms = 100;
  opts.idle_grace_ms = 100;
  opts.poll_ms = 10;
  return opts;
}

[[nodiscard]] WorkerOptions test_worker(int port, const std::string& name) {
  WorkerOptions w;
  w.port = port;
  w.name = name;
  w.recv_timeout_ms = 25;
  w.idle_timeout_ms = 2000;
  w.reconnect_backoff_ms = 10;
  w.connect_attempts = 100;
  return w;
}

struct DistRun {
  std::string payload;
  DistStats stats;
  std::vector<WorkerReport> workers;
};

/// Run `campaign` through a coordinator plus in-process workers; returns
/// the deterministic payload and the robustness telemetry.
[[nodiscard]] DistRun run_dist(const Campaign& campaign, std::vector<WorkerOptions> workers,
                               DistOptions opts = test_options(), ResultStore* store = nullptr) {
  DistCoordinator coordinator(campaign, opts, store);
  std::vector<std::unique_ptr<DistWorker>> pool;
  std::vector<std::thread> threads;
  std::vector<WorkerReport> reports(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].port = coordinator.port();
    pool.push_back(std::make_unique<DistWorker>(campaign, workers[i]));
    threads.emplace_back(
        [w = pool.back().get(), &report = reports[i]] { report = w->run(); });
  }
  const CampaignReport report = coordinator.run();
  for (const auto& w : pool) w->stop();
  for (std::thread& th : threads) th.join();
  return {report.to_json(/*include_timing=*/false), coordinator.stats(), std::move(reports)};
}

[[nodiscard]] std::string local_payload(const Campaign& campaign) {
  CampaignRunner runner(campaign);
  return runner.run(1).to_json(/*include_timing=*/false);
}

// ---------------------------------------------------------------------------
// Tier-1: degradation, handshake, hostile clients
// ---------------------------------------------------------------------------

TEST(Dist, ZeroWorkersDegradesToExactlyTheLocalRun) {
  const Campaign campaign = tiny_campaign();
  const std::string reference = local_payload(campaign);
  const DistRun run = run_dist(campaign, {});
  EXPECT_EQ(run.payload, reference);
  EXPECT_EQ(run.stats.sessions, 0u);
  EXPECT_EQ(run.stats.remote_cells + run.stats.remote_metrics, 0u);
  EXPECT_GT(run.stats.local_cells, 0u);
}

TEST(Dist, SingleWorkerMatchesTheLocalReference) {
  const Campaign campaign = tiny_campaign();
  const std::string reference = local_payload(campaign);
  DistRun run = run_dist(campaign, {test_worker(0, "w0")});
  EXPECT_EQ(run.payload, reference);
  EXPECT_EQ(run.stats.sessions, 1u);
  ASSERT_EQ(run.workers.size(), 1u);
  EXPECT_TRUE(run.workers[0].ever_connected);
}

TEST(Dist, WorkerServingADifferentCampaignIsRefused) {
  const Campaign campaign = tiny_campaign();
  Campaign other = tiny_campaign();
  other.entries[0].scenario.seed = 9999;  // different plan, different fingerprint

  DistOptions opts = test_options();
  DistCoordinator coordinator(campaign, opts);
  DistWorker imposter(other, test_worker(coordinator.port(), "imposter"));
  WorkerReport imposter_report;
  std::thread worker_thread([&] { imposter_report = imposter.run(); });
  const CampaignReport report = coordinator.run();
  imposter.stop();
  worker_thread.join();

  EXPECT_TRUE(imposter_report.fatal_mismatch);
  EXPECT_EQ(imposter_report.cells + imposter_report.metrics, 0u);
  // The refused worker never registered; the campaign completed locally.
  EXPECT_EQ(report.to_json(false), local_payload(campaign));
  EXPECT_EQ(coordinator.stats().remote_cells, 0u);
}

TEST(Dist, GarbageConnectionIsDroppedAndTheRunCompletes) {
  const Campaign campaign = tiny_campaign();
  const std::string reference = local_payload(campaign);
  DistOptions opts = test_options();
  DistCoordinator coordinator(campaign, opts);

  std::thread noise([&] {
    std::unique_ptr<Transport> t = tcp_connect("127.0.0.1", coordinator.port(), 1000);
    ASSERT_TRUE(t != nullptr);
    (void)t->send("this is not an FNEM frame at all........");
    char sink[256];
    while (t->recv(sink, sizeof(sink), 50) > 0) {
    }
  });
  const CampaignReport report = coordinator.run();
  noise.join();
  EXPECT_EQ(report.to_json(false), reference);
  EXPECT_GE(coordinator.stats().rejected_corrupt, 1u);
}

// A hand-rolled protocol client: the tests' way of sending exactly the
// bytes a buggy or malicious worker would.
struct RawClient {
  std::unique_ptr<Transport> transport;
  FrameBuffer buf;

  [[nodiscard]] bool send(MsgType type, std::string payload) {
    return transport->send(encode_frame({type, std::move(payload)}));
  }
  [[nodiscard]] std::optional<Message> read(double deadline_ms = 5000) {
    Message msg;
    const Timer clock;
    while (clock.millis() < deadline_ms) {
      switch (read_message(*transport, buf, msg, 25)) {
        case ReadStatus::kMessage:
          return msg;
        case ReadStatus::kTimeout:
          continue;
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;
  }
};

[[nodiscard]] std::optional<JobPayload> handshake_and_pull(RawClient& client,
                                                           std::uint64_t fingerprint) {
  if (!client.send(MsgType::kHello, encode_hello({fingerprint, "raw"}))) return std::nullopt;
  const auto welcome = client.read();
  if (!welcome || welcome->type != MsgType::kWelcome) return std::nullopt;
  for (int i = 0; i < 100; ++i) {
    if (!client.send(MsgType::kPull, "")) return std::nullopt;
    const auto reply = client.read();
    if (!reply) return std::nullopt;
    if (reply->type == MsgType::kJob) return decode_job(reply->payload);
    if (reply->type != MsgType::kWait) return std::nullopt;
  }
  return std::nullopt;
}

TEST(Dist, DuplicateCompletionsResolveFirstWriteWins) {
  const Campaign campaign = tiny_campaign();
  const std::string reference = local_payload(campaign);
  CampaignPlan plan(campaign, 1);

  DistOptions opts = test_options();
  opts.idle_grace_ms = 2000;  // hold local fallback off while we play
  DistCoordinator coordinator(campaign, opts);
  DistStats stats;
  std::string payload;
  std::thread driver([&] {
    const CampaignReport report = coordinator.run();
    payload = report.to_json(false);
    stats = coordinator.stats();
  });

  {
    RawClient client{tcp_connect("127.0.0.1", coordinator.port(), 1000), {}};
    ASSERT_TRUE(client.transport != nullptr);
    const auto job = handshake_and_pull(client, wire_fingerprint(plan.fingerprint()));
    ASSERT_TRUE(job.has_value());
    ASSERT_NE(job->kind, static_cast<std::uint32_t>(CampaignJob::Kind::kMetric));
    // Compute the honest bytes once, submit them twice.
    const std::string data =
        encode_runs(plan.compute_cell(static_cast<std::size_t>(job->index)));
    ResultPayload result{job->index, job->kind, job->key, data};
    ASSERT_TRUE(client.send(MsgType::kResult, encode_result(result)));
    ASSERT_TRUE(client.send(MsgType::kResult, encode_result(result)));
    // Drain until the campaign finishes (the local fallback of the
    // coordinator picks up everything we did not do).
    while (true) {
      const auto msg = client.read(10000);
      if (!msg || msg->type == MsgType::kDone) break;
      if (msg->type == MsgType::kWait) {
        if (!client.send(MsgType::kPull, "")) break;
      }
    }
  }
  driver.join();
  EXPECT_EQ(payload, reference);
  EXPECT_GE(stats.duplicates, 1u) << "the second submission must be counted, not merged";
  EXPECT_EQ(stats.remote_cells, 1u);
}

TEST(Dist, WrongKeyResultsAreRejectedAndRecomputed) {
  const Campaign campaign = tiny_campaign();
  const std::string reference = local_payload(campaign);
  CampaignPlan plan(campaign, 1);

  DistOptions opts = test_options();
  opts.idle_grace_ms = 1000;
  DistCoordinator coordinator(campaign, opts);
  DistStats stats;
  std::string payload;
  std::thread driver([&] {
    const CampaignReport report = coordinator.run();
    payload = report.to_json(false);
    stats = coordinator.stats();
  });

  {
    RawClient client{tcp_connect("127.0.0.1", coordinator.port(), 1000), {}};
    ASSERT_TRUE(client.transport != nullptr);
    const auto job = handshake_and_pull(client, wire_fingerprint(plan.fingerprint()));
    ASSERT_TRUE(job.has_value());
    // Wrong key: checksummed, decodable, and a lie.
    ResultPayload bogus{job->index, job->kind, "not|the|key", std::string("xx")};
    ASSERT_TRUE(client.send(MsgType::kResult, encode_result(bogus)));
    // Undecodable cell data behind a correct key: also rejected.
    ResultPayload junk{job->index, job->kind, job->key, std::string("\x01\x02\x03", 3)};
    ASSERT_TRUE(client.send(MsgType::kResult, encode_result(junk)));
  }
  driver.join();
  EXPECT_EQ(payload, reference) << "rejected results must be recomputed, never merged";
  EXPECT_GE(stats.rejected_wrong_key, 1u);
  EXPECT_GE(stats.rejected_bad_payload, 1u);
  EXPECT_EQ(stats.remote_cells + stats.remote_metrics, 0u);
}

// ---------------------------------------------------------------------------
// Slow: chaos matrix, kills, store
// ---------------------------------------------------------------------------

/// The chaos matrix of ISSUE #8: seeded fault schedules × worker counts,
/// every combination byte-identical to the local reference.
TEST(DistChaosSlow, FaultScheduleMatrixIsByteIdenticalToLocal) {
  const Campaign campaign = dist_campaign();
  const std::string reference = local_payload(campaign);

  struct NamedSchedule {
    const char* name;
    FaultSchedule schedule;
  };
  std::vector<NamedSchedule> schedules;
  {
    FaultSchedule s;
    s.seed = 1001;
    s.drop = 0.25;
    schedules.push_back({"drop", s});
  }
  {
    FaultSchedule s;
    s.seed = 1002;
    s.corrupt = 0.25;
    schedules.push_back({"corrupt", s});
  }
  {
    FaultSchedule s;
    s.seed = 1003;
    s.disconnect = 0.2;
    schedules.push_back({"disconnect", s});
  }
  {
    FaultSchedule s;
    s.seed = 1004;
    s.delay = 0.4;
    s.delay_ms = 600;  // > job_timeout_ms: delayed past the lease deadline
    schedules.push_back({"delay-past-deadline", s});
  }

  for (const NamedSchedule& named : schedules) {
    for (const int workers : {1, 2, 4}) {
      SCOPED_TRACE(std::string(named.name) + " x " + std::to_string(workers) + " workers");
      std::vector<WorkerOptions> pool;
      for (int i = 0; i < workers; ++i) {
        WorkerOptions w = test_worker(0, std::string(named.name) + "-" + std::to_string(i));
        w.faults = named.schedule;
        w.faults.seed += static_cast<std::uint64_t>(i) * 7919;  // decorrelate workers
        w.idle_timeout_ms = 500;  // swallowed PULLs recover quickly
        pool.push_back(w);
      }
      const DistRun run = run_dist(campaign, std::move(pool));
      EXPECT_EQ(run.payload, reference);
    }
  }
}

TEST(DistChaosSlow, TruncatedSendsNeverCorruptResults) {
  const Campaign campaign = dist_campaign();
  const std::string reference = local_payload(campaign);
  std::vector<WorkerOptions> pool;
  for (int i = 0; i < 2; ++i) {
    WorkerOptions w = test_worker(0, "trunc-" + std::to_string(i));
    w.faults.seed = 4242 + static_cast<std::uint64_t>(i);
    w.faults.truncate = 0.25;  // half-frames then silence: the torn-tail case
    w.idle_timeout_ms = 500;
    pool.push_back(w);
  }
  const DistRun run = run_dist(campaign, std::move(pool));
  EXPECT_EQ(run.payload, reference);
}

TEST(DistChaosSlow, WorkerKilledMidRunDoesNotChangeThePayload) {
  const Campaign campaign = dist_campaign();
  const std::string reference = local_payload(campaign);
  // One worker dies abruptly after its first submission (no goodbye, the
  // in-process stand-in for SIGKILL); one healthy worker carries on.
  WorkerOptions victim = test_worker(0, "victim");
  victim.kill_after_results = 1;
  const DistRun run = run_dist(campaign, {victim, test_worker(0, "survivor")});
  EXPECT_EQ(run.payload, reference);
}

TEST(DistChaosSlow, ZombieWorkerIsReapedByLeaseDeadline) {
  const Campaign campaign = dist_campaign();
  const std::string reference = local_payload(campaign);
  // The zombie takes a job and goes silent WITHOUT closing its socket:
  // no EOF ever arrives, so only the lease deadline can free the job.
  WorkerOptions zombie = test_worker(0, "zombie");
  zombie.kill_mid_job = true;
  const DistRun run = run_dist(campaign, {zombie});
  EXPECT_EQ(run.payload, reference);
  EXPECT_GE(run.stats.timeouts, 1u) << "the abandoned lease must be reaped, not EOF'd";
}

TEST(DistChaosSlow, DistributedRunCommitsCellsTheLocalRunReplaysWarm) {
  const Campaign campaign = dist_campaign();
  const std::string reference = local_payload(campaign);
  const fs::path dir = fs::path(::testing::TempDir()) / "fne_dist_store";
  fs::remove_all(dir);

  {
    ResultStore store(dir.string());
    const DistRun cold = run_dist(campaign, {test_worker(0, "w0"), test_worker(0, "w1")},
                                  test_options(), &store);
    EXPECT_EQ(cold.payload, reference);
  }
  {
    // Same store, plain local runner: every cell replays from disk.
    ResultStore store(dir.string());
    CampaignRunner runner(campaign);
    const CampaignReport warm = runner.run(2, &store);
    EXPECT_EQ(warm.to_json(false), reference);
    EXPECT_EQ(warm.store.misses, 0u) << "a distributed run must leave the store fully warm";
    EXPECT_EQ(warm.store.hits, warm.store.hits + warm.store.misses);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fne
