#include "span/compact_sets.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(CompactSets, PathCompactSetsArePrefixesAndSuffixes) {
  // On a path, S and complement both connected ⇔ S is a proper prefix or
  // suffix: exactly 2(n-1) compact sets.
  for (vid n : {4U, 6U, 9U}) {
    EXPECT_EQ(count_compact_sets(path_graph(n)), 2ULL * (n - 1)) << "n=" << n;
  }
}

TEST(CompactSets, CycleCompactSetsAreArcs) {
  // On a cycle, compact sets are the proper arcs: n(n-1).
  for (vid n : {4U, 6U, 8U}) {
    EXPECT_EQ(count_compact_sets(cycle_graph(n)), static_cast<std::uint64_t>(n) * (n - 1))
        << "n=" << n;
  }
}

TEST(CompactSets, CompleteGraphAllProperSubsets) {
  // In K_n every nonempty proper subset is compact: 2^n - 2.
  EXPECT_EQ(count_compact_sets(complete_graph(5)), 30ULL);
}

TEST(CompactSets, EnumerationEmitsOnlyCompactSets) {
  const Mesh m({3, 3});
  const VertexSet all = VertexSet::full(9);
  std::uint64_t count = 0;
  enumerate_compact_sets(m.graph(), [&](const VertexSet& s) {
    ++count;
    EXPECT_TRUE(is_compact(m.graph(), all, s));
  });
  EXPECT_GT(count, 0ULL);
}

TEST(CompactSets, EnumerationVisitsBothOrientations) {
  const Graph g = path_graph(4);
  bool saw_prefix = false, saw_suffix = false;
  enumerate_compact_sets(g, [&](const VertexSet& s) {
    if (s == VertexSet::of(4, {0})) saw_prefix = true;
    if (s == VertexSet::of(4, {1, 2, 3})) saw_suffix = true;
  });
  EXPECT_TRUE(saw_prefix);
  EXPECT_TRUE(saw_suffix);
}

TEST(CompactSets, SampleProducesCompactSets) {
  const Mesh m({8, 8});
  Rng rng(7);
  const VertexSet all = VertexSet::full(64);
  int produced = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const vid target = 2 + static_cast<vid>(rng.uniform(30));
    const VertexSet s = sample_compact_set(m.graph(), target, rng.next());
    if (s.empty()) continue;
    ++produced;
    EXPECT_TRUE(is_compact(m.graph(), all, s)) << "trial " << trial;
  }
  EXPECT_GT(produced, 15);
}

TEST(CompactSets, SampleSizeGuards) {
  const Graph g = path_graph(8);
  EXPECT_THROW((void)sample_compact_set(g, 5, 1), PreconditionError);  // > n/2
  EXPECT_THROW((void)sample_compact_set(g, 0, 1), PreconditionError);
}

TEST(CompactSets, DisconnectedGraphRejected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)count_compact_sets(g), PreconditionError);
}

TEST(SubgraphCounting, PathSubpaths) {
  // Connected induced subgraphs of P_n are intervals.  With all vertices
  // marked and r = 2, exactly the n-1 edges qualify (size limit 2).
  const Graph g = path_graph(6);
  const VertexSet marked = VertexSet::full(6);
  EXPECT_EQ(count_connected_subgraphs_with_marked(g, marked, 2, 2), 5ULL);
  // Intervals with exactly 3 vertices:
  EXPECT_EQ(count_connected_subgraphs_with_marked(g, marked, 3, 3), 4ULL);
}

TEST(SubgraphCounting, Claim32BoundHoldsOnCycle) {
  // Claim 3.2 (Eulerian-walk count): the number of connected subgraphs of
  // G spanned by r G-vertices is at most n·δ^{2r}.
  const Graph base = cycle_graph(6);  // n = 6, δ = 2
  const VertexSet marked = VertexSet::full(6);
  for (vid r = 1; r <= 4; ++r) {
    const std::uint64_t count = count_connected_subgraphs_with_marked(base, marked, r, r);
    const double bound = 6.0 * std::pow(2.0, 2.0 * r);
    EXPECT_LE(static_cast<double>(count), bound) << "r=" << r;
    EXPECT_GT(count, 0ULL) << "r=" << r;
  }
}

TEST(SubgraphCounting, Claim32BoundHoldsOnDenserGraph) {
  const Graph base = complete_graph(6);  // δ = 5
  const VertexSet marked = VertexSet::full(6);
  for (vid r = 1; r <= 4; ++r) {
    const std::uint64_t count = count_connected_subgraphs_with_marked(base, marked, r, r);
    const double bound = 6.0 * std::pow(5.0, 2.0 * r);
    EXPECT_LE(static_cast<double>(count), bound) << "r=" << r;
  }
}

TEST(SubgraphCounting, CompleteGraphAllSubsetsConnected) {
  // In K_n every r-subset induces a connected subgraph: count = C(n, r).
  const Graph g = complete_graph(6);
  const VertexSet marked = VertexSet::full(6);
  EXPECT_EQ(count_connected_subgraphs_with_marked(g, marked, 2, 2), 15ULL);
  EXPECT_EQ(count_connected_subgraphs_with_marked(g, marked, 3, 3), 20ULL);
}

}  // namespace
}  // namespace fne
