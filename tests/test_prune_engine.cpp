#include "prune/engine.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "faults/adversary.hpp"
#include "faults/fault_model.hpp"
#include "prune/prune.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

// The engine's contract (DESIGN.md §5): in its deterministic (default)
// configuration it must reproduce the stateless reference loop bit for
// bit — identical survivors AND an identical sequence of culled records.
void expect_identical(const PruneResult& engine, const PruneResult& reference,
                      const std::string& context) {
  EXPECT_EQ(engine.survivors, reference.survivors) << context;
  EXPECT_EQ(engine.iterations, reference.iterations) << context;
  EXPECT_EQ(engine.total_culled, reference.total_culled) << context;
  ASSERT_EQ(engine.culled.size(), reference.culled.size()) << context;
  for (std::size_t i = 0; i < engine.culled.size(); ++i) {
    const CulledRecord& a = engine.culled[i];
    const CulledRecord& b = reference.culled[i];
    EXPECT_EQ(a.set, b.set) << context << " record " << i;
    EXPECT_EQ(a.size, b.size) << context << " record " << i;
    EXPECT_EQ(a.boundary, b.boundary) << context << " record " << i;
    EXPECT_EQ(a.ratio, b.ratio) << context << " record " << i;
  }
}

TEST(PruneEngine, BitIdenticalToReferenceOnRandomRegular) {
  Rng rng(101);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t graph_seed = rng.next();
    const Graph g = random_regular(48, 4, graph_seed);
    const VertexSet alive = random_node_faults(g, 0.15, rng.next());
    const PruneResult engine = prune(g, alive, 0.8, 0.5);
    const PruneResult reference = prune_reference(g, alive, 0.8, 0.5);
    expect_identical(engine, reference, "rand-4-reg trial " + std::to_string(trial));
  }
}

TEST(PruneEngine, BitIdenticalToReferenceOnFaultyMesh) {
  Rng rng(202);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = Mesh({12, 12}).graph();
    const VertexSet alive = random_node_faults(g, 0.25, rng.next());
    const PruneResult engine = prune(g, alive, 0.6, 0.5);
    const PruneResult reference = prune_reference(g, alive, 0.6, 0.5);
    expect_identical(engine, reference, "mesh trial " + std::to_string(trial));
  }
}

TEST(PruneEngine, BitIdenticalToReferenceOnAdversarialFaults) {
  const Graph g = random_regular(64, 4, 7);
  for (const char* name : {"high-degree", "sweep-cut"}) {
    const AttackResult attack = std::string(name) == "high-degree"
                                    ? high_degree_attack(g, 8)
                                    : sweep_cut_attack(g, 8);
    const VertexSet alive = VertexSet::full(g.num_vertices()) - attack.faults;
    const PruneResult engine = prune(g, alive, 0.7, 0.5);
    const PruneResult reference = prune_reference(g, alive, 0.7, 0.5);
    expect_identical(engine, reference, name);
  }
}

TEST(PruneEngine, BitIdenticalToReferenceForPrune2) {
  Rng rng(303);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = Mesh({10, 10}).graph();
    const VertexSet alive = random_node_faults(g, 0.08, rng.next());
    const PruneResult engine = prune2(g, alive, 0.3, 0.25);
    const PruneResult reference = prune2_reference(g, alive, 0.3, 0.25);
    expect_identical(engine, reference, "prune2 mesh trial " + std::to_string(trial));
  }
}

TEST(PruneEngine, BitIdenticalWithCompactifyDisabled) {
  const Graph g = Mesh({9, 9}).graph();
  const VertexSet alive = random_node_faults(g, 0.12, 17);
  Prune2Options opts;
  opts.compactify_enabled = false;
  const PruneResult engine = prune2(g, alive, 0.3, 0.25, opts);
  const PruneResult reference = prune2_reference(g, alive, 0.3, 0.25, opts);
  expect_identical(engine, reference, "no-compactify");
}

TEST(PruneEngine, ReusedEngineMatchesFreshRuns) {
  // One engine instance driven over a parameter sweep (the percolation
  // drivers' usage pattern) must behave as if constructed fresh per run.
  const Graph g = Mesh({10, 10}).graph();
  PruneEngine engine(g, ExpansionKind::Node);
  Rng rng(404);
  for (int trial = 0; trial < 3; ++trial) {
    const VertexSet alive = random_node_faults(g, 0.2, rng.next());
    const PruneResult reused = engine.run(alive, 0.6, 0.5);
    const PruneResult fresh = prune_reference(g, alive, 0.6, 0.5);
    expect_identical(reused, fresh, "reuse trial " + std::to_string(trial));
  }
}

TEST(PruneEngine, FastModeProducesCertifiedTraces) {
  // Fast mode may cull different sets, but every record must replay: the
  // trace check is exactly the paper's validity condition.
  Rng rng(505);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = Mesh({12, 12}).graph();
    const VertexSet alive = random_node_faults(g, 0.25, rng.next());
    const double alpha = 0.6;
    const double eps = 0.5;
    PruneEngine engine(g, ExpansionKind::Node);
    const PruneResult fast = engine.run(alive, alpha, eps, PruneEngineOptions::fast());
    const TraceVerification v =
        verify_prune_trace(g, alive, fast, ExpansionKind::Node, alpha * eps);
    EXPECT_TRUE(v.valid) << "trial " << trial << ": " << v.reason;
    // Survivors still form one connected piece (any detached piece <= half
    // would be a 0-boundary violation the loop cannot have missed).
    if (fast.survivors.count() >= 2) {
      EXPECT_TRUE(is_connected(g, fast.survivors)) << "trial " << trial;
    }
  }
}

TEST(PruneEngine, FastModeEdgeTracesReplay) {
  Rng rng(606);
  const Graph g = Mesh({10, 10}).graph();
  const VertexSet alive = random_node_faults(g, 0.08, rng.next());
  const double alpha_e = 0.3;
  const double eps = 0.25;
  PruneEngine engine(g, ExpansionKind::Edge);
  const PruneResult fast = engine.run(alive, alpha_e, eps, PruneEngineOptions::fast());
  const TraceVerification v =
      verify_prune_trace(g, alive, fast, ExpansionKind::Edge, alpha_e * eps);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST(PruneEngine, HandlesShatteredAndTinyMasks) {
  const Graph g = Mesh({6, 6}).graph();
  // Empty mask.
  PruneEngine engine(g, ExpansionKind::Node);
  const PruneResult empty = engine.run(VertexSet(g.num_vertices()), 1.0, 0.5);
  EXPECT_EQ(empty.survivors.count(), 0U);
  EXPECT_EQ(empty.iterations, 0);
  // Single vertex.
  const PruneResult one = engine.run(VertexSet::of(g.num_vertices(), {5}), 1.0, 0.5);
  EXPECT_EQ(one.survivors.count(), 1U);
  // Heavily shattered mask (mostly step-1 culls).
  const VertexSet alive = random_node_faults(g, 0.6, 11);
  const PruneResult shattered = engine.run(alive, 1.0, 0.5);
  const PruneResult reference = prune_reference(g, alive, 1.0, 0.5);
  expect_identical(shattered, reference, "shattered");
}

TEST(PruneEngine, ParameterValidation) {
  const Graph g = Mesh({4, 4}).graph();
  PruneEngine engine(g, ExpansionKind::Node);
  EXPECT_THROW((void)engine.run(VertexSet::full(16), 0.0, 0.5), PreconditionError);
  EXPECT_THROW((void)engine.run(VertexSet::full(16), 1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)engine.run(VertexSet(8), 1.0, 0.5), PreconditionError);
}

}  // namespace
}  // namespace fne
