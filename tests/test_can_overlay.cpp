#include "topology/can_overlay.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"

namespace fne {
namespace {

TEST(CanOverlay, ZonesPartitionTheTorus) {
  const CanOverlay overlay = can_overlay(64, 2, 5);
  EXPECT_EQ(overlay.zones.size(), 64U);
  // Total volume of all zones equals the torus volume.
  unsigned long long volume = 0;
  for (const CanZone& z : overlay.zones) {
    unsigned long long zv = 1;
    for (vid d = 0; d < overlay.dims; ++d) zv *= z.size[d];
    volume += zv;
  }
  const unsigned long long span = 1ULL << 20;
  EXPECT_EQ(volume, span * span);
}

TEST(CanOverlay, GraphIsConnected) {
  for (vid d : {2U, 3U}) {
    const CanOverlay overlay = can_overlay(50, d, 17);
    EXPECT_TRUE(is_connected(overlay.graph, VertexSet::full(overlay.graph.num_vertices())))
        << "d=" << d;
  }
}

TEST(CanOverlay, SinglePeerOwnsEverything) {
  const CanOverlay overlay = can_overlay(1, 2, 1);
  EXPECT_EQ(overlay.zones.size(), 1U);
  EXPECT_EQ(overlay.graph.num_edges(), 0U);
}

TEST(CanOverlay, DeterministicUnderSeed) {
  const CanOverlay a = can_overlay(30, 2, 42);
  const CanOverlay b = can_overlay(30, 2, 42);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(CanOverlay, DegreesGrowWithDimension) {
  // In steady state CAN behaves like a d-dimensional torus: average
  // degree should be around 2d (not a strict bound; sanity-check range).
  const CanOverlay o2 = can_overlay(256, 2, 3);
  const double avg2 = o2.graph.average_degree();
  EXPECT_GT(avg2, 2.5);
  EXPECT_LT(avg2, 9.0);
}

TEST(CanOverlay, ZoneSizesArePowersOfTwo) {
  const CanOverlay overlay = can_overlay(40, 3, 9);
  for (const CanZone& z : overlay.zones) {
    for (vid d = 0; d < overlay.dims; ++d) {
      EXPECT_EQ(z.size[d] & (z.size[d] - 1), 0U);  // power of two
      EXPECT_EQ(z.lo[d] % z.size[d], 0U);          // aligned
    }
  }
}

}  // namespace
}  // namespace fne
