#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/bfs_ball.hpp"
#include "expansion/bracket.hpp"
#include "expansion/exact.hpp"
#include "expansion/local_search.hpp"
#include "expansion/sweep.hpp"
#include "expansion/uniform.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Sweep, NaturalOrderOnPathFindsMiddleCut) {
  const vid n = 10;
  const Graph g = path_graph(n);
  std::vector<vid> order(n);
  for (vid i = 0; i < n; ++i) order[i] = i;
  const CutWitness w = sweep_cut(g, VertexSet::full(n), order, ExpansionKind::Edge);
  EXPECT_DOUBLE_EQ(w.expansion, 1.0 / 5.0);
}

TEST(Sweep, FiedlerSweepIsUpperBound) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = erdos_renyi(14, 0.3, rng.next());
    for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
      const double exact = exact_expansion(g, kind).expansion;
      const double sweep = fiedler_sweep(g, VertexSet::full(14), kind, rng.next()).expansion;
      EXPECT_GE(sweep + 1e-12, exact) << "trial=" << trial;
    }
  }
}

TEST(Sweep, FiedlerSweepExactOnCycle) {
  // The Fiedler ordering of a cycle is a rotation of the natural order, so
  // the sweep finds the optimal arc cut.
  const vid n = 16;
  const Graph g = cycle_graph(n);
  const CutWitness w = fiedler_sweep(g, VertexSet::full(n), ExpansionKind::Edge);
  EXPECT_DOUBLE_EQ(w.expansion, 2.0 / 8.0);
}

TEST(Sweep, NodeKindReturnsSuffixWhenBetter) {
  // Order engineered so that the good small side is at the END of the
  // order: sweep must consider complements (suffix candidate sets).
  const Graph g = star_graph(9);
  std::vector<vid> order;
  order.push_back(0);  // hub first
  for (vid v = 1; v < 9; ++v) order.push_back(v);
  const CutWitness w = sweep_cut(g, VertexSet::full(9), order, ExpansionKind::Node);
  // Suffix {5,6,7,8}... any leaf set of size 4 has ratio 1/4.
  EXPECT_DOUBLE_EQ(w.expansion, 0.25);
  EXPECT_FALSE(w.side.test(0));
}

TEST(Sweep, OrderMustCoverAliveSet) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)sweep_cut(g, VertexSet::full(4), {0, 1}, ExpansionKind::Edge),
               PreconditionError);
}

TEST(BfsBall, GridBallCutWithinDiagonalFactor) {
  const Mesh m({6, 6});
  const CutWitness w =
      best_ball_cut(m.graph(), VertexSet::full(36), ExpansionKind::Edge, 36, 1);
  // Optimal edge cut of the 6x6 grid is a straight line (1/3); BFS balls
  // produce diagonal staircase cuts, which are within a factor ~2 of it.
  EXPECT_LE(w.expansion, 2.0 / 3.0 + 1e-12);
  EXPECT_GE(w.expansion, 1.0 / 3.0 - 1e-12);
}

TEST(BfsBall, UpperBoundsExact) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = erdos_renyi(13, 0.3, rng.next());
    const double exact = exact_expansion(g, ExpansionKind::Node).expansion;
    const double ball =
        best_ball_cut(g, VertexSet::full(13), ExpansionKind::Node, 13, rng.next()).expansion;
    EXPECT_GE(ball + 1e-12, exact);
  }
}

TEST(LocalSearch, NeverWorsens) {
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = erdos_renyi(16, 0.25, rng.next());
    const VertexSet all = VertexSet::full(16);
    CutWitness start = best_ball_cut(g, all, ExpansionKind::Edge, 4, rng.next());
    const double before = start.expansion;
    const CutWitness refined = refine_cut(g, all, std::move(start), ExpansionKind::Edge);
    EXPECT_LE(refined.expansion, before + 1e-12);
  }
}

TEST(LocalSearch, CompletesPartialCliqueSideOnBarbell) {
  const Graph g = barbell_graph(5);
  const VertexSet all = VertexSet::full(10);
  // Start from 4/5 of one clique: a single add-move reaches the optimum
  // bridge cut (ratio 1/5).
  CutWitness start;
  start.side = VertexSet::of(10, {5, 6, 7, 8});
  start.expansion = 1e9;
  const CutWitness refined = refine_cut(g, all, std::move(start), ExpansionKind::Edge, 20);
  EXPECT_DOUBLE_EQ(refined.expansion, 1.0 / 5.0);  // one clique side
}

TEST(Bracket, ExactForSmallGraphs) {
  const Graph g = cycle_graph(12);
  const ExpansionBracket b = expansion_bracket(g, ExpansionKind::Edge);
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.lower, b.upper);
  EXPECT_DOUBLE_EQ(b.upper, 2.0 / 6.0);
}

TEST(Bracket, LowerNeverExceedsUpper) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_regular(48, 4, rng.next());
    for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
      BracketOptions opts;
      opts.exact_limit = 10;  // force the heuristic path
      const ExpansionBracket b = expansion_bracket(g, kind, opts);
      EXPECT_LE(b.lower, b.upper + 1e-12);
      EXPECT_FALSE(b.exact);
      ASSERT_TRUE(b.witness.has_value());
      EXPECT_GT(b.upper, 0.0);
    }
  }
}

TEST(Bracket, HeuristicUpperBoundsTrueValueOnSmallGraphs) {
  Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = erdos_renyi(15, 0.3, rng.next());
    const double exact = exact_expansion(g, ExpansionKind::Edge).expansion;
    BracketOptions opts;
    opts.exact_limit = 4;  // force heuristics despite small size
    const ExpansionBracket b = expansion_bracket(g, ExpansionKind::Edge, opts);
    EXPECT_GE(b.upper + 1e-12, exact);
    EXPECT_LE(b.lower, exact + 1e-9);
  }
}

TEST(Bracket, DisconnectedIsExactZero) {
  const Graph g = Graph::from_edges(8, {{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}});
  const ExpansionBracket b = expansion_bracket(g, ExpansionKind::Node);
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.upper, 0.0);
  ASSERT_TRUE(b.witness.has_value());
  EXPECT_EQ(b.witness->side.count(), 2U);  // smallest component {3,4}
}

TEST(Bracket, HypercubeBracketStraddlesTrueValue) {
  const Graph g = hypercube(6);
  BracketOptions opts;
  opts.exact_limit = 10;
  const ExpansionBracket b = expansion_bracket(g, ExpansionKind::Edge, opts);
  // λ2(Q_d) = 2 → certified edge lower bound 1; true αe = 1.  The upper
  // side is heuristic (the dimension cut is not a sweep prefix of an
  // arbitrary vector in the degenerate λ2 eigenspace), so allow slack.
  EXPECT_GE(b.lower, 1.0 - 1e-5);
  EXPECT_GE(b.upper, 1.0 - 1e-9);
  EXPECT_LE(b.upper, 2.0);
}

TEST(UniformProbe, GrowsConnectedSetsOfRequestedSize) {
  const Mesh m({8, 8});
  const VertexSet all = VertexSet::full(64);
  Rng rng(5);
  for (vid size : {4U, 9U, 16U, 31U}) {
    const VertexSet s = random_connected_set(m.graph(), all, size, rng.next());
    ASSERT_EQ(s.count(), size);
    EXPECT_TRUE(is_connected_subset(m.graph(), all, s));
  }
}

TEST(UniformProbe, ReturnsEmptyWhenComponentTooSmall) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  const VertexSet s = random_connected_set(g, VertexSet::full(6), 5, 3);
  EXPECT_TRUE(s.empty());
}

TEST(UniformProbe, MeshSubgraphExpansionShrinksWithSize) {
  // Uniform expansion of the mesh: bigger subgraphs have smaller expansion
  // (α(m) ~ 1/sqrt(m)); the probe table must reflect the trend.
  const Mesh m({12, 12});
  const auto records =
      probe_uniform_expansion(m.graph(), ExpansionKind::Edge, {8, 18, 50}, 6, 11);
  ASSERT_EQ(records.size(), 3U);
  EXPECT_GT(records[0].expansion_upper, records[2].expansion_upper);
}

}  // namespace
}  // namespace fne
