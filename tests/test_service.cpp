// Scenario-service contracts (DESIGN.md §13): cooperative cancellation
// through ExecutorPool and CampaignRunner, the FNEM/JSON request
// protocol end to end, payload identity with local execution (the
// property the whole daemon rests on), admission control (queue depth,
// deadline, oversized) with retry-after backpressure, abandonment on
// client disconnect, and clean shutdown with work in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/campaign.hpp"
#include "api/executor.hpp"
#include "service/service.hpp"

namespace fne {
namespace {

constexpr const char* kTinyCampaign = R"({
  "name": "svc-tiny",
  "scenarios": [
    {"name": "m10", "topology": {"name": "mesh", "params": {"side": 10, "dims": 2}},
     "fault": {"name": "random", "params": {"p": 0.1}},
     "prune": {"kind": "node", "alpha": 0.25}, "repetitions": 2}
  ]})";

// ---------------------------------------------------------------------------
// Cancellation (ExecutorPool / CampaignRunner)
// ---------------------------------------------------------------------------

TEST(CancelToken, CopiesShareOneFlag) {
  CancelToken a;
  const CancelToken b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(b.cancelled());
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(ExecutorPoolCancel, PreCancelledTokenSkipsEverythingAndThrows) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    CancelToken token;
    token.cancel();
    std::atomic<int> ran{0};
    EXPECT_THROW(
        ExecutorPool::run(8, threads, [&](std::size_t) { ran.fetch_add(1); }, &token),
        CancelledError);
    EXPECT_EQ(ran.load(), 0);
  }
}

TEST(ExecutorPoolCancel, MidRunCancelStopsClaimingButFinishesInFlight) {
  CancelToken token;
  std::atomic<int> ran{0};
  try {
    ExecutorPool::run(
        100, 2,
        [&](std::size_t) {
          if (ran.fetch_add(1) == 3) token.cancel();
        },
        &token);
    FAIL() << "a mid-run cancel must throw CancelledError";
  } catch (const CancelledError&) {
  }
  EXPECT_GE(ran.load(), 4);
  EXPECT_LT(ran.load(), 100) << "workers must stop claiming after the cancel";
}

TEST(ExecutorPoolCancel, NullTokenAndLateCancelAreNoOps) {
  std::atomic<int> ran{0};
  ExecutorPool::run(10, 2, [&](std::size_t) { ran.fetch_add(1); }, nullptr);
  EXPECT_EQ(ran.load(), 10);
  CancelToken token;
  ran = 0;
  ExecutorPool::run(10, 2, [&](std::size_t) { ran.fetch_add(1); }, &token);
  token.cancel();  // after completion: nothing to skip, nothing thrown
  EXPECT_EQ(ran.load(), 10);
}

TEST(ExecutorPoolCancel, JobErrorsWinOverCancellation) {
  CancelToken token;
  try {
    ExecutorPool::run(
        50, 2,
        [&](std::size_t i) {
          if (i == 0) {
            token.cancel();
            throw PreconditionError("job 0 failed");
          }
        },
        &token);
    FAIL() << "must throw";
  } catch (const ExecutorError& e) {
    EXPECT_EQ(e.failed_jobs(), 1u);
  }
}

TEST(CampaignRunnerCancel, CancelledRunThrowsCancelledError) {
  CancelToken token;
  token.cancel();
  CampaignRunner runner(campaign_from_json(kTinyCampaign));
  EXPECT_THROW((void)runner.run(1, nullptr, &token), CancelledError);
}

// ---------------------------------------------------------------------------
// Service end to end
// ---------------------------------------------------------------------------

TEST(ScenarioService, PingStatsAndCampaignPayloadMatchesLocal) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.exec_threads = 2;
  ScenarioService service(opts);
  service.start();

  ServiceClient client("127.0.0.1", service.port());
  EXPECT_TRUE(client.ping().ok());

  CampaignRunner local(campaign_from_json(kTinyCampaign));
  const std::string expected = local.run(1).to_json(/*include_timing=*/false);
  const ServiceResponse resp = client.campaign(kTinyCampaign);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.payload, expected)
      << "service payload must be byte-identical to a local run";

  const ServiceResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.payload.find("\"service_stats\""), std::string::npos);
  EXPECT_NE(stats.payload.find("\"cache\""), std::string::npos);

  service.stop();
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 3u);  // ping + campaign + stats
  EXPECT_EQ(st.errors, 0u);
}

TEST(ScenarioService, ConcurrentClientsGetIdenticalPayloads) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.exec_threads = 2;
  opts.queue_depth = 16;
  ScenarioService service(opts);
  service.start();

  CampaignRunner local(campaign_from_json(kTinyCampaign));
  const std::string expected = local.run(1).to_json(false);

  constexpr int kClients = 4;
  std::vector<std::string> payloads(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ServiceClient client("127.0.0.1", service.port());
        const ServiceResponse resp = client.campaign(kTinyCampaign);
        if (resp.ok()) {
          payloads[c] = resp.payload;
        } else {
          failures[c] = resp.status + ": " + resp.message;
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.stop();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
    EXPECT_EQ(payloads[c], expected) << "client " << c;
  }
}

TEST(ScenarioService, MalformedAndUnknownRequestsReportErrors) {
  ScenarioService service(ServiceOptions{});
  service.start();
  ServiceClient client("127.0.0.1", service.port());
  const std::uint64_t id = client.send_only("nonsense", "", 0);
  const ServiceResponse resp = client.await(id);
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.message.find("unknown request type"), std::string::npos);

  const ServiceResponse bad = client.campaign("this is not json");
  EXPECT_EQ(bad.status, "error");
  service.stop();
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ScenarioServiceAdmission, QueueFullRejectsWithRetryAfter) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.retry_after_ms = 77;
  ScenarioService service(opts);
  service.start();

  ServiceClient blocker("127.0.0.1", service.port());
  const std::uint64_t sleeper = blocker.send_only("sleep", "", 2000);
  // Wait until the worker picked the sleeper up (queue drains to 0).
  while (service.queue_size() > 0 || service.stats().requests < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t queued = blocker.send_only("sleep", "", 2000);  // fills the queue
  while (service.queue_size() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ServiceClient overflow("127.0.0.1", service.port());
  const ServiceResponse resp = overflow.sleep_for(2000, 5000);
  EXPECT_TRUE(resp.rejected()) << resp.status << " " << resp.message;
  EXPECT_EQ(resp.retry_after_ms, 77u);
  EXPECT_NE(resp.message.find("queue full"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);

  service.stop();  // cancels the sleepers; everything drains
  (void)sleeper;
  (void)queued;
}

TEST(ScenarioServiceAdmission, OversizedRequestRejectedUnparsed) {
  ServiceOptions opts;
  opts.max_request_bytes = 256;
  ScenarioService service(opts);
  service.start();
  ServiceClient client("127.0.0.1", service.port());
  const ServiceResponse resp = client.campaign(std::string(1024, 'x'));
  EXPECT_TRUE(resp.rejected());
  EXPECT_NE(resp.message.find("max_request_bytes"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_oversized, 1u);
  // The connection survives a reject: a well-sized request still works.
  EXPECT_TRUE(client.ping().ok());
  service.stop();
}

TEST(ScenarioServiceAdmission, StaleQueuedRequestsExpire) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 4;
  opts.queue_deadline_ms = 50;
  ScenarioService service(opts);
  service.start();
  ServiceClient client("127.0.0.1", service.port());
  const std::uint64_t blocker = client.send_only("sleep", "", 400);
  const std::uint64_t stale = client.send_only("sleep", "", 1);  // waits > 50ms behind it
  // Await in completion order: the blocker responds first, then the
  // stale request's reject (await discards non-matching responses).
  EXPECT_TRUE(client.await(blocker, 5000).ok());
  const ServiceResponse resp = client.await(stale, 5000);
  EXPECT_TRUE(resp.rejected()) << resp.status << " " << resp.message;
  EXPECT_NE(resp.message.find("deadline"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_expired, 1u);
  service.stop();
}

// ---------------------------------------------------------------------------
// Abandonment and shutdown
// ---------------------------------------------------------------------------

TEST(ScenarioServiceAbandon, DisconnectCancelsQueuedWork) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 8;
  ScenarioService service(opts);
  service.start();
  {
    ServiceClient client("127.0.0.1", service.port());
    (void)client.send_only("sleep", "", 30000);
    (void)client.send_only("sleep", "", 30000);
    while (service.stats().requests < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    client.disconnect();
  }
  // The 30s sleeps must resolve as cancelled far faster than they would
  // complete; stop() would hang otherwise.
  const auto t0 = std::chrono::steady_clock::now();
  while (service.stats().cancelled < 2) {
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10))
        << "disconnect did not cancel the queued sleeps";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  service.stop();
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(ScenarioServiceShutdown, StopCancelsInFlightWorkAndJoins) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_depth = 8;
  ScenarioService service(opts);
  service.start();
  ServiceClient client("127.0.0.1", service.port());
  for (int i = 0; i < 4; ++i) (void)client.send_only("sleep", "", 30000);
  while (service.stats().requests < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t0 = std::chrono::steady_clock::now();
  service.stop();  // must not wait for the 30s sleeps
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  EXPECT_EQ(service.stats().cancelled, 4u);
}

TEST(ScenarioServiceShutdown, StopWithoutStartAndDoubleStopAreSafe) {
  {
    ScenarioService service(ServiceOptions{});
    service.stop();
    service.stop();
  }
  {
    ScenarioService service(ServiceOptions{});
    service.start();
    service.stop();
    service.stop();
  }  // destructor stops again
}

}  // namespace
}  // namespace fne
