// End-to-end reproductions of the paper's claims on instances small
// enough to run inside the unit-test budget; the bench binaries rerun the
// same pipelines at experiment scale.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/fragmentation.hpp"
#include "core/traversal.hpp"
#include "expansion/bracket.hpp"
#include "expansion/exact.hpp"
#include "faults/adversary.hpp"
#include "faults/fault_model.hpp"
#include "percolation/percolation.hpp"
#include "prune/prune.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"
#include "span/span.hpp"
#include "topology/chain_expander.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

// ---------------------------------------------------------------- E1 ----
TEST(Integration, Theorem21AdversarialPruneOnExpander) {
  // Random 4-regular expander, adversarial faults inside the Theorem 2.1
  // budget; Prune must keep n - k·f/α vertices with a verified trace.
  const vid n = 96;
  const Graph g = random_regular(n, 4, 21);
  BracketOptions bopts;
  bopts.exact_limit = 10;  // n too large for exact; use the bracket
  const ExpansionBracket bracket = expansion_bracket(g, ExpansionKind::Node, bopts);
  const double alpha = bracket.upper;  // certified achievable expansion
  ASSERT_GT(alpha, 0.0);

  const double k = 2.0;
  // Budget: k·f/α <= n/4  →  f <= α·n/(4k).
  const vid f = static_cast<vid>(alpha * n / (4.0 * k) / 2.0);
  Rng rng(5);
  for (const AttackResult& attack :
       {random_attack(g, f, rng.next()), high_degree_attack(g, f)}) {
    const VertexSet alive = VertexSet::full(n) - attack.faults;
    const PruneResult result = prune(g, alive, alpha, 1.0 - 1.0 / k);
    const Theorem21Check check =
        check_theorem21_size(n, alpha, attack.budget_used, k, result.survivors.count());
    EXPECT_TRUE(check.precondition_ok);
    EXPECT_TRUE(check.size_ok) << "survivors " << result.survivors.count() << " < bound "
                               << check.size_bound;
    const TraceVerification v =
        verify_prune_trace(g, alive, result, ExpansionKind::Node, alpha * (1.0 - 1.0 / k));
    EXPECT_TRUE(v.valid) << v.reason;
  }
}

// ---------------------------------------------------------------- E2 ----
TEST(Integration, Theorem23ChainExpanderShatters) {
  const Graph base = random_regular(24, 4, 31);
  const vid k = 6;
  const ChainExpander h = chain_replace(base, k);
  const vid total = h.graph.num_vertices();

  // Claim 2.4: expansion of H is Θ(1/k); check the upper side exactly on
  // the witness U' construction via the bracket's constructive cut.
  BracketOptions bopts;
  bopts.exact_limit = 10;
  const ExpansionBracket bracket = expansion_bracket(h.graph, ExpansionKind::Node, bopts);
  EXPECT_LE(bracket.upper, 2.5 / k);  // Claim 2.4: α(U') <= 2/k (+ slack)

  // Theorem 2.3: center faults shatter H into sublinear pieces.
  const AttackResult attack = chain_center_attack(h);
  const VertexSet alive = VertexSet::full(total) - attack.faults;
  const FragmentationProfile frag = fragmentation_profile(h.graph, alive);
  EXPECT_LE(frag.largest, 1U + 4U * (k - 1));
  EXPECT_LT(frag.gamma, 0.05);
  // Fault economy: f = m = δn/2 faults on Θ(k·n) vertices → Θ(α·N).
  EXPECT_EQ(attack.budget_used, base.num_edges());
}

// ---------------------------------------------------------------- E3 ----
TEST(Integration, Theorem25BisectionShattersMesh) {
  const Mesh m({14, 14});
  const vid n = m.num_vertices();
  BisectionOptions opts;
  opts.epsilon = 0.15;
  const AttackResult attack = bisection_attack(m.graph(), opts);
  const VertexSet alive = VertexSet::full(n) - attack.faults;
  const FragmentationProfile frag = fragmentation_profile(m.graph(), alive);
  EXPECT_LT(frag.gamma, opts.epsilon + 0.05);
  // Uniform expansion α(n) ≈ c/sqrt(n): the attack spends O~(α(n)·n) = O~(sqrt(n))
  // faults — certainly far less than shattering by brute force.
  EXPECT_LT(attack.budget_used, n / 3);
}

// ---------------------------------------------------------------- E4 ----
TEST(Integration, Theorem31RandomFaultsShatterChainExpander) {
  const Graph base = random_regular(20, 4, 41);
  const vid k = 8;
  const ChainExpander h = chain_replace(base, k);
  // Fault probability Θ(1/k) (survival 1 - Θ(1/k)) shatters H...
  const PercolationResult shattered =
      percolate(h.graph, PercolationKind::Site, 1.0 - 4.0 * std::log(4.0) / k, 12, 3);
  // ...while a much smaller fault probability keeps a giant component.
  const PercolationResult intact =
      percolate(h.graph, PercolationKind::Site, 1.0 - 0.01 / k, 12, 3);
  EXPECT_LT(shattered.gamma.mean(), 0.35);
  EXPECT_GT(intact.gamma.mean(), 0.8);
}

// ---------------------------------------------------------------- E5 ----
TEST(Integration, Theorem34RandomFaultsPrune2OnMesh) {
  const Mesh m({16, 16});
  const vid n = m.num_vertices();
  const double delta = 4.0;
  const double eps = 1.0 / (2.0 * delta);
  const double p = 0.02;  // well below the shattering regime for the grid
  const VertexSet alive = random_node_faults(m.graph(), p, 51);

  // α_e of the fault-free 16x16 grid is 16/128 = 1/8 (straight-line cut).
  const double alpha_e = 1.0 / 8.0;
  const PruneResult result = prune2(m.graph(), alive, alpha_e, eps);
  EXPECT_GE(result.survivors.count(), n / 2);
  const TraceVerification v = verify_prune_trace(m.graph(), alive, result,
                                                 ExpansionKind::Edge, alpha_e * eps,
                                                 /*require_compact=*/true);
  EXPECT_TRUE(v.valid) << v.reason;
  // Certified edge expansion of H: no violating set in the exact range...
  // survivors are large, so rely on the bracket's lower bound instead.
  BracketOptions bopts;
  bopts.exact_limit = 10;
  const ExpansionBracket bh = expansion_bracket(m.graph(), result.survivors,
                                                ExpansionKind::Edge, bopts);
  EXPECT_GT(bh.upper, 0.0);
}

// ---------------------------------------------------------------- E6 ----
TEST(Integration, Theorem36MeshSpanTwo) {
  const Mesh m({3, 3});
  const SpanResult r = exact_span(m.graph());
  EXPECT_LE(r.span, 2.0);
  const Mesh m3 = Mesh::cube(2, 3);
  EXPECT_LE(exact_span(m3.graph()).span, 2.0);
}

// ---------------------------------------------------------------- E9 ----
TEST(Integration, PrunedComponentKeepsExpansionUnlikeRawLargestComponent) {
  // §1.3 motivation: the raw largest component can contain bottlenecks;
  // Prune removes them.  Barbell-with-faults caricature: two grids joined
  // by a path.
  std::vector<Edge> edges;
  const Mesh half({5, 5});
  for (const Edge& e : half.graph().edges()) {
    edges.push_back(e);
    edges.push_back({e.u + 25, e.v + 25});
  }
  edges.push_back({24, 25});  // bottleneck bridge
  const Graph g = Graph::from_edges(50, edges);
  const VertexSet all = VertexSet::full(50);

  BracketOptions bopts;
  bopts.exact_limit = 10;
  const ExpansionBracket whole = expansion_bracket(g, ExpansionKind::Edge, bopts);
  EXPECT_LE(whole.upper, 1.0 / 25.0 + 1e-9);  // the bridge cut

  const PruneResult pruned = prune2(g, all, 0.4, 0.25);
  ASSERT_GE(pruned.survivors.count(), 20U);
  const ExpansionBracket after =
      expansion_bracket(g, pruned.survivors, ExpansionKind::Edge, bopts);
  EXPECT_GT(after.upper, whole.upper * 3.0);  // bottleneck gone
}

}  // namespace
}  // namespace fne
