#include <gtest/gtest.h>

#include "faults/churn.hpp"
#include "fne.hpp"
#include "percolation/cluster_stats.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

// ---- churn -----------------------------------------------------------------

TEST(Churn, NoLeaveKeepsEverything) {
  const Graph g = cycle_graph(20);
  ChurnOptions opts;
  opts.p_leave = 0.0;
  opts.steps = 10;
  const ChurnTrace trace = simulate_churn(g, opts);
  EXPECT_EQ(trace.final_alive.count(), 20U);
  EXPECT_DOUBLE_EQ(trace.min_gamma(), 1.0);
}

TEST(Churn, StationaryAliveFractionMatchesRates) {
  const Graph g = Mesh::cube(16, 2).graph();
  ChurnOptions opts;
  opts.p_leave = 0.05;
  opts.p_join = 0.45;
  opts.steps = 200;
  const ChurnTrace trace = simulate_churn(g, opts);
  // Stationary fraction p_join / (p_join + p_leave) = 0.9.
  EXPECT_NEAR(trace.mean_alive_fraction(256), 0.9, 0.05);
}

TEST(Churn, TraceLengthAndCountsConsistent) {
  const Graph g = cycle_graph(30);
  ChurnOptions opts;
  opts.steps = 25;
  const ChurnTrace trace = simulate_churn(g, opts);
  ASSERT_EQ(trace.steps.size(), 25U);
  EXPECT_EQ(trace.steps.back().alive_count, trace.final_alive.count());
  for (const ChurnStep& s : trace.steps) {
    EXPECT_GE(s.gamma, 0.0);
    EXPECT_LE(s.gamma, 1.0);
  }
}

TEST(Churn, DeterministicUnderSeed) {
  const Graph g = random_regular(64, 4, 3);
  const ChurnTrace a = simulate_churn(g);
  const ChurnTrace b = simulate_churn(g);
  EXPECT_EQ(a.final_alive, b.final_alive);
}

TEST(Churn, ExpanderKeepsGiantComponentUnderMildChurn) {
  const Graph g = random_regular(256, 6, 9);
  ChurnOptions opts;
  opts.p_leave = 0.02;
  opts.p_join = 0.18;  // stationary alive fraction 0.9
  opts.steps = 80;
  const ChurnTrace trace = simulate_churn(g, opts);
  EXPECT_GT(trace.min_gamma(), 0.75);
}

TEST(Churn, ParameterValidation) {
  const Graph g = cycle_graph(5);
  ChurnOptions opts;
  opts.p_leave = 1.5;
  EXPECT_THROW((void)simulate_churn(g, opts), PreconditionError);
}

// ---- cluster statistics ------------------------------------------------------

TEST(ClusterStats, FullSurvivalHasNoFiniteClusters) {
  const Graph g = cycle_graph(24);
  const ClusterStats s = cluster_statistics(g, PercolationKind::Site, 1.0, 4, 1);
  EXPECT_DOUBLE_EQ(s.gamma.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.second_fraction.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.susceptibility.mean(), 0.0);
}

TEST(ClusterStats, GammaMatchesPercolate) {
  const Graph g = Mesh::cube(12, 2).graph();
  const ClusterStats s = cluster_statistics(g, PercolationKind::Bond, 0.6, 16, 9);
  const PercolationResult p = percolate(g, PercolationKind::Bond, 0.6, 16, 9);
  EXPECT_NEAR(s.gamma.mean(), p.gamma.mean(), 1e-12);
}

TEST(ClusterStats, SusceptibilityPeaksNearCriticalPoint) {
  // χ should be larger near p* = 0.5 (2-D bond) than deep in either phase.
  const Graph g = Mesh::cube(20, 2).graph();
  const double chi_low =
      cluster_statistics(g, PercolationKind::Bond, 0.2, 20, 3).susceptibility.mean();
  const double chi_mid =
      cluster_statistics(g, PercolationKind::Bond, 0.5, 20, 3).susceptibility.mean();
  const double chi_high =
      cluster_statistics(g, PercolationKind::Bond, 0.9, 20, 3).susceptibility.mean();
  EXPECT_GT(chi_mid, chi_low);
  EXPECT_GT(chi_mid, chi_high);
}

TEST(ClusterStats, SecondFractionVanishesAboveThreshold) {
  const Graph g = random_regular(256, 4, 5);
  const ClusterStats s = cluster_statistics(g, PercolationKind::Bond, 0.9, 12, 7);
  EXPECT_LT(s.second_fraction.mean(), 0.05);
}

// ---- umbrella header ---------------------------------------------------------

TEST(UmbrellaHeader, VersionConstantsVisible) {
  EXPECT_EQ(kVersionMajor, 1);
  EXPECT_GE(kVersionMinor, 0);
}

}  // namespace
}  // namespace fne
