// Property suite: expansion invariants swept across graph families
// (parameterized gtest).  Every graph here is small enough for the exact
// oracle, so each property is checked against ground truth.
#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/bfs_ball.hpp"
#include "expansion/bracket.hpp"
#include "expansion/exact.hpp"
#include "expansion/flow.hpp"
#include "expansion/local_search.hpp"
#include "expansion/sweep.hpp"
#include "graph_cases.hpp"
#include "spectral/cheeger.hpp"
#include "spectral/fiedler.hpp"

namespace fne {
namespace {

using fne::testing::Family;
using fne::testing::GraphCase;

class ExpansionProperties : public ::testing::TestWithParam<GraphCase> {
 protected:
  void SetUp() override {
    graph_ = GetParam().make();
    alive_ = VertexSet::full(graph_.num_vertices());
    connected_ = is_connected(graph_, alive_);
  }
  Graph graph_;
  VertexSet alive_;
  bool connected_ = false;
};

TEST_P(ExpansionProperties, NodeExpansionAtMostEdgeExpansion) {
  // For any U with |U| <= n/2, |Γ(U)| <= |(U, V\U)|, so α <= αe.
  const double node = exact_expansion(graph_, ExpansionKind::Node).expansion;
  const double edge = exact_expansion(graph_, ExpansionKind::Edge).expansion;
  EXPECT_LE(node, edge + 1e-12);
}

TEST_P(ExpansionProperties, EdgeExpansionAtMostDeltaTimesNode) {
  // Each boundary vertex absorbs at most δ cut edges: αe <= δ·α.
  const double node = exact_expansion(graph_, ExpansionKind::Node).expansion;
  const double edge = exact_expansion(graph_, ExpansionKind::Edge).expansion;
  EXPECT_LE(edge, graph_.max_degree() * node + 1e-9);
}

TEST_P(ExpansionProperties, CheegerLowerBoundsHold) {
  if (!connected_) GTEST_SKIP() << "λ2 = 0 for disconnected graphs";
  const FiedlerResult fiedler = fiedler_vector(graph_, alive_);
  ASSERT_TRUE(fiedler.converged);
  const CheegerBounds bounds =
      cheeger_lower_bounds(std::max(0.0, fiedler.lambda2), graph_.max_degree());
  EXPECT_LE(bounds.edge_expansion_lower,
            exact_expansion(graph_, ExpansionKind::Edge).expansion + 1e-7);
  EXPECT_LE(bounds.node_expansion_lower,
            exact_expansion(graph_, ExpansionKind::Node).expansion + 1e-7);
}

TEST_P(ExpansionProperties, HeuristicsAreUpperBounds) {
  for (const ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
    const double exact = exact_expansion(graph_, kind).expansion;
    const double sweep = fiedler_sweep(graph_, alive_, kind).expansion;
    const double ball = best_ball_cut(graph_, alive_, kind, 8, 3).expansion;
    EXPECT_GE(sweep + 1e-12, exact);
    EXPECT_GE(ball + 1e-12, exact);
  }
}

TEST_P(ExpansionProperties, RefinementNeverWorsensAndStaysAboveExact) {
  const double exact = exact_expansion(graph_, ExpansionKind::Edge).expansion;
  CutWitness start = best_ball_cut(graph_, alive_, ExpansionKind::Edge, 4, 5);
  const double before = start.expansion;
  const CutWitness refined = refine_cut(graph_, alive_, std::move(start), ExpansionKind::Edge);
  EXPECT_LE(refined.expansion, before + 1e-12);
  EXPECT_GE(refined.expansion + 1e-12, exact);
}

TEST_P(ExpansionProperties, BracketIsExactAndConsistentForSmallGraphs) {
  for (const ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
    const ExpansionBracket bracket = expansion_bracket(graph_, kind);
    EXPECT_LE(bracket.lower, bracket.upper + 1e-12);
    EXPECT_TRUE(bracket.exact);
    EXPECT_NEAR(bracket.lower, exact_expansion(graph_, kind).expansion, 1e-12);
  }
}

TEST_P(ExpansionProperties, WitnessRecomputesToReportedValue) {
  for (const ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
    const CutWitness w = exact_expansion(graph_, kind);
    ASSERT_FALSE(w.side.empty());
    const vid size = w.side.count();
    const std::size_t boundary = kind == ExpansionKind::Node
                                     ? node_boundary_size(graph_, alive_, w.side)
                                     : edge_boundary_size(graph_, alive_, w.side);
    EXPECT_NEAR(static_cast<double>(boundary) / size, w.expansion, 1e-12);
  }
}

TEST_P(ExpansionProperties, EdgeExpansionAtMostEdgeConnectivity) {
  // αe minimizes cut/size with size >= 1, so αe <= λ(G) (cut of the λ
  // witness divided by at least 1).
  const double edge = exact_expansion(graph_, ExpansionKind::Edge).expansion;
  const double lambda = static_cast<double>(edge_connectivity(graph_, alive_));
  EXPECT_LE(edge, lambda + 1e-12);
}

TEST_P(ExpansionProperties, WhitneyInequalities) {
  if (!connected_) GTEST_SKIP();
  const std::size_t kappa = vertex_connectivity(graph_, alive_);
  const std::size_t lambda = edge_connectivity(graph_, alive_);
  EXPECT_LE(kappa, lambda);
  EXPECT_LE(lambda, graph_.min_degree());
  EXPECT_GE(kappa, 1U);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ExpansionProperties,
    ::testing::Values(
        GraphCase{Family::Path, 9, 0}, GraphCase{Family::Cycle, 12, 0},
        GraphCase{Family::Complete, 8, 0}, GraphCase{Family::Star, 10, 0},
        GraphCase{Family::Barbell, 6, 0}, GraphCase{Family::Mesh2D, 4, 0},
        GraphCase{Family::Torus2D, 4, 0}, GraphCase{Family::Mesh3D, 2, 0},
        GraphCase{Family::Hypercube, 4, 0}, GraphCase{Family::DeBruijn, 4, 0},
        GraphCase{Family::ShuffleExchange, 4, 0}, GraphCase{Family::RandomRegular4, 14, 1},
        GraphCase{Family::RandomRegular4, 14, 2}, GraphCase{Family::ErdosRenyi, 13, 3},
        GraphCase{Family::ErdosRenyi, 13, 4}, GraphCase{Family::ErdosRenyi, 16, 5},
        GraphCase{Family::Multibutterfly, 2, 6}, GraphCase{Family::Butterfly, 2, 0}),
    fne::testing::GraphCaseName{});

}  // namespace
}  // namespace fne
