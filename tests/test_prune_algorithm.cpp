#include "prune/prune.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/exact.hpp"
#include "faults/fault_model.hpp"
#include "prune/verify.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Prune, NoFaultsBelowTrueExpansionCullsNothing) {
  // threshold = α·ε < α: no violating set exists, Prune returns G intact.
  const Graph g = cycle_graph(16);
  const double alpha = exact_expansion(g, ExpansionKind::Node).expansion;
  const PruneResult result = prune(g, VertexSet::full(16), alpha, 0.5);
  EXPECT_EQ(result.survivors.count(), 16U);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_TRUE(result.culled.empty());
}

TEST(Prune, RemovesDetachedFragment) {
  const Graph g = path_graph(10);
  VertexSet alive = VertexSet::full(10);
  alive.reset(7);  // survivors: 0..6 and 8..9
  // Threshold 1.0 * 0.2 = 0.2: the fragment {8,9} (Γ = 0) is culled, but
  // no sub-path of 0..6 has |Γ(S)|/|S| <= 0.2 with |S| <= 3, so the big
  // piece survives intact.
  const PruneResult result = prune(g, alive, 1.0, 0.2);
  EXPECT_FALSE(result.survivors.test(8));
  EXPECT_FALSE(result.survivors.test(9));
  EXPECT_EQ(result.survivors.count(), 7U);
}

TEST(Prune, TraceReplaysSuccessfully) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_regular(40, 4, rng.next());
    const VertexSet alive = random_node_faults(g, 0.15, rng.next());
    const double alpha = 0.8;
    const double eps = 0.5;
    const PruneResult result = prune(g, alive, alpha, eps);
    const TraceVerification v =
        verify_prune_trace(g, alive, result, ExpansionKind::Node, alpha * eps);
    EXPECT_TRUE(v.valid) << "trial " << trial << ": " << v.reason;
  }
}

TEST(Prune, SurvivorsPlusCulledEqualsInitial) {
  const Graph g = Mesh({8, 8}).graph();
  const VertexSet alive = random_node_faults(g, 0.2, 11);
  const PruneResult result = prune(g, alive, 0.5, 0.5);
  VertexSet reconstructed = result.survivors;
  for (const CulledRecord& rec : result.culled) {
    EXPECT_FALSE(reconstructed.intersects(rec.set));
    reconstructed |= rec.set;
  }
  EXPECT_EQ(reconstructed, alive);
  EXPECT_EQ(result.total_culled + result.survivors.count(), alive.count());
}

TEST(Prune, SurvivorsHaveNoSmallDetachedPieces) {
  // After Prune, the survivor set is connected whenever threshold >= 0:
  // any detached piece <= half would have been culled with Γ = 0.
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = Mesh({10, 10}).graph();
    const VertexSet alive = random_node_faults(g, 0.25, rng.next());
    const PruneResult result = prune(g, alive, 0.6, 0.5);
    if (result.survivors.count() >= 2) {
      EXPECT_TRUE(is_connected(g, result.survivors)) << "trial " << trial;
    }
  }
}

TEST(Prune, FinalGraphHasNoViolatingSetInExactRange) {
  // For a small survivor set the cut finder is exhaustive, so termination
  // certifies: min expansion of H > threshold.
  const Graph g = cycle_graph(18);
  VertexSet alive = VertexSet::full(18);
  alive.reset(0);
  alive.reset(9);  // two 8-arcs
  const double alpha = 0.25;
  const double eps = 0.5;
  const PruneResult result = prune(g, alive, alpha, eps);
  if (result.survivors.count() >= 2) {
    const auto leftover =
        find_violating_set(g, result.survivors, ExpansionKind::Node, alpha * eps);
    EXPECT_FALSE(leftover.has_value());
  }
}

TEST(Prune, ParameterValidation) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)prune(g, VertexSet::full(4), 0.0, 0.5), PreconditionError);
  EXPECT_THROW((void)prune(g, VertexSet::full(4), 1.0, 1.0), PreconditionError);
}

TEST(PruneVerify, DetectsCorruptedTrace) {
  const Graph g = path_graph(10);
  VertexSet alive = VertexSet::full(10);
  alive.reset(7);
  PruneResult result = prune(g, alive, 1.0, 0.5);
  ASSERT_FALSE(result.culled.empty());
  // Tamper: claim a set that was never below the threshold.
  PruneResult tampered = result;
  tampered.culled[0].set = VertexSet::of(10, {3});
  const TraceVerification v =
      verify_prune_trace(g, alive, tampered, ExpansionKind::Node, 0.0);
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.failed_record, 0);
}

TEST(PruneVerify, DetectsSurvivorMismatch) {
  const Graph g = path_graph(6);
  const PruneResult clean = prune(g, VertexSet::full(6), 0.2, 0.5);
  PruneResult tampered = clean;
  tampered.survivors.reset(0);
  const TraceVerification v =
      verify_prune_trace(g, VertexSet::full(6), tampered, ExpansionKind::Node, 0.1);
  EXPECT_FALSE(v.valid);
}

TEST(Theorem21Check, BoundArithmetic) {
  // n=100, α=0.5, f=5, k=2: culled allowance = 20, bound = 80, n/4 = 25.
  const Theorem21Check check = check_theorem21_size(100, 0.5, 5, 2.0, 85);
  EXPECT_TRUE(check.precondition_ok);
  EXPECT_TRUE(check.size_ok);
  EXPECT_DOUBLE_EQ(check.size_bound, 80.0);
  EXPECT_FALSE(check_theorem21_size(100, 0.5, 5, 2.0, 79).size_ok);
  EXPECT_FALSE(check_theorem21_size(100, 0.5, 30, 2.0, 0).precondition_ok);
}

}  // namespace
}  // namespace fne
