#include "span/mesh_span.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "span/compact_sets.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(VirtualBoundary, SingleCellIn2D) {
  // S = one interior cell of a 5x5 grid: boundary is the 4 orthogonal
  // neighbors; each diagonal-adjacent pair gets a virtual edge.
  const Mesh m({5, 5});
  const VertexSet s = VertexSet::of(25, {m.id_of({2, 2})});
  const VirtualBoundaryGraph vb = virtual_boundary_graph(m, s);
  EXPECT_EQ(vb.graph.num_vertices(), 4U);
  EXPECT_EQ(vb.graph.num_edges(), 4U);  // the 4 diagonal pairs form a cycle
  EXPECT_TRUE(virtual_boundary_connected(m, s));
}

TEST(VirtualBoundary, Lemma37HoldsForAllCompactSets3x3) {
  // Exhaustive check of Lemma 3.7 on the 3x3 grid: the virtual boundary
  // graph of EVERY compact set is connected.
  const Mesh m({3, 3});
  std::uint64_t checked = 0;
  enumerate_compact_sets(m.graph(), [&](const VertexSet& s) {
    ++checked;
    EXPECT_TRUE(virtual_boundary_connected(m, s)) << "set " << checked;
  });
  EXPECT_GT(checked, 0ULL);
}

TEST(VirtualBoundary, Lemma37HoldsForAllCompactSets2x2x2) {
  const Mesh m = Mesh::cube(2, 3);
  enumerate_compact_sets(m.graph(), [&](const VertexSet& s) {
    EXPECT_TRUE(virtual_boundary_connected(m, s));
  });
}

TEST(VirtualBoundary, Lemma37SampledOnLargerMeshes) {
  Rng rng(3);
  for (vid d : {2U, 3U}) {
    const Mesh m = Mesh::cube(d == 2 ? 10 : 5, d);
    const vid n = m.num_vertices();
    for (int trial = 0; trial < 20; ++trial) {
      const vid target = 2 + static_cast<vid>(rng.uniform(n / 3));
      const VertexSet s = sample_compact_set(m.graph(), target, rng.next());
      if (s.empty()) continue;
      EXPECT_TRUE(virtual_boundary_connected(m, s)) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(SpanTree, SingleCellRatio) {
  const Mesh m({5, 5});
  const VertexSet s = VertexSet::of(25, {m.id_of({2, 2})});
  const ConstructiveSpanTree tree = mesh_boundary_span_tree(m, s);
  EXPECT_EQ(tree.boundary_size, 4U);
  EXPECT_LE(tree.tree_nodes, 2U * 4U - 1U);
  EXPECT_LE(tree.ratio, 2.0);
}

TEST(SpanTree, TheoremBoundHoldsOnSampledCompactSets) {
  Rng rng(11);
  const Mesh m({9, 9});
  for (int trial = 0; trial < 25; ++trial) {
    const vid target = 2 + static_cast<vid>(rng.uniform(35));
    const VertexSet s = sample_compact_set(m.graph(), target, rng.next());
    if (s.empty()) continue;
    const ConstructiveSpanTree tree = mesh_boundary_span_tree(m, s);
    // Theorem 3.6: at most 2(|B|-1) edges, hence < 2|B| nodes.
    EXPECT_LE(tree.tree_edges, 2 * (tree.boundary_size - 1)) << "trial " << trial;
    EXPECT_LT(tree.ratio, 2.0) << "trial " << trial;
  }
}

TEST(SpanTree, RealizedNodesContainBoundaryAndConnect) {
  Rng rng(13);
  const Mesh m = Mesh::cube(4, 3);
  const VertexSet all = VertexSet::full(m.num_vertices());
  for (int trial = 0; trial < 10; ++trial) {
    const VertexSet s = sample_compact_set(m.graph(), 6, rng.next());
    if (s.empty()) continue;
    const ConstructiveSpanTree tree = mesh_boundary_span_tree(m, s);
    const VertexSet boundary = node_boundary(m.graph(), all, s);
    EXPECT_TRUE(boundary.is_subset_of(tree.nodes));
    EXPECT_TRUE(is_connected_subset(m.graph(), all, tree.nodes));
  }
}

TEST(SpanTree, WorksOnTorus) {
  const Mesh t({6, 6}, /*wrap=*/true);
  const VertexSet s = VertexSet::of(36, {t.id_of({0, 0}), t.id_of({0, 1})});
  const ConstructiveSpanTree tree = mesh_boundary_span_tree(t, s);
  EXPECT_LE(tree.ratio, 2.0);
}

TEST(VirtualBoundary, EmptyBoundaryRejected) {
  const Mesh m({3, 3});
  EXPECT_THROW((void)virtual_boundary_graph(m, VertexSet::full(9)), PreconditionError);
}

}  // namespace
}  // namespace fne
