// Blocked (rank-k) Lanczos contracts (DESIGN.md §9): eigenvalue parity
// with k repeated deflated rank-1 solves and with the dense Jacobi
// oracle, multiplicity resolution, the deflation-ghost regression, bit
// determinism across OMP thread counts on both sides of
// kSpectralParallelDim, and SubCsr cull-sequence parity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "spectral/tridiag.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {
namespace {

[[nodiscard]] LinearOperator as_operator(const SubCsrLaplacian& lap) {
  return [&lap](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); };
}

[[nodiscard]] std::vector<std::vector<double>> ones_deflation(std::size_t dim) {
  return {std::vector<double>(dim, 1.0)};
}

/// Dense Laplacian of the masked subgraph, for the Jacobi/sym_eigen
/// oracles (small graphs only).
[[nodiscard]] std::vector<double> dense_laplacian(const SubCsrLaplacian& lap) {
  const std::size_t n = lap.dim();
  std::vector<double> a(n * n, 0.0);
  std::vector<double> x(n, 0.0);
  std::vector<double> y(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    x.assign(n, 0.0);
    x[j] = 1.0;
    lap.apply(x, y);
    for (std::size_t i = 0; i < n; ++i) a[i * n + j] = y[i];
  }
  return a;
}

TEST(SymEigen, MatchesTheJacobiOracle) {
  const Mesh mesh = Mesh::cube(5, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);
  const std::vector<double> a = dense_laplacian(lap);
  const std::size_t n = lap.dim();

  std::vector<double> jac_values;
  std::vector<double> jac_vectors;
  jacobi_eigen(a, n, jac_values, &jac_vectors);
  std::vector<double> sym_values;
  std::vector<double> sym_vectors;
  sym_eigen(a, n, sym_values, &sym_vectors);

  ASSERT_EQ(sym_values.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(sym_values[i], jac_values[i], 1e-10);
  // Eigenvectors: check they diagonalize (A v = λ v), not sign/order.
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < n; ++j) av += a[i * n + j] * sym_vectors[j * n + e];
      EXPECT_NEAR(av, sym_values[e] * sym_vectors[i * n + e], 1e-9);
    }
  }
}

TEST(BlockedLanczos, MatchesTheDenseOracleIncludingMultiplicity) {
  // The square mesh's λ₂ is doubly degenerate — the case a single Krylov
  // chain cannot resolve in exact arithmetic and the blocked kernel must.
  const Mesh mesh = Mesh::cube(8, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);
  std::vector<double> oracle_values;
  jacobi_eigen(dense_laplacian(lap), lap.dim(), oracle_values, nullptr);
  ASSERT_NEAR(oracle_values[0], 0.0, 1e-10);  // kernel (connected graph)
  ASSERT_NEAR(oracle_values[1], oracle_values[2], 1e-10) << "λ₂ must be degenerate";

  BlockLanczosOptions opts;
  opts.num_eigenpairs = 4;
  opts.tolerance = 1e-9;
  const LanczosResult result =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.values.size(), 4u);
  // Deflating ones removes the kernel: blocked values are oracle[1..4].
  for (int e = 0; e < 4; ++e) {
    EXPECT_NEAR(result.values[static_cast<std::size_t>(e)],
                oracle_values[static_cast<std::size_t>(e) + 1], 1e-7);
  }
}

TEST(BlockedLanczos, RankKMatchesRepeatedRankOneSolves) {
  const Mesh mesh = Mesh::cube(16, 2);
  const Graph& g = mesh.graph();
  const VertexSet alive = largest_component(g, random_node_faults(g, 0.25, 99));
  SubCsr sub;
  sub.build(g, alive);
  const SubCsrLaplacian lap(sub);
  const std::size_t dim = lap.dim();
  ASSERT_GE(dim, 32u);

  // k repeated rank-1 solves with progressive deflation.
  std::vector<std::vector<double>> defl = ones_deflation(dim);
  std::vector<double> seq_values;
  for (int e = 0; e < 3; ++e) {
    LanczosOptions opts;
    opts.tolerance = 1e-9;
    opts.max_iterations = 400;
    opts.seed = 17 + static_cast<std::uint64_t>(e);
    const LanczosResult r = lanczos_smallest(as_operator(lap), dim, defl, opts);
    ASSERT_TRUE(r.converged);
    seq_values.push_back(r.values.at(0));
    defl.push_back(r.vectors.at(0));
  }

  BlockLanczosOptions opts;
  opts.num_eigenpairs = 3;
  opts.tolerance = 1e-9;
  opts.max_basis = 400;
  opts.seed = 17;
  const LanczosResult blocked =
      lanczos_smallest_block(as_operator(lap), dim, ones_deflation(dim), opts);
  ASSERT_TRUE(blocked.converged);
  for (int e = 0; e < 3; ++e) {
    EXPECT_NEAR(blocked.values[static_cast<std::size_t>(e)],
                seq_values[static_cast<std::size_t>(e)], 1e-7);
  }
  // Ritz vectors are genuine eigenvectors: residual check through the op.
  std::vector<double> av(dim);
  for (int e = 0; e < 3; ++e) {
    const auto& v = blocked.vectors[static_cast<std::size_t>(e)];
    lap.apply(v, av);
    double r2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = av[i] - blocked.values[static_cast<std::size_t>(e)] * v[i];
      r2 += d * d;
    }
    EXPECT_LE(std::sqrt(r2), 1e-6);
  }
}

TEST(BlockedLanczos, DeflationGhostRegression) {
  // Long solves used to grow a ghost copy of the DEFLATED eigenvalue
  // (ones/kernel, λ = 0): one Gram–Schmidt pass against the deflation
  // left an ε-residue that normalization amplified whenever the remainder
  // norm was small.  On the fault-free 20x20 mesh the four smallest
  // nontrivial eigenvalues are known in closed form — none of them is 0.
  const Mesh mesh = Mesh::cube(20, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);

  BlockLanczosOptions opts;
  opts.num_eigenpairs = 4;
  opts.tolerance = 1e-8;
  opts.max_basis = 500;
  const LanczosResult result =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(result.converged);
  // Path eigenvalues 2 - 2cos(πk/20); mesh eigenvalues are pairwise sums.
  const double mu = 2.0 - 2.0 * std::cos(M_PI / 20.0);
  EXPECT_NEAR(result.values[0], mu, 1e-7);
  EXPECT_NEAR(result.values[1], mu, 1e-7) << "λ₂ is degenerate on the square mesh";
  EXPECT_NEAR(result.values[2], 2.0 * mu, 1e-7);
  EXPECT_GT(result.values[0], 1e-3) << "a value near 0 is the deflation ghost";
}

TEST(BlockedLanczos, DeterministicBelowAndAboveParallelThreshold) {
  // Same contract as the k = 1 kernel (test_subcsr.cpp): a solve is a
  // pure function of its inputs — identical bits for every OMP thread
  // count, on both sides of kSpectralParallelDim.
  for (const std::size_t n : {std::size_t{512}, kSpectralParallelDim + 512}) {
    const auto op = [n](const std::vector<double>& x, std::vector<double>& y) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = i < 4 ? 1.0 + 0.5 * static_cast<double>(i)
                               : 4.0 + static_cast<double>(i % 5);
        y[i] = d * x[i];
      }
    };
    BlockLanczosOptions opts;
    opts.num_eigenpairs = 4;
    opts.max_basis = 120;
    opts.tolerance = 1e-9;
    opts.seed = 11;

    const auto solve = [&] { return lanczos_smallest_block(op, n, {}, opts); };
    const LanczosResult first = solve();

#ifdef _OPENMP
    const int saved = omp_get_max_threads();
    for (const int threads : {1, 2, 4}) {
      omp_set_num_threads(threads);
      const LanczosResult again = solve();
      SCOPED_TRACE(threads);
      ASSERT_EQ(first.iterations, again.iterations);
      ASSERT_EQ(first.values, again.values);
      ASSERT_EQ(first.vectors, again.vectors);
    }
    omp_set_num_threads(saved);
#else
    const LanczosResult again = solve();
    ASSERT_EQ(first.values, again.values);
    ASSERT_EQ(first.vectors, again.vectors);
#endif
    ASSERT_TRUE(first.converged);
    EXPECT_NEAR(first.values[0], 1.0, 1e-7);
    EXPECT_NEAR(first.values[3], 2.5, 1e-7);
  }
}

TEST(BlockedLanczosSlow, CullSequenceParityOnShrunkSubCsr) {
  // The engine shrinks its SubCsr incrementally (remove()); a blocked
  // solve over the shrunk operator must be bit-identical to one over a
  // freshly built operator for the same alive mask.
  const Mesh mesh = Mesh::cube(14, 2);
  const Graph& g = mesh.graph();
  VertexSet alive = random_node_faults(g, 0.15, 5);

  SubCsr incremental;
  incremental.build(g, alive);
  Rng rng(123);
  for (int round = 0; round < 3; ++round) {
    // Cull a handful of currently alive vertices.
    VertexSet culled(g.num_vertices());
    int budget = 6;
    alive.for_each([&](vid v) {
      if (budget > 0 && rng.uniform(4) == 0) {
        culled.set(v);
        --budget;
      }
    });
    if (culled.empty()) continue;
    incremental.remove(culled);
    alive = alive - culled;

    SubCsr fresh;
    fresh.build(g, alive);
    const VertexSet comp = largest_component(g, alive);
    // Solve over the largest component via each operator's compact space:
    // both must agree bit for bit when the structures match.
    ASSERT_EQ(incremental.verts, fresh.verts);
    ASSERT_EQ(incremental.adj, fresh.adj);
    ASSERT_EQ(incremental.deg, fresh.deg);

    const SubCsrLaplacian a(incremental);
    const SubCsrLaplacian b(fresh);
    BlockLanczosOptions opts;
    opts.num_eigenpairs = 2;
    opts.max_basis = 200;
    opts.tolerance = 1e-7;
    opts.seed = 7 + static_cast<std::uint64_t>(round);
    const LanczosResult ra = lanczos_smallest_block(as_operator(a), a.dim(), {}, opts);
    const LanczosResult rb = lanczos_smallest_block(as_operator(b), b.dim(), {}, opts);
    ASSERT_EQ(ra.iterations, rb.iterations);
    ASSERT_EQ(ra.values, rb.values);
    ASSERT_EQ(ra.vectors, rb.vectors);
    (void)comp;
  }
}

}  // namespace
}  // namespace fne
