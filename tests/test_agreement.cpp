#include "analysis/agreement.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Agreement, UnanimousStartStaysUnanimous) {
  const Graph g = cycle_graph(16);
  AgreementOptions opts;
  opts.initial_ones_fraction = 1.0;
  const AgreementResult r =
      iterated_majority_agreement(g, VertexSet::full(16), VertexSet(16), opts);
  EXPECT_TRUE(r.stabilized);
  EXPECT_DOUBLE_EQ(r.agreement_fraction, 1.0);
  EXPECT_EQ(r.honest_total, 16U);
}

TEST(Agreement, ExpanderConvergesToMajorityWithoutByzantine) {
  const Graph g = random_regular(128, 6, 3);
  AgreementOptions opts;
  opts.initial_ones_fraction = 0.75;
  const AgreementResult r =
      iterated_majority_agreement(g, VertexSet::full(128), VertexSet(128), opts);
  EXPECT_TRUE(r.stabilized);
  EXPECT_GT(r.agreement_fraction, 0.95);
}

TEST(Agreement, FewByzantineNodesOnExpanderOnlySwayNeighborhoods) {
  const Graph g = random_regular(128, 6, 5);
  Rng rng(9);
  VertexSet byz(128);
  for (vid v : rng.sample_without_replacement(128, 6)) byz.set(v);
  AgreementOptions opts;
  opts.initial_ones_fraction = 0.8;
  const AgreementResult r =
      iterated_majority_agreement(g, VertexSet::full(128), byz, opts);
  // Almost-everywhere agreement: all but O(|byz| * δ) honest nodes agree.
  EXPECT_GT(r.agreement_fraction, 0.7);
  EXPECT_EQ(r.honest_total, 122U);
}

TEST(Agreement, HonestTotalExcludesByzantine) {
  const Graph g = cycle_graph(10);
  VertexSet byz(10);
  byz.set(0);
  byz.set(5);
  const AgreementResult r =
      iterated_majority_agreement(g, VertexSet::full(10), byz);
  EXPECT_EQ(r.honest_total, 8U);
}

TEST(Agreement, RespectsAliveMask) {
  const Graph g = Mesh({6, 6}).graph();
  VertexSet alive = VertexSet::full(36);
  for (vid v = 0; v < 6; ++v) alive.reset(v);  // kill one row
  const AgreementResult r = iterated_majority_agreement(g, alive, VertexSet(36));
  EXPECT_EQ(r.honest_total, 30U);
}

TEST(Agreement, ByzantineMustBeAlive) {
  const Graph g = cycle_graph(8);
  VertexSet alive = VertexSet::full(8);
  alive.reset(0);
  VertexSet byz(8);
  byz.set(0);
  EXPECT_THROW((void)iterated_majority_agreement(g, alive, byz), PreconditionError);
}

TEST(Agreement, DeterministicUnderSeed) {
  const Graph g = random_regular(64, 4, 7);
  const AgreementResult a =
      iterated_majority_agreement(g, VertexSet::full(64), VertexSet(64));
  const AgreementResult b =
      iterated_majority_agreement(g, VertexSet::full(64), VertexSet(64));
  EXPECT_EQ(a.agreeing_honest, b.agreeing_honest);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace fne
