#include "topology/chain_expander.hpp"

#include <gtest/gtest.h>

#include "analysis/fragmentation.hpp"
#include "core/traversal.hpp"
#include "topology/classic.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

TEST(ChainExpander, VertexAndEdgeCounts) {
  const Graph base = cycle_graph(5);
  const ChainExpander h = chain_replace(base, 4);
  // n + m*k vertices; each base edge becomes k+1 edges.
  EXPECT_EQ(h.graph.num_vertices(), 5U + 5U * 4U);
  EXPECT_EQ(h.graph.num_edges(), 5U * 5U);
  EXPECT_EQ(h.base_n, 5U);
  EXPECT_EQ(h.chain_len, 4U);
}

TEST(ChainExpander, OddOrTinyChainRejected) {
  const Graph base = cycle_graph(4);
  EXPECT_THROW((void)chain_replace(base, 3), PreconditionError);
  EXPECT_THROW((void)chain_replace(base, 0), PreconditionError);
}

TEST(ChainExpander, PreservesConnectivity) {
  const Graph base = random_regular(16, 4, 11);
  const ChainExpander h = chain_replace(base, 2);
  EXPECT_TRUE(is_connected(h.graph, VertexSet::full(h.graph.num_vertices())));
}

TEST(ChainExpander, OriginalVerticesKeepBaseDegree) {
  const Graph base = random_regular(12, 4, 3);
  const ChainExpander h = chain_replace(base, 2);
  for (vid v = 0; v < h.base_n; ++v) {
    EXPECT_EQ(h.graph.degree(v), base.degree(v));
    EXPECT_TRUE(h.is_original(v));
  }
  for (vid v = h.base_n; v < h.graph.num_vertices(); ++v) {
    EXPECT_EQ(h.graph.degree(v), 2U);  // chain interiors
    EXPECT_FALSE(h.is_original(v));
  }
}

TEST(ChainExpander, ChainsConnectTheRightEndpoints) {
  const Graph base = path_graph(3);  // edges 0-1, 1-2
  const ChainExpander h = chain_replace(base, 2);
  ASSERT_EQ(h.chain_vertices.size(), 2U);
  for (eid e = 0; e < 2; ++e) {
    const auto& chain = h.chain_vertices[e];
    ASSERT_EQ(chain.size(), 2U);
    EXPECT_TRUE(h.graph.has_edge(base.edge(e).u, chain.front()));
    EXPECT_TRUE(h.graph.has_edge(chain.back(), base.edge(e).v));
    EXPECT_TRUE(h.graph.has_edge(chain[0], chain[1]));
  }
}

TEST(ChainExpander, CenterIsMiddleOfChain) {
  const Graph base = path_graph(2);
  const ChainExpander h = chain_replace(base, 6);
  ASSERT_EQ(h.chain_center.size(), 1U);
  EXPECT_EQ(h.chain_center[0], h.chain_vertices[0][3]);  // position k/2
}

TEST(ChainExpander, CenterSetHasOnePerBaseEdge) {
  const Graph base = random_regular(10, 4, 7);
  const ChainExpander h = chain_replace(base, 4);
  EXPECT_EQ(h.center_set().count(), base.num_edges());
}

TEST(ChainExpander, RemovingCentersShattersGraph) {
  // Theorem 2.3's punchline: removing every chain center leaves components
  // of size at most 1 + delta * k/2 + slack — sublinear in |H|.
  const Graph base = random_regular(32, 4, 13);
  const vid k = 8;
  const ChainExpander h = chain_replace(base, k);
  const VertexSet alive = VertexSet::full(h.graph.num_vertices()) - h.center_set();
  const FragmentationProfile frag = fragmentation_profile(h.graph, alive);
  // Each surviving component hangs off one base vertex: its size is at
  // most 1 + delta * (k - 1).
  EXPECT_LE(frag.largest, 1U + 4U * (k - 1));
  EXPECT_LT(frag.gamma, 0.1);
}

}  // namespace
}  // namespace fne
