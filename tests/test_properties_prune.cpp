// Property suite: Prune/Prune2 invariants under randomized fault
// injection, swept over (family × fault probability × seed).
#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/cut_finder.hpp"
#include "faults/fault_model.hpp"
#include "graph_cases.hpp"
#include "prune/prune.hpp"
#include "prune/prune2.hpp"
#include "prune/verify.hpp"

namespace fne {
namespace {

using fne::testing::Family;
using fne::testing::GraphCase;

struct PruneCase {
  GraphCase graph_case;
  double fault_p;
  double alpha;
  double epsilon;

  [[nodiscard]] std::string label() const {
    return graph_case.label() + "_p" + std::to_string(static_cast<int>(fault_p * 100));
  }
  friend std::ostream& operator<<(std::ostream& os, const PruneCase& c) {
    return os << c.label();
  }
};

class PruneProperties : public ::testing::TestWithParam<PruneCase> {
 protected:
  void SetUp() override {
    graph_ = GetParam().graph_case.make();
    alive_ = random_node_faults(graph_, GetParam().fault_p, GetParam().graph_case.seed + 99);
  }
  Graph graph_;
  VertexSet alive_;
};

TEST_P(PruneProperties, PruneTraceReplaysValid) {
  const auto& p = GetParam();
  const PruneResult result = prune(graph_, alive_, p.alpha, p.epsilon);
  const TraceVerification v =
      verify_prune_trace(graph_, alive_, result, ExpansionKind::Node, p.alpha * p.epsilon);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST_P(PruneProperties, Prune2TraceReplaysValidAndCompact) {
  const auto& p = GetParam();
  const PruneResult result = prune2(graph_, alive_, p.alpha, p.epsilon);
  const TraceVerification v = verify_prune_trace(graph_, alive_, result, ExpansionKind::Edge,
                                                 p.alpha * p.epsilon, /*require_compact=*/true);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST_P(PruneProperties, CulledSetsPartitionTheRemovedRegion) {
  const auto& p = GetParam();
  for (const bool edge_mode : {false, true}) {
    const PruneResult result = edge_mode ? prune2(graph_, alive_, p.alpha, p.epsilon)
                                         : prune(graph_, alive_, p.alpha, p.epsilon);
    VertexSet rebuilt = result.survivors;
    vid culled_total = 0;
    for (const CulledRecord& rec : result.culled) {
      EXPECT_FALSE(rebuilt.intersects(rec.set));
      EXPECT_EQ(rec.set.count(), rec.size);
      rebuilt |= rec.set;
      culled_total += rec.size;
    }
    EXPECT_EQ(rebuilt, alive_);
    EXPECT_EQ(culled_total, result.total_culled);
    EXPECT_EQ(static_cast<std::size_t>(result.iterations), result.culled.size());
  }
}

TEST_P(PruneProperties, SurvivorsAreConnectedOrTiny) {
  // Any detached piece <= |G_i|/2 violates every threshold (Γ = 0), so
  // the survivor set of Prune must be connected (or < 2 vertices).
  const auto& p = GetParam();
  const PruneResult result = prune(graph_, alive_, p.alpha, p.epsilon);
  if (result.survivors.count() >= 2) {
    EXPECT_TRUE(is_connected(graph_, result.survivors));
  }
}

TEST_P(PruneProperties, TerminationIsCertifiedOnSmallSurvivors) {
  // When the survivor set is within the exact-search range, termination
  // proves no violating set remains.
  const auto& p = GetParam();
  const PruneResult result = prune(graph_, alive_, p.alpha, p.epsilon);
  if (result.survivors.count() >= 2 && result.survivors.count() <= 20) {
    const auto leftover = find_violating_set(graph_, result.survivors, ExpansionKind::Node,
                                             p.alpha * p.epsilon);
    EXPECT_FALSE(leftover.has_value());
  }
}

TEST_P(PruneProperties, DeterministicUnderSameSeed) {
  const auto& p = GetParam();
  const PruneResult a = prune(graph_, alive_, p.alpha, p.epsilon);
  const PruneResult b = prune(graph_, alive_, p.alpha, p.epsilon);
  EXPECT_EQ(a.survivors, b.survivors);
  EXPECT_EQ(a.iterations, b.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, PruneProperties,
    ::testing::Values(
        PruneCase{{Family::Mesh2D, 8, 1}, 0.10, 0.25, 0.5},
        PruneCase{{Family::Mesh2D, 8, 2}, 0.25, 0.25, 0.5},
        PruneCase{{Family::Mesh2D, 10, 3}, 0.35, 0.2, 0.25},
        PruneCase{{Family::Torus2D, 8, 4}, 0.20, 0.5, 0.5},
        PruneCase{{Family::Mesh3D, 4, 5}, 0.15, 0.75, 0.33},
        PruneCase{{Family::Hypercube, 6, 6}, 0.15, 0.5, 0.5},
        PruneCase{{Family::RandomRegular4, 48, 7}, 0.10, 0.6, 0.5},
        PruneCase{{Family::RandomRegular4, 48, 8}, 0.30, 0.6, 0.5},
        PruneCase{{Family::Butterfly, 4, 9}, 0.20, 0.4, 0.5},
        PruneCase{{Family::DeBruijn, 6, 10}, 0.20, 0.4, 0.5},
        PruneCase{{Family::Cycle, 32, 11}, 0.10, 0.125, 0.5},
        PruneCase{{Family::Barbell, 10, 12}, 0.10, 0.4, 0.5}),
    [](const ::testing::TestParamInfo<PruneCase>& info) { return info.param.label(); });

}  // namespace
}  // namespace fne
