// util/hash contracts: FNV-1a known-answer vectors, streaming
// equivalence, the mask_hash word discipline (the campaign payload's
// survivor_hash — its value is pinned by golden payloads under
// reproduce/, so these tests guard the byte discipline explicitly), and
// the 128-bit store-key variant.
#include <gtest/gtest.h>

#include "core/vertex_set.hpp"
#include "util/hash.hpp"

namespace fne {
namespace {

TEST(Fnv1a, MatchesPublishedTestVectors) {
  // Reference vectors from the FNV spec (Noll's fnv64a test suite).
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, StreamingGranularityDoesNotChangeTheDigest) {
  const std::string s = "fne-cell|schema=1|topo=mesh";
  Fnv1a by_text;
  by_text.text(s);
  Fnv1a by_byte;
  for (const char c : s) by_byte.byte(static_cast<std::uint8_t>(c));
  Fnv1a by_split;
  by_split.text(s.substr(0, 7)).bytes(s.data() + 7, s.size() - 7);
  EXPECT_EQ(by_text.value(), fnv1a(s));
  EXPECT_EQ(by_byte.value(), fnv1a(s));
  EXPECT_EQ(by_split.value(), fnv1a(s));
}

TEST(Fnv1a, WordFeedsEightBytesLowFirst) {
  Fnv1a by_word;
  by_word.word(0x0123456789abcdefULL);
  Fnv1a by_bytes;
  for (const std::uint8_t b : {0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01}) {
    by_bytes.byte(b);
  }
  EXPECT_EQ(by_word.value(), by_bytes.value());
}

TEST(MaskHash, IsTheUniverseThenWordsStream) {
  VertexSet s(100);
  s.set(3);
  s.set(64);
  s.set(99);
  // The documented discipline: universe size as a word, then each packed
  // word, all low byte first.
  Fnv1a h;
  h.word(s.universe_size());
  for (std::size_t w = 0; w < s.num_words(); ++w) h.word(s.word(w));
  EXPECT_EQ(mask_hash(s), h.value());
}

TEST(MaskHash, SeparatesContentAndUniverse) {
  VertexSet a(64);
  a.set(5);
  VertexSet b(64);
  b.set(6);
  EXPECT_NE(mask_hash(a), mask_hash(b));
  // Same members, different universe: distinct sets, distinct hashes.
  VertexSet c(65);
  c.set(5);
  EXPECT_NE(mask_hash(a), mask_hash(c));
  VertexSet a2(64);
  a2.set(5);
  EXPECT_EQ(mask_hash(a), mask_hash(a2));
  EXPECT_NE(mask_hash(VertexSet(0)), 0u) << "empty set still hashes its universe";
}

TEST(Hash128, LowHalfIsPlainFnv1aAndHalvesAreIndependent) {
  const std::string s = "store key material";
  const Hash128 h = fnv1a_128(s);
  EXPECT_EQ(h.lo, fnv1a(s));
  EXPECT_NE(h.hi, h.lo);
  EXPECT_EQ(h, fnv1a_128(s));
  EXPECT_FALSE(h == fnv1a_128("store key materiam"));
}

}  // namespace
}  // namespace fne
