#include "spectral/fiedler.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "spectral/cheeger.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

TEST(Fiedler, CycleLambda2) {
  const vid n = 20;
  const FiedlerResult res = fiedler_vector(cycle_graph(n), VertexSet::full(n));
  ASSERT_TRUE(res.converged);
  const double expected = 2.0 - 2.0 * std::cos(2.0 * std::numbers::pi / n);
  EXPECT_NEAR(res.lambda2, expected, 1e-7);
}

TEST(Fiedler, HypercubeLambda2IsTwo) {
  // λ2 of the Laplacian of Q_d is 2 (for every d >= 1).
  for (vid d : {3U, 4U, 5U}) {
    const Graph g = hypercube(d);
    const FiedlerResult res = fiedler_vector(g, VertexSet::full(g.num_vertices()));
    ASSERT_TRUE(res.converged) << "d=" << d;
    EXPECT_NEAR(res.lambda2, 2.0, 1e-6) << "d=" << d;
  }
}

TEST(Fiedler, PathVectorIsMonotone) {
  const vid n = 17;
  const FiedlerResult res = fiedler_vector(path_graph(n), VertexSet::full(n));
  ASSERT_TRUE(res.converged);
  // The Fiedler vector of a path is cos((i+1/2)πk/n): strictly monotone.
  const double sign = res.vector[0] < res.vector[n - 1] ? 1.0 : -1.0;
  for (vid i = 0; i + 1 < n; ++i) {
    EXPECT_LT(sign * res.vector[i], sign * res.vector[i + 1]) << "i=" << i;
  }
}

TEST(Fiedler, VectorIsZeroOnDeadVertices) {
  const Graph g = path_graph(6);
  VertexSet alive = VertexSet::full(6);
  alive.reset(5);
  const FiedlerResult res = fiedler_vector(g, alive);
  EXPECT_DOUBLE_EQ(res.vector[5], 0.0);
}

TEST(Fiedler, MaskedSubgraphSpectrum) {
  // A 6-cycle with one dead vertex is a 5-path: λ2 = 2 - 2cos(π/5).
  const Graph g = cycle_graph(6);
  VertexSet alive = VertexSet::full(6);
  alive.reset(0);
  const FiedlerResult res = fiedler_vector(g, alive);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.lambda2, 2.0 - 2.0 * std::cos(std::numbers::pi / 5), 1e-7);
}

TEST(Fiedler, BarbellHasTinyLambda2) {
  const Graph g = barbell_graph(6);
  const FiedlerResult res = fiedler_vector(g, VertexSet::full(12));
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.lambda2, 0.5);
  EXPECT_GT(res.lambda2, 0.0);
}

TEST(Fiedler, MeshLambda2ClosedForm) {
  // λ2 of the s×s grid Laplacian is 2 - 2cos(π/s).
  const Mesh m({6, 6});
  const FiedlerResult res = fiedler_vector(m.graph(), VertexSet::full(36));
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.lambda2, 2.0 - 2.0 * std::cos(std::numbers::pi / 6), 1e-6);
}

TEST(Cheeger, BoundsScaleAsDocumented) {
  const CheegerBounds b = cheeger_lower_bounds(0.8, 4);
  EXPECT_DOUBLE_EQ(b.lambda2, 0.8);
  EXPECT_DOUBLE_EQ(b.edge_expansion_lower, 0.4);
  EXPECT_DOUBLE_EQ(b.node_expansion_lower, 0.1);
  EXPECT_DOUBLE_EQ(cheeger_lower_bounds(1.0, 0).node_expansion_lower, 0.0);
}

TEST(Fiedler, TooFewVerticesRejected) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)fiedler_vector(g, VertexSet::of(3, {1})), PreconditionError);
}

}  // namespace
}  // namespace fne
