#include "prune/prune2.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/traversal.hpp"
#include "expansion/exact.hpp"
#include "faults/fault_model.hpp"
#include "prune/verify.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Prune2, NoViolationMeansNoCulling) {
  const Graph g = cycle_graph(14);
  const double alpha_e = exact_expansion(g, ExpansionKind::Edge).expansion;
  const PruneResult result = prune2(g, VertexSet::full(14), alpha_e, 0.5);
  EXPECT_EQ(result.survivors.count(), 14U);
}

TEST(Prune2, CulledSetsAreConnectedAndCompactAtCullTime) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const Mesh m({9, 9});
    const VertexSet alive = random_node_faults(m.graph(), 0.2, rng.next());
    const double alpha_e = 0.3;
    const double eps = 0.25;
    const PruneResult result = prune2(m.graph(), alive, alpha_e, eps);
    const TraceVerification v = verify_prune_trace(m.graph(), alive, result,
                                                   ExpansionKind::Edge, alpha_e * eps,
                                                   /*require_compact=*/false);
    EXPECT_TRUE(v.valid) << "trial " << trial << ": " << v.reason;
  }
}

TEST(Prune2, CompactifiedRecordsPassCompactReplay) {
  const Mesh m({8, 8});
  const VertexSet alive = random_node_faults(m.graph(), 0.22, 17);
  const double alpha_e = 0.3;
  const double eps = 0.25;
  const PruneResult result = prune2(m.graph(), alive, alpha_e, eps);
  // With compactification ON (default), every culled set must be compact
  // in the graph it was culled from.
  const TraceVerification v = verify_prune_trace(m.graph(), alive, result,
                                                 ExpansionKind::Edge, alpha_e * eps,
                                                 /*require_compact=*/true);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST(Prune2, AblationWithoutCompactificationStillValidTrace) {
  const Mesh m({8, 8});
  const VertexSet alive = random_node_faults(m.graph(), 0.22, 23);
  Prune2Options opts;
  opts.compactify_enabled = false;
  const PruneResult result = prune2(m.graph(), alive, 0.3, 0.25, opts);
  const TraceVerification v = verify_prune_trace(m.graph(), alive, result,
                                                 ExpansionKind::Edge, 0.3 * 0.25,
                                                 /*require_compact=*/false);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST(Prune2, SurvivorAccounting) {
  const Mesh m({8, 8});
  const VertexSet alive = random_node_faults(m.graph(), 0.25, 31);
  const PruneResult result = prune2(m.graph(), alive, 0.3, 0.25);
  VertexSet reconstructed = result.survivors;
  for (const CulledRecord& rec : result.culled) {
    EXPECT_FALSE(reconstructed.intersects(rec.set));
    reconstructed |= rec.set;
  }
  EXPECT_EQ(reconstructed, alive);
}

TEST(Prune2, Theorem34ProbabilityFormula) {
  // p = 1 / (2e δ^{4σ}); for δ = 4, σ = 2 this is 1/(2e·4^8).
  const double p = theorem34_fault_probability(4.0, 2.0);
  EXPECT_NEAR(p, 1.0 / (2.0 * std::exp(1.0) * std::pow(4.0, 8.0)), 1e-15);
  EXPECT_GT(theorem34_fault_probability(2.0, 1.0), p);  // smaller δ/σ → larger p
}

TEST(Prune2, MeshUnderTheoremFaultRateKeepsHalf) {
  // 2-D mesh: δ = 4, σ = 2 (Thm 3.6) → admissible p ≈ 2.8e-6; any modest n
  // then sees (almost) no faults and Prune2 must keep > n/2.  We use a
  // slightly larger p to actually exercise fault handling while staying
  // far below the shattering regime.
  const Mesh m({16, 16});
  const VertexSet alive = random_node_faults(m.graph(), 0.01, 5);
  const double eps = 1.0 / 8.0;  // <= 1/(2δ)
  const PruneResult result = prune2(m.graph(), alive, 0.1, eps);
  EXPECT_GE(result.survivors.count(), 128U);
}

TEST(Prune2, ParameterValidation) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)prune2(g, VertexSet::full(4), 0.0, 0.5), PreconditionError);
  EXPECT_THROW((void)prune2(g, VertexSet::full(4), 1.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace fne
