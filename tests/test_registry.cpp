// Registry contracts (DESIGN.md §6): every registered name builds, every
// topology honors its declared vertex-count contract, and bad inputs fail
// with REQUIRE-style errors naming the offender.
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "topology/mesh.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

TEST(TopologyRegistry, EveryRegisteredNameBuildsWithDefaults) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  const std::vector<std::string> names = reg.names();
  ASSERT_GE(names.size(), 8u) << "ISSUE acceptance: >= 8 topologies by name";
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    if (name == "file") {
      // The one entry with no default workload: its required `path`
      // param points at external data (tests/test_ingest.cpp covers it).
      EXPECT_THROW((void)reg.build(name, Params{}, /*seed=*/7), PreconditionError);
      continue;
    }
    const Graph g = reg.build(name, Params{}, /*seed=*/7);
    EXPECT_GT(g.num_vertices(), 0u);
    EXPECT_EQ(g.num_vertices(), reg.expected_n(name, Params{}));
  }
}

TEST(TopologyRegistry, VertexCountContractsMatchTheFamilies) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  // The 2^dims families whose size was previously implicit.
  EXPECT_EQ(reg.build("hypercube", Params{{"dims", "6"}}, 1).num_vertices(), 64u);
  EXPECT_EQ(reg.build("debruijn", Params{{"dims", "7"}}, 1).num_vertices(), 128u);
  EXPECT_EQ(reg.build("shuffle_exchange", Params{{"dims", "7"}}, 1).num_vertices(), 128u);
  // side^dims meshes and the parameterized classics.
  EXPECT_EQ(reg.build("mesh", Params{{"side", "5"}, {"dims", "3"}}, 1).num_vertices(), 125u);
  EXPECT_EQ(reg.build("barbell", Params{{"half", "10"}}, 1).num_vertices(), 20u);
  EXPECT_EQ(reg.build("butterfly", Params{{"dims", "4"}}, 1).num_vertices(), 5u * 16u);
  EXPECT_EQ(reg.build("butterfly", Params{{"dims", "4"}, {"wrapped", "1"}}, 1).num_vertices(),
            4u * 16u);
  EXPECT_EQ(reg.build("chain_expander",
                      Params{{"base_n", "16"}, {"base_degree", "4"}, {"k", "4"}}, 1)
                .num_vertices(),
            16u + 4u * 32u);
}

TEST(TopologyRegistry, RegisteredMeshMatchesTheMeshClass) {
  const Graph via_registry =
      TopologyRegistry::instance().build("mesh", Params{{"side", "6"}, {"dims", "2"}}, 3);
  const Mesh direct = Mesh::cube(6, 2);
  EXPECT_EQ(via_registry.num_vertices(), direct.graph().num_vertices());
  EXPECT_EQ(via_registry.num_edges(), direct.graph().num_edges());
}

TEST(TopologyRegistry, SeededFamiliesAreDeterministicInTheSeed) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  const Params p{{"n", "64"}, {"degree", "4"}};
  const Graph a = reg.build("random_regular", p, 11);
  const Graph b = reg.build("random_regular", p, 11);
  const Graph c = reg.build("random_regular", p, 12);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.edges().begin(), a.edges().end(), b.edges().begin()));
  EXPECT_FALSE(a.num_edges() == c.num_edges() &&
               std::equal(a.edges().begin(), a.edges().end(), c.edges().begin()));
}

TEST(TopologyRegistry, RejectsUnknownNamesKeysAndBadValues) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  EXPECT_THROW((void)reg.build("no_such_family", Params{}, 1), PreconditionError);
  // Undeclared key: the old free-function API silently ignored typos.
  EXPECT_THROW((void)reg.build("hypercube", Params{{"dim", "6"}}, 1), PreconditionError);
  // Out-of-range and malformed values.
  EXPECT_THROW((void)reg.build("hypercube", Params{{"dims", "99"}}, 1), PreconditionError);
  EXPECT_THROW((void)reg.build("hypercube", Params{{"dims", "six"}}, 1), PreconditionError);
  EXPECT_THROW((void)reg.build("random_regular", Params{{"n", "15"}, {"degree", "3"}}, 1),
               PreconditionError);
}

TEST(FaultModelRegistry, EveryRegisteredNameBuildsOnASmallMesh) {
  FaultModelRegistry& reg = FaultModelRegistry::instance();
  const std::vector<std::string> names = reg.names();
  ASSERT_GE(names.size(), 3u) << "ISSUE acceptance: >= 3 fault models by name";
  const Graph g = TopologyRegistry::instance().build("mesh", Params{{"side", "8"}}, 5);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const VertexSet alive = reg.build(name, g, Params{}, /*seed=*/9);
    EXPECT_EQ(alive.universe_size(), g.num_vertices());
    EXPECT_LE(alive.count(), g.num_vertices());
  }
}

TEST(FaultModelRegistry, BudgetAndFractionResolveConsistently) {
  FaultModelRegistry& reg = FaultModelRegistry::instance();
  const Graph g = TopologyRegistry::instance().build("mesh", Params{{"side", "8"}}, 5);
  const VertexSet by_budget = reg.build("high_degree", g, Params{{"budget", "6"}}, 1);
  EXPECT_EQ(g.num_vertices() - by_budget.count(), 6u);
  const VertexSet by_frac = reg.build("random_exact", g, Params{{"frac", "0.25"}}, 1);
  EXPECT_EQ(g.num_vertices() - by_frac.count(), g.num_vertices() / 4);
  // `none` is the all-alive baseline.
  EXPECT_EQ(reg.build("none", g, Params{}, 1).count(), g.num_vertices());
}

TEST(FaultModelRegistry, RejectsUnknownNamesKeysAndBadValues) {
  FaultModelRegistry& reg = FaultModelRegistry::instance();
  const Graph g = TopologyRegistry::instance().build("mesh", Params{{"side", "6"}}, 5);
  EXPECT_THROW((void)reg.build("no_such_model", g, Params{}, 1), PreconditionError);
  EXPECT_THROW((void)reg.build("random", g, Params{{"prob", "0.1"}}, 1), PreconditionError);
  EXPECT_THROW((void)reg.build("random", g, Params{{"p", "1.5"}}, 1), PreconditionError);
  EXPECT_THROW((void)reg.build("high_degree", g, Params{{"budget", "9999"}}, 1),
               PreconditionError);
}

TEST(TopologyRegistry, StructureMetadataDescribesTheCoordinateFamilies) {
  TopologyRegistry& reg = TopologyRegistry::instance();

  const Params mesh = reg.structure("mesh", Params{{"side", "8"}, {"dims", "3"}});
  EXPECT_EQ(mesh.get_int("side", 0), 8);
  EXPECT_EQ(mesh.get_int("dims", 0), 3);
  EXPECT_FALSE(mesh.get_bool("wrap", true));
  EXPECT_TRUE(reg.structure("torus", Params{{"side", "6"}}).get_bool("wrap", false));

  const Params bf = reg.structure("butterfly", Params{{"dims", "5"}});
  EXPECT_EQ(bf.get_int("levels", 0), 6);
  EXPECT_EQ(bf.get_int("rows", 0), 32);
  const Params bfw = reg.structure("butterfly", Params{{"dims", "5"}, {"wrapped", "1"}});
  EXPECT_EQ(bfw.get_int("levels", 0), 5);

  EXPECT_EQ(reg.structure("debruijn", Params{{"dims", "7"}}).get_int("dims", 0), 7);
  EXPECT_EQ(reg.structure("hypercube", Params{}).get_int("dims", 0), 8);
  // Families without declared structure report none (and still validate
  // their params).
  EXPECT_TRUE(reg.structure("random_regular", Params{}).empty());
  EXPECT_THROW((void)reg.structure("mesh", Params{{"sides", "8"}}), PreconditionError);
}

TEST(TopologyRegistry, MeshForRebuildsTheCoordinateObjectFromAScenarioSpec) {
  // The satellite use case: a coordinate-dependent analysis (mesh span,
  // embedding) gets its Mesh VALUE from the registry instead of a
  // bespoke constructor.
  const Params params = Params{{"side", "7"}, {"dims", "2"}};
  const Mesh mesh = mesh_for("mesh", params);
  EXPECT_EQ(mesh.dims(), 2u);
  EXPECT_EQ(mesh.sides(), (std::vector<vid>{7, 7}));
  EXPECT_FALSE(mesh.wraps());
  // Bit-for-bit the graph the registry itself builds.
  const Graph via_registry = TopologyRegistry::instance().build("mesh", params, 99);
  EXPECT_EQ(mesh.graph().num_vertices(), via_registry.num_vertices());
  EXPECT_EQ(mesh.graph().num_edges(), via_registry.num_edges());

  EXPECT_TRUE(mesh_for("torus", Params{{"side", "5"}}).wraps());
  EXPECT_THROW((void)mesh_for("hypercube", Params{}), PreconditionError);
}

TEST(TopologyRegistry, SeededFlagsSeparateDeterministicFromRandomFamilies) {
  TopologyRegistry& reg = TopologyRegistry::instance();
  for (const char* name : {"mesh", "torus", "hypercube", "debruijn", "shuffle_exchange",
                           "butterfly", "complete", "cycle", "path", "star", "barbell"}) {
    EXPECT_FALSE(reg.at(name).seeded) << name;
  }
  for (const char* name :
       {"random_regular", "erdos_renyi", "can", "chain_expander", "multibutterfly"}) {
    EXPECT_TRUE(reg.at(name).seeded) << name;
  }
}

TEST(FaultModelRegistry, MonotoneDeclarationsNameTheCoupledParams) {
  FaultModelRegistry& reg = FaultModelRegistry::instance();
  EXPECT_EQ(reg.at("random").monotone_params, std::vector<std::string>{"p"});
  EXPECT_EQ(reg.at("high_degree").monotone_params,
            (std::vector<std::string>{"budget", "frac"}));
  // Floyd's sampling reshuffles with the budget — must stay undeclared.
  EXPECT_TRUE(reg.at("random_exact").monotone_params.empty());
  EXPECT_TRUE(reg.at("sweep_cut").monotone_params.empty());
  EXPECT_TRUE(reg.at("bisection").monotone_params.empty());
}

TEST(Params, ParseRoundTripAndTypedGetters) {
  const Params p = Params::parse("side=24,dims=2,wrap");
  EXPECT_EQ(p.get_int("side", 0), 24);
  EXPECT_EQ(p.get_int("dims", 0), 2);
  EXPECT_TRUE(p.get_bool("wrap", false));
  EXPECT_EQ(p.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(Params::parse(p.to_string()), p);
  // Doubles round-trip losslessly through set() (sweeps must run at
  // exactly the stored probe values).
  const double tiny = 2.8066438062992287e-06;
  EXPECT_EQ(Params().set("p", tiny).get_double("p", 0.0), tiny);
  const Params bad{{"x", "abc"}};
  EXPECT_THROW((void)bad.get_int("x", 0), PreconditionError);
  EXPECT_THROW((void)bad.get_double("x", 0.0), PreconditionError);
  EXPECT_THROW((void)bad.get_bool("x", false), PreconditionError);
}

}  // namespace
}  // namespace fne
