#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "spectral/tridiag.hpp"
#include "topology/classic.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

std::vector<double> laplacian_dense(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<double> a(n * n, 0.0);
  for (vid v = 0; v < n; ++v) a[v * n + v] = g.degree(v);
  for (const Edge& e : g.edges()) {
    a[e.u * n + e.v] = -1.0;
    a[e.v * n + e.u] = -1.0;
  }
  return a;
}

TEST(Tridiag, DiagonalMatrixIsItsOwnSpectrum) {
  std::vector<double> values;
  tridiag_eigen({3.0, 1.0, 2.0}, {0.0, 0.0}, values, nullptr);
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 2.0, 1e-12);
  EXPECT_NEAR(values[2], 3.0, 1e-12);
}

TEST(Tridiag, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  std::vector<double> values, vectors;
  tridiag_eigen({2.0, 2.0}, {1.0}, values, &vectors);
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
  // Eigenvector of λ=1 is (1, -1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors[0 * 2 + 0]), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Tridiag, PathLaplacianKnownSpectrum) {
  // Laplacian of the path P_n is tridiagonal; eigenvalues are
  // 2 - 2cos(pi k / n), k = 0..n-1.
  const int n = 8;
  std::vector<double> diag(n, 2.0);
  diag.front() = diag.back() = 1.0;
  std::vector<double> off(n - 1, -1.0);
  std::vector<double> values;
  tridiag_eigen(diag, off, values, nullptr);
  for (int k = 0; k < n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(std::numbers::pi * k / n);
    EXPECT_NEAR(values[k], expected, 1e-10) << "k=" << k;
  }
}

TEST(Tridiag, EigenvectorsSatisfyDefinition) {
  const std::vector<double> diag{1.0, -2.0, 0.5, 3.0};
  const std::vector<double> off{0.7, -1.1, 0.3};
  std::vector<double> values, z;
  tridiag_eigen(diag, off, values, &z);
  const std::size_t n = 4;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = diag[i] * z[i * n + j];
      if (i > 0) av += off[i - 1] * z[(i - 1) * n + j];
      if (i + 1 < n) av += off[i] * z[(i + 1) * n + j];
      EXPECT_NEAR(av, values[j] * z[i * n + j], 1e-9);
    }
  }
}

TEST(Jacobi, MatchesTridiagOnRandomSymmetric) {
  Rng rng(5);
  const std::size_t n = 10;
  std::vector<double> diag(n), off(n - 1);
  for (auto& d : diag) d = rng.uniform01() * 4 - 2;
  for (auto& o : off) o = rng.uniform01() * 2 - 1;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = diag[i];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a[i * n + i + 1] = off[i];
    a[(i + 1) * n + i] = off[i];
  }
  std::vector<double> v1, v2;
  tridiag_eigen(diag, off, v1, nullptr);
  jacobi_eigen(a, n, v2, nullptr);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v1[i], v2[i], 1e-9);
}

TEST(Jacobi, EigenvectorsDiagonalize) {
  Rng rng(9);
  const std::size_t n = 6;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double x = rng.uniform01() * 2 - 1;
      a[i * n + j] = x;
      a[j * n + i] = x;
    }
  }
  std::vector<double> values, z;
  jacobi_eigen(a, n, values, &z);
  // Check A z_j = lambda_j z_j.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0;
      for (std::size_t k = 0; k < n; ++k) av += a[i * n + k] * z[k * n + j];
      EXPECT_NEAR(av, values[j] * z[i * n + j], 1e-8);
    }
  }
}

TEST(Lanczos, PathLaplacianLambda2) {
  const vid n = 24;
  const Graph g = path_graph(n);
  MaskedLaplacian lap(g, VertexSet::full(n));
  const std::vector<std::vector<double>> defl{std::vector<double>(n, 1.0)};
  const auto res = lanczos_smallest(
      [&](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); }, n, defl);
  ASSERT_TRUE(res.converged);
  const double expected = 2.0 - 2.0 * std::cos(std::numbers::pi / n);
  EXPECT_NEAR(res.values[0], expected, 1e-7);
}

TEST(Lanczos, MatchesJacobiOnRandomGraphLaplacian) {
  const Graph g = Graph::from_edges(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 6}, {6, 7}, {7, 8},
           {8, 9}, {9, 10}, {10, 11}, {11, 6}, {3, 9}, {2, 8}});
  const vid n = g.num_vertices();
  std::vector<double> dense_values;
  jacobi_eigen(laplacian_dense(g), n, dense_values, nullptr);

  MaskedLaplacian lap(g, VertexSet::full(n));
  const std::vector<std::vector<double>> defl{std::vector<double>(n, 1.0)};
  LanczosOptions opts;
  opts.num_eigenpairs = 2;
  const auto res = lanczos_smallest(
      [&](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); }, n, defl,
      opts);
  ASSERT_TRUE(res.converged);
  // Deflated smallest = λ2 of the Laplacian (dense_values[1]).
  EXPECT_NEAR(res.values[0], dense_values[1], 1e-7);
  EXPECT_NEAR(res.values[1], dense_values[2], 1e-6);
}

TEST(Lanczos, RitzVectorIsEigenvector) {
  const Graph g = cycle_graph(16);
  const vid n = 16;
  MaskedLaplacian lap(g, VertexSet::full(n));
  const std::vector<std::vector<double>> defl{std::vector<double>(n, 1.0)};
  const auto res = lanczos_smallest(
      [&](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); }, n, defl);
  ASSERT_TRUE(res.converged);
  std::vector<double> lx(n);
  lap.apply(res.vectors[0], lx);
  for (vid i = 0; i < n; ++i) {
    EXPECT_NEAR(lx[i], res.values[0] * res.vectors[0][i], 1e-6);
  }
}

TEST(MaskedLaplacian, RespectsAliveMask) {
  const Graph g = path_graph(5);
  VertexSet alive = VertexSet::full(5);
  alive.reset(2);  // two components {0,1}, {3,4}
  MaskedLaplacian lap(g, alive);
  EXPECT_EQ(lap.dim(), 4U);
  // x = indicator of subgraph vertex 0 (original 0): L x = deg*x - A x.
  std::vector<double> x(4, 0.0), y(4, 0.0);
  x[0] = 1.0;
  lap.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);   // degree of vertex 0 within mask
  EXPECT_DOUBLE_EQ(y[1], -1.0);  // neighbor 1
  EXPECT_DOUBLE_EQ(y[2], 0.0);   // vertex 3 unaffected
}

}  // namespace
}  // namespace fne
