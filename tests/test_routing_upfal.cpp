#include <gtest/gtest.h>

#include "analysis/routing.hpp"
#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "prune/upfal.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

// ---- Upfal degree pruning ------------------------------------------------

TEST(UpfalPrune, NoFaultsKeepsEverything) {
  const Graph g = random_regular(32, 4, 3);
  const UpfalResult r = upfal_prune(g, VertexSet::full(32), 0.5);
  EXPECT_EQ(r.survivors.count(), 32U);
  EXPECT_EQ(r.total_culled, 0U);
}

TEST(UpfalPrune, CascadesFromDegreeLoss) {
  // Path: killing an interior vertex leaves the neighbors with 1/2 of
  // their degree, which at keep_fraction 0.6 cascades down both arms
  // until the degree-1 endpoints (1 of original degree 1) stabilize.
  const Graph g = path_graph(7);
  VertexSet alive = VertexSet::full(7);
  alive.reset(3);
  const UpfalResult r = upfal_prune(g, alive, 0.6);
  // Interior vertices 2 and 4 drop (alive degree 1 < 0.6*2), the cascade
  // walks both arms, and finally the endpoints drop too (0 < 0.6*1):
  // Upfal's rule on a path with one interior fault removes everything —
  // a vivid case of degree pruning overshooting on weak expanders.
  EXPECT_EQ(r.survivors.count(), 0U);
  EXPECT_EQ(r.total_culled, 6U);
}

TEST(UpfalPrune, KeepsLargestComponentOnly) {
  const Graph g = Graph::from_edges(7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}});
  const UpfalResult r = upfal_prune(g, VertexSet::full(7), 0.5);
  EXPECT_EQ(r.survivors.count(), 4U);  // the 4-cycle
}

TEST(UpfalPrune, GuaranteesLinearComponentOnExpander) {
  // §1.1 (Upfal): n - O(f) survivors on a bounded-degree expander.
  const Graph g = random_regular(128, 6, 7);
  const VertexSet alive = random_exact_node_faults(g, 8, 5);
  const UpfalResult r = upfal_prune(g, alive, 0.5);
  EXPECT_GE(r.survivors.count() + 6 * 8, 128U);  // lost <= O(f)
}

TEST(UpfalPrune, SurvivorsAreConnectedSubset) {
  const Mesh m({8, 8});
  const VertexSet alive = random_node_faults(m.graph(), 0.2, 9);
  const UpfalResult r = upfal_prune(m.graph(), alive, 0.5);
  EXPECT_TRUE(r.survivors.is_subset_of(alive));
  if (r.survivors.count() >= 2) {
    EXPECT_TRUE(is_connected(m.graph(), r.survivors));
  }
}

TEST(UpfalPrune, ParameterValidation) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)upfal_prune(g, VertexSet::full(4), 0.0), PreconditionError);
  EXPECT_THROW((void)upfal_prune(g, VertexSet::full(4), 1.5), PreconditionError);
}

// ---- permutation routing ---------------------------------------------------

TEST(Routing, RoutesEveryNonTrivialPair) {
  const Mesh m({6, 6});
  const RoutingResult r = route_random_permutation(m.graph(), VertexSet::full(36), 3);
  EXPECT_GT(r.routed_pairs, 30U);  // fixed points of π are skipped
  EXPECT_GT(r.max_edge_load, 0U);
  EXPECT_LE(r.max_path_length, 10U);  // mesh diameter
  EXPECT_LE(r.average_path_length, static_cast<double>(r.max_path_length));
}

TEST(Routing, DeterministicUnderSeed) {
  const Graph g = random_regular(48, 4, 5);
  const RoutingResult a = route_random_permutation(g, VertexSet::full(48), 7);
  const RoutingResult b = route_random_permutation(g, VertexSet::full(48), 7);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
  EXPECT_EQ(a.routed_pairs, b.routed_pairs);
}

TEST(Routing, CongestionTracksBottleneck) {
  // Barbell: every cross pair must use the single bridge, so congestion
  // is Θ(n) there; an expander of the same size stays near O(log n).
  const Graph bar = barbell_graph(12);
  const Graph exp = random_regular(24, 4, 11);
  const RoutingResult rb = route_random_permutation(bar, VertexSet::full(24), 13);
  const RoutingResult re = route_random_permutation(exp, VertexSet::full(24), 13);
  EXPECT_GT(rb.max_edge_load, 2 * re.max_edge_load);
}

TEST(Routing, WorksUnderMask) {
  const Graph g = cycle_graph(12);
  VertexSet alive = VertexSet::full(12);
  alive.reset(0);  // a path
  const RoutingResult r = route_random_permutation(g, alive, 17);
  EXPECT_EQ(r.routed_pairs + (11 - r.routed_pairs), 11U);
  EXPECT_GT(r.max_edge_load, 0U);
}

TEST(Routing, DisconnectedRejected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)route_random_permutation(g, VertexSet::full(4), 1), PreconditionError);
}

}  // namespace
}  // namespace fne
