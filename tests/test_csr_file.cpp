// CsrFile codec: canonical round trips over the graph-family fixtures,
// mmap/buffer parity, and the total-decode fuzz surface (every prefix
// truncation, every single-bit flip, oversized headers, crafted
// non-canonical payloads behind valid checksums) — clean errors only,
// the test_dist_protocol.cpp discipline applied to the §14 format.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/csr_file.hpp"
#include "core/graph.hpp"
#include "core/io.hpp"
#include "graph_cases.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

namespace fs = std::filesystem;
using testing::Family;
using testing::GraphCase;
using testing::GraphCaseName;

[[nodiscard]] std::string tmp_path(const std::string& name) {
  return (fs::path(::testing::TempDir()) / ("fne_csr_" + name)).string();
}

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (eid e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].u, b.edges()[e].u);
    EXPECT_EQ(a.edges()[e].v, b.edges()[e].v);
  }
}

/// Rebuild an image's checksum so structural corruptions survive the
/// checksum gate and hit the validator they target.
void reseal(std::string& image) {
  ASSERT_GE(image.size(), kCsrHeaderBytes);
  std::uint64_t n = 0, m = 0;
  std::memcpy(&n, image.data() + 16, 8);
  std::memcpy(&m, image.data() + 24, 8);
  const std::uint64_t sum = Fnv1a{}
                                .word(n)
                                .word(m)
                                .bytes(image.data() + kCsrHeaderBytes,
                                       image.size() - kCsrHeaderBytes)
                                .value();
  std::memcpy(image.data() + 32, &sum, 8);
}

class CsrRoundTrip : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CsrRoundTrip, EncodeValidateWriteOpenBothModes) {
  const Graph g = GetParam().make();
  const std::string image = CsrFile::encode(g);
  EXPECT_EQ(CsrFile::validate(image), std::nullopt);

  const std::string path = tmp_path(GetParam().label() + ".csr");
  CsrFile::write(path, g);

  const CsrHeader h = CsrFile::read_header(path);
  EXPECT_EQ(h.n, g.num_vertices());
  EXPECT_EQ(h.m, g.num_edges());

  const CsrFile mapped = CsrFile::open(path, CsrFile::Load::kAuto);
  const CsrFile buffered = CsrFile::open(path, CsrFile::Load::kBuffer);
  EXPECT_FALSE(buffered.mmapped());
  EXPECT_EQ(mapped.header().checksum, buffered.header().checksum);
  ASSERT_EQ(mapped.offsets().size(), buffered.offsets().size());
  ASSERT_EQ(mapped.adj().size(), buffered.adj().size());
  for (std::size_t i = 0; i < mapped.offsets().size(); ++i) {
    ASSERT_EQ(mapped.offsets()[i], buffered.offsets()[i]);
  }
  for (std::size_t i = 0; i < mapped.adj().size(); ++i) {
    ASSERT_EQ(mapped.adj()[i], buffered.adj()[i]);
  }

  expect_graphs_equal(mapped.to_graph(), g);
  expect_graphs_equal(buffered.to_graph(), g);

  // Canonical form: re-encoding the decoded graph reproduces the bytes.
  EXPECT_EQ(CsrFile::encode(mapped.to_graph()), image);
}

TEST_P(CsrRoundTrip, TextConversionMatchesDirectEncoding) {
  // The ingestion pipeline (write_edge_list -> tolerant read -> encode)
  // lands on the same canonical bytes as encoding the graph directly —
  // text-vs-binary parity for every fixture family.
  const Graph g = GetParam().make();
  std::stringstream text;
  write_edge_list(text, g);
  const Graph parsed = read_edge_list(text);
  expect_graphs_equal(parsed, g);
  EXPECT_EQ(CsrFile::encode(parsed), CsrFile::encode(g));
}

INSTANTIATE_TEST_SUITE_P(Families, CsrRoundTrip,
                         ::testing::Values(GraphCase{Family::Path, 17, 0},
                                           GraphCase{Family::Cycle, 12, 0},
                                           GraphCase{Family::Complete, 9, 0},
                                           GraphCase{Family::Star, 15, 0},
                                           GraphCase{Family::Barbell, 6, 0},
                                           GraphCase{Family::Mesh2D, 5, 0},
                                           GraphCase{Family::Torus2D, 4, 0},
                                           GraphCase{Family::Hypercube, 4, 0},
                                           GraphCase{Family::DeBruijn, 4, 0},
                                           GraphCase{Family::RandomRegular4, 24, 7},
                                           GraphCase{Family::ErdosRenyi, 20, 11}),
                         GraphCaseName());

TEST(CsrFileFormat, EmptyAndEdgelessGraphsRoundTrip) {
  for (const vid n : {vid{0}, vid{1}, vid{5}}) {
    const Graph g = Graph::from_edges(n, {});
    const std::string path = tmp_path("edgeless_" + std::to_string(n) + ".csr");
    CsrFile::write(path, g);
    const CsrFile f = CsrFile::open(path);
    EXPECT_EQ(f.header().n, n);
    EXPECT_EQ(f.header().m, 0u);
    expect_graphs_equal(f.to_graph(), g);
  }
}

TEST(CsrFileFormat, OpenRejectsMissingAndGarbageFiles) {
  EXPECT_THROW((void)CsrFile::open(tmp_path("nonexistent.csr")), PreconditionError);
  EXPECT_THROW((void)CsrFile::read_header(tmp_path("nonexistent.csr")), PreconditionError);

  const std::string path = tmp_path("garbage.csr");
  std::ofstream(path, std::ios::binary) << "this is not a csr file at all";
  EXPECT_THROW((void)CsrFile::open(path), PreconditionError);
  EXPECT_THROW((void)CsrFile::open(path, CsrFile::Load::kBuffer), PreconditionError);
  EXPECT_THROW((void)CsrFile::read_header(path), PreconditionError);
}

TEST(CsrFileFuzz, EveryPrefixTruncationIsRejected) {
  const std::string image = CsrFile::encode(testing::GraphCase{Family::Cycle, 9, 0}.make());
  for (std::size_t len = 0; len < image.size(); ++len) {
    const auto err = CsrFile::validate(std::string_view(image).substr(0, len));
    EXPECT_TRUE(err.has_value()) << "prefix of " << len << " bytes accepted";
  }
  EXPECT_EQ(CsrFile::validate(image), std::nullopt);
  // Trailing garbage is a size mismatch, not extra capacity.
  EXPECT_TRUE(CsrFile::validate(image + '\0').has_value());
}

TEST(CsrFileFuzz, AnySingleBitFlipIsRejected) {
  // The checksum covers n, m and the payload; magic/version/reserved are
  // checked by equality and the checksum field by recomputation — so NO
  // single-bit flip anywhere in the image may validate.
  const std::string image = CsrFile::encode(testing::GraphCase{Family::Cycle, 8, 0}.make());
  ASSERT_EQ(CsrFile::validate(image), std::nullopt);
  for (std::size_t i = 0; i < image.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = image;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_TRUE(CsrFile::validate(flipped).has_value())
          << "flip at byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(CsrFileFuzz, OversizedHeaderCountsAreRejectedBeforeAllocation) {
  // A corrupt header claiming 2^31 vertices/edges must fail the header
  // check itself — open() never trusts it enough to size a buffer.
  std::string image = CsrFile::encode(Graph::from_edges(2, {{0, 1}}));
  std::string huge_n = image;
  const std::uint64_t big = std::uint64_t{1} << 31;
  std::memcpy(huge_n.data() + 16, &big, 8);
  reseal(huge_n);
  const auto err_n = CsrFile::validate(huge_n);
  ASSERT_TRUE(err_n.has_value());
  EXPECT_NE(err_n->find("exceeds the 32-bit id space"), std::string::npos);

  std::string huge_m = image;
  std::memcpy(huge_m.data() + 24, &big, 8);
  reseal(huge_m);
  const auto err_m = CsrFile::validate(huge_m);
  ASSERT_TRUE(err_m.has_value());
  EXPECT_NE(err_m->find("exceeds the 32-bit id space"), std::string::npos);

  // Large-but-legal counts with a short image: size mismatch, no read.
  std::string short_img = image;
  const std::uint64_t large = (std::uint64_t{1} << 31) - 2;
  std::memcpy(short_img.data() + 16, &large, 8);
  reseal(short_img);
  const auto err_s = CsrFile::validate(short_img);
  ASSERT_TRUE(err_s.has_value());
  EXPECT_NE(err_s->find("size mismatch"), std::string::npos);
}

TEST(CsrFileFuzz, NonCanonicalPayloadsBehindValidChecksumsAreRejected) {
  // Corruptions that keep the size right and get a fresh, *valid*
  // checksum — only the structural validator can catch these.
  const Graph g = testing::GraphCase{Family::Cycle, 6, 0}.make();
  const std::string image = CsrFile::encode(g);
  const std::size_t off0 = kCsrHeaderBytes;                        // offsets base
  const std::size_t adj0 = off0 + (g.num_vertices() + 1) * 8;      // adj base

  const auto expect_rejected = [&](std::string img, const std::string& what) {
    reseal(img);
    const auto err = CsrFile::validate(img);
    EXPECT_TRUE(err.has_value()) << what << " accepted";
  };

  {
    std::string img = image;  // self loop: vertex 0's first neighbor := 0
    const std::uint32_t zero = 0;
    std::memcpy(img.data() + adj0, &zero, 4);
    expect_rejected(img, "self loop");
  }
  {
    std::string img = image;  // duplicate: copy neighbor[1] over neighbor[0]
    char dup[4];
    std::memcpy(dup, img.data() + adj0 + 4, 4);
    std::memcpy(img.data() + adj0, dup, 4);
    expect_rejected(img, "duplicate neighbor");
  }
  {
    std::string img = image;  // descending order: swap vertex 0's two arcs
    char a[4], b[4];
    std::memcpy(a, img.data() + adj0, 4);
    std::memcpy(b, img.data() + adj0 + 4, 4);
    std::memcpy(img.data() + adj0, b, 4);
    std::memcpy(img.data() + adj0 + 4, a, 4);
    expect_rejected(img, "descending adjacency");
  }
  {
    std::string img = image;  // asymmetry: retarget one arc to vertex 3
    const std::uint32_t three = 3;
    std::memcpy(img.data() + adj0, &three, 4);
    expect_rejected(img, "asymmetric arc");
  }
  {
    std::string img = image;  // out-of-range neighbor
    const std::uint32_t big = g.num_vertices();
    std::memcpy(img.data() + adj0, &big, 4);
    expect_rejected(img, "out-of-range neighbor");
  }
  {
    std::string img = image;  // offsets[0] != 0
    const std::uint64_t one = 1;
    std::memcpy(img.data() + off0, &one, 8);
    expect_rejected(img, "nonzero offsets[0]");
  }
  {
    std::string img = image;  // decreasing offsets
    const std::uint64_t zero = 0;
    std::memcpy(img.data() + off0 + 2 * 8, &zero, 8);
    expect_rejected(img, "decreasing offsets");
  }
  {
    std::string img = image;  // offsets[n] overrun
    const std::uint64_t big = 2 * g.num_edges() + 8;
    std::memcpy(img.data() + off0 + g.num_vertices() * 8, &big, 8);
    expect_rejected(img, "offsets overrun");
  }
}

}  // namespace
}  // namespace fne
