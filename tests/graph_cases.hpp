// Shared parameterized graph-family fixtures for the property suites.
#pragma once

#include <ostream>
#include <string>

#include "core/graph.hpp"
#include "topology/butterfly.hpp"
#include "topology/classic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/multibutterfly.hpp"
#include "topology/random_graphs.hpp"
#include "topology/shuffle_exchange.hpp"

namespace fne::testing {

enum class Family {
  Path,
  Cycle,
  Complete,
  Star,
  Barbell,
  Mesh2D,
  Mesh3D,
  Torus2D,
  Hypercube,
  Butterfly,
  DeBruijn,
  ShuffleExchange,
  RandomRegular4,
  ErdosRenyi,
  Multibutterfly,
};

struct GraphCase {
  Family family;
  vid size_param;      // side / dimension / n, depending on family
  std::uint64_t seed;

  [[nodiscard]] Graph make() const {
    switch (family) {
      case Family::Path:
        return path_graph(size_param);
      case Family::Cycle:
        return cycle_graph(size_param);
      case Family::Complete:
        return complete_graph(size_param);
      case Family::Star:
        return star_graph(size_param);
      case Family::Barbell:
        return barbell_graph(size_param);
      case Family::Mesh2D:
        return Mesh::cube(size_param, 2).graph();
      case Family::Mesh3D:
        return Mesh::cube(size_param, 3).graph();
      case Family::Torus2D:
        return Mesh::cube(size_param, 2, /*wrap=*/true).graph();
      case Family::Hypercube:
        return hypercube(size_param);
      case Family::Butterfly:
        return butterfly(size_param).graph;
      case Family::DeBruijn:
        return debruijn(size_param);
      case Family::ShuffleExchange:
        return shuffle_exchange(size_param);
      case Family::RandomRegular4:
        return random_regular(size_param, 4, seed);
      case Family::ErdosRenyi:
        return erdos_renyi(size_param, 0.35, seed);
      case Family::Multibutterfly:
        return multibutterfly(size_param, 2, seed).graph;
    }
    return {};
  }

  [[nodiscard]] std::string label() const {
    static const char* names[] = {"path",      "cycle",     "complete", "star",
                                  "barbell",   "mesh2d",    "mesh3d",   "torus2d",
                                  "hypercube", "butterfly", "debruijn", "shuffleexch",
                                  "randreg4",  "erdosrenyi", "multibutterfly"};
    return std::string(names[static_cast<int>(family)]) + "_" + std::to_string(size_param) +
           "_s" + std::to_string(seed);
  }

  friend std::ostream& operator<<(std::ostream& os, const GraphCase& c) {
    return os << c.label();
  }
};

/// gtest name generator (labels must be alphanumeric + underscore).
struct GraphCaseName {
  template <typename ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return info.param.label();
  }
};

}  // namespace fne::testing
