#include "analysis/embedding.hpp"

#include <gtest/gtest.h>

#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"

namespace fne {
namespace {

TEST(Embedding, IdentityWhenNoFaults) {
  const Mesh m({5, 5});
  const SelfEmbedding e = embed_into_survivors(m.graph(), VertexSet::full(25));
  for (vid v = 0; v < 25; ++v) EXPECT_EQ(e.host_of[v], v);
  EXPECT_EQ(e.quality.load, 1U);
  EXPECT_EQ(e.quality.congestion, 1U);  // each guest edge maps to itself
  EXPECT_EQ(e.quality.dilation, 1U);
}

TEST(Embedding, AliveGuestsMapToThemselves) {
  const Mesh m({6, 6});
  const VertexSet alive = random_node_faults(m.graph(), 0.1, 5);
  if (!is_connected(m.graph(), alive)) GTEST_SKIP();
  const SelfEmbedding e = embed_into_survivors(m.graph(), alive);
  alive.for_each([&](vid v) { EXPECT_EQ(e.host_of[v], v); });
}

TEST(Embedding, DeadGuestsMapToAliveHosts) {
  const Graph g = path_graph(7);
  VertexSet alive = VertexSet::full(7);
  alive.reset(0);
  alive.reset(1);
  const SelfEmbedding e = embed_into_survivors(g, alive);
  EXPECT_EQ(e.host_of[0], 2U);  // nearest alive
  EXPECT_EQ(e.host_of[1], 2U);
  EXPECT_EQ(e.quality.load, 3U);  // vertex 2 hosts {0, 1, 2}
}

TEST(Embedding, SingleFaultInMeshHasLocalEffect) {
  const Mesh m({7, 7});
  VertexSet alive = VertexSet::full(49);
  alive.reset(m.id_of({3, 3}));  // center fault
  const SelfEmbedding e = embed_into_survivors(m.graph(), alive);
  EXPECT_EQ(e.quality.load, 2U);      // one host absorbs the dead center
  // Detour around one hole: a guest edge from the hole to a neighbor two
  // steps from the image costs 2 + 2 (parity detour) = 4.
  EXPECT_LE(e.quality.dilation, 4U);
  EXPECT_LE(e.quality.congestion, 6U);
}

TEST(Embedding, QualityDegradesGracefullyWithFaults) {
  const Mesh m({10, 10});
  const Graph& g = m.graph();
  const VertexSet alive = random_node_faults(g, 0.05, 9);
  const PruneResult pruned = prune2(g, alive, 0.2, 0.125);
  if (pruned.survivors.count() < 50) GTEST_SKIP();
  const SelfEmbedding e = embed_into_survivors(g, pruned.survivors);
  // Leighton–Maggs–Rao slowdown proxy should stay small constants at
  // this fault rate (paper §1.2's constant-slowdown regime).
  EXPECT_LE(e.quality.load, 6U);
  EXPECT_LE(e.quality.dilation, 8U);
  EXPECT_LE(e.quality.slowdown(), 40U);
}

TEST(Embedding, DisconnectedHostRejected) {
  const Graph g = path_graph(5);
  VertexSet alive = VertexSet::full(5);
  alive.reset(2);
  EXPECT_THROW((void)embed_into_survivors(g, alive), PreconditionError);
}

TEST(Embedding, AverageDilationAtMostMax) {
  const Mesh m({8, 8});
  const VertexSet alive = random_node_faults(m.graph(), 0.08, 21);
  if (!is_connected(m.graph(), alive)) GTEST_SKIP();
  const SelfEmbedding e = embed_into_survivors(m.graph(), alive);
  EXPECT_LE(e.quality.average_dilation, static_cast<double>(e.quality.dilation) + 1e-12);
  EXPECT_GT(e.quality.average_dilation, 0.0);
}

}  // namespace
}  // namespace fne
