#include "core/graph.hpp"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "core/io.hpp"

namespace fne {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, tail 2-3.
  return Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 4U);
  EXPECT_EQ(g.num_edges(), 4U);
  EXPECT_EQ(g.degree(2), 3U);
  EXPECT_EQ(g.degree(3), 1U);
  EXPECT_EQ(g.max_degree(), 3U);
  EXPECT_EQ(g.min_degree(), 1U);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_FALSE(g.is_regular());
}

TEST(Graph, NeighborsSortedAscending) {
  const Graph g = triangle_plus_tail();
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
  const auto nb2 = g.neighbors(2);
  EXPECT_EQ(std::vector<vid>(nb2.begin(), nb2.end()), (std::vector<vid>{0, 1, 3}));
}

TEST(Graph, DuplicateEdgesMerged) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW((void)Graph::from_edges(2, {{1, 1}}), PreconditionError);
}

TEST(Graph, EndpointOutOfRangeRejected) {
  EXPECT_THROW((void)Graph::from_edges(2, {{0, 2}}), PreconditionError);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Graph, EdgesAreNormalized) {
  const Graph g = Graph::from_edges(3, {{2, 0}, {1, 0}});
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(Graph, IncidentEdgeIdsMatchEdgeList) {
  const Graph g = triangle_plus_tail();
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    ASSERT_EQ(nbrs.size(), eids.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = g.edge(eids[i]);
      const bool matches = (e.u == v && e.v == nbrs[i]) || (e.v == v && e.u == nbrs[i]);
      EXPECT_TRUE(matches) << "vertex " << v << " arc " << i;
    }
  }
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.max_degree(), 0U);
  EXPECT_TRUE(g.is_regular());
}

TEST(Graph, SummaryMentionsCounts) {
  const std::string s = triangle_plus_tail().summary();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("m=4"), std::string::npos);
}

TEST(GraphIo, RoundTrip) {
  const Graph g = triangle_plus_tail();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(h.has_edge(e.u, e.v));
}

TEST(GraphIo, TruncatedInputRejectedInStrictMode) {
  // The tolerant default (§14) treats the header edge count as a hint;
  // the strict round-trip contract still rejects a short stream.
  EdgeListOptions strict;
  strict.strict = true;
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW((void)read_edge_list(ss, strict), PreconditionError);

  std::stringstream tolerant("3 2\n0 1\n");
  EXPECT_EQ(read_edge_list(tolerant).num_edges(), 1u);
}

}  // namespace
}  // namespace fne
