#include "core/traversal.hpp"

#include <gtest/gtest.h>

#include "core/union_find.hpp"
#include "topology/classic.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, VertexSet::full(5), 0);
  for (vid v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, MaskBlocksTraversal) {
  const Graph g = path_graph(5);
  VertexSet alive = VertexSet::full(5);
  alive.reset(2);
  const auto dist = bfs_distances(g, alive, 0);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[3], kUnreached);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(Bfs, EdgeMaskBlocksTraversal) {
  const Graph g = path_graph(4);
  EdgeMask edges(g.num_edges(), true);
  // Kill the middle edge 1-2.
  for (eid e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).u == 1 && g.edge(e).v == 2) edges.reset(e);
  }
  const auto dist = bfs_distances(g, VertexSet::full(4), 0, &edges);
  EXPECT_EQ(dist[1], 1U);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(Bfs, DeadSourceRejected) {
  const Graph g = path_graph(3);
  VertexSet alive = VertexSet::full(3);
  alive.reset(0);
  EXPECT_THROW((void)bfs_distances(g, alive, 0), PreconditionError);
}

TEST(Components, SplitPathHasTwoComponents) {
  const Graph g = path_graph(6);
  VertexSet alive = VertexSet::full(6);
  alive.reset(3);
  const Components comps = connected_components(g, alive);
  EXPECT_EQ(comps.count(), 2U);
  EXPECT_EQ(comps.largest_size(), 3U);
  EXPECT_EQ(comps.label[3], kUnreached);
}

TEST(Components, LargestComponentMask) {
  const Graph g = path_graph(7);
  VertexSet alive = VertexSet::full(7);
  alive.reset(2);  // split into {0,1} and {3,4,5,6}
  const VertexSet big = largest_component(g, alive);
  EXPECT_EQ(big.count(), 4U);
  EXPECT_TRUE(big.test(3));
  EXPECT_FALSE(big.test(0));
}

TEST(Components, GammaFraction) {
  const Graph g = path_graph(10);
  VertexSet alive = VertexSet::full(10);
  alive.reset(5);
  EXPECT_DOUBLE_EQ(gamma_largest_fraction(g, alive), 0.5);
}

TEST(Components, IsConnected) {
  const Graph g = cycle_graph(6);
  EXPECT_TRUE(is_connected(g, VertexSet::full(6)));
  VertexSet alive = VertexSet::full(6);
  alive.reset(0);
  EXPECT_TRUE(is_connected(g, alive));  // cycle minus one vertex is a path
  alive.reset(3);
  EXPECT_FALSE(is_connected(g, alive));
  EXPECT_FALSE(is_connected(g, VertexSet(6)));  // empty
}

TEST(Components, ConnectedSubset) {
  const Graph g = path_graph(6);
  const VertexSet all = VertexSet::full(6);
  EXPECT_TRUE(is_connected_subset(g, all, VertexSet::of(6, {1, 2, 3})));
  EXPECT_FALSE(is_connected_subset(g, all, VertexSet::of(6, {0, 2})));
  EXPECT_FALSE(is_connected_subset(g, all, VertexSet(6)));
}

TEST(Boundary, NodeBoundaryOfPathInterval) {
  const Graph g = path_graph(6);
  const VertexSet all = VertexSet::full(6);
  const VertexSet s = VertexSet::of(6, {2, 3});
  const VertexSet boundary = node_boundary(g, all, s);
  EXPECT_EQ(boundary.to_vector(), (std::vector<vid>{1, 4}));
  EXPECT_EQ(node_boundary_size(g, all, s), 2U);
}

TEST(Boundary, RespectsAliveMask) {
  const Graph g = path_graph(6);
  VertexSet alive = VertexSet::full(6);
  alive.reset(1);
  const VertexSet s = VertexSet::of(6, {2, 3});
  EXPECT_EQ(node_boundary(g, alive, s).to_vector(), (std::vector<vid>{4}));
}

TEST(Boundary, EdgeBoundaryCountsAllCrossings) {
  const Graph g = cycle_graph(6);
  const VertexSet all = VertexSet::full(6);
  EXPECT_EQ(edge_boundary_size(g, all, VertexSet::of(6, {0, 1, 2})), 2U);
  EXPECT_EQ(edge_boundary_size(g, all, VertexSet::of(6, {0, 2, 4})), 6U);
}

TEST(Boundary, WordKernelsMatchNaiveCountsOnRandomMasks) {
  // The word-level masked kernels (alive & ~S per 64-bit word, smaller-side
  // selection) must agree with a direct per-edge count on arbitrary masks.
  Rng rng(99);
  const Graph g = random_regular(130, 4, 5);
  for (int trial = 0; trial < 8; ++trial) {
    VertexSet alive(g.num_vertices());
    VertexSet s(g.num_vertices());
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (rng.bernoulli(0.7)) alive.set(v);
    }
    alive.for_each([&](vid v) {
      if (rng.bernoulli(trial % 2 == 0 ? 0.2 : 0.8)) s.set(v);  // small and large sides
    });
    std::size_t naive_edges = 0;
    s.for_each([&](vid u) {
      for (vid w : g.neighbors(u)) {
        if (alive.test(w) && !s.test(w)) ++naive_edges;
      }
    });
    EXPECT_EQ(edge_boundary_size(g, alive, s), naive_edges) << "trial " << trial;
    EXPECT_EQ(node_boundary_size(g, alive, s), node_boundary(g, alive, s).count())
        << "trial " << trial;
  }
}

TEST(Compact, IntervalOfCycleIsCompact) {
  const Graph g = cycle_graph(8);
  const VertexSet all = VertexSet::full(8);
  EXPECT_TRUE(is_compact(g, all, VertexSet::of(8, {1, 2, 3})));
  EXPECT_FALSE(is_compact(g, all, VertexSet::of(8, {1, 3})));          // S disconnected
  EXPECT_FALSE(is_compact(g, all, VertexSet::of(8, {0, 1, 4, 5})));    // complement split
  EXPECT_FALSE(is_compact(g, all, VertexSet(8)));                      // empty
  EXPECT_FALSE(is_compact(g, all, VertexSet::full(8)));                // no complement
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(6);
  EXPECT_EQ(uf.num_components(), 6U);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.component_size(2), 3U);
  EXPECT_EQ(uf.num_components(), 4U);
}

TEST(EdgeMask, CountAndTail) {
  EdgeMask m(70, true);
  EXPECT_EQ(m.count(), 70U);
  m.reset(69);
  EXPECT_EQ(m.count(), 69U);
  EXPECT_FALSE(m.test(69));
  EdgeMask empty(70, false);
  EXPECT_EQ(empty.count(), 0U);
  empty.set(3);
  EXPECT_TRUE(empty.test(3));
}

}  // namespace
}  // namespace fne
