// Spectral acceleration modes (DESIGN.md §10): Chebyshev-filtered and
// shift-invert solves must agree with the plain solver at matched
// tolerance (eigenvalues come from Rayleigh quotients against the
// original operator in every mode), kAuto must resolve purely from
// (dimension, bound availability), the Gershgorin bound must dominate
// the spectrum, and every mode must stay bit-identical for any OMP
// thread count on both sides of kSpectralParallelDim.  The Slow suite
// adds the clustered-spectrum regression the filter exists for: the
// side-96 mesh, where the plain blocked solver cannot converge within
// a 250-vector basis and the filtered solver must.
#include <gtest/gtest.h>

#include <cmath>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {
namespace {

[[nodiscard]] LinearOperator as_operator(const SubCsrLaplacian& lap) {
  return [&lap](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); };
}

[[nodiscard]] std::vector<std::vector<double>> ones_deflation(std::size_t dim) {
  return {std::vector<double>(dim, 1.0)};
}

[[nodiscard]] std::vector<double> dense_laplacian(const SubCsrLaplacian& lap) {
  const std::size_t n = lap.dim();
  std::vector<double> a(n * n, 0.0);
  std::vector<double> x(n, 0.0);
  std::vector<double> y(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    x.assign(n, 0.0);
    x[j] = 1.0;
    lap.apply(x, y);
    for (std::size_t i = 0; i < n; ++i) a[i * n + j] = y[i];
  }
  return a;
}

[[nodiscard]] SpectralAccel accel_for(SpectralMode mode, const SubCsr& sub) {
  SpectralAccel accel;
  accel.mode = mode;
  accel.op_upper_bound = gershgorin_upper_bound(sub);
  return accel;
}

/// Path-graph eigenvalue 2 − 2cos(πk/side); mesh eigenvalues are
/// pairwise sums of these.
[[nodiscard]] double path_mu(int k, int side) {
  return 2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) / static_cast<double>(side));
}

TEST(SpectralModes, ModeStringsRoundTripAndReject) {
  for (const SpectralMode mode : {SpectralMode::kPlain, SpectralMode::kFiltered,
                                  SpectralMode::kShiftInvert, SpectralMode::kAuto}) {
    EXPECT_EQ(spectral_mode_from_string(spectral_mode_name(mode)), mode);
  }
  EXPECT_THROW((void)spectral_mode_from_string("chebyshev"), PreconditionError);
  EXPECT_THROW((void)spectral_mode_from_string(""), PreconditionError);
}

TEST(SpectralModes, AutoResolvesBySizeAndBound) {
  SpectralAccel accel;
  accel.mode = SpectralMode::kAuto;
  accel.op_upper_bound = 8.0;
  EXPECT_EQ(resolve_spectral_mode(accel, kFilteredAutoDim - 1), SpectralMode::kPlain);
  EXPECT_EQ(resolve_spectral_mode(accel, kFilteredAutoDim), SpectralMode::kFiltered);
  accel.op_upper_bound = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(resolve_spectral_mode(accel, kFilteredAutoDim), SpectralMode::kPlain)
      << "auto must not pick filtered without a usable upper bound";
  // Explicit modes resolve to themselves regardless of size.
  accel.mode = SpectralMode::kShiftInvert;
  EXPECT_EQ(resolve_spectral_mode(accel, 10), SpectralMode::kShiftInvert);
  accel.mode = SpectralMode::kFiltered;
  EXPECT_EQ(resolve_spectral_mode(accel, 10), SpectralMode::kFiltered);
}

TEST(SpectralModes, GershgorinBoundDominatesTheSpectrum) {
  for (const auto& g :
       {Mesh::cube(6, 2).graph(), random_regular(80, 4, 3)}) {
    SubCsr sub;
    sub.build(g, VertexSet::full(g.num_vertices()));
    const SubCsrLaplacian lap(sub);
    std::vector<double> values;
    jacobi_eigen(dense_laplacian(lap), lap.dim(), values, nullptr);
    const double bound = gershgorin_upper_bound(sub);
    EXPECT_LE(values.back(), bound + 1e-12);
    EXPECT_GT(bound, 0.0);
  }
}

TEST(SpectralModes, FilteredMatchesPlainOnMesh) {
  const Mesh mesh = Mesh::cube(20, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);
  const double mu = path_mu(1, 20);

  // Rank-1: λ₂ from the filtered solve matches the closed form and the
  // plain solve at matched tolerance.
  LanczosOptions opts;
  opts.num_eigenpairs = 1;
  opts.tolerance = 1e-8;
  opts.max_iterations = 400;
  const LanczosResult plain =
      lanczos_smallest(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  opts.accel = accel_for(SpectralMode::kFiltered, sub);
  const LanczosResult filtered =
      lanczos_smallest(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(filtered.converged);
  EXPECT_NEAR(filtered.values[0], mu, 1e-6);
  EXPECT_NEAR(filtered.values[0], plain.values[0], 1e-6);

  // Blocked k = 4: values match the plain blocked solve pairwise.
  BlockLanczosOptions bopts;
  bopts.num_eigenpairs = 4;
  bopts.tolerance = 1e-8;
  bopts.max_basis = 500;
  const LanczosResult bplain =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), bopts);
  bopts.accel = accel_for(SpectralMode::kFiltered, sub);
  const LanczosResult bfilt =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), bopts);
  ASSERT_TRUE(bplain.converged);
  ASSERT_TRUE(bfilt.converged);
  ASSERT_EQ(bplain.values.size(), bfilt.values.size());
  for (std::size_t e = 0; e < bplain.values.size(); ++e) {
    EXPECT_NEAR(bfilt.values[e], bplain.values[e], 1e-6) << "pair " << e;
  }
}

TEST(SpectralModes, ShiftInvertMatchesPlainOnMesh) {
  const Mesh mesh = Mesh::cube(20, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);

  LanczosOptions opts;
  opts.num_eigenpairs = 1;
  opts.tolerance = 1e-8;
  opts.max_iterations = 400;
  const LanczosResult plain =
      lanczos_smallest(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  opts.accel.mode = SpectralMode::kShiftInvert;  // σ = 0: kernel is deflated
  const LanczosResult si =
      lanczos_smallest(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(si.converged);
  EXPECT_NEAR(si.values[0], plain.values[0], 1e-6);
  EXPECT_LT(si.iterations, plain.iterations)
      << "shift-invert exists to converge in far fewer (outer) iterations";

  BlockLanczosOptions bopts;
  bopts.num_eigenpairs = 4;
  bopts.tolerance = 1e-8;
  bopts.max_basis = 500;
  const LanczosResult bplain =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), bopts);
  bopts.accel.mode = SpectralMode::kShiftInvert;
  const LanczosResult bsi =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), bopts);
  ASSERT_TRUE(bplain.converged);
  ASSERT_TRUE(bsi.converged);
  ASSERT_EQ(bplain.values.size(), bsi.values.size());
  for (std::size_t e = 0; e < bplain.values.size(); ++e) {
    EXPECT_NEAR(bsi.values[e], bplain.values[e], 1e-6) << "pair " << e;
  }
}

TEST(SpectralModes, FilteredMatchesPlainOnRandomRegular) {
  const Graph g = random_regular(600, 4, 17);
  SubCsr sub;
  sub.build(g, VertexSet::full(g.num_vertices()));
  const SubCsrLaplacian lap(sub);

  BlockLanczosOptions opts;
  opts.num_eigenpairs = 4;
  opts.tolerance = 1e-8;
  opts.max_basis = 400;
  const LanczosResult plain =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  opts.accel = accel_for(SpectralMode::kFiltered, sub);
  const LanczosResult filtered =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(filtered.converged);
  ASSERT_EQ(plain.values.size(), filtered.values.size());
  for (std::size_t e = 0; e < plain.values.size(); ++e) {
    EXPECT_NEAR(filtered.values[e], plain.values[e], 1e-6) << "pair " << e;
  }
}

TEST(SpectralModes, FilteredParityOnCullSequence) {
  // The engine pairs accelerated solves with an incrementally shrunk
  // SubCsr; filtered results over the shrunk operator must match plain
  // results for the same mask at every step of a cull sequence.
  const Mesh mesh = Mesh::cube(14, 2);
  const Graph& g = mesh.graph();
  VertexSet alive = random_node_faults(g, 0.15, 5);
  alive = largest_component(g, alive);

  SubCsr incremental;
  incremental.build(g, alive);
  Rng rng(123);
  for (int round = 0; round < 3; ++round) {
    VertexSet culled(g.num_vertices());
    int budget = 6;
    alive.for_each([&](vid v) {
      if (budget > 0 && rng.uniform(4) == 0) {
        culled.set(v);
        --budget;
      }
    });
    if (culled.count() == 0) continue;
    culled.for_each([&](vid v) { alive.reset(v); });
    incremental.remove(culled);
    const VertexSet comp = largest_component(g, alive);
    if (comp.count() != alive.count()) break;  // solver needs connectivity

    const SubCsrLaplacian lap(incremental);
    BlockLanczosOptions opts;
    opts.num_eigenpairs = 2;
    opts.tolerance = 1e-7;
    opts.max_basis = 300;
    const LanczosResult plain =
        lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
    opts.accel = accel_for(SpectralMode::kFiltered, incremental);
    const LanczosResult filtered =
        lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
    SCOPED_TRACE(round);
    ASSERT_TRUE(plain.converged);
    ASSERT_TRUE(filtered.converged);
    for (std::size_t e = 0; e < plain.values.size(); ++e) {
      EXPECT_NEAR(filtered.values[e], plain.values[e], 1e-5) << "pair " << e;
    }
  }
}

TEST(SpectralModesSlow, BitIdenticalAcrossThreadsEveryMode) {
  // The PR-6 acceptance bar: every mode — including the CG inner solve
  // and the Chebyshev recurrence — is a pure function of its inputs for
  // ANY OMP thread count, on both sides of kSpectralParallelDim.
  // Convergence is NOT required for determinism, so iteration caps keep
  // the large plain solves cheap.
  for (const int side : {64, 96}) {
    const Mesh mesh = Mesh::cube(side, 2);
    SubCsr sub;
    sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
    const SubCsrLaplacian lap(sub);
    for (const SpectralMode mode :
         {SpectralMode::kPlain, SpectralMode::kFiltered, SpectralMode::kShiftInvert}) {
      LanczosOptions opts;
      opts.num_eigenpairs = 2;
      opts.tolerance = 1e-8;
      opts.max_iterations = 40;
      opts.seed = 11;
      opts.accel = accel_for(mode, sub);
      const auto solve = [&] {
        return lanczos_smallest(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
      };
      const LanczosResult first = solve();
      SCOPED_TRACE(spectral_mode_name(mode));
      SCOPED_TRACE(side);
#ifdef _OPENMP
      const int saved = omp_get_max_threads();
      for (const int threads : {1, 2, 4}) {
        omp_set_num_threads(threads);
        const LanczosResult again = solve();
        SCOPED_TRACE(threads);
        ASSERT_EQ(first.iterations, again.iterations);
        ASSERT_EQ(first.values, again.values);
        ASSERT_EQ(first.vectors, again.vectors);
      }
      omp_set_num_threads(saved);
#else
      const LanczosResult again = solve();
      ASSERT_EQ(first.values, again.values);
      ASSERT_EQ(first.vectors, again.vectors);
#endif
    }
  }
}

TEST(SpectralModesSlow, ClusteredSpectrumRegressionSide96) {
  // The case the filter exists for: the side-96 mesh's bottom cluster
  // (μ₁, μ₁, 2μ₁, μ₂ ≈ 0.001–0.004) sits under a spectrum reaching 8,
  // and a plain blocked solve cannot separate it within a 250-vector
  // basis at tol 1e-5.  The Chebyshev filter must converge in the same
  // budget AND reproduce the closed-form eigenvalues — fast but wrong
  // is caught here.
  const Mesh mesh = Mesh::cube(96, 2);
  SubCsr sub;
  sub.build(mesh.graph(), VertexSet::full(mesh.num_vertices()));
  const SubCsrLaplacian lap(sub);

  BlockLanczosOptions opts;
  opts.num_eigenpairs = 4;
  opts.tolerance = 1e-5;
  opts.max_basis = 250;
  const LanczosResult plain =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  EXPECT_FALSE(plain.converged)
      << "plain converged inside the cap — the regression no longer bites; tighten it";

  opts.accel = accel_for(SpectralMode::kFiltered, sub);
  const LanczosResult filtered =
      lanczos_smallest_block(as_operator(lap), lap.dim(), ones_deflation(lap.dim()), opts);
  ASSERT_TRUE(filtered.converged);
  ASSERT_EQ(filtered.values.size(), 4u);
  const double mu1 = path_mu(1, 96);
  const double mu2 = path_mu(2, 96);
  EXPECT_NEAR(filtered.values[0], mu1, 2e-4);
  EXPECT_NEAR(filtered.values[1], mu1, 2e-4) << "λ₂ is degenerate on the square mesh";
  EXPECT_NEAR(filtered.values[2], 2.0 * mu1, 2e-4);
  EXPECT_NEAR(filtered.values[3], mu2, 2e-4);
}

}  // namespace
}  // namespace fne
