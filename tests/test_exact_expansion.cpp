#include "expansion/exact.hpp"

#include <gtest/gtest.h>

#include "core/subgraph.hpp"
#include "core/traversal.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

/// Naive reference: enumerate subsets explicitly and recompute boundaries
/// from scratch (differential-testing oracle for the Gray-code scan).
CutWitness naive_expansion(const Graph& g, ExpansionKind kind) {
  const vid n = g.num_vertices();
  const VertexSet all = VertexSet::full(n);
  CutWitness best;
  for (std::uint32_t mask = 1; mask < (1U << n) - 1U; ++mask) {
    VertexSet s(n);
    for (vid v = 0; v < n; ++v) {
      if ((mask >> v) & 1U) s.set(v);
    }
    const vid size = s.count();
    double ratio;
    std::size_t boundary;
    if (kind == ExpansionKind::Node) {
      if (2 * size > n) continue;
      boundary = node_boundary_size(g, all, s);
      ratio = static_cast<double>(boundary) / size;
    } else {
      boundary = edge_boundary_size(g, all, s);
      ratio = static_cast<double>(boundary) / std::min(size, n - size);
    }
    if (ratio < best.expansion) {
      best.expansion = ratio;
      best.boundary = boundary;
      best.side = s;
    }
  }
  return best;
}

TEST(ExactExpansion, CycleNodeExpansion) {
  // Best set of C_n is an arc of floor(n/2) vertices with 2 boundary nodes.
  for (vid n : {6U, 8U, 10U}) {
    const CutWitness w = exact_expansion(cycle_graph(n), ExpansionKind::Node);
    EXPECT_DOUBLE_EQ(w.expansion, 2.0 / (n / 2)) << "n=" << n;
  }
}

TEST(ExactExpansion, CycleEdgeExpansion) {
  for (vid n : {6U, 8U, 10U}) {
    const CutWitness w = exact_expansion(cycle_graph(n), ExpansionKind::Edge);
    EXPECT_DOUBLE_EQ(w.expansion, 2.0 / (n / 2)) << "n=" << n;
  }
}

TEST(ExactExpansion, PathEdgeExpansion) {
  const CutWitness w = exact_expansion(path_graph(9), ExpansionKind::Edge);
  EXPECT_DOUBLE_EQ(w.expansion, 1.0 / 4.0);
}

TEST(ExactExpansion, CompleteGraph) {
  // K_n: Γ(U) = V \ U, so α = (n - floor(n/2)) / floor(n/2).
  const CutWitness node = exact_expansion(complete_graph(7), ExpansionKind::Node);
  EXPECT_DOUBLE_EQ(node.expansion, 4.0 / 3.0);
  // Edge: cut = |U|(n-|U|), denominator min(...) → minimized at n - floor(n/2).
  const CutWitness edge = exact_expansion(complete_graph(7), ExpansionKind::Edge);
  EXPECT_DOUBLE_EQ(edge.expansion, 4.0);
}

TEST(ExactExpansion, HypercubeEdgeExpansionIsOne) {
  // The dimension cut of Q_d is optimal: αe(Q_d) = 1.
  for (vid d : {3U, 4U}) {
    const CutWitness w = exact_expansion(hypercube(d), ExpansionKind::Edge);
    EXPECT_DOUBLE_EQ(w.expansion, 1.0) << "d=" << d;
  }
}

TEST(ExactExpansion, DisconnectedGraphIsZero) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_DOUBLE_EQ(exact_expansion(g, ExpansionKind::Node).expansion, 0.0);
  EXPECT_DOUBLE_EQ(exact_expansion(g, ExpansionKind::Edge).expansion, 0.0);
}

TEST(ExactExpansion, WitnessAchievesReportedValue) {
  const Graph g = Mesh({4, 4}).graph();
  const VertexSet all = VertexSet::full(16);
  for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
    const CutWitness w = exact_expansion(g, kind);
    const vid size = w.side.count();
    ASSERT_GT(size, 0U);
    EXPECT_LE(2 * size, 16U);
    const std::size_t boundary = kind == ExpansionKind::Node
                                     ? node_boundary_size(g, all, w.side)
                                     : edge_boundary_size(g, all, w.side);
    EXPECT_EQ(boundary, w.boundary);
    EXPECT_DOUBLE_EQ(static_cast<double>(boundary) / size, w.expansion);
  }
}

TEST(ExactExpansion, MatchesNaiveOnRandomGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const vid n = 6 + static_cast<vid>(rng.uniform(7));  // 6..12
    const Graph g = erdos_renyi(n, 0.35, rng.next());
    for (ExpansionKind kind : {ExpansionKind::Node, ExpansionKind::Edge}) {
      const CutWitness fast = exact_expansion(g, kind);
      const CutWitness slow = naive_expansion(g, kind);
      EXPECT_NEAR(fast.expansion, slow.expansion, 1e-12)
          << "trial=" << trial << " n=" << n << " kind=" << static_cast<int>(kind);
    }
  }
}

TEST(ExactExpansion, MaskedVersionMatchesInducedCopy) {
  const Graph g = Mesh({4, 4}).graph();
  const VertexSet keep = VertexSet::of(16, {0, 1, 2, 4, 5, 6, 8, 9, 10});
  const CutWitness masked = exact_expansion(g, keep, ExpansionKind::Edge);
  const InducedSubgraph sub = induced_subgraph(g, keep);
  const CutWitness copied = exact_expansion(sub.graph, ExpansionKind::Edge);
  EXPECT_DOUBLE_EQ(masked.expansion, copied.expansion);
  EXPECT_TRUE(masked.side.is_subset_of(keep));
}

TEST(ExactExpansion, ParallelStrandsMatchSequentialThreshold) {
  // n = 18 crosses the OpenMP strand-split threshold; compare with n = 17
  // (sequential) on the same family to catch strand-boundary bugs.
  const Graph g18 = cycle_graph(18);
  EXPECT_DOUBLE_EQ(exact_expansion(g18, ExpansionKind::Edge).expansion, 2.0 / 9.0);
  const Graph g17 = cycle_graph(17);
  EXPECT_DOUBLE_EQ(exact_expansion(g17, ExpansionKind::Edge).expansion, 2.0 / 8.0);
}

TEST(ExactExpansion, SizeGuards) {
  EXPECT_THROW((void)exact_expansion(path_graph(1), ExpansionKind::Node), PreconditionError);
}

TEST(ExactExpansion, StarGraphNodeExpansion) {
  // Star S_n: any U of leaves (|U| <= n/2) has Γ(U) = {hub}, α = 1/|U|.
  const CutWitness w = exact_expansion(star_graph(9), ExpansionKind::Node);
  EXPECT_DOUBLE_EQ(w.expansion, 1.0 / 4.0);  // 4 leaves, boundary = hub
}

}  // namespace
}  // namespace fne
