// ScenarioRunner contracts (DESIGN.md §6): determinism (a runner is a
// pure function of its Scenario), churn-through-engine parity with the
// old simulate_churn path, and engine-telemetry sanity.
#include <gtest/gtest.h>

#include "api/runner.hpp"
#include "prune/prune.hpp"
#include "prune/prune2.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

[[nodiscard]] Scenario culling_scenario() {
  // Heavy enough faults that Prune2 actually culls, small enough to be fast.
  Scenario s;
  s.name = "test";
  s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.25"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.metrics.verify_trace = true;
  s.repetitions = 2;
  s.seed = 99;
  return s;
}

void expect_identical(const ScenarioRun& a, const ScenarioRun& b) {
  EXPECT_EQ(a.fault_seed, b.fault_seed);
  EXPECT_TRUE(a.alive == b.alive);
  EXPECT_TRUE(a.prune.survivors == b.prune.survivors);
  EXPECT_EQ(a.prune.iterations, b.prune.iterations);
  ASSERT_EQ(a.prune.culled.size(), b.prune.culled.size());
  for (std::size_t i = 0; i < a.prune.culled.size(); ++i) {
    EXPECT_TRUE(a.prune.culled[i].set == b.prune.culled[i].set);
    EXPECT_EQ(a.prune.culled[i].boundary, b.prune.culled[i].boundary);
  }
  EXPECT_EQ(a.fragmentation.largest, b.fragmentation.largest);
}

TEST(ScenarioRunner, SameScenarioAndSeedIsBitIdenticalTwice) {
  const Scenario s = culling_scenario();
  ScenarioRunner first(s);
  ScenarioRunner second(s);
  const std::vector<ScenarioRun> a = first.run_all();
  const std::vector<ScenarioRun> b = second.run_all();
  ASSERT_EQ(a.size(), b.size());
  bool any_culled = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    ASSERT_TRUE(a[i].trace.has_value());
    EXPECT_TRUE(a[i].trace->valid);
    any_culled = any_culled || a[i].prune.total_culled > 0;
  }
  EXPECT_TRUE(any_culled) << "workload too gentle to exercise the cull loop";
}

TEST(ScenarioRunner, FastModeIsDeterministicAndCertified) {
  Scenario s = culling_scenario();
  s.prune.fast = true;
  const std::vector<ScenarioRun> a = ScenarioRunner(s).run_all();
  const std::vector<ScenarioRun> b = ScenarioRunner(s).run_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
    ASSERT_TRUE(a[i].trace.has_value());
    EXPECT_TRUE(a[i].trace->valid) << "fast-mode trace must still replay";
  }
}

TEST(ScenarioRunner, DeterministicModeIsBitIdenticalToTheStatelessReference) {
  // The runner's default configuration must produce exactly what the old
  // hand-wired pipeline produced: same alive mask, same finder seed ->
  // same culled sets, same survivors (engine == reference contract,
  // DESIGN.md §5, now reachable through the scenario layer).
  const Scenario s = culling_scenario();
  ScenarioRunner runner(s);
  const ScenarioRun run = runner.run_once(0);

  Prune2Options popts;
  popts.finder.seed = run.finder_seed;
  const PruneResult reference = prune2_reference(runner.graph(), run.alive, runner.alpha(),
                                                 runner.epsilon(), popts);
  EXPECT_TRUE(run.prune.survivors == reference.survivors);
  EXPECT_EQ(run.prune.iterations, reference.iterations);
  ASSERT_EQ(run.prune.culled.size(), reference.culled.size());
  for (std::size_t i = 0; i < reference.culled.size(); ++i) {
    EXPECT_TRUE(run.prune.culled[i].set == reference.culled[i].set);
    EXPECT_EQ(run.prune.culled[i].boundary, reference.culled[i].boundary);
  }
}

TEST(ScenarioRunner, SweepRunsOnOneEngineAndTracksTheParam) {
  Scenario s = culling_scenario();
  s.metrics.verify_trace = false;
  ScenarioRunner runner(s);
  const std::vector<double> ps{0.05, 0.15, 0.3};
  const std::vector<ScenarioRun> sweep = runner.sweep_fault_param("p", ps);
  ASSERT_EQ(sweep.size(), ps.size());
  // More faults -> fewer alive (same seed across the sweep).
  EXPECT_GT(sweep[0].alive.count(), sweep[2].alive.count());
  EXPECT_GE(runner.engine_stats().runs, ps.size());
  // The sweep must not clobber the scenario's own fault params.
  EXPECT_EQ(runner.scenario().fault.params.get_double("p", 0.0), 0.25);
  // ...even when a probe throws (undeclared key): the spec is restored
  // and the runner stays usable.
  EXPECT_THROW((void)runner.sweep_fault_param("no_such_key", ps), PreconditionError);
  EXPECT_EQ(runner.scenario().fault.params.get_double("p", 0.0), 0.25);
  EXPECT_FALSE(runner.scenario().fault.params.has("no_such_key"));
  (void)runner.run_once(0);
}

TEST(ScenarioRunner, ChurnAliveStreamMatchesSimulateChurn) {
  Scenario s = culling_scenario();
  s.metrics.verify_trace = false;
  ScenarioRunner runner(s);

  ChurnOptions copts;
  copts.steps = 12;
  copts.p_leave = 0.05;
  copts.p_join = 0.3;
  copts.seed = 1234;

  const ChurnRunTrace through_engine = runner.run_churn(copts);
  const ChurnTrace old_path = simulate_churn(runner.graph(), copts);

  ASSERT_EQ(through_engine.rounds.size(), old_path.steps.size());
  for (std::size_t i = 0; i < old_path.steps.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(through_engine.rounds[i].churn.alive_count, old_path.steps[i].alive_count);
    EXPECT_DOUBLE_EQ(through_engine.rounds[i].churn.gamma, old_path.steps[i].gamma);
  }
  EXPECT_TRUE(through_engine.final_alive == old_path.final_alive);
}

TEST(ScenarioRunner, ChurnRoundsPruneThroughThePersistentEngine) {
  Scenario s = culling_scenario();
  s.metrics.verify_trace = false;
  ScenarioRunner runner(s);

  ChurnOptions copts;
  copts.steps = 6;
  copts.p_leave = 0.08;
  copts.p_join = 0.2;
  copts.seed = 77;
  const EngineStats before = runner.engine_stats();
  const ChurnRunTrace trace = runner.run_churn(copts);
  const EngineStats after = runner.engine_stats();

  // One engine run per round, all on the same engine instance.
  EXPECT_EQ(after.runs - before.runs, static_cast<std::uint64_t>(copts.steps));
  for (const ChurnRoundRun& r : trace.rounds) {
    EXPECT_LE(r.survivors, r.churn.alive_count);
    EXPECT_EQ(r.survivors + r.culled, r.churn.alive_count);
  }
  // The last round's survivors must match pruning its alive mask from
  // scratch in deterministic mode (engine == stateless reference).
  Prune2Options popts;
  popts.finder.seed = trace.rounds.back().finder_seed;
  const PruneResult reference = prune2_reference(runner.graph(), trace.final_alive,
                                                 runner.alpha(), runner.epsilon(), popts);
  EXPECT_TRUE(trace.final_survivors == reference.survivors);
}

TEST(ScenarioRunner, EngineStatsAccumulateAcrossRuns) {
  Scenario s = culling_scenario();
  s.prune.fast = true;
  s.repetitions = 3;
  ScenarioRunner runner(s);
  (void)runner.run_all();
  const EngineStats& st = runner.engine_stats();
  EXPECT_EQ(st.runs, 3u);
  EXPECT_GT(st.eigensolves + st.stale_sweep_hits, 0u);
  EXPECT_LE(st.stale_sweep_hits, st.stale_sweeps);
}

TEST(ScenarioRunner, MetricsTableHasOneRowPerRun) {
  Scenario s = culling_scenario();
  ScenarioRunner runner(s);
  const std::vector<ScenarioRun> runs = runner.run_all();
  const Table table = runner.metrics_table(runs);
  EXPECT_EQ(table.num_rows(), runs.size());
}

TEST(ScenarioRunner, NamedScenariosAllConstruct) {
  for (const Scenario& s : scenario_catalog()) {
    SCOPED_TRACE(s.name);
    ScenarioRunner runner(s);
    EXPECT_GT(runner.graph().num_vertices(), 0u);
    EXPECT_GT(runner.alpha(), 0.0);
    EXPECT_GT(runner.epsilon(), 0.0);
  }
}

}  // namespace
}  // namespace fne
