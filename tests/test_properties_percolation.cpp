// Property suite: percolation invariants swept over graph families.
#include <gtest/gtest.h>

#include "graph_cases.hpp"
#include "percolation/percolation.hpp"

namespace fne {
namespace {

using fne::testing::Family;
using fne::testing::GraphCase;

class PercolationProperties : public ::testing::TestWithParam<GraphCase> {
 protected:
  void SetUp() override { graph_ = GetParam().make(); }
  Graph graph_;
};

TEST_P(PercolationProperties, FullSurvivalIsGammaOne) {
  for (const PercolationKind kind : {PercolationKind::Site, PercolationKind::Bond}) {
    const PercolationResult r = percolate(graph_, kind, 1.0, 4, 1);
    EXPECT_DOUBLE_EQ(r.gamma.mean(), 1.0);
    EXPECT_DOUBLE_EQ(r.gamma.variance(), 0.0);
  }
}

TEST_P(PercolationProperties, ZeroSurvivalLeavesAtMostIsolatedVertices) {
  const PercolationResult site = percolate(graph_, PercolationKind::Site, 0.0, 4, 1);
  EXPECT_DOUBLE_EQ(site.gamma.mean(), 0.0);
  const PercolationResult bond = percolate(graph_, PercolationKind::Bond, 0.0, 4, 1);
  EXPECT_DOUBLE_EQ(bond.gamma.mean(), 1.0 / graph_.num_vertices());
}

TEST_P(PercolationProperties, GammaBounded) {
  for (const double p : {0.2, 0.5, 0.8}) {
    const PercolationResult r = percolate(graph_, PercolationKind::Site, p, 8, 2);
    EXPECT_GE(r.gamma.min(), 0.0);
    EXPECT_LE(r.gamma.max(), 1.0);
  }
}

TEST_P(PercolationProperties, DeterministicAcrossInvocations) {
  const PercolationResult a = percolate(graph_, PercolationKind::Bond, 0.6, 12, 9);
  const PercolationResult b = percolate(graph_, PercolationKind::Bond, 0.6, 12, 9);
  EXPECT_DOUBLE_EQ(a.gamma.mean(), b.gamma.mean());
  EXPECT_DOUBLE_EQ(a.gamma.stddev(), b.gamma.stddev());
}

TEST_P(PercolationProperties, MeanGammaWeaklyMonotoneInP) {
  // Statistical monotonicity with slack for Monte-Carlo noise.
  double prev = -0.1;
  for (const double p : {0.1, 0.4, 0.7, 1.0}) {
    const PercolationResult r = percolate(graph_, PercolationKind::Site, p, 16, 5);
    EXPECT_GE(r.gamma.mean() + 0.12, prev) << "p=" << p;
    prev = r.gamma.mean();
  }
}

TEST_P(PercolationProperties, SiteGammaAtMostSurvivalFractionPlusNoise) {
  // The largest component cannot exceed the number of surviving nodes.
  const PercolationResult r = percolate(graph_, PercolationKind::Site, 0.5, 16, 7);
  EXPECT_LE(r.gamma.mean(), 0.5 + 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Families, PercolationProperties,
    ::testing::Values(GraphCase{Family::Cycle, 64, 0}, GraphCase{Family::Complete, 32, 0},
                      GraphCase{Family::Mesh2D, 12, 0}, GraphCase{Family::Torus2D, 10, 0},
                      GraphCase{Family::Hypercube, 7, 0}, GraphCase{Family::Butterfly, 5, 0},
                      GraphCase{Family::DeBruijn, 7, 0},
                      GraphCase{Family::RandomRegular4, 128, 1},
                      GraphCase{Family::Star, 50, 0},
                      GraphCase{Family::Multibutterfly, 5, 2}),
    fne::testing::GraphCaseName{});

}  // namespace
}  // namespace fne
