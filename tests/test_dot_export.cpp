#include <sstream>

#include <gtest/gtest.h>

#include "core/io.hpp"
#include "topology/classic.hpp"

namespace fne {
namespace {

TEST(DotExport, PlainGraphListsAllVerticesAndEdges) {
  const Graph g = cycle_graph(4);
  std::ostringstream os;
  write_dot(os, g);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph fne {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("3;\n"), std::string::npos);
  EXPECT_EQ(dot.find("dashed"), std::string::npos);
}

TEST(DotExport, DeadVerticesDashed) {
  const Graph g = path_graph(3);
  VertexSet alive = VertexSet::full(3);
  alive.reset(1);
  std::ostringstream os;
  write_dot(os, g, &alive);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("1 [style=dashed"), std::string::npos);
  // Both edges touch the dead vertex.
  EXPECT_NE(dot.find("0 -- 1 [style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2 [style=dashed"), std::string::npos);
}

TEST(DotExport, HighlightFills) {
  const Graph g = path_graph(3);
  const VertexSet hot = VertexSet::of(3, {2});
  std::ostringstream os;
  write_dot(os, g, nullptr, &hot);
  EXPECT_NE(os.str().find("2 [style=filled"), std::string::npos);
}

TEST(DotExport, MismatchedMaskRejected) {
  const Graph g = path_graph(3);
  const VertexSet wrong(4);
  std::ostringstream os;
  EXPECT_THROW(write_dot(os, g, &wrong), PreconditionError);
}

}  // namespace
}  // namespace fne
