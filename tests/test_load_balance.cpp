#include "analysis/load_balance.hpp"

#include <gtest/gtest.h>

#include "faults/fault_model.hpp"
#include "prune/prune2.hpp"
#include "topology/classic.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"

namespace fne {
namespace {

TEST(Diffusion, UniformLoadConvergesImmediately) {
  const Graph g = cycle_graph(10);
  const DiffusionResult r =
      diffuse_load(g, VertexSet::full(10), std::vector<double>(10, 3.0));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 0);
}

TEST(Diffusion, PointLoadSpreadsToMean) {
  const Graph g = cycle_graph(8);
  const DiffusionResult r = diffuse_point_load(g, VertexSet::full(8), 0, 8.0);
  ASSERT_TRUE(r.converged);
  for (vid v = 0; v < 8; ++v) EXPECT_NEAR(r.load[v], 1.0, 0.02);
}

TEST(Diffusion, ConservesTotalLoad) {
  const Mesh m({6, 6});
  const DiffusionResult r = diffuse_point_load(m.graph(), VertexSet::full(36), 0, 36.0);
  double total = 0.0;
  for (double x : r.load) total += x;
  EXPECT_NEAR(total, 36.0, 1e-6);
}

TEST(Diffusion, ExpanderBalancesFasterThanCycle) {
  // Rounds ~ 1/λ2: constant-expansion graphs balance in O(log) rounds,
  // cycles need Θ(n²).
  const vid n = 64;
  const DiffusionResult cycle = diffuse_point_load(cycle_graph(n), VertexSet::full(n), 0,
                                                   static_cast<double>(n));
  const DiffusionResult expander = diffuse_point_load(
      random_regular(n, 4, 3), VertexSet::full(n), 0, static_cast<double>(n));
  ASSERT_TRUE(cycle.converged);
  ASSERT_TRUE(expander.converged);
  EXPECT_LT(expander.rounds * 5, cycle.rounds);
}

TEST(Diffusion, PrunedFaultyMeshBalancesNearlyAsFastAsFaultFree) {
  // §1.3's claim: if the pruned component keeps the expansion, it keeps
  // the load-balancing ability.
  const Mesh m({12, 12});
  const Graph& g = m.graph();
  const VertexSet all = VertexSet::full(g.num_vertices());
  const DiffusionResult clean =
      diffuse_point_load(g, all, 0, static_cast<double>(g.num_vertices()));
  ASSERT_TRUE(clean.converged);

  const VertexSet alive = random_node_faults(g, 0.05, 11);
  const PruneResult pruned = prune2(g, alive, 2.0 / 12.0, 0.125);
  ASSERT_GE(pruned.survivors.count(), g.num_vertices() / 2);
  const vid source = pruned.survivors.first();
  const DiffusionResult faulty = diffuse_point_load(
      g, pruned.survivors, source, static_cast<double>(pruned.survivors.count()));
  ASSERT_TRUE(faulty.converged);
  EXPECT_LT(faulty.rounds, 4 * clean.rounds);
}

TEST(Diffusion, DisconnectedRejected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)diffuse_point_load(g, VertexSet::full(4), 0), PreconditionError);
}

TEST(Diffusion, DeadSourceRejected) {
  const Graph g = path_graph(4);
  VertexSet alive = VertexSet::full(4);
  alive.reset(0);
  EXPECT_THROW((void)diffuse_point_load(g, alive, 0), PreconditionError);
}

TEST(Diffusion, InitialSizeValidated) {
  const Graph g = path_graph(4);
  EXPECT_THROW((void)diffuse_load(g, VertexSet::full(4), std::vector<double>(3, 1.0)),
               PreconditionError);
}

}  // namespace
}  // namespace fne
