#include "expansion/profile.hpp"

#include <gtest/gtest.h>

#include "expansion/exact.hpp"
#include "topology/classic.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

namespace fne {
namespace {

TEST(Profile, CycleProfileIsFlatTwo) {
  // Arcs minimize both boundaries in C_n: node and edge boundary are 2
  // for every size 1 <= s <= n-1 (node profile only defined to n/2).
  const IsoperimetricProfile p = isoperimetric_profile(cycle_graph(10));
  for (std::size_t s = 1; s < p.node_boundary.size(); ++s) {
    EXPECT_EQ(p.node_boundary[s], 2U) << "s=" << s;
  }
  for (std::size_t s = 1; s < p.edge_boundary.size(); ++s) {
    EXPECT_EQ(p.edge_boundary[s], 2U) << "s=" << s;
  }
}

TEST(Profile, PathBoundariesAreOne) {
  const IsoperimetricProfile p = isoperimetric_profile(path_graph(9));
  for (std::size_t s = 1; s < p.node_boundary.size(); ++s) {
    EXPECT_EQ(p.node_boundary[s], 1U);  // prefix intervals
  }
  for (std::size_t s = 1; s < p.edge_boundary.size(); ++s) {
    EXPECT_EQ(p.edge_boundary[s], 1U);
  }
}

TEST(Profile, CompleteGraphClosedForm) {
  const vid n = 7;
  const IsoperimetricProfile p = isoperimetric_profile(complete_graph(n));
  for (std::size_t s = 1; s < p.node_boundary.size(); ++s) {
    EXPECT_EQ(p.node_boundary[s], n - s);
    EXPECT_EQ(p.edge_boundary[s], s * (n - s));
  }
}

TEST(Profile, HypercubeHarperEdgeProfile) {
  // Harper/Bernstein: subcubes minimize the edge boundary of Q_d at
  // power-of-two sizes: boundary(2^k) = 2^k (d - k).
  const vid d = 4;
  const IsoperimetricProfile p = isoperimetric_profile(hypercube(d));
  EXPECT_EQ(p.edge_boundary[1], 4U);   // single vertex
  EXPECT_EQ(p.edge_boundary[2], 6U);   // edge subcube: 2*(4-1)
  EXPECT_EQ(p.edge_boundary[4], 8U);   // square subcube: 4*(4-2)
  EXPECT_EQ(p.edge_boundary[8], 8U);   // half cube: 8*(4-3)
}

TEST(Profile, HypercubeHarperVertexProfile) {
  // Harper's vertex-isoperimetry: Hamming balls are optimal.  In Q_4 the
  // radius-1 ball (5 vertices) has boundary C(4,2) = 6.
  const IsoperimetricProfile p = isoperimetric_profile(hypercube(4));
  EXPECT_EQ(p.node_boundary[1], 4U);
  EXPECT_EQ(p.node_boundary[5], 6U);
  // Size 8: a Hamming ball plus part of its next layer beats the subcube
  // (boundary 6 < 8) — Harper's theorem in action; pinned from the
  // exhaustive scan.
  EXPECT_EQ(p.node_boundary[8], 6U);
}

TEST(Profile, ExpansionsDerivedFromProfileMatchExactScan) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = erdos_renyi(12, 0.35, rng.next());
    const IsoperimetricProfile p = isoperimetric_profile(g);
    EXPECT_NEAR(p.node_expansion(), exact_expansion(g, ExpansionKind::Node).expansion, 1e-12);
    EXPECT_NEAR(p.edge_expansion(12), exact_expansion(g, ExpansionKind::Edge).expansion, 1e-12);
  }
}

TEST(Profile, ProfileIsMonotoneOnMeshPrefix) {
  // The 2-D mesh's edge profile grows like the perimeter ~ 2*sqrt(s) for
  // small s; in particular it is non-decreasing up to n/2 boundary sizes
  // of perfect squares.
  const IsoperimetricProfile p = isoperimetric_profile(Mesh::cube(4, 2).graph());
  EXPECT_EQ(p.edge_boundary[1], 2U);   // corner vertex
  EXPECT_EQ(p.edge_boundary[4], 4U);   // 2x2 corner block
  EXPECT_EQ(p.edge_boundary[8], 4U);   // half grid
  EXPECT_LE(p.edge_boundary[2], 3U);   // corner domino
}

TEST(Profile, MaskedSubgraph) {
  const Graph g = cycle_graph(8);
  VertexSet alive = VertexSet::full(8);
  alive.reset(0);  // 7-path
  const IsoperimetricProfile p = isoperimetric_profile(g, alive);
  for (std::size_t s = 1; s < p.node_boundary.size(); ++s) {
    EXPECT_EQ(p.node_boundary[s], 1U);
  }
}

TEST(Profile, SizeGuards) {
  EXPECT_THROW((void)isoperimetric_profile(path_graph(1)), PreconditionError);
}

}  // namespace
}  // namespace fne
