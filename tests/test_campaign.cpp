// Executor/campaign layer contracts (DESIGN.md §8): ExecutorPool job
// coverage and error propagation, EngineCache sharing + lease isolation,
// monotone fault sweeps (registry gating, work saving, deterministic
// parity with independent points), campaign JSON parsing, and the
// campaign determinism story — the report's deterministic payload is
// byte-identical across thread counts and cache-hit patterns.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "api/campaign.hpp"
#include "api/executor.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace fne {
namespace {

// ---------------------------------------------------------------------------
// ExecutorPool
// ---------------------------------------------------------------------------

TEST(ExecutorPool, RunsEveryJobExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    SCOPED_TRACE(threads);
    constexpr std::size_t kJobs = 100;
    std::vector<std::atomic<int>> hits(kJobs);
    ExecutorPool::run(kJobs, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ExecutorPool, ZeroJobsIsANoOp) {
  ExecutorPool::run(0, 4, [](std::size_t) { FAIL() << "no jobs to run"; });
}

TEST(ExecutorPool, FirstErrorPropagatesAndRemainingJobsStillRun) {
  std::atomic<int> ran{0};
  EXPECT_THROW(ExecutorPool::run(20, 4,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 3) throw PreconditionError("job 3 failed");
                                 }),
               PreconditionError);
  EXPECT_EQ(ran.load(), 20);
}

// ---------------------------------------------------------------------------
// EngineCache
// ---------------------------------------------------------------------------

TEST(EngineCache, UnseededTopologiesShareOneGraphAcrossSeeds) {
  EngineCache& cache = EngineCache::instance();
  const Params mesh = Params{{"side", "10"}, {"dims", "2"}};
  const auto a = cache.graph("mesh", mesh, 1);
  const auto b = cache.graph("mesh", mesh, 99999);
  EXPECT_EQ(a.get(), b.get()) << "mesh ignores its seed; the cache must fold the key";

  const Params rr = Params{{"n", "64"}, {"degree", "4"}};
  const auto c = cache.graph("random_regular", rr, 1);
  const auto d = cache.graph("random_regular", rr, 2);
  EXPECT_NE(c.get(), d.get()) << "seeded topologies are distinct per seed";
  const auto c2 = cache.graph("random_regular", rr, 1);
  EXPECT_EQ(c.get(), c2.get());
}

TEST(EngineCache, LeasedEnginesReturnToTheIdlePoolAndAreReused) {
  EngineCache& cache = EngineCache::instance();
  const Params params = Params{{"side", "9"}, {"dims", "2"}};
  cache.clear();
  const EngineCacheStats before = cache.stats();
  {
    const EngineLease lease = cache.lease("mesh", params, 7, ExpansionKind::Edge);
    EXPECT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(lease.graph().num_vertices(), 81u);
  }
  EXPECT_GE(cache.idle_engines(), 1u);
  {
    const EngineLease again = cache.lease("mesh", params, 8, ExpansionKind::Edge);
    EXPECT_TRUE(static_cast<bool>(again));
  }
  const EngineCacheStats delta = cache.stats() - before;
  EXPECT_EQ(delta.leases, 2u);
  EXPECT_EQ(delta.engine_builds, 1u);
  EXPECT_EQ(delta.engine_hits, 1u) << "the second lease must be served from the idle pool";
}

TEST(EngineCache, LeaseDropsWarmStateSoHistoryCannotLeak) {
  // Run the same fast-mode repetition twice through cache leases with a
  // warm-history engine in between: bit-identical results either way.
  Scenario s;
  s.name = "cache-isolation";
  s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.25"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.fast = true;
  s.seed = 5150;

  ScenarioRunner fresh(s);
  const ScenarioRun cold = fresh.run_isolated(s.fault, 0);

  ScenarioRunner warmed(s);
  (void)warmed.run_once(1);  // leaves a warm Fiedler cache on some engine
  const ScenarioRun after_history = warmed.run_isolated(s.fault, 0);
  EXPECT_TRUE(cold.prune.survivors == after_history.prune.survivors);
  EXPECT_EQ(cold.prune.iterations, after_history.prune.iterations);
}

// ---------------------------------------------------------------------------
// Monotone sweeps
// ---------------------------------------------------------------------------

[[nodiscard]] Scenario sweep_scenario() {
  Scenario s;
  s.name = "sweep-test";
  s.topology = {"mesh", Params{{"side", "24"}, {"dims", "2"}}};
  s.fault = {"random", Params{{"p", "0.1"}}};
  s.prune.kind = ExpansionKind::Edge;
  s.prune.alpha = 2.0 / 24.0;
  s.seed = 20240731;
  s.metrics.verify_trace = true;
  return s;
}

TEST(MonotoneSweep, DeterministicModeMatchesIndependentPointsBitForBit) {
  const std::vector<double> values{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35};
  ScenarioRunner indep_runner(sweep_scenario());
  ScenarioRunner mono_runner(sweep_scenario());
  const std::vector<ScenarioRun> indep = indep_runner.sweep_fault_param("p", values);
  const std::vector<ScenarioRun> mono =
      mono_runner.sweep_fault_param("p", values, 1, SweepMode::kMonotone);
  ASSERT_EQ(indep.size(), mono.size());
  bool any_culled = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    SCOPED_TRACE(values[i]);
    // The sweep's OUTPUT — the survivor set — is bit-identical in the
    // paper's subcritical prune2 regime; the chained trace (alive,
    // culled records) legitimately covers only the delta.
    EXPECT_TRUE(indep[i].prune.survivors == mono[i].prune.survivors);
    EXPECT_EQ(indep[i].fault_seed, mono[i].fault_seed);
    EXPECT_EQ(indep[i].faults, mono[i].faults) << "fault counts describe the fault model";
    EXPECT_TRUE(mono[i].alive.is_subset_of(indep[i].alive))
        << "chained start must be a subset of the fault-model mask";
    // Every monotone point is still a certified prune run.
    ASSERT_TRUE(mono[i].trace.has_value());
    EXPECT_TRUE(mono[i].trace->valid);
    any_culled = any_culled || indep[i].prune.total_culled > 0;
  }
  EXPECT_TRUE(any_culled) << "workload too gentle to exercise the cull loop";

  // The fast path must actually save cull work (the acceptance criterion
  // bench_s4_campaign measures at scale).
  const EngineStats indep_stats = indep_runner.total_engine_stats();
  const EngineStats mono_stats = mono_runner.total_engine_stats();
  EXPECT_LT(mono_stats.iterations, indep_stats.iterations);
}

TEST(MonotoneSweep, MasksNestUnderTheSameSeed) {
  // The coupling the registry declaration promises: alive(p_hi) is a
  // subset of alive(p_lo) under one seed.
  const auto g = EngineCache::instance().graph("mesh", Params{{"side", "12"}}, 0);
  const VertexSet lo = FaultModelRegistry::instance().build("random", *g,
                                                            Params{{"p", "0.1"}}, 777);
  const VertexSet hi = FaultModelRegistry::instance().build("random", *g,
                                                            Params{{"p", "0.4"}}, 777);
  EXPECT_TRUE(hi.is_subset_of(lo));
  EXPECT_LT(hi.count(), lo.count());

  const VertexSet small_attack = FaultModelRegistry::instance().build(
      "high_degree", *g, Params{{"budget", "10"}}, 1);
  const VertexSet big_attack = FaultModelRegistry::instance().build(
      "high_degree", *g, Params{{"budget", "40"}}, 1);
  EXPECT_TRUE(big_attack.is_subset_of(small_attack));
}

TEST(MonotoneSweep, RequiresADeclaredParamAndAscendingValues) {
  Scenario s = sweep_scenario();
  s.fault = {"sweep_cut", Params{}};
  ScenarioRunner undeclared(s);
  const std::vector<double> values{0.1, 0.2};
  EXPECT_THROW((void)undeclared.sweep_fault_param("frac", values, 1, SweepMode::kMonotone),
               PreconditionError);

  ScenarioRunner runner(sweep_scenario());
  const std::vector<double> descending{0.3, 0.2};
  EXPECT_THROW((void)runner.sweep_fault_param("p", descending, 1, SweepMode::kMonotone),
               PreconditionError);
  // Still usable afterwards (errors fire before any engine work).
  const std::vector<double> ok{0.1, 0.2};
  EXPECT_EQ(runner.sweep_fault_param("p", ok, 1, SweepMode::kMonotone).size(), 2u);
}

// ---------------------------------------------------------------------------
// Campaign JSON
// ---------------------------------------------------------------------------

TEST(CampaignJson, ParsesPresetsOverridesAndSweeps) {
  const std::string text = R"({
    "name": "doc-example",
    "scenarios": [
      {"preset": "mesh-random", "repetitions": 3, "seed": 9},
      {"name": "sweepy",
       "topology": {"name": "mesh", "params": {"side": 16, "dims": 2}},
       "fault": {"name": "random", "params": {"p": 0.1}},
       "prune": {"kind": "edge", "alpha": 0.125, "fast": true},
       "metrics": {"verify_trace": true},
       "sweep": {"param": "p", "values": [0.1, 0.2, 0.3], "mode": "monotone"}}
    ]})";
  const Campaign c = campaign_from_json(text);
  EXPECT_EQ(c.name, "doc-example");
  ASSERT_EQ(c.entries.size(), 2u);

  const Scenario& preset = c.entries[0].scenario;
  EXPECT_EQ(preset.name, "mesh-random");
  EXPECT_EQ(preset.repetitions, 3);
  EXPECT_EQ(preset.seed, 9u);
  EXPECT_EQ(preset.topology.name, "mesh");
  EXPECT_FALSE(c.entries[0].sweep.has_value());

  const Scenario& sweepy = c.entries[1].scenario;
  EXPECT_EQ(sweepy.name, "sweepy");
  EXPECT_EQ(sweepy.topology.params.get_int("side", 0), 16);
  EXPECT_DOUBLE_EQ(sweepy.prune.alpha, 0.125);
  EXPECT_TRUE(sweepy.prune.fast);
  EXPECT_TRUE(sweepy.metrics.verify_trace);
  ASSERT_TRUE(c.entries[1].sweep.has_value());
  EXPECT_EQ(c.entries[1].sweep->param, "p");
  EXPECT_EQ(c.entries[1].sweep->values.size(), 3u);
  EXPECT_EQ(c.entries[1].sweep->mode, SweepMode::kMonotone);
}

TEST(CampaignJson, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": []})"), PreconditionError);
  EXPECT_THROW((void)campaign_from_json(R"({"scenarios": [{"topologyy": {}}]})"),
               PreconditionError);
  EXPECT_THROW(
      (void)campaign_from_json(R"({"scenarios": [{"prune": {"kind": "sideways"}}]})"),
      PreconditionError);
  EXPECT_THROW(
      (void)campaign_from_json(R"({"scenarios": [{"sweep": {"param": "p", "values": []}}]})"),
      PreconditionError);
  EXPECT_THROW((void)campaign_from_file("/no/such/file.json"), PreconditionError);
}

TEST(JsonValueParser, CoversTheGrammar) {
  const JsonValue v = JsonValue::parse(
      R"({"s": "a\"b\nA", "i": -42, "f": 6.25e-2, "t": true, "n": null,
          "arr": [1, [2, 3], {"k": "v"}]})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\nA");
  EXPECT_EQ(v.at("i").as_int(), -42);
  EXPECT_DOUBLE_EQ(v.at("f").as_number(), 0.0625);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  ASSERT_EQ(v.at("arr").items().size(), 3u);
  EXPECT_EQ(v.at("arr").items()[1].items()[1].as_int(), 3);
  EXPECT_EQ(v.at("arr").items()[2].at("k").as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), PreconditionError);
  EXPECT_THROW((void)v.at("i").as_string(), PreconditionError);
  EXPECT_THROW((void)v.at("f").as_int(), PreconditionError);
}

TEST(JsonValueParser, RejectsMalformedDocuments) {
  EXPECT_THROW((void)JsonValue::parse("{"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse("{} extra"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 1, "a": 2})"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 01x})"), PreconditionError);
  EXPECT_THROW((void)JsonValue::parse(R"(["unterminated)"), PreconditionError);
}

// ---------------------------------------------------------------------------
// Campaign determinism
// ---------------------------------------------------------------------------

[[nodiscard]] Campaign determinism_campaign() {
  Campaign campaign;
  campaign.name = "determinism";
  {
    Scenario s;
    s.name = "reps";
    s.topology = {"mesh", Params{{"side", "12"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.25"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.fast = true;
    s.repetitions = 5;
    s.seed = 71;
    campaign.entries.push_back({s, std::nullopt});
  }
  {
    Scenario s;
    s.name = "monotone";
    s.topology = {"mesh", Params{{"side", "16"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.1"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.alpha = 0.125;
    s.seed = 72;
    campaign.entries.push_back({s, SweepSpec{"p", {0.1, 0.2, 0.3}, SweepMode::kMonotone}});
  }
  {
    Scenario s;
    s.name = "hubs";
    s.topology = {"hypercube", Params{{"dims", "7"}}};
    s.fault = {"high_degree", Params{{"frac", "0.1"}}};
    s.prune.kind = ExpansionKind::Node;
    s.repetitions = 2;
    s.seed = 73;
    campaign.entries.push_back({s, std::nullopt});
  }
  return campaign;
}

TEST(Campaign, DeterministicPayloadIsByteIdenticalAcrossThreadCounts) {
  CampaignRunner runner(determinism_campaign());
  const CampaignReport serial = runner.run(1);
  const std::string payload = serial.to_json(/*include_timing=*/false);
  EXPECT_NE(payload.find("\"survivor_hash\""), std::string::npos);
  for (const int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    const CampaignReport parallel = runner.run(threads);
    EXPECT_EQ(payload, parallel.to_json(false));
  }
}

TEST(Campaign, DeterministicPayloadIsIdenticalWarmAndColdCache) {
  EngineCache::instance().clear();
  CampaignRunner runner(determinism_campaign());
  const std::string cold = runner.run(3).to_json(false);
  // Second run: every graph and engine now comes from the cache.
  const EngineCacheStats before = EngineCache::instance().stats();
  const std::string warm = runner.run(3).to_json(false);
  const EngineCacheStats delta = EngineCache::instance().stats() - before;
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(delta.graph_builds, 0u) << "warm run must reuse every cached graph";
  EXPECT_GT(delta.engine_hits, 0u);
}

TEST(Campaign, ReportAccountsEveryRunAndFoldsEngineStats) {
  CampaignRunner runner(determinism_campaign());
  const CampaignReport report = runner.run(2);
  ASSERT_EQ(report.scenarios.size(), 3u);
  EXPECT_EQ(report.scenarios[0].runs.size(), 5u);
  EXPECT_EQ(report.scenarios[1].runs.size(), 3u);
  EXPECT_EQ(report.scenarios[2].runs.size(), 2u);
  // 5 reps + 1 monotone chain of 3 + 2 reps = 10 engine runs.
  EXPECT_EQ(report.total_engine_stats().runs, 10u);
  for (const ScenarioReport& s : report.scenarios) {
    EXPECT_GT(s.n, 0u);
    EXPECT_GT(s.alpha, 0.0);
  }
  // The timing payload includes wall-clock and cache ops on top of the
  // deterministic payload.
  const std::string timed = report.to_json(true);
  EXPECT_NE(timed.find("\"millis\""), std::string::npos);
  EXPECT_NE(timed.find("\"cache\""), std::string::npos);
  EXPECT_EQ(report.to_json(false).find("\"millis\""), std::string::npos);
}

TEST(Campaign, ValidatesEntriesEagerly) {
  Campaign bad;
  bad.entries.push_back({Scenario{.topology = {"no_such_topology", Params{}}}, std::nullopt});
  EXPECT_THROW((void)CampaignRunner(std::move(bad)), PreconditionError);
  Campaign empty;
  EXPECT_THROW((void)CampaignRunner(std::move(empty)), PreconditionError);
}

}  // namespace
}  // namespace fne
