#include "util/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fne {
namespace {

TEST(Table, BuildsAndPrints) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("beta").cell(std::size_t{42});
  EXPECT_EQ(t.num_rows(), 2U);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("quote\"inside");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("one");
  EXPECT_THROW(t.cell("two"), PreconditionError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"h"});
  EXPECT_THROW(t.cell("x"), PreconditionError);
}

TEST(FormatPm, ContainsBothParts) {
  const std::string s = format_pm(1.2345, 0.01);
  EXPECT_NE(s.find("1.234"), std::string::npos);
  EXPECT_NE(s.find("±"), std::string::npos);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--p=0.25", "--verbose", "positional"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.25);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("positional"));
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
}

TEST(Cli, SeedHelper) {
  const char* argv[] = {"prog", "--seed=99"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_seed(42), 99U);
  Cli empty(1, const_cast<char**>(argv));
  EXPECT_EQ(empty.get_seed(42), 42U);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace fne
