#include "core/subgraph.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"

namespace fne {
namespace {

TEST(Subgraph, ExtractsInducedEdges) {
  const Graph g = cycle_graph(6);
  const InducedSubgraph sub = induced_subgraph(g, VertexSet::of(6, {0, 1, 2, 4}));
  EXPECT_EQ(sub.graph.num_vertices(), 4U);
  // Induced edges: 0-1, 1-2 (4 is isolated inside the subgraph).
  EXPECT_EQ(sub.graph.num_edges(), 2U);
}

TEST(Subgraph, MappingsAreInverse) {
  const Graph g = path_graph(10);
  const VertexSet keep = VertexSet::of(10, {1, 3, 4, 9});
  const InducedSubgraph sub = induced_subgraph(g, keep);
  for (vid i = 0; i < sub.graph.num_vertices(); ++i) {
    EXPECT_EQ(sub.to_sub[sub.to_original[i]], i);
  }
  for (vid v = 0; v < 10; ++v) {
    if (!keep.test(v)) EXPECT_EQ(sub.to_sub[v], kInvalidVertex);
  }
}

TEST(Subgraph, LiftRestrictRoundTrip) {
  const Graph g = path_graph(8);
  const VertexSet keep = VertexSet::of(8, {2, 3, 5, 6});
  const InducedSubgraph sub = induced_subgraph(g, keep);
  const VertexSet inner = VertexSet::of(sub.graph.num_vertices(), {0, 2});
  const VertexSet lifted = sub.lift(inner);
  EXPECT_EQ(lifted.count(), 2U);
  EXPECT_TRUE(lifted.is_subset_of(keep));
  EXPECT_EQ(sub.restrict(lifted), inner);
}

TEST(Subgraph, RestrictDropsOutsiders) {
  const Graph g = path_graph(6);
  const InducedSubgraph sub = induced_subgraph(g, VertexSet::of(6, {0, 1}));
  const VertexSet mixed = VertexSet::of(6, {1, 4});
  EXPECT_EQ(sub.restrict(mixed).count(), 1U);
}

TEST(Subgraph, EmptySelection) {
  const Graph g = path_graph(4);
  const InducedSubgraph sub = induced_subgraph(g, VertexSet(4));
  EXPECT_EQ(sub.graph.num_vertices(), 0U);
  EXPECT_EQ(sub.graph.num_edges(), 0U);
}

TEST(Subgraph, FullSelectionIsIsomorphicCopy) {
  const Graph g = cycle_graph(5);
  const InducedSubgraph sub = induced_subgraph(g, VertexSet::full(5));
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(sub.graph.has_edge(e.u, e.v));
}

}  // namespace
}  // namespace fne
