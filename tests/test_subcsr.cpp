// Sub-CSR spectral kernel contracts (DESIGN.md §7): the compact operator
// is bit-identical to the MaskedLaplacian reference on any mask, the
// incremental remove() equals a fresh build of the shrunken mask, and
// Lanczos results are pure functions of their inputs on either side of
// the parallel dimension threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "faults/fault_model.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "topology/mesh.hpp"
#include "topology/random_graphs.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {
namespace {

[[nodiscard]] std::vector<double> probe_vector(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(k);
  for (auto& v : x) v = rng.uniform01() - 0.5;
  return x;
}

void expect_same_operator(const Graph& g, const VertexSet& alive, const SubCsr& sub) {
  const MaskedLaplacian reference(g, alive);
  const SubCsrLaplacian compact(sub);
  ASSERT_EQ(reference.dim(), compact.dim());
  ASSERT_EQ(reference.vertices(), compact.vertices());
  const std::size_t k = reference.dim();
  const std::vector<double> x = probe_vector(k, 17);
  std::vector<double> y_ref(k, 0.0);
  std::vector<double> y_sub(k, 0.0);
  reference.apply(x, y_ref);
  compact.apply(x, y_sub);
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(y_ref[i], y_sub[i]) << "apply differs at sub index " << i;
  }
}

TEST(SubCsr, BuildMatchesMaskedLaplacianOnRandomMasks) {
  const Graph g = random_regular(200, 4, 5);
  for (const double p : {0.0, 0.1, 0.4}) {
    const VertexSet alive = random_node_faults(g, p, 23);
    if (alive.count() < 2) continue;
    SubCsr sub;
    sub.build(g, alive);
    SCOPED_TRACE(p);
    expect_same_operator(g, alive, sub);
  }
}

TEST(SubCsr, BuildIsReusableAcrossMasks) {
  // Pooled buffers: rebuilding the same SubCsr for a different mask must
  // fully erase the previous mapping.
  const Graph g = random_regular(150, 4, 9);
  SubCsr sub;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const VertexSet alive = random_node_faults(g, 0.3, seed);
    sub.build(g, alive);
    SCOPED_TRACE(seed);
    expect_same_operator(g, alive, sub);
  }
}

TEST(SubCsr, RemoveEqualsFreshBuildAcrossCullSequence) {
  const Mesh m = Mesh::cube(16, 2);
  const Graph& g = m.graph();
  VertexSet alive = random_node_faults(g, 0.2, 7);
  SubCsr incremental;
  incremental.build(g, alive);

  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    // Cull a random small subset of the survivors.
    VertexSet cull(g.num_vertices());
    alive.for_each([&](vid v) {
      if (rng.bernoulli(0.1)) cull.set(v);
    });
    if (cull.empty()) cull.set(alive.first());
    incremental.remove(cull);
    alive -= cull;

    SubCsr fresh;
    fresh.build(g, alive);
    SCOPED_TRACE(round);
    ASSERT_EQ(incremental.verts, fresh.verts);
    ASSERT_EQ(incremental.offsets, fresh.offsets);
    ASSERT_EQ(incremental.adj, fresh.adj);
    ASSERT_EQ(incremental.deg, fresh.deg);
    if (alive.count() >= 2) expect_same_operator(g, alive, incremental);
  }
}

TEST(SubCsr, PrebuiltOperatorGivesBitIdenticalFiedlerVector) {
  const Mesh m = Mesh::cube(12, 2);
  const Graph& g = m.graph();
  const VertexSet alive = VertexSet::full(g.num_vertices());

  FiedlerOptions opts;
  opts.seed = 5;
  const FiedlerResult without = fiedler_vector(g, alive, opts);

  SubCsr sub;
  sub.build(g, alive);
  opts.sub = &sub;
  const FiedlerResult with = fiedler_vector(g, alive, opts);

  ASSERT_EQ(without.converged, with.converged);
  ASSERT_EQ(without.lambda2, with.lambda2);
  ASSERT_EQ(without.vector, with.vector);
}

TEST(Lanczos, DeterministicBelowAndAboveParallelThreshold) {
  // One dimension on each side of kSpectralParallelDim, exercised with a
  // cheap diagonal operator; the solve must be a pure function of its
  // inputs — same bits on every invocation and for every thread count.
  for (const std::size_t n : {std::size_t{512}, kSpectralParallelDim + 512}) {
    // Diagonal spectrum with a well-separated smallest eigenvalue (1.0
    // against a [2, 6] bulk), so the solve converges in a few dozen
    // iterations at any dimension.
    const auto op = [n](const std::vector<double>& x, std::vector<double>& y) {
      for (std::size_t i = 0; i < n; ++i) {
        y[i] = (i == 0 ? 1.0 : 2.0 + static_cast<double>(i % 5)) * x[i];
      }
    };
    LanczosOptions opts;
    opts.max_iterations = 60;
    opts.seed = 11;

    const auto solve = [&] { return lanczos_smallest(op, n, {}, opts); };
    const LanczosResult first = solve();

#ifdef _OPENMP
    const int saved = omp_get_max_threads();
    for (const int threads : {1, 2, 4}) {
      omp_set_num_threads(threads);
      const LanczosResult again = solve();
      SCOPED_TRACE(threads);
      ASSERT_EQ(first.iterations, again.iterations);
      ASSERT_EQ(first.values, again.values);
      ASSERT_EQ(first.vectors, again.vectors);
    }
    omp_set_num_threads(saved);
#else
    const LanczosResult again = solve();
    ASSERT_EQ(first.values, again.values);
    ASSERT_EQ(first.vectors, again.vectors);
#endif
    ASSERT_TRUE(first.converged);
    EXPECT_NEAR(first.values[0], 1.0, 1e-7);
  }
}

}  // namespace
}  // namespace fne
