#include "topology/mesh.hpp"

#include <gtest/gtest.h>

#include "core/traversal.hpp"

namespace fne {
namespace {

TEST(Mesh, Grid2DCounts) {
  const Mesh m({4, 4});
  EXPECT_EQ(m.num_vertices(), 16U);
  EXPECT_EQ(m.graph().num_edges(), 24U);  // 2 * 4 * 3
  EXPECT_EQ(m.graph().min_degree(), 2U);
  EXPECT_EQ(m.graph().max_degree(), 4U);
}

TEST(Mesh, Torus2DIsRegular) {
  const Mesh t({4, 4}, /*wrap=*/true);
  EXPECT_EQ(t.graph().num_edges(), 32U);
  EXPECT_TRUE(t.graph().is_regular());
  EXPECT_EQ(t.graph().max_degree(), 4U);
}

TEST(Mesh, CoordinateRoundTrip) {
  const Mesh m({3, 4, 5});
  for (vid v = 0; v < m.num_vertices(); ++v) {
    EXPECT_EQ(m.id_of(m.coords_of(v)), v);
  }
}

TEST(Mesh, CoordSingleDimension) {
  const Mesh m({3, 4});
  const vid v = m.id_of({2, 1});
  EXPECT_EQ(m.coord(v, 0), 2U);
  EXPECT_EQ(m.coord(v, 1), 1U);
}

TEST(Mesh, EdgesConnectUnitSteps) {
  const Mesh m({3, 3});
  for (const Edge& e : m.graph().edges()) {
    EXPECT_EQ(m.hamming_dims(e.u, e.v), 1U);
    EXPECT_EQ(m.chebyshev_distance(e.u, e.v), 1U);
  }
}

TEST(Mesh, CubeFactory) {
  const Mesh m = Mesh::cube(3, 3);
  EXPECT_EQ(m.num_vertices(), 27U);
  EXPECT_EQ(m.dims(), 3U);
}

TEST(Mesh, IsConnected) {
  for (vid d = 1; d <= 3; ++d) {
    const Mesh m = Mesh::cube(3, d);
    EXPECT_TRUE(is_connected(m.graph(), VertexSet::full(m.num_vertices()))) << "d=" << d;
  }
}

TEST(Mesh, ChebyshevWraps) {
  const Mesh t({8}, /*wrap=*/true);
  EXPECT_EQ(t.chebyshev_distance(t.id_of({0}), t.id_of({7})), 1U);
  const Mesh m({8});
  EXPECT_EQ(m.chebyshev_distance(m.id_of({0}), m.id_of({7})), 7U);
}

TEST(Mesh, PathIsOneDimensionalMesh) {
  const Mesh m({6});
  EXPECT_EQ(m.graph().num_edges(), 5U);
  EXPECT_EQ(m.graph().max_degree(), 2U);
}

TEST(Mesh, SideTwoTorusDoesNotDuplicateEdges) {
  const Mesh t({2, 2}, /*wrap=*/true);
  EXPECT_EQ(t.graph().num_edges(), 4U);  // wrap suppressed for sides <= 2
}

TEST(Mesh, InvalidCoordinatesRejected) {
  const Mesh m({3, 3});
  EXPECT_THROW((void)m.id_of({3, 0}), PreconditionError);
  EXPECT_THROW((void)m.id_of({0}), PreconditionError);
}

TEST(Mesh, DiameterOfGrid) {
  const Mesh m({4, 4});
  const auto dist = bfs_distances(m.graph(), VertexSet::full(16), m.id_of({0, 0}));
  EXPECT_EQ(dist[m.id_of({3, 3})], 6U);  // Manhattan distance
}

}  // namespace
}  // namespace fne
