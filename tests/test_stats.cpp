#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace fne {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Quantile, Endpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
}

TEST(Quantile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW((void)quantile({}, 0.5), PreconditionError);
  EXPECT_THROW((void)quantile({1.0}, 1.5), PreconditionError);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * xi);
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFit, DegenerateXGivesMeanIntercept) {
  const auto fit = linear_fit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearFit, RejectsTooFewPoints) {
  EXPECT_THROW((void)linear_fit({1.0}, {1.0}), PreconditionError);
}

}  // namespace
}  // namespace fne
