// Random fault models (paper §3: "each node in the network can
// independently become faulty with a given probability p").
//
// Conventions: node faults produce an *alive* VertexSet (survivors); edge
// faults produce an alive EdgeMask.  p is always the FAULT probability —
// the survival probability used by §1.1's percolation literature is 1 - p.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/traversal.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// Each node fails independently with probability p; returns survivors.
[[nodiscard]] VertexSet random_node_faults(const Graph& g, double fault_probability,
                                           std::uint64_t seed);

/// Each edge fails independently with probability p; returns surviving edges.
[[nodiscard]] EdgeMask random_edge_faults(const Graph& g, double fault_probability,
                                          std::uint64_t seed);

/// Exactly f distinct random node faults; returns survivors.
[[nodiscard]] VertexSet random_exact_node_faults(const Graph& g, vid faults, std::uint64_t seed);

}  // namespace fne
