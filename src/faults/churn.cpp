#include "faults/churn.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

double ChurnTrace::min_gamma() const {
  double best = 1.0;
  for (const ChurnStep& s : steps) best = std::min(best, s.gamma);
  return best;
}

double ChurnTrace::mean_alive_fraction(vid n) const {
  if (steps.empty() || n == 0) return 0.0;
  double total = 0.0;
  for (const ChurnStep& s : steps) total += static_cast<double>(s.alive_count);
  return total / (static_cast<double>(steps.size()) * static_cast<double>(n));
}

ChurnProcess::ChurnProcess(const Graph& g, const ChurnOptions& options)
    : g_(&g), options_(options), rng_(options.seed), alive_(VertexSet::full(g.num_vertices())) {
  FNE_REQUIRE(options_.p_leave >= 0.0 && options_.p_leave <= 1.0, "p_leave out of range");
  FNE_REQUIRE(options_.p_join >= 0.0 && options_.p_join <= 1.0, "p_join out of range");
  FNE_REQUIRE(options_.steps >= 1, "need at least one step");
}

ChurnStep ChurnProcess::step() {
  // Scan order and draw order are part of the deterministic contract:
  // ascending vertex id, one bernoulli per vertex per round.
  for (vid v = 0; v < g_->num_vertices(); ++v) {
    if (alive_.test(v)) {
      if (rng_.bernoulli(options_.p_leave)) alive_.reset(v);
    } else if (rng_.bernoulli(options_.p_join)) {
      alive_.set(v);
    }
  }
  ++taken_;
  ChurnStep step;
  step.alive_count = alive_.count();
  step.gamma = gamma_largest_fraction(*g_, alive_);
  return step;
}

ChurnTrace simulate_churn(const Graph& g, const ChurnOptions& options) {
  ChurnProcess process(g, options);
  ChurnTrace trace;
  trace.steps.reserve(static_cast<std::size_t>(options.steps));
  for (int t = 0; t < options.steps; ++t) trace.steps.push_back(process.step());
  trace.final_alive = process.alive();
  return trace;
}

}  // namespace fne
