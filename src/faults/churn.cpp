#include "faults/churn.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

double ChurnTrace::min_gamma() const {
  double best = 1.0;
  for (const ChurnStep& s : steps) best = std::min(best, s.gamma);
  return best;
}

double ChurnTrace::mean_alive_fraction(vid n) const {
  if (steps.empty() || n == 0) return 0.0;
  double total = 0.0;
  for (const ChurnStep& s : steps) total += static_cast<double>(s.alive_count);
  return total / (static_cast<double>(steps.size()) * static_cast<double>(n));
}

ChurnTrace simulate_churn(const Graph& g, const ChurnOptions& options) {
  FNE_REQUIRE(options.p_leave >= 0.0 && options.p_leave <= 1.0, "p_leave out of range");
  FNE_REQUIRE(options.p_join >= 0.0 && options.p_join <= 1.0, "p_join out of range");
  FNE_REQUIRE(options.steps >= 1, "need at least one step");
  Rng rng(options.seed);

  ChurnTrace trace;
  VertexSet alive = VertexSet::full(g.num_vertices());
  trace.steps.reserve(static_cast<std::size_t>(options.steps));
  for (int t = 0; t < options.steps; ++t) {
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (alive.test(v)) {
        if (rng.bernoulli(options.p_leave)) alive.reset(v);
      } else if (rng.bernoulli(options.p_join)) {
        alive.set(v);
      }
    }
    ChurnStep step;
    step.alive_count = alive.count();
    step.gamma = gamma_largest_fraction(g, alive);
    trace.steps.push_back(step);
  }
  trace.final_alive = alive;
  return trace;
}

}  // namespace fne
