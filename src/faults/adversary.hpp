// Adversarial fault strategies (paper §2).
//
// The two lower-bound theorems specify their adversaries exactly, and we
// implement those verbatim:
//   * chain_center_attack — Theorem 2.3: remove the central vertex of
//     every chain of H(G, k);
//   * bisection_attack    — Theorem 2.5: repeatedly remove the node
//     boundary of the minimum-expansion side of the largest surviving
//     piece until every piece is smaller than ε·n.
// The remaining strategies (sweep-cut, greedy boundary, random) form the
// attack portfolio used to stress Theorem 2.1 empirically from the other
// side: Prune must survive whatever they do, as long as the fault budget
// respects k·f/α <= n/4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "expansion/cut_finder.hpp"
#include "topology/chain_expander.hpp"

namespace fne {

/// Result of an attack: the fault set chosen by the adversary.
struct AttackResult {
  VertexSet faults;          ///< removed vertices
  vid budget_used = 0;       ///< |faults|
  std::vector<vid> rounds;   ///< faults spent per round (strategy dependent)
};

/// Theorem 2.3 adversary: fail every chain center of H(G, k).
[[nodiscard]] AttackResult chain_center_attack(const ChainExpander& h);

struct BisectionOptions {
  double epsilon = 0.05;       ///< stop when all pieces < epsilon * n
  vid max_rounds = 10000;
  CutFinderOptions cut_options{};
};

/// Theorem 2.5 adversary (proof procedure of the charging argument):
/// while some surviving piece has size >= epsilon*n, take the largest
/// piece, find its minimum-expansion cut (portfolio), and fail the node
/// boundary Γ(U) of the smaller side.
[[nodiscard]] AttackResult bisection_attack(const Graph& g, const BisectionOptions& options = {});

/// One-shot sweep-cut attack with a fault budget: finds the lowest
/// node-expansion set U of the (fault-free) graph whose boundary fits the
/// budget and fails Γ(U); repeats on the largest remaining piece while
/// budget remains.
[[nodiscard]] AttackResult sweep_cut_attack(const Graph& g, vid budget,
                                            const CutFinderOptions& options = {});

/// Greedy high-degree attack: fail the `budget` highest-degree vertices
/// (classic hub attack baseline).
[[nodiscard]] AttackResult high_degree_attack(const Graph& g, vid budget);

/// Random fault baseline with the same budget, for calibration.
[[nodiscard]] AttackResult random_attack(const Graph& g, vid budget, std::uint64_t seed);

/// Menger separator attack: repeatedly pick a BFS-diametral pair (s, t)
/// of the largest surviving piece and fail an exact minimum s-t vertex
/// separator (computed by max flow), while the budget allows.  This is
/// the strongest "surgical" adversary in the portfolio: every round
/// disconnects provably optimally for its chosen pair.
[[nodiscard]] AttackResult separator_attack(const Graph& g, vid budget, std::uint64_t seed = 7);

}  // namespace fne
