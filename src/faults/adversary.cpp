#include "faults/adversary.hpp"

#include <algorithm>
#include <numeric>

#include "core/traversal.hpp"
#include "expansion/bracket.hpp"
#include "expansion/flow.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

AttackResult chain_center_attack(const ChainExpander& h) {
  AttackResult result;
  result.faults = h.center_set();
  result.budget_used = result.faults.count();
  result.rounds.push_back(result.budget_used);
  return result;
}

namespace {

/// Largest connected component of the alive subgraph, as a VertexSet.
VertexSet largest_piece(const Graph& g, const VertexSet& alive) {
  return largest_component(g, alive);
}

}  // namespace

AttackResult bisection_attack(const Graph& g, const BisectionOptions& options) {
  FNE_REQUIRE(options.epsilon > 0.0 && options.epsilon <= 1.0, "epsilon in (0, 1]");
  const vid n = g.num_vertices();
  const auto stop_size = static_cast<vid>(options.epsilon * static_cast<double>(n));

  AttackResult result;
  result.faults = VertexSet(n);
  VertexSet alive = VertexSet::full(n);

  for (vid round = 0; round < options.max_rounds; ++round) {
    const VertexSet piece = largest_piece(g, alive);
    if (piece.count() < std::max<vid>(stop_size, 4)) break;

    // Minimum-expansion cut of the piece (constructive upper-bound witness).
    BracketOptions bopts;
    bopts.exact_limit = options.cut_options.exact_limit;
    bopts.ball_sources = options.cut_options.ball_sources;
    bopts.refine_passes = options.cut_options.refine_passes;
    bopts.seed = options.cut_options.seed + round;
    const ExpansionBracket bracket = expansion_bracket(g, piece, ExpansionKind::Node, bopts);
    if (!bracket.witness.has_value() || bracket.witness->side.empty()) break;

    const VertexSet boundary = node_boundary(g, piece, bracket.witness->side);
    if (boundary.empty()) {
      // Piece already splits for free (shouldn't happen for a connected
      // piece); avoid an infinite loop.
      break;
    }
    result.faults |= boundary;
    alive -= boundary;
    result.rounds.push_back(boundary.count());
  }
  result.budget_used = result.faults.count();
  return result;
}

AttackResult sweep_cut_attack(const Graph& g, vid budget, const CutFinderOptions& options) {
  const vid n = g.num_vertices();
  AttackResult result;
  result.faults = VertexSet(n);
  VertexSet alive = VertexSet::full(n);
  vid remaining = budget;

  for (int round = 0; remaining > 0 && round < 1000; ++round) {
    const VertexSet piece = largest_piece(g, alive);
    if (piece.count() < 4) break;
    BracketOptions bopts;
    bopts.exact_limit = options.exact_limit;
    bopts.ball_sources = options.ball_sources;
    bopts.refine_passes = options.refine_passes;
    bopts.seed = options.seed + static_cast<std::uint64_t>(round);
    const ExpansionBracket bracket = expansion_bracket(g, piece, ExpansionKind::Node, bopts);
    if (!bracket.witness.has_value() || bracket.witness->side.empty()) break;
    const VertexSet boundary = node_boundary(g, piece, bracket.witness->side);
    if (boundary.empty() || boundary.count() > remaining) break;
    result.faults |= boundary;
    alive -= boundary;
    remaining -= boundary.count();
    result.rounds.push_back(boundary.count());
  }
  result.budget_used = result.faults.count();
  return result;
}

AttackResult high_degree_attack(const Graph& g, vid budget) {
  FNE_REQUIRE(budget <= g.num_vertices(), "budget exceeds graph size");
  std::vector<vid> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](vid a, vid b) { return g.degree(a) > g.degree(b); });
  AttackResult result;
  result.faults = VertexSet(g.num_vertices());
  for (vid i = 0; i < budget; ++i) result.faults.set(order[i]);
  result.budget_used = budget;
  result.rounds.push_back(budget);
  return result;
}

AttackResult separator_attack(const Graph& g, vid budget, std::uint64_t seed) {
  const vid n = g.num_vertices();
  AttackResult result;
  result.faults = VertexSet(n);
  VertexSet alive = VertexSet::full(n);
  vid remaining = budget;
  Rng rng(seed);

  for (int round = 0; remaining > 0 && round < 1000; ++round) {
    const VertexSet piece = largest_component(g, alive);
    if (piece.count() < 4) break;
    // Diametral-ish pair: BFS from a random vertex, take the farthest,
    // BFS again (the classic double-sweep heuristic).
    const std::vector<vid> verts = piece.to_vector();
    const vid start = verts[rng.uniform(verts.size())];
    auto farthest = [&](vid from) {
      const auto dist = bfs_distances(g, piece, from);
      vid best = from;
      for (vid v : verts) {
        if (dist[v] != kUnreached && dist[v] > dist[best]) best = v;
      }
      return best;
    };
    const vid s = farthest(start);
    const vid t = farthest(s);
    if (s == t || g.has_edge(s, t)) break;
    const VertexSet separator = min_vertex_separator(g, piece, s, t);
    if (separator.empty() || separator.count() > remaining) break;
    result.faults |= separator;
    alive -= separator;
    remaining -= separator.count();
    result.rounds.push_back(separator.count());
  }
  result.budget_used = result.faults.count();
  return result;
}

AttackResult random_attack(const Graph& g, vid budget, std::uint64_t seed) {
  FNE_REQUIRE(budget <= g.num_vertices(), "budget exceeds graph size");
  Rng rng(seed);
  AttackResult result;
  result.faults = VertexSet(g.num_vertices());
  for (vid v : rng.sample_without_replacement(g.num_vertices(), budget)) result.faults.set(v);
  result.budget_used = budget;
  result.rounds.push_back(budget);
  return result;
}

}  // namespace fne
