// Churn processes (paper §1: "in peer-to-peer networks, users may leave
// without notice").
//
// A discrete-time leave/rejoin process over a fixed topology: at each
// step every alive node leaves with probability p_leave and every dead
// node rejoins with probability p_join.  The stationary alive fraction
// is p_join / (p_join + p_leave); the interesting observable is the time
// series of γ and of the largest component's expansion, which the CAN
// example and bench S2 track.
//
// ChurnProcess is the stepping core: it owns the alive mask and the RNG
// and advances one round at a time, so callers that do per-round work —
// ScenarioRunner::run_churn re-prunes every round through one persistent
// PruneEngine (DESIGN.md §6) — consume the exact same fault stream as the
// one-shot simulate_churn wrapper.  Same options + seed -> bit-identical
// alive masks, whichever driver is used.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "util/rng.hpp"

namespace fne {

struct ChurnStep {
  vid alive_count = 0;
  double gamma = 0.0;  ///< largest component / n
};

struct ChurnOptions {
  double p_leave = 0.02;
  double p_join = 0.18;
  int steps = 100;
  std::uint64_t seed = 7;
};

struct ChurnTrace {
  std::vector<ChurnStep> steps;
  VertexSet final_alive;
  [[nodiscard]] double min_gamma() const;
  [[nodiscard]] double mean_alive_fraction(vid n) const;
};

/// The stepping churn process.  Starts from all-alive.
class ChurnProcess {
 public:
  ChurnProcess(const Graph& g, const ChurnOptions& options);

  /// Advance one leave/rejoin round and return its observables.
  ChurnStep step();

  [[nodiscard]] const VertexSet& alive() const noexcept { return alive_; }
  [[nodiscard]] const ChurnOptions& options() const noexcept { return options_; }
  [[nodiscard]] int steps_taken() const noexcept { return taken_; }

 private:
  const Graph* g_;
  ChurnOptions options_;
  Rng rng_;
  VertexSet alive_;
  int taken_ = 0;
};

/// Run the churn process for options.steps rounds starting from all-alive.
[[nodiscard]] ChurnTrace simulate_churn(const Graph& g, const ChurnOptions& options = {});

}  // namespace fne
