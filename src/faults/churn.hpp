// Churn processes (paper §1: "in peer-to-peer networks, users may leave
// without notice").
//
// A discrete-time leave/rejoin process over a fixed topology: at each
// step every alive node leaves with probability p_leave and every dead
// node rejoins with probability p_join.  The stationary alive fraction
// is p_join / (p_join + p_leave); the interesting observable is the time
// series of γ and of the largest component's expansion, which the CAN
// example and bench S2 track.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct ChurnStep {
  vid alive_count = 0;
  double gamma = 0.0;  ///< largest component / n
};

struct ChurnOptions {
  double p_leave = 0.02;
  double p_join = 0.18;
  int steps = 100;
  std::uint64_t seed = 7;
};

struct ChurnTrace {
  std::vector<ChurnStep> steps;
  VertexSet final_alive;
  [[nodiscard]] double min_gamma() const;
  [[nodiscard]] double mean_alive_fraction(vid n) const;
};

/// Run the churn process starting from all-alive.
[[nodiscard]] ChurnTrace simulate_churn(const Graph& g, const ChurnOptions& options = {});

}  // namespace fne
