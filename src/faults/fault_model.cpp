#include "faults/fault_model.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

VertexSet random_node_faults(const Graph& g, double fault_probability, std::uint64_t seed) {
  FNE_REQUIRE(fault_probability >= 0.0 && fault_probability <= 1.0, "probability out of range");
  Rng rng(seed);
  VertexSet alive = VertexSet::full(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (rng.bernoulli(fault_probability)) alive.reset(v);
  }
  return alive;
}

EdgeMask random_edge_faults(const Graph& g, double fault_probability, std::uint64_t seed) {
  FNE_REQUIRE(fault_probability >= 0.0 && fault_probability <= 1.0, "probability out of range");
  Rng rng(seed);
  EdgeMask alive(g.num_edges(), true);
  for (eid e = 0; e < g.num_edges(); ++e) {
    if (rng.bernoulli(fault_probability)) alive.reset(e);
  }
  return alive;
}

VertexSet random_exact_node_faults(const Graph& g, vid faults, std::uint64_t seed) {
  FNE_REQUIRE(faults <= g.num_vertices(), "more faults than vertices");
  Rng rng(seed);
  VertexSet alive = VertexSet::full(g.num_vertices());
  for (vid v : rng.sample_without_replacement(g.num_vertices(), faults)) alive.reset(v);
  return alive;
}

}  // namespace fne
