// Diffusion load balancing on (faulty) networks — the paper's §1.3
// motivation: "if the expansion basically stays the same, the ability of
// a network to balance ... load basically stays the same" [Ghosh et al.,
// Anshelevich–Kempe–Kleinberg].
//
// First-order diffusion: each step every vertex sends (x_u - x_w)/(2Δ)
// along every alive edge (Δ = max alive degree).  The scheme converges
// geometrically with rate 1 - λ₂(L)/(2Δ); measuring rounds-to-balance on
// the pruned component H therefore probes exactly the quantity the
// paper's expansion guarantee is supposed to preserve.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct DiffusionResult {
  int rounds = 0;               ///< rounds until imbalance <= tolerance (or max_rounds)
  double final_imbalance = 0.0; ///< max |x_v - mean| at the end
  bool converged = false;
  std::vector<double> load;     ///< final load per original vertex (0 for dead)
};

struct DiffusionOptions {
  double tolerance = 0.01;  ///< stop when max deviation from mean <= tolerance * mean
  int max_rounds = 100000;
};

/// Run diffusion from an initial load (size = universe; entries at dead
/// vertices are ignored).  The alive subgraph must be connected.
[[nodiscard]] DiffusionResult diffuse_load(const Graph& g, const VertexSet& alive,
                                           const std::vector<double>& initial,
                                           const DiffusionOptions& options = {});

/// Convenience: all load starts on a single (alive) vertex.
[[nodiscard]] DiffusionResult diffuse_point_load(const Graph& g, const VertexSet& alive,
                                                 vid source, double total_load = 1.0,
                                                 const DiffusionOptions& options = {});

}  // namespace fne
