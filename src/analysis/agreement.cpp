#include "analysis/agreement.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

AgreementResult iterated_majority_agreement(const Graph& g, const VertexSet& alive,
                                            const VertexSet& byzantine,
                                            const AgreementOptions& options) {
  FNE_REQUIRE(byzantine.is_subset_of(alive), "Byzantine nodes must be alive");
  FNE_REQUIRE(options.initial_ones_fraction >= 0.0 && options.initial_ones_fraction <= 1.0,
              "initial fraction out of range");
  Rng rng(options.seed);
  const vid n = g.num_vertices();

  // Initial honest opinions; the majority bit is 1 iff fraction > 0.5.
  std::vector<std::uint8_t> bit(n, 0);
  AgreementResult result;
  vid ones = 0;
  alive.for_each_in_diff(byzantine, [&](vid v) {
    ++result.honest_total;
    if (rng.bernoulli(options.initial_ones_fraction)) {
      bit[v] = 1;
      ++ones;
    }
  });
  if (result.honest_total == 0) return result;
  const std::uint8_t majority = 2 * ones >= result.honest_total ? 1 : 0;
  const std::uint8_t minority = 1 - majority;

  // Byzantine nodes permanently report the minority bit.
  byzantine.for_each([&](vid v) { bit[v] = minority; });

  std::vector<std::uint8_t> next = bit;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    alive.for_each([&](vid v) {
      if (byzantine.test(v)) return;  // Byzantine: never updates
      int votes_one = bit[v] ? 1 : -1;
      for (vid w : g.neighbors(v)) {
        if (!alive.test(w)) continue;
        votes_one += bit[w] ? 1 : -1;
      }
      const std::uint8_t decision = votes_one > 0 ? 1 : (votes_one < 0 ? 0 : bit[v]);
      if (decision != bit[v]) changed = true;
      next[v] = decision;
    });
    alive.for_each_in_diff(byzantine, [&](vid v) { bit[v] = next[v]; });
    result.rounds = round + 1;
    if (!changed) {
      result.stabilized = true;
      break;
    }
  }

  alive.for_each_in_diff(byzantine, [&](vid v) {
    if (bit[v] == majority) ++result.agreeing_honest;
  });
  result.agreement_fraction =
      static_cast<double>(result.agreeing_honest) / static_cast<double>(result.honest_total);
  return result;
}

}  // namespace fne
