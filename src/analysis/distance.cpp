#include "analysis/distance.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

std::uint32_t exact_diameter(const Graph& g, const VertexSet& alive) {
  const std::vector<vid> verts = alive.to_vector();
  if (verts.size() < 2) return 0;
  std::uint32_t diameter = 0;
  for (vid v : verts) {
    const auto dist = bfs_distances(g, alive, v);
    for (vid w : verts) {
      FNE_REQUIRE(dist[w] != kUnreached, "exact_diameter requires a connected subgraph");
      diameter = std::max(diameter, dist[w]);
    }
  }
  return diameter;
}

DistanceSample sample_distances(const Graph& g, const VertexSet& alive, vid sources,
                                std::uint64_t seed) {
  DistanceSample result;
  const std::vector<vid> verts = alive.to_vector();
  if (verts.size() < 2) return result;
  Rng rng(seed);
  const vid count = std::min<vid>(sources, static_cast<vid>(verts.size()));
  const auto picks = rng.sample_without_replacement(static_cast<vid>(verts.size()), count);
  for (vid i : picks) {
    const auto dist = bfs_distances(g, alive, verts[i]);
    for (vid w : verts) {
      if (dist[w] == kUnreached || w == verts[i]) continue;
      result.max_distance = std::max(result.max_distance, dist[w]);
      result.distances.add(static_cast<double>(dist[w]));
    }
  }
  return result;
}

StretchResult distance_stretch(const Graph& g, const VertexSet& reference, const VertexSet& pruned,
                               vid pair_samples, std::uint64_t seed) {
  StretchResult result;
  const VertexSet common = reference & pruned;
  const std::vector<vid> verts = common.to_vector();
  if (verts.size() < 2) return result;
  Rng rng(seed);
  for (vid s = 0; s < pair_samples; ++s) {
    const vid a = verts[rng.uniform(verts.size())];
    const auto ref_dist = bfs_distances(g, reference, a);
    const auto pr_dist = bfs_distances(g, pruned, a);
    const vid b = verts[rng.uniform(verts.size())];
    if (a == b) continue;
    if (ref_dist[b] == kUnreached) continue;  // not comparable
    ++result.pairs;
    if (pr_dist[b] == kUnreached) {
      ++result.disconnected_pairs;
      continue;
    }
    const double ratio = static_cast<double>(pr_dist[b]) / static_cast<double>(ref_dist[b]);
    result.stretch.add(ratio);
    result.max_stretch = std::max(result.max_stretch, ratio);
  }
  return result;
}

}  // namespace fne
