// Fragmentation profiles: how a fault set shatters a graph
// (Theorems 2.3, 2.5, 3.1 all claim "breaks into sublinear components").
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct FragmentationProfile {
  vid largest = 0;                 ///< largest component size
  double gamma = 0.0;              ///< largest / n (original n)
  std::size_t num_components = 0;
  std::vector<vid> sizes_desc;     ///< all component sizes, descending
};

[[nodiscard]] FragmentationProfile fragmentation_profile(const Graph& g, const VertexSet& alive);

}  // namespace fne
