#include "analysis/routing.hpp"

#include <algorithm>
#include <deque>

#include "core/traversal.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

RoutingResult route_random_permutation(const Graph& g, const VertexSet& alive,
                                       std::uint64_t seed) {
  FNE_REQUIRE(is_connected(g, alive), "routing needs a connected alive subgraph");
  const std::vector<vid> verts = alive.to_vector();
  FNE_REQUIRE(verts.size() >= 2, "need >= 2 alive vertices to route");

  Rng rng(seed);
  std::vector<vid> destination = verts;
  rng.shuffle(std::span<vid>(destination));

  // Group demands by source to reuse one BFS per distinct source.
  RoutingResult result;
  std::vector<std::size_t> edge_load(g.num_edges(), 0);
  std::vector<std::uint32_t> dist;
  std::vector<vid> parent(g.num_vertices(), kInvalidVertex);
  std::vector<eid> parent_edge(g.num_vertices(), kInvalidEdge);
  double total_len = 0.0;

  for (std::size_t i = 0; i < verts.size(); ++i) {
    const vid source = verts[i];
    const vid target = destination[i];
    if (source == target) continue;
    // BFS with parent edges from source.
    dist.assign(g.num_vertices(), kUnreached);
    std::deque<vid> queue{source};
    dist[source] = 0;
    while (!queue.empty()) {
      const vid u = queue.front();
      queue.pop_front();
      if (u == target) break;  // early exit: parents up to target are set
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t a = 0; a < nbrs.size(); ++a) {
        const vid w = nbrs[a];
        if (!alive.test(w) || dist[w] != kUnreached) continue;
        dist[w] = dist[u] + 1;
        parent[w] = u;
        parent_edge[w] = eids[a];
        queue.push_back(w);
      }
    }
    FNE_REQUIRE(dist[target] != kUnreached, "connected subgraph must route every pair");
    result.max_path_length = std::max(result.max_path_length, dist[target]);
    total_len += dist[target];
    ++result.routed_pairs;
    for (vid cur = target; cur != source; cur = parent[cur]) {
      ++edge_load[parent_edge[cur]];
    }
  }

  std::size_t used_edges = 0;
  std::size_t total_load = 0;
  for (std::size_t load : edge_load) {
    if (load == 0) continue;
    ++used_edges;
    total_load += load;
    result.max_edge_load = std::max(result.max_edge_load, load);
  }
  result.average_edge_load =
      used_edges > 0 ? static_cast<double>(total_load) / static_cast<double>(used_edges) : 0.0;
  result.average_path_length =
      result.routed_pairs > 0 ? total_len / result.routed_pairs : 0.0;
  return result;
}

}  // namespace fne
