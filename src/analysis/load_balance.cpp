#include "analysis/load_balance.hpp"

#include <algorithm>
#include <cmath>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

DiffusionResult diffuse_load(const Graph& g, const VertexSet& alive,
                             const std::vector<double>& initial,
                             const DiffusionOptions& options) {
  FNE_REQUIRE(initial.size() == g.num_vertices(), "initial load size mismatch");
  FNE_REQUIRE(is_connected(g, alive), "diffusion needs a connected alive subgraph");
  const std::vector<vid> verts = alive.to_vector();
  FNE_REQUIRE(verts.size() >= 1, "no alive vertices");

  vid max_deg = 0;
  double total = 0.0;
  for (vid v : verts) {
    vid d = 0;
    for (vid w : g.neighbors(v)) {
      if (alive.test(w)) ++d;
    }
    max_deg = std::max(max_deg, d);
    total += initial[v];
  }
  const double mean = total / static_cast<double>(verts.size());
  const double rate = 1.0 / (2.0 * std::max<vid>(1, max_deg));

  DiffusionResult result;
  result.load = initial;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (!alive.test(v)) result.load[v] = 0.0;
  }

  std::vector<double> next = result.load;
  const double target = options.tolerance * std::max(std::fabs(mean), 1e-12);
  for (int round = 0; round < options.max_rounds; ++round) {
    double imbalance = 0.0;
    for (vid v : verts) imbalance = std::max(imbalance, std::fabs(result.load[v] - mean));
    result.final_imbalance = imbalance;
    if (imbalance <= target) {
      result.rounds = round;
      result.converged = true;
      return result;
    }
    for (vid v : verts) {
      double delta = 0.0;
      for (vid w : g.neighbors(v)) {
        if (alive.test(w)) delta += result.load[w] - result.load[v];
      }
      next[v] = result.load[v] + rate * delta;
    }
    for (vid v : verts) result.load[v] = next[v];
  }
  result.rounds = options.max_rounds;
  result.converged = false;
  return result;
}

DiffusionResult diffuse_point_load(const Graph& g, const VertexSet& alive, vid source,
                                   double total_load, const DiffusionOptions& options) {
  FNE_REQUIRE(alive.test(source), "point-load source must be alive");
  std::vector<double> initial(g.num_vertices(), 0.0);
  initial[source] = total_load;
  return diffuse_load(g, alive, initial, options);
}

}  // namespace fne
