// Distance/diameter analysis (paper §4: expansion α implies diameter
// O(α⁻¹ log n), and pruned meshes keep O(log n)-stretch paths).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "util/stats.hpp"

namespace fne {

/// Exact diameter of the alive subgraph (BFS from every alive vertex).
/// Returns 0 for < 2 vertices; requires the subgraph to be connected.
[[nodiscard]] std::uint32_t exact_diameter(const Graph& g, const VertexSet& alive);

/// Diameter lower bound + average distance from `sources` sampled BFS
/// runs (cheap for large graphs).
struct DistanceSample {
  std::uint32_t max_distance = 0;   ///< diameter lower bound
  RunningStats distances;           ///< all pairwise distances seen
};
[[nodiscard]] DistanceSample sample_distances(const Graph& g, const VertexSet& alive, vid sources,
                                              std::uint64_t seed);

/// Stretch of the pruned graph: ratio of distances in (g, pruned) vs
/// (g, reference) over sampled vertex pairs alive in both.
struct StretchResult {
  RunningStats stretch;             ///< per-pair ratio
  double max_stretch = 0.0;
  vid pairs = 0;
  vid disconnected_pairs = 0;       ///< pairs separated by the pruning
};
[[nodiscard]] StretchResult distance_stretch(const Graph& g, const VertexSet& reference,
                                             const VertexSet& pruned, vid pair_samples,
                                             std::uint64_t seed);

}  // namespace fne
