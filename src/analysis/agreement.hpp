// Almost-everywhere agreement on faulty networks (paper §1.3: "as long
// as the original network still has a large connected component of
// almost the same expansion, one can still achieve almost everywhere
// agreement" — Dwork–Peleg–Pippenger–Upfal, Upfal, Ben-Or–Ron).
//
// Protocol simulated here: synchronous iterated neighborhood majority.
// Every honest node starts with a bit; each round it adopts the majority
// of its (alive) closed neighborhood.  Byzantine nodes always report the
// global minority bit (the strongest static misinformation strategy for
// this dynamic).  On good expanders the honest majority bit floods the
// network and all but O(|Byzantine|) honest nodes agree; on poorly
// expanding graphs misinformation can hold territory.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct AgreementResult {
  int rounds = 0;               ///< rounds until stable (or max_rounds)
  bool stabilized = false;
  vid agreeing_honest = 0;      ///< honest nodes holding the initial majority bit
  vid honest_total = 0;
  double agreement_fraction = 0.0;  ///< agreeing / honest_total
};

struct AgreementOptions {
  int max_rounds = 200;
  /// Fraction of honest nodes initially holding bit 1; the protocol
  /// should converge to the initial majority.
  double initial_ones_fraction = 0.7;
  std::uint64_t seed = 7;
};

/// Run iterated majority on the alive subgraph with the given Byzantine
/// set (a subset of alive).  Returns how much of the honest population
/// ends on the initial-majority bit.
[[nodiscard]] AgreementResult iterated_majority_agreement(const Graph& g, const VertexSet& alive,
                                                          const VertexSet& byzantine,
                                                          const AgreementOptions& options = {});

}  // namespace fne
