// Static embeddings of a fault-free guest network into the surviving part
// of a faulty host (paper §1.2).
//
// An embedding maps guest vertices to alive host vertices and guest edges
// to alive host paths.  Its quality is measured by
//   load       — max guest vertices on one host vertex,
//   congestion — max guest paths through one host edge,
//   dilation   — longest guest-edge path;
// Leighton–Maggs–Rao: the host emulates any guest step with slowdown
// O(load + congestion + dilation).
//
// The embedding built here is the natural static one for same-topology
// emulation (guest = the fault-free graph, host = its pruned faulty
// self): each guest vertex goes to the nearest alive host vertex
// (multi-source BFS), each guest edge routes along a shortest alive path
// between the images.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/traversal.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct EmbeddingQuality {
  vid load = 0;
  std::size_t congestion = 0;
  std::uint32_t dilation = 0;
  double average_dilation = 0.0;
  /// Leighton–Maggs–Rao slowdown proxy: load + congestion + dilation.
  [[nodiscard]] std::size_t slowdown() const noexcept {
    return static_cast<std::size_t>(load) + congestion + dilation;
  }
};

struct SelfEmbedding {
  std::vector<vid> host_of;  ///< per guest vertex: its alive host image
  EmbeddingQuality quality;
};

/// Embed the fault-free graph g into its alive subgraph, which must be
/// nonempty and connected.  Guest vertices already alive map to
/// themselves; dead guest vertices map to a nearest alive vertex.
[[nodiscard]] SelfEmbedding embed_into_survivors(const Graph& g, const VertexSet& alive);

}  // namespace fne
