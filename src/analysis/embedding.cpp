#include "analysis/embedding.hpp"

#include <algorithm>
#include <deque>

#include "util/require.hpp"

namespace fne {

SelfEmbedding embed_into_survivors(const Graph& g, const VertexSet& alive) {
  FNE_REQUIRE(is_connected(g, alive), "host (alive subgraph) must be connected");
  const vid n = g.num_vertices();
  SelfEmbedding embedding;
  embedding.host_of.assign(n, kInvalidVertex);

  // Multi-source BFS from all alive vertices over the FULL graph: each
  // dead guest vertex adopts the nearest alive vertex as its image.
  // (Distances run through dead vertices — this is a guest-side
  // assignment, not a host path.)
  std::deque<vid> queue;
  alive.for_each([&](vid v) {
    embedding.host_of[v] = v;
    queue.push_back(v);
  });
  FNE_REQUIRE(!queue.empty(), "no alive vertices to embed into");
  while (!queue.empty()) {
    const vid u = queue.front();
    queue.pop_front();
    for (vid w : g.neighbors(u)) {
      if (embedding.host_of[w] == kInvalidVertex) {
        embedding.host_of[w] = embedding.host_of[u];
        queue.push_back(w);
      }
    }
  }
  // Guests in unreachable dead pockets (possible if the graph itself is
  // disconnected) map to an arbitrary alive vertex.
  const vid fallback = alive.first();
  for (vid v = 0; v < n; ++v) {
    if (embedding.host_of[v] == kInvalidVertex) embedding.host_of[v] = fallback;
  }

  // Load.
  std::vector<vid> load(n, 0);
  for (vid v = 0; v < n; ++v) ++load[embedding.host_of[v]];
  embedding.quality.load = *std::max_element(load.begin(), load.end());

  // Route every guest edge along a shortest alive path between images;
  // accumulate per-host-edge congestion and the dilation statistics.
  std::vector<std::size_t> edge_use(g.num_edges(), 0);
  std::vector<std::uint32_t> dist;
  std::vector<vid> parent(n, kInvalidVertex);
  double total_dilation = 0.0;
  std::size_t routed = 0;

  // Group guest edges by source image to reuse one BFS per source.
  std::vector<std::vector<vid>> targets_of(n);
  for (const Edge& e : g.edges()) {
    const vid a = embedding.host_of[e.u];
    const vid b = embedding.host_of[e.v];
    if (a == b) {
      ++routed;  // zero-length path
      continue;
    }
    targets_of[a].push_back(b);
  }
  for (vid source = 0; source < n; ++source) {
    if (targets_of[source].empty()) continue;
    // BFS with parents over the alive subgraph.
    dist.assign(n, kUnreached);
    std::fill(parent.begin(), parent.end(), kInvalidVertex);
    std::deque<vid> bfs{source};
    dist[source] = 0;
    while (!bfs.empty()) {
      const vid u = bfs.front();
      bfs.pop_front();
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid w = nbrs[i];
        if (!alive.test(w) || dist[w] != kUnreached) continue;
        dist[w] = dist[u] + 1;
        parent[w] = u;
        bfs.push_back(w);
      }
      (void)eids;
    }
    for (vid target : targets_of[source]) {
      FNE_REQUIRE(dist[target] != kUnreached, "host images must be mutually reachable");
      embedding.quality.dilation = std::max(embedding.quality.dilation, dist[target]);
      total_dilation += dist[target];
      ++routed;
      // Walk the path back, charging each host edge.
      vid cur = target;
      while (cur != source) {
        const vid prev = parent[cur];
        // Find the undirected edge id between prev and cur.
        const auto nbrs = g.neighbors(prev);
        const auto eids = g.incident_edges(prev);
        const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), cur);
        ++edge_use[eids[static_cast<std::size_t>(it - nbrs.begin())]];
        cur = prev;
      }
    }
  }
  embedding.quality.congestion =
      edge_use.empty() ? 0 : *std::max_element(edge_use.begin(), edge_use.end());
  embedding.quality.average_dilation =
      routed > 0 ? total_dilation / static_cast<double>(routed) : 0.0;
  return embedding;
}

}  // namespace fne
