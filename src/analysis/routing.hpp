// Shortest-path permutation routing (paper §1.3: "the ability of a
// network to route information is preserved because it is closely
// related to its expansion" [Scheideler]).
//
// Workload: a random permutation π of the alive vertices; every v sends
// one unit to π(v) along a BFS shortest path.  The reported congestion
// (max load on any edge) is the classic proxy for routing capacity; on a
// network of edge expansion α_e a random permutation needs max-edge-load
// Ω(1/α_e) on average, so preserved expansion ⇔ preserved congestion.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "util/stats.hpp"

namespace fne {

struct RoutingResult {
  std::size_t max_edge_load = 0;     ///< congestion
  double average_edge_load = 0.0;    ///< over used edges
  std::uint32_t max_path_length = 0; ///< dilation of the demand set
  double average_path_length = 0.0;
  vid routed_pairs = 0;
};

/// Route a random permutation of the alive vertices along BFS shortest
/// paths.  The alive subgraph must be connected.
[[nodiscard]] RoutingResult route_random_permutation(const Graph& g, const VertexSet& alive,
                                                     std::uint64_t seed);

}  // namespace fne
