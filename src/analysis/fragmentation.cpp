#include "analysis/fragmentation.hpp"

#include <algorithm>

#include "core/traversal.hpp"

namespace fne {

FragmentationProfile fragmentation_profile(const Graph& g, const VertexSet& alive) {
  FragmentationProfile profile;
  const Components comps = connected_components(g, alive);
  profile.num_components = comps.count();
  profile.sizes_desc = comps.sizes;
  std::sort(profile.sizes_desc.begin(), profile.sizes_desc.end(), std::greater<>());
  profile.largest = profile.sizes_desc.empty() ? 0 : profile.sizes_desc.front();
  profile.gamma = g.num_vertices() == 0
                      ? 0.0
                      : static_cast<double>(profile.largest) / static_cast<double>(g.num_vertices());
  return profile;
}

}  // namespace fne
