// Deterministic pseudo-random number generation.
//
// Everything random in fne flows through Rng (xoshiro256**) seeded through
// splitmix64.  Monte-Carlo layers derive one independent stream per trial
// with Rng::fork(trial_index), so results are bit-identical regardless of
// the number of OpenMP threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace fne {

/// splitmix64 step: the canonical 64-bit mixer, used for seeding and for
/// deriving independent streams.  Passes BigCrush when used as a PRNG.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Small, fast, high quality; state is four
/// 64-bit words fully determined by the seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derive an independent generator for sub-stream `index` (e.g. one
  /// Monte-Carlo trial).  Streams for distinct indices are decorrelated
  /// by passing (seed, index) through splitmix64 twice.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL + index);
    std::uint64_t s = splitmix64(sm);
    (void)splitmix64(sm);
    return Rng(s ^ splitmix64(sm));
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound).  Uses Lemire's nearly-divisionless
  /// unbiased method.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    FNE_REQUIRE(lo <= hi, "empty integer range");
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct values from [0, n) (order unspecified).
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                                      std::uint32_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace fne
