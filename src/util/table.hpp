// ASCII table and CSV output for experiment tables.
//
// Every bench binary prints its result as a Table so EXPERIMENTS.md rows can
// be pasted verbatim; the same data can be dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fne {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(unsigned value) { return cell(static_cast<std::size_t>(value)); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Render as a markdown-style aligned table.
  void print(std::ostream& os) const;
  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: "value ± ci" with sensible precision.
[[nodiscard]] std::string format_pm(double value, double halfwidth, int precision = 4);

}  // namespace fne
