#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace fne {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FNE_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  FNE_REQUIRE(!rows_.empty(), "call row() before cell()");
  FNE_REQUIRE(rows_.back().size() < headers_.size(), "row has more cells than headers");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  }
}

std::string format_pm(double value, double halfwidth, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value << " ± " << std::setprecision(2) << halfwidth;
  return os.str();
}

}  // namespace fne
