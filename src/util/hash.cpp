#include "util/hash.hpp"

namespace fne {

Fnv1a& Fnv1a::bytes(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) byte(p[i]);
  return *this;
}

std::uint64_t fnv1a(std::string_view s) noexcept { return Fnv1a{}.text(s).value(); }

std::uint64_t mask_hash(const VertexSet& s) noexcept {
  Fnv1a h;
  h.word(s.universe_size());
  for (std::size_t w = 0; w < s.num_words(); ++w) h.word(s.word(w));
  return h.value();
}

Hash128 fnv1a_128(std::string_view s) noexcept {
  // The second stream runs the same FNV-1a recurrence from a different
  // basis (the canonical basis with its halves swapped), so the two words
  // never agree by construction on non-trivial input.
  constexpr std::uint64_t kAltBasis = 0x84222325cbf29ce4ULL;
  return {Fnv1a{kFnvOffsetBasis}.text(s).value(), Fnv1a{kAltBasis}.text(s).value()};
}

}  // namespace fne
