// Minimal JSON emission for machine-readable results.
//
// Bench binaries (--json=out.json) and the scenario_runner CLI emit flat
// report files — top-level scalars (workload, millis, speedup, thread
// count) plus named arrays of flat records — so a perf trajectory is a
// diffable artifact, not a scrollback screenshot.  Emission only: nothing
// in the library parses JSON, so no third-party dependency is warranted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fne {

/// Flat JSON object: insertion-ordered key -> already-encoded value.
class JsonObject {
 public:
  JsonObject& put(const std::string& key, const std::string& value) {
    return raw(key, "\"" + escape(value) + "\"");
  }
  JsonObject& put(const std::string& key, const char* value) {
    return put(key, std::string(value));
  }
  JsonObject& put(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    return raw(key, os.str());
  }
  JsonObject& put(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& put(const std::string& key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& put(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& put(const std::string& key, int value) {
    return put(key, static_cast<std::int64_t>(value));
  }

  [[nodiscard]] std::string dump() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonObject& raw(const std::string& key, std::string encoded) {
    fields_.emplace_back(key, std::move(encoded));
    return *this;
  }
  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A report = one top-level object plus named arrays of flat records.
class JsonReport {
 public:
  explicit JsonReport(std::string name) { top_.put("name", std::move(name)); }

  [[nodiscard]] JsonObject& top() noexcept { return top_; }

  /// Append a record to the named array (created on first use).
  [[nodiscard]] JsonObject& record(const std::string& array) {
    for (auto& [name, rows] : arrays_) {
      if (name == array) {
        rows.emplace_back();
        return rows.back();
      }
    }
    arrays_.emplace_back(array, std::vector<JsonObject>{});
    arrays_.back().second.emplace_back();
    return arrays_.back().second.back();
  }

  [[nodiscard]] std::string dump() const {
    std::string body = top_.dump();
    body.pop_back();  // reopen the top object to splice the arrays in
    for (const auto& [name, rows] : arrays_) {
      body += ", \"" + name + "\": [";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) body += ", ";
        body += rows[i].dump();
      }
      body += "]";
    }
    return body + "}";
  }

  /// Write to `path`; returns false (with a note on stderr) on IO failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write json report to " << path << "\n";
      return false;
    }
    out << dump() << "\n";
    // Status goes to stderr: stdout may itself be a machine-readable
    // stream (--csv, --json) that a note would corrupt.
    std::cerr << "(json written to " << path << ")\n";
    return true;
  }

 private:
  JsonObject top_;
  std::vector<std::pair<std::string, std::vector<JsonObject>>> arrays_;
};

}  // namespace fne
