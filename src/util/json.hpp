// Minimal JSON for machine-readable results and campaign files.
//
// Emission: bench binaries (--json=out.json), the scenario_runner CLI and
// CampaignReport emit report files — top-level scalars (workload, millis,
// speedup, thread count) plus named arrays of records — so a perf
// trajectory is a diffable artifact, not a scrollback screenshot.
//
// Parsing: JsonValue::parse is a small recursive-descent reader covering
// the whole of JSON (RFC 8259 minus \u surrogate pairs), added for
// campaign files (api/campaign.hpp): a campaign is declarative data, and
// flags stop scaling at "a list of scenarios".  Both directions live here
// so no third-party dependency is warranted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fne {

/// Flat JSON object: insertion-ordered key -> already-encoded value.
class JsonObject {
 public:
  JsonObject& put(const std::string& key, const std::string& value) {
    // Append form: the operator+ chain trips GCC 12's bogus -Wrestrict
    // diagnostic (PR 105329) at some inline sites.
    std::string encoded = "\"";
    encoded += escape(value);
    encoded += "\"";
    return raw(key, std::move(encoded));
  }
  JsonObject& put(const std::string& key, const char* value) {
    return put(key, std::string(value));
  }
  JsonObject& put(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    return raw(key, os.str());
  }
  JsonObject& put(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& put(const std::string& key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& put(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& put(const std::string& key, int value) {
    return put(key, static_cast<std::int64_t>(value));
  }
  /// Splice an ALREADY-ENCODED JSON value (an object/array dump) under
  /// `key` — the nesting hook CampaignReport uses to compose sub-objects.
  JsonObject& put_json(const std::string& key, std::string encoded) {
    return raw(key, std::move(encoded));
  }
  /// Splice `values` as a JSON array of numbers.
  JsonObject& put_numbers(const std::string& key, const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      std::ostringstream os;
      os.precision(12);
      os << values[i];
      out += os.str();
    }
    return raw(key, out + "]");
  }

  [[nodiscard]] std::string dump() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += escape(fields_[i].first);
      out += "\": ";
      out += fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonObject& raw(const std::string& key, std::string encoded) {
    fields_.emplace_back(key, std::move(encoded));
    return *this;
  }
  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A report = one top-level object plus named arrays of flat records.
class JsonReport {
 public:
  explicit JsonReport(std::string name) { top_.put("name", std::move(name)); }

  [[nodiscard]] JsonObject& top() noexcept { return top_; }

  /// Append a record to the named array (created on first use).
  [[nodiscard]] JsonObject& record(const std::string& array) {
    for (auto& [name, rows] : arrays_) {
      if (name == array) {
        rows.emplace_back();
        return rows.back();
      }
    }
    arrays_.emplace_back(array, std::vector<JsonObject>{});
    arrays_.back().second.emplace_back();
    return arrays_.back().second.back();
  }

  [[nodiscard]] std::string dump() const {
    std::string body = top_.dump();
    body.pop_back();  // reopen the top object to splice the arrays in
    for (const auto& [name, rows] : arrays_) {
      body += ", \"" + name + "\": [";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) body += ", ";
        body += rows[i].dump();
      }
      body += "]";
    }
    return body + "}";
  }

  /// Write to `path`; returns false (with a note on stderr) on IO failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write json report to " << path << "\n";
      return false;
    }
    out << dump() << "\n";
    // Status goes to stderr: stdout may itself be a machine-readable
    // stream (--csv, --json) that a note would corrupt.
    std::cerr << "(json written to " << path << ")\n";
    return true;
  }

 private:
  JsonObject top_;
  std::vector<std::pair<std::string, std::vector<JsonObject>>> arrays_;
};

/// A parsed JSON document node.  Object members keep their source order;
/// lookups REQUIRE-fail with the offending key/kind in the message, so a
/// malformed campaign file names its problem instead of defaulting.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  /// Parse a complete document (REQUIREs valid JSON and no trailing
  /// garbage; the error names the byte offset).
  [[nodiscard]] static JsonValue parse(const std::string& text);
  /// Parse the file at `path` (REQUIREs it to exist and parse).
  [[nodiscard]] static JsonValue parse_file(const std::string& path);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; REQUIRE the matching kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< REQUIREs an integral number
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;   ///< array elements
  [[nodiscard]] const std::vector<Member>& members() const;    ///< object members

  // Object conveniences.
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue* find(const std::string& key) const;  ///< nullptr if absent
  [[nodiscard]] const JsonValue& at(const std::string& key) const;    ///< REQUIREs presence

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace fne
