#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace fne {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace fne
