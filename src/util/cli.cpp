#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "util/require.hpp"

namespace fne {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "1";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

int Cli::get_threads(int fallback) const {
  auto threads = static_cast<int>(get_int("threads", fallback));
  if (threads == 0) {
    threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  FNE_REQUIRE(threads >= 1, "--threads must be >= 1");
  return threads;
}

std::vector<double> Cli::get_double_list(const std::string& key,
                                         const std::string& fallback_spec) const {
  return parse_double_list(get(key, fallback_spec));
}

std::vector<double> parse_double_list(const std::string& spec) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      FNE_REQUIRE(end != nullptr && *end == '\0' && end != token.c_str(),
                  "bad number '" + token + "' in list '" + spec + "'");
      out.push_back(v);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string json_flag_path(const Cli& cli, const std::string& fallback) {
  const std::string path = cli.get("json", fallback);
  return path == "1" ? fallback : path;
}

}  // namespace fne
