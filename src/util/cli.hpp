// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports --key=value and --flag forms.  Unknown keys are kept so that
// google-benchmark's own flags can pass through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace fne {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::uint64_t get_seed(std::uint64_t fallback = 42) const {
    return static_cast<std::uint64_t>(get_int("seed", static_cast<std::int64_t>(fallback)));
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fne
