// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports --key=value and --flag forms.  Unknown keys are kept so that
// google-benchmark's own flags can pass through untouched.  The shared
// conventions every driver used to hand-roll live here once: --seed,
// --threads (0/absent = hardware), comma-separated value lists, and the
// --json[=path] resolution (bare flag -> caller's default filename).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fne {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::uint64_t get_seed(std::uint64_t fallback = 42) const {
    return static_cast<std::uint64_t>(get_int("seed", static_cast<std::int64_t>(fallback)));
  }
  /// --threads=N resolved to a worker count: REQUIREs N >= 1; absent (or
  /// explicit 0) falls back to `fallback`, itself 0 meaning "hardware
  /// concurrency" (at least 1).
  [[nodiscard]] int get_threads(int fallback = 0) const;
  /// Comma-separated doubles ("0.05,0.1,0.2"); absent key parses
  /// `fallback_spec` instead.  REQUIREs every token to parse.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                    const std::string& fallback_spec) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parse a comma-separated double list (the wire format of sweep values).
[[nodiscard]] std::vector<double> parse_double_list(const std::string& spec);

/// Resolve --json[=path]: bare `--json` parses as the value "1" and means
/// "use the caller's default filename"; --json=path wins.
[[nodiscard]] std::string json_flag_path(const Cli& cli, const std::string& fallback);

}  // namespace fne
