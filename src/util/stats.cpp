#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace fne {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.96 * stderr_mean(); }

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double quantile(std::vector<double> values, double q) {
  FNE_REQUIRE(!values.empty(), "quantile of empty sample");
  FNE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  FNE_REQUIRE(x.size() == y.size() && x.size() >= 2, "need >= 2 matched points for a line fit");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom != 0.0) {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  } else {
    fit.intercept = sy / n;
  }
  return fit;
}

}  // namespace fne
