#include "util/rng.hpp"

#include <numeric>

namespace fne {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: multiply-shift with rejection only in the biased sliver.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  FNE_REQUIRE(k <= n, "cannot sample more elements than the population size");
  // Selection sampling for sparse k; partial Fisher–Yates otherwise.
  if (static_cast<std::uint64_t>(k) * 8 < n) {
    // Floyd's algorithm: O(k) expected, no O(n) allocation.
    std::vector<std::uint32_t> result;
    result.reserve(k);
    // A tiny open-addressing set over the chosen values.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    for (std::uint32_t j = n - k; j < n; ++j) {
      auto t = static_cast<std::uint32_t>(uniform(j + 1));
      bool dup = false;
      for (std::uint32_t c : chosen) {
        if (c == t) {
          dup = true;
          break;
        }
      }
      const std::uint32_t pick = dup ? j : t;
      chosen.push_back(pick);
      result.push_back(pick);
    }
    return result;
  }
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0U);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace fne
