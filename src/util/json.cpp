#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/require.hpp"

namespace fne {

/// Recursive-descent reader over the whole input; positions reported in
/// byte offsets.  Depth is capped so a pathological file cannot blow the
/// stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[nodiscard]] JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    FNE_REQUIRE(pos_ == text_.size(), err("trailing characters after the JSON document"));
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] std::string err(const std::string& what) const {
    return "json: " + what + " (at byte " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    FNE_REQUIRE(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    FNE_REQUIRE(peek() == c, err(std::string("expected '") + c + "', got '" + text_[pos_] + "'"));
    ++pos_;
  }

  [[nodiscard]] bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  [[nodiscard]] JsonValue parse_value(int depth) {
    FNE_REQUIRE(depth < kMaxDepth, err("nesting deeper than 64 levels"));
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        v.kind_ = JsonValue::Kind::kObject;
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          FNE_REQUIRE(peek() == '"', err("object keys must be strings"));
          std::string key = parse_string_body();
          expect(':');
          JsonValue member = parse_value(depth + 1);
          for (const auto& [k, unused] : v.members_) {
            FNE_REQUIRE(k != key, err("duplicate object key '" + key + "'"));
          }
          v.members_.emplace_back(std::move(key), std::move(member));
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind_ = JsonValue::Kind::kArray;
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.items_.push_back(parse_value(depth + 1));
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string_body();
        return v;
      case 't':
        FNE_REQUIRE(consume_literal("true"), err("bad literal"));
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        FNE_REQUIRE(consume_literal("false"), err("bad literal"));
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        FNE_REQUIRE(consume_literal("null"), err("bad literal"));
        return v;  // null
      default:
        return parse_number();
    }
  }

  [[nodiscard]] std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      FNE_REQUIRE(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      FNE_REQUIRE(pos_ < text_.size(), err("unterminated escape"));
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          FNE_REQUIRE(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              FNE_REQUIRE(false, err("bad \\u escape digit"));
            }
          }
          // BMP only (no surrogate pairs) — plenty for config files.
          FNE_REQUIRE(code < 0xD800 || code > 0xDFFF, err("surrogate \\u escapes unsupported"));
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          FNE_REQUIRE(false, err(std::string("bad escape '\\") + e + "'"));
      }
    }
  }

  [[nodiscard]] JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    FNE_REQUIRE(pos_ > start, err("expected a value"));
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    FNE_REQUIRE(end != nullptr && *end == '\0' && end != token.c_str(),
                "json: bad number '" + token + "' (at byte " + std::to_string(start) + ")");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

namespace {

[[nodiscard]] const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path);
  FNE_REQUIRE(static_cast<bool>(in), "cannot open json file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool JsonValue::as_bool() const {
  FNE_REQUIRE(kind_ == Kind::kBool, std::string("json: expected bool, got ") + kind_name(kind_));
  return bool_;
}

double JsonValue::as_number() const {
  FNE_REQUIRE(kind_ == Kind::kNumber,
              std::string("json: expected number, got ") + kind_name(kind_));
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(d);
  FNE_REQUIRE(static_cast<double>(i) == d, "json: expected an integer, got a fraction");
  return i;
}

const std::string& JsonValue::as_string() const {
  FNE_REQUIRE(kind_ == Kind::kString,
              std::string("json: expected string, got ") + kind_name(kind_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  FNE_REQUIRE(kind_ == Kind::kArray, std::string("json: expected array, got ") + kind_name(kind_));
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  FNE_REQUIRE(kind_ == Kind::kObject,
              std::string("json: expected object, got ") + kind_name(kind_));
  return members_;
}

bool JsonValue::has(const std::string& key) const { return find(key) != nullptr; }

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    std::string keys;
    for (const auto& [k, unused] : members()) {
      if (!keys.empty()) keys += ", ";
      keys += k;
    }
    FNE_REQUIRE(false, "json: missing key '" + key + "' (present: " +
                           (keys.empty() ? "none" : keys) + ")");
  }
  return *v;
}

}  // namespace fne
