// Wall-clock timing for experiment harnesses.
#pragma once

#include <chrono>

namespace fne {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() noexcept { start_ = clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fne
