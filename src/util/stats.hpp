// Streaming statistics for Monte-Carlo experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace fne {

/// Welford's online mean/variance accumulator.  Numerically stable; merging
/// two accumulators (for OpenMP reductions) is supported via merge().
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Chan et al. parallel merge of two Welford accumulators.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;       ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double stderr_mean() const noexcept;    ///< stddev / sqrt(n)
  /// Half-width of the ~95% normal confidence interval of the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of the data (nth_element; does not modify the input).
[[nodiscard]] double median(std::vector<double> values);

/// q-th quantile (0 <= q <= 1) by linear interpolation on sorted data.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Ordinary least squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace fne
