// FNV-1a hashing helpers (DESIGN.md §8, §11).
//
// One hash family, used in two places with the same byte discipline:
//
//   * report payloads — mask_hash() is the order-sensitive survivor-set
//     identity campaign reports emit ("survivor_hash"), formerly a local
//     helper in api/campaign.cpp;
//   * the result store — content keys hash the canonical cell
//     description (store/key.hpp) and record frames carry an FNV-1a
//     checksum over their key+payload bytes (store/result_store.cpp).
//
// FNV-1a is not cryptographic; both uses pair the hash with the full
// source bytes (the payload next to its hash, the key string inside the
// record), so a collision can confuse nothing — it only costs a
// recompute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/vertex_set.hpp"

namespace fne {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Streaming 64-bit FNV-1a.  Feed bytes in any mix of granularities; the
/// digest is a pure function of the byte sequence (words are consumed
/// low byte first, so the stream is endianness-independent).
class Fnv1a {
 public:
  constexpr explicit Fnv1a(std::uint64_t basis = kFnvOffsetBasis) noexcept : h_(basis) {}

  constexpr Fnv1a& byte(std::uint8_t b) noexcept {
    h_ = (h_ ^ b) * kFnvPrime;
    return *this;
  }
  /// 8 bytes, low byte first (the mask_hash word discipline).
  constexpr Fnv1a& word(std::uint64_t w) noexcept {
    for (int b = 0; b < 8; ++b) byte(static_cast<std::uint8_t>((w >> (8 * b)) & 0xFF));
    return *this;
  }
  Fnv1a& bytes(const void* data, std::size_t len) noexcept;
  Fnv1a& text(std::string_view s) noexcept { return bytes(s.data(), s.size()); }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_;
};

/// One-shot FNV-1a of a byte string.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// Order-sensitive identity of a VertexSet: FNV-1a over the universe size
/// followed by the packed words, each as 8 low-first bytes.  A strong,
/// cheap "same set, bit for bit" fingerprint — the campaign payload's
/// survivor_hash field.
[[nodiscard]] std::uint64_t mask_hash(const VertexSet& s) noexcept;

/// Two independent 64-bit FNV-1a streams over the same bytes (distinct
/// offset bases), giving a 128-bit content key for the result store.
/// Collisions are astronomically unlikely AND harmless: the store keeps
/// the full key string in every record and verifies it on lookup.
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Hash128&, const Hash128&) = default;
};
[[nodiscard]] Hash128 fnv1a_128(std::string_view s) noexcept;

}  // namespace fne
