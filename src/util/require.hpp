// Precondition checking for the fne library.
//
// FNE_REQUIRE is used at public API boundaries: it is always on (also in
// release builds) because almost every algorithm in this library has
// correctness preconditions (graph connectivity, size limits on exact
// solvers, probability ranges) whose violation would produce silently
// wrong science rather than a crash.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fne {

/// Error thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "FNE_REQUIRE failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace fne

#define FNE_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fne::detail::require_failed(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                       \
  } while (false)
