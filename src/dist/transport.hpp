// Byte transports for the distributed campaign runtime (DESIGN.md §12).
//
// Transport is the minimal surface the protocol needs: send all-or-fail,
// receive with a deadline, and a thread-safe shutdown() that wakes a
// blocked peer.  TcpTransport implements it over a poll()-guarded socket
// (loopback or LAN); FaultyTransport wraps any transport and injects a
// DETERMINISTIC fault schedule on the send path — drop, corrupt,
// truncate-then-disconnect, delay, disconnect — driven by a seeded Rng
// per send index, so every chaos test names its failure mode as data and
// replays it exactly.
//
// Fault injection lives on the SEND side of the wrapped endpoint: a
// worker wrapped in FaultyTransport emits garbage/nothing toward the
// coordinator, which is precisely the surface whose robustness the
// design must prove (the coordinator never trusts, always verifies, and
// re-runs what it cannot verify).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace fne {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Send all of `bytes`.  False when the connection is gone (the caller
  /// treats any failure as a dead peer; there are no partial sends at
  /// this level — a short write becomes false after retrying).
  virtual bool send(std::string_view bytes) = 0;

  /// Receive up to `max` bytes within `timeout_ms`.
  ///   > 0  bytes received
  ///   0    clean EOF (peer closed)
  ///   -1   timeout (no data; connection may still be fine)
  ///   -2   error / connection reset
  virtual int recv(char* out, std::size_t max, int timeout_ms) = 0;

  /// Close the underlying descriptor.  Thread-safe; a peer blocked in
  /// recv() on this transport wakes with an error.
  virtual void shutdown() = 0;
};

/// Listening socket handle (RAII).  port() reports the bound port, which
/// is the ephemeral one the kernel picked when opened with port 0 — the
/// tests' way to run coordinator and workers in one process with no
/// fixed-port collisions.
class TcpListener {
 public:
  /// Bind + listen on host:port.  REQUIRE-fails on address errors (a
  /// mis-typed bind address is a config bug, not a runtime fault).
  TcpListener(const std::string& host, int port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] int port() const noexcept { return port_; }
  /// Accept one connection within timeout_ms; nullptr on timeout or
  /// (post-shutdown) closure.
  [[nodiscard]] std::unique_ptr<Transport> accept(int timeout_ms);
  /// Thread-safe close; a blocked accept() returns nullptr.
  void shutdown();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connect to host:port within timeout_ms; nullptr on refusal/timeout
/// (the worker's reconnect loop treats that as retryable, not fatal).
[[nodiscard]] std::unique_ptr<Transport> tcp_connect(const std::string& host, int port,
                                                     int timeout_ms);

/// One seeded failure schedule.  Probabilities are per send(); at most
/// one fault fires per send (checked in the order below).  skip_sends
/// lets the handshake through so the faulty endpoint is registered
/// before it starts misbehaving.
struct FaultSchedule {
  std::uint64_t seed = 0;
  int skip_sends = 2;          ///< let the first N sends through untouched
  double drop = 0.0;           ///< silently discard the frame
  double corrupt = 0.0;        ///< flip one byte, then send
  double truncate = 0.0;       ///< send a strict prefix, then shutdown
  double disconnect = 0.0;     ///< shutdown instead of sending
  double delay = 0.0;          ///< sleep delay_ms before sending
  int delay_ms = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0 || corrupt > 0 || truncate > 0 || disconnect > 0 || delay > 0;
  }
};

/// Deterministic fault injector around another transport (send side).
class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultSchedule schedule);

  bool send(std::string_view bytes) override;
  int recv(char* out, std::size_t max, int timeout_ms) override;
  void shutdown() override;

 private:
  std::unique_ptr<Transport> inner_;
  FaultSchedule schedule_;
  Rng rng_;
  std::uint64_t sends_ = 0;
};

}  // namespace fne
