#include "dist/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dist/message.hpp"
#include "dist/transport.hpp"
#include "store/record.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fne {

namespace {

constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);
constexpr int kHandshakeTimeoutMs = 5000;

enum class JobState : std::uint8_t {
  kBlocked,  ///< metric job waiting for its parent cell
  kPending,  ///< schedulable (subject to backoff eligibility)
  kLeased,   ///< assigned; session == 0 means the local executor
  kDone,     ///< merged into the plan
};

struct JobSlot {
  JobState state = JobState::kPending;
  int attempts = 0;          ///< failed/expired remote assignments so far
  double eligible_at = 0.0;  ///< remote retry gate (backoff)
  double deadline = 0.0;     ///< lease expiry (kLeased, remote only)
  double lease_start = 0.0;
  std::uint64_t session = 0;
};

}  // namespace

struct DistCoordinator::Impl {
  Campaign campaign;
  DistOptions opts;
  ResultStore* store = nullptr;
  TcpListener listener;
  Timer clock;

  std::unique_ptr<CampaignPlan> plan;
  mutable std::mutex m;
  std::condition_variable cv;
  std::vector<JobSlot> slots;
  std::vector<std::vector<std::size_t>> children;  ///< cell -> metric jobs
  std::size_t open_jobs = 0;
  int workers_connected = 0;
  bool ever_worker = false;
  bool started = false;
  bool finished = false;
  double last_activity = 0.0;  ///< last assignment or merge (starvation guard)
  std::exception_ptr failure;  ///< local compute threw: campaign bug, rethrown
  std::uint64_t next_session = 1;
  DistStats stats;
  std::vector<std::thread> session_threads;  ///< appended by acceptor only

  Impl(Campaign c, DistOptions o, ResultStore* s)
      : campaign(std::move(c)), opts(o), store(s), listener(o.bind, o.port) {
    FNE_REQUIRE(opts.local_threads >= 1,
                "dist: local_threads must be >= 1 (the termination guarantee)");
    FNE_REQUIRE(opts.job_timeout_ms > 0 && opts.lease_cap_ms >= opts.job_timeout_ms,
                "dist: need 0 < job_timeout_ms <= lease_cap_ms");
    FNE_REQUIRE(opts.retry_budget >= 1, "dist: retry_budget must be >= 1");
    FNE_REQUIRE(opts.poll_ms >= 1, "dist: poll_ms must be >= 1");
  }

  [[nodiscard]] double now() const { return clock.millis(); }

  [[nodiscard]] bool is_finished() {
    std::lock_guard<std::mutex> lk(m);
    return finished;
  }

  /// Exponential backoff with seeded jitter: a pure function of
  /// (backoff_seed, job, attempt), so a replayed fault schedule replays
  /// its retry timing too.
  [[nodiscard]] double backoff_ms(std::size_t job, int attempt) const {
    const int exponent = std::min(attempt - 1, 20);
    const double raw = opts.backoff_base_ms * static_cast<double>(1ull << exponent);
    const double capped = std::min(raw, opts.backoff_max_ms);
    Rng base(opts.backoff_seed);
    const double u = base.fork(job * 64 + static_cast<std::uint64_t>(attempt)).uniform01();
    return capped * (0.5 + 0.5 * u);
  }

  void requeue_locked(std::size_t i, double t) {
    JobSlot& s = slots[i];
    if (s.state != JobState::kLeased) return;
    s.state = JobState::kPending;
    s.session = 0;
    s.attempts += 1;
    s.eligible_at = t + backoff_ms(i, s.attempts);
    ++stats.requeues;
    cv.notify_all();
  }

  /// Return every lease held by a vanished/expired session to pending.
  void requeue_session_locked(std::uint64_t sid, double t) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].state == JobState::kLeased && slots[i].session == sid) requeue_locked(i, t);
    }
  }

  void reap_locked(double t) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      JobSlot& s = slots[i];
      if (s.state == JobState::kLeased && s.session != 0 && s.deadline < t) {
        ++stats.timeouts;
        requeue_locked(i, t);
      }
    }
  }

  /// Next job assignable to a remote worker, or kNoJob.  `retry_hint_ms`
  /// gets the WAIT suggestion when nothing is assignable yet.
  [[nodiscard]] std::size_t pick_remote_locked(double t, std::uint64_t& retry_hint_ms) const {
    double earliest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const JobSlot& s = slots[i];
      if (s.state != JobState::kPending || s.attempts >= opts.retry_budget) continue;
      if (s.eligible_at <= t) return i;
      earliest = std::min(earliest, s.eligible_at);
    }
    const double wait =
        std::isfinite(earliest) ? earliest - t : static_cast<double>(opts.poll_ms) * 5;
    retry_hint_ms = static_cast<std::uint64_t>(
        std::clamp(wait, static_cast<double>(opts.poll_ms), 500.0));
    return kNoJob;
  }

  /// Next job for the local executor: over-budget jobs always; everything
  /// once no worker is connected (after the initial grace so workers that
  /// are on their way get first refusal) OR once the schedule has starved
  /// — connected workers that neither pull nor finish anything for a full
  /// job timeout don't get to pin pending work (the zombie-worker case).
  /// Local picks ignore backoff — local compute is trusted and cannot
  /// fail for transport reasons.
  [[nodiscard]] std::size_t pick_local_locked(double t) const {
    const bool take_all =
        workers_connected == 0
            ? (ever_worker || t >= opts.idle_grace_ms)
            : (t - last_activity > opts.job_timeout_ms);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const JobSlot& s = slots[i];
      if (s.state != JobState::kPending) continue;
      if (s.attempts >= opts.retry_budget || take_all) return i;
    }
    return kNoJob;
  }

  void merge_cell_locked(std::size_t i, std::vector<ScenarioRun> runs, bool remote, double t) {
    JobSlot& s = slots[i];
    if (s.state == JobState::kDone) {
      ++stats.duplicates;
      return;
    }
    if (!plan->accept_cell(i, std::move(runs))) {
      ++stats.rejected_bad_payload;
      if (s.state == JobState::kLeased) requeue_locked(i, t);
      return;
    }
    s.state = JobState::kDone;
    --open_jobs;
    last_activity = t;
    if (remote) {
      ++stats.remote_cells;
    } else {
      ++stats.local_cells;
    }
    for (const std::size_t child : children[i]) {
      if (slots[child].state == JobState::kBlocked) {
        slots[child].state = JobState::kPending;
        slots[child].eligible_at = t;
      }
    }
    finish_if_drained_locked();
    cv.notify_all();
  }

  void merge_metric_locked(std::size_t i, MetricRecord record, bool remote, double t) {
    JobSlot& s = slots[i];
    if (s.state == JobState::kDone) {
      ++stats.duplicates;
      return;
    }
    if (!plan->accept_metric(i, std::move(record))) {
      ++stats.rejected_bad_payload;
      if (s.state == JobState::kLeased) requeue_locked(i, t);
      return;
    }
    s.state = JobState::kDone;
    --open_jobs;
    last_activity = t;
    if (remote) {
      ++stats.remote_metrics;
    } else {
      ++stats.local_metrics;
    }
    finish_if_drained_locked();
    cv.notify_all();
  }

  void finish_if_drained_locked() {
    if (open_jobs == 0 && !finished) {
      finished = true;
      listener.shutdown();  // wakes the acceptor
    }
  }

  /// Validate-then-merge for a RESULT frame.  Nothing a worker sends is
  /// trusted: index range, key, kind and decoded shape all have to match
  /// the plan or the result is dropped and the job recomputed.
  void handle_result(const ResultPayload& p, std::uint64_t sid) {
    std::lock_guard<std::mutex> lk(m);
    const double t = now();
    if (p.index >= plan->num_jobs()) {
      ++stats.rejected_bad_payload;
      return;
    }
    const std::size_t i = static_cast<std::size_t>(p.index);
    const CampaignJob& job = plan->job(i);
    const bool leased_here = slots[i].state == JobState::kLeased && slots[i].session == sid;
    if (p.key != job.key || p.kind != static_cast<std::uint32_t>(job.kind)) {
      ++stats.rejected_wrong_key;
      if (leased_here) requeue_locked(i, t);
      return;
    }
    if (job.kind == CampaignJob::Kind::kMetric) {
      auto wire = decode_metric_record(p.data);
      if (!wire) {
        ++stats.rejected_bad_payload;
        if (leased_here) requeue_locked(i, t);
        return;
      }
      merge_metric_locked(
          i, MetricRecord{std::move(wire->name), std::move(wire->payload), std::move(wire->brief)},
          /*remote=*/true, t);
    } else {
      auto runs = decode_runs(p.data);
      if (!runs) {
        ++stats.rejected_bad_payload;
        if (leased_here) requeue_locked(i, t);
        return;
      }
      merge_cell_locked(i, std::move(*runs), /*remote=*/true, t);
    }
  }

  /// One worker connection, driven to completion.  Any verification
  /// failure — corrupt frame, pre-HELLO traffic, undecodable payload on a
  /// checksummed frame — drops the connection; the worker's reconnect is
  /// idempotent and its leases are requeued here on the way out.
  void session(std::unique_ptr<Transport> transport) {
    FrameBuffer buf;
    Message msg;
    std::uint64_t sid = 0;
    bool registered = false;
    bool clean_done = false;
    const Timer session_clock;

    const auto drop_corrupt = [&] {
      std::lock_guard<std::mutex> lk(m);
      ++stats.rejected_corrupt;
      if (registered) requeue_session_locked(sid, now());
    };

    for (;;) {
      if (is_finished()) {
        (void)transport->send(encode_frame({MsgType::kDone, ""}));
        clean_done = true;
        break;
      }
      const ReadStatus status = read_message(*transport, buf, msg, opts.poll_ms);
      if (status == ReadStatus::kTimeout) {
        // Pre-handshake silence is bounded; mid-session silence is the
        // lease reaper's problem, not ours.
        if (!registered && session_clock.millis() > kHandshakeTimeoutMs) break;
        continue;
      }
      if (status == ReadStatus::kEof || status == ReadStatus::kError) break;
      if (status == ReadStatus::kCorrupt) {
        drop_corrupt();
        break;
      }

      if (msg.type == MsgType::kHello) {
        const auto hello = decode_hello(msg.payload);
        if (!hello) {
          drop_corrupt();
          break;
        }
        if (hello->fingerprint != wire_fingerprint(plan->fingerprint())) {
          (void)transport->send(encode_frame(
              {MsgType::kWelcome,
               encode_welcome({false, "campaign fingerprint mismatch: serving '" +
                                          campaign.name + "'"})}));
          break;
        }
        if (!registered) {
          std::lock_guard<std::mutex> lk(m);
          sid = next_session++;
          ++stats.sessions;
          ++workers_connected;
          ever_worker = true;
          registered = true;
          cv.notify_all();
        }
        if (!transport->send(encode_frame({MsgType::kWelcome, encode_welcome({true, ""})}))) break;
        continue;
      }

      if (!registered) {  // anything before HELLO is a protocol breach
        drop_corrupt();
        break;
      }

      switch (msg.type) {
        case MsgType::kPull: {
          std::size_t job = kNoJob;
          std::uint64_t retry_ms = 0;
          {
            std::lock_guard<std::mutex> lk(m);
            const double t = now();
            reap_locked(t);
            if (!finished) {
              job = pick_remote_locked(t, retry_ms);
              if (job != kNoJob) {
                JobSlot& s = slots[job];
                s.state = JobState::kLeased;
                s.session = sid;
                s.lease_start = t;
                s.deadline = t + opts.job_timeout_ms;
                ++stats.assignments;
                last_activity = t;
              }
            }
          }
          if (job == kNoJob) {
            if (is_finished()) {
              (void)transport->send(encode_frame({MsgType::kDone, ""}));
              clean_done = true;
              break;
            }
            if (!transport->send(encode_frame({MsgType::kWait, encode_wait({retry_ms})}))) {
              break;
            }
            continue;
          }
          const CampaignJob& j = plan->job(job);
          JobPayload payload;
          payload.index = job;
          payload.kind = static_cast<std::uint32_t>(j.kind);
          payload.key = j.key;
          payload.lease_ms = static_cast<std::uint64_t>(opts.job_timeout_ms);
          payload.heartbeat_ms = static_cast<std::uint64_t>(opts.heartbeat_ms);
          if (j.kind == CampaignJob::Kind::kMetric) {
            const ScenarioRun parent = plan->parent_run(job);
            payload.parent_runs = encode_runs(std::span<const ScenarioRun>(&parent, 1));
          }
          if (!transport->send(encode_frame({MsgType::kJob, encode_job(payload)}))) {
            std::lock_guard<std::mutex> lk(m);
            requeue_locked(job, now());
            break;
          }
          continue;
        }
        case MsgType::kHeartbeat: {
          const auto hb = decode_heartbeat(msg.payload);
          if (!hb) {
            drop_corrupt();
            break;
          }
          std::lock_guard<std::mutex> lk(m);
          if (hb->index < slots.size()) {
            JobSlot& s = slots[hb->index];
            if (s.state == JobState::kLeased && s.session == sid) {
              s.deadline = std::min(now() + opts.job_timeout_ms,
                                    s.lease_start + opts.lease_cap_ms);
              ++stats.heartbeats;
            }
          }
          continue;
        }
        case MsgType::kResult: {
          const auto result = decode_result(msg.payload);
          if (!result) {
            // The frame checksum passed but the payload is malformed:
            // count it and let the lease expire into a retry.
            std::lock_guard<std::mutex> lk(m);
            ++stats.rejected_bad_payload;
            continue;
          }
          handle_result(*result, sid);
          continue;
        }
        default:  // coordinator-only message types coming FROM a worker
          drop_corrupt();
          break;
      }
      break;  // switch fell through: connection is being dropped
    }

    transport->shutdown();
    std::lock_guard<std::mutex> lk(m);
    if (registered) {
      --workers_connected;
      requeue_session_locked(sid, now());
      if (!clean_done) ++stats.disconnects;
      cv.notify_all();
    }
  }

  void accept_loop() {
    for (;;) {
      if (is_finished()) return;
      std::unique_ptr<Transport> t = listener.accept(opts.poll_ms);
      if (!t) continue;
      if (is_finished()) {
        t->shutdown();
        continue;
      }
      session_threads.emplace_back(
          [this, tr = std::move(t)]() mutable { session(std::move(tr)); });
    }
  }

  /// Local fallback executor: picks over-budget (and, with no workers,
  /// all) jobs and runs them through the plan's own pure compute.  Its
  /// leases never expire; a throw here is a campaign bug and aborts the
  /// run exactly like CampaignRunner would.
  void local_loop() {
    for (;;) {
      std::size_t job = kNoJob;
      {
        std::unique_lock<std::mutex> lk(m);
        for (;;) {
          if (finished) return;
          const double t = now();
          reap_locked(t);
          job = pick_local_locked(t);
          if (job != kNoJob) break;
          cv.wait_for(lk, std::chrono::milliseconds(opts.poll_ms));
        }
        JobSlot& s = slots[job];
        s.state = JobState::kLeased;
        s.session = 0;
        s.deadline = std::numeric_limits<double>::infinity();
        if (s.attempts >= opts.retry_budget) ++stats.fallback_jobs;
      }
      try {
        const CampaignJob& j = plan->job(job);
        if (j.kind == CampaignJob::Kind::kMetric) {
          const ScenarioRun parent = plan->parent_run(job);
          MetricRecord record = plan->compute_metric(job, parent);
          std::lock_guard<std::mutex> lk(m);
          merge_metric_locked(job, std::move(record), /*remote=*/false, now());
        } else {
          std::vector<ScenarioRun> runs = plan->compute_cell(job);
          std::lock_guard<std::mutex> lk(m);
          merge_cell_locked(job, std::move(runs), /*remote=*/false, now());
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!failure) failure = std::current_exception();
        finished = true;
        listener.shutdown();
        cv.notify_all();
        return;
      }
    }
  }

  [[nodiscard]] CampaignReport run_once() {
    {
      std::lock_guard<std::mutex> lk(m);
      FNE_REQUIRE(!started, "dist: run() may only be called once per coordinator");
      started = true;
    }
    const EngineCacheStats cache_before = EngineCache::instance().stats();
    const Timer wall;
    const int local_threads = opts.local_threads;
    plan = std::make_unique<CampaignPlan>(campaign, local_threads);
    if (store != nullptr) (void)plan->attach_store(*store);

    {
      std::lock_guard<std::mutex> lk(m);
      const std::size_t n = plan->num_jobs();
      slots.assign(n, JobSlot{});
      children.assign(n, {});
      for (std::size_t i = 0; i < n; ++i) {
        const CampaignJob& j = plan->job(i);
        if (j.kind == CampaignJob::Kind::kMetric) children[j.parent].push_back(i);
        if (plan->done(i)) {
          slots[i].state = JobState::kDone;
        } else {
          slots[i].state = j.kind == CampaignJob::Kind::kMetric ? JobState::kBlocked
                                                                : JobState::kPending;
          ++open_jobs;
        }
      }
      clock.reset();
      finish_if_drained_locked();
    }

    std::thread acceptor([this] { accept_loop(); });
    std::vector<std::thread> locals;
    locals.reserve(static_cast<std::size_t>(local_threads));
    for (int i = 0; i < local_threads; ++i) locals.emplace_back([this] { local_loop(); });

    {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return finished; });
    }
    listener.shutdown();
    acceptor.join();
    for (std::thread& th : locals) th.join();
    for (std::thread& th : session_threads) th.join();

    {
      std::lock_guard<std::mutex> lk(m);
      if (failure) std::rethrow_exception(failure);
    }
    return plan->finish(local_threads, wall.millis(),
                        EngineCache::instance().stats() - cache_before);
  }
};

DistCoordinator::DistCoordinator(Campaign campaign, DistOptions options, ResultStore* store)
    : impl_(std::make_unique<Impl>(std::move(campaign), options, store)) {}

DistCoordinator::~DistCoordinator() = default;

int DistCoordinator::port() const noexcept { return impl_->listener.port(); }

CampaignReport DistCoordinator::run() { return impl_->run_once(); }

DistStats DistCoordinator::stats() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->stats;
}

}  // namespace fne
