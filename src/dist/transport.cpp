#include "dist/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/require.hpp"

namespace fne {

namespace {

/// TCP endpoint over one connected fd.  shutdown() uses ::shutdown so a
/// peer blocked in recv()/poll() wakes immediately; the fd itself is
/// closed exactly once, by the destructor.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    // Latency matters more than throughput for job-sized frames.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TcpTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send(std::string_view bytes) override {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      done += static_cast<std::size_t>(n);
    }
    return true;
  }

  int recv(char* out, std::size_t max, int timeout_ms) override {
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return -1;
    if (ready < 0) return errno == EINTR ? -1 : -2;
    const ssize_t n = ::recv(fd_, out, max, 0);
    if (n < 0) return errno == EINTR ? -1 : -2;
    return static_cast<int>(n);
  }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

[[nodiscard]] sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  FNE_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "dist: bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

TcpListener::TcpListener(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FNE_REQUIRE(fd_ >= 0, "dist: cannot create listening socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  FNE_REQUIRE(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
              "dist: cannot bind " + host + ":" + std::to_string(port));
  FNE_REQUIRE(::listen(fd_, 64) == 0, "dist: listen failed");
  socklen_t len = sizeof(addr);
  FNE_REQUIRE(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
              "dist: getsockname failed");
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Transport> TcpListener::accept(int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return nullptr;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;
  return std::make_unique<TcpTransport>(cfd);
}

void TcpListener::shutdown() { ::shutdown(fd_, SHUT_RDWR); }

std::unique_ptr<Transport> tcp_connect(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr = make_addr(host, port);
  // Non-blocking connect with a poll deadline: a coordinator that is not
  // up yet must cost the worker timeout_ms, not a 2-minute kernel default.
  struct timeval tv {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(fd);
}

// ---------------------------------------------------------------------------
// FaultyTransport
// ---------------------------------------------------------------------------

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner, FaultSchedule schedule)
    : inner_(std::move(inner)), schedule_(schedule), rng_(schedule.seed) {}

bool FaultyTransport::send(std::string_view bytes) {
  const std::uint64_t op = sends_++;
  if (op < static_cast<std::uint64_t>(schedule_.skip_sends)) return inner_->send(bytes);
  // One decorrelated stream per send index: the fault pattern is a pure
  // function of (seed, op), independent of timing or payload bytes.
  Rng stream = rng_.fork(op);
  if (stream.bernoulli(schedule_.drop)) {
    return true;  // swallowed: the sender believes it went out
  }
  if (stream.bernoulli(schedule_.corrupt)) {
    std::string mangled(bytes);
    if (!mangled.empty()) {
      const std::size_t at = static_cast<std::size_t>(stream.uniform(mangled.size()));
      mangled[at] = static_cast<char>(mangled[at] ^
                                      static_cast<char>(1u << stream.uniform(8)));
    }
    return inner_->send(mangled);
  }
  if (stream.bernoulli(schedule_.truncate)) {
    const std::size_t keep = bytes.empty()
                                 ? 0
                                 : static_cast<std::size_t>(stream.uniform(bytes.size()));
    if (keep > 0) (void)inner_->send(bytes.substr(0, keep));
    inner_->shutdown();  // a half-frame then silence: the torn-tail case
    return false;
  }
  if (stream.bernoulli(schedule_.disconnect)) {
    inner_->shutdown();
    return false;
  }
  if (stream.bernoulli(schedule_.delay)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(schedule_.delay_ms));
  }
  return inner_->send(bytes);
}

int FaultyTransport::recv(char* out, std::size_t max, int timeout_ms) {
  return inner_->recv(out, max, timeout_ms);
}

void FaultyTransport::shutdown() { inner_->shutdown(); }

}  // namespace fne
