// DistWorker — the pull side of the distributed campaign runtime
// (DESIGN.md §12).
//
// A worker builds its OWN CampaignPlan of the same campaign (plan
// construction is pure, so job indices, keys and the fingerprint agree
// with the coordinator's by construction — and the HELLO handshake
// checks the fingerprint anyway), then loops: PULL, compute the assigned
// job through the plan's pure functions on this process's EngineCache,
// RESULT the bytes back.  While computing it HEARTBEATs so the
// coordinator keeps the lease alive; every assignment is re-verified
// against the local plan (index, kind, key) before any work happens —
// a coordinator serving a different campaign is a fatal mismatch, not a
// garbage result.
//
// Failure posture: any transport trouble — send failure, EOF, corrupt
// stream — abandons the connection and reconnects with capped backoff;
// the coordinator's lease bookkeeping absorbs whatever was in flight.
// A worker can therefore be killed at ANY point (the chaos tests do,
// via the kill_* hooks below and via SIGKILL in CI) without affecting
// campaign correctness, only placement.
//
// Exit meaning (WorkerReport): saw_done means the campaign completed;
// reconnect exhaustion after having been connected usually means the
// coordinator finished and left — also a clean exit for the CLI.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "api/campaign.hpp"
#include "dist/transport.hpp"

namespace fne {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string name = "worker";
  int plan_threads = 1;          ///< parallelism for plan construction
  int connect_timeout_ms = 1000;
  int connect_attempts = 40;     ///< reconnect tries before giving up
  int reconnect_backoff_ms = 50; ///< doubled per failure, capped at 1s
  int recv_timeout_ms = 250;     ///< io poll granularity
  int idle_timeout_ms = 10000;   ///< max silence after a PULL before reconnect
  FaultSchedule faults{};        ///< chaos: injected on this worker's sends
  int kill_after_results = -1;   ///< chaos: die abruptly after N submissions
  bool kill_mid_job = false;     ///< chaos: die silently holding a lease
};

struct WorkerReport {
  std::uint64_t cells = 0;    ///< results submitted by kind
  std::uint64_t metrics = 0;
  std::uint64_t reconnects = 0;
  bool ever_connected = false;
  bool saw_done = false;        ///< coordinator said the campaign is complete
  bool fatal_mismatch = false;  ///< WELCOME refused us: wrong campaign/build
};

class DistWorker {
 public:
  DistWorker(Campaign campaign, WorkerOptions options);

  /// Serve until DONE, a kill hook fires, reconnects are exhausted, or
  /// stop().  Safe to call once.
  [[nodiscard]] WorkerReport run();

  /// Thread-safe: ask a running worker to exit at the next loop edge.
  void stop() { stop_.store(true); }

 private:
  Campaign campaign_;
  WorkerOptions opts_;
  std::atomic<bool> stop_{false};
  /// kill_mid_job parks the connection here instead of closing it: the
  /// coordinator gets no EOF and must reap the abandoned lease by
  /// deadline — the exact failure a silently hung worker produces.
  std::unique_ptr<Transport> zombie_;
};

}  // namespace fne
