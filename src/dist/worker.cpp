#include "dist/worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "dist/message.hpp"
#include "store/record.hpp"
#include "util/timer.hpp"

namespace fne {

namespace {

constexpr int kHandshakeTimeoutMs = 5000;
constexpr int kMaxReconnectBackoffMs = 1000;

enum class ConnEnd {
  kReconnect,  ///< connection is dead/untrusted; try again
  kExit,       ///< run() is over (DONE, stop(), kill hook, mismatch)
  kZombie,     ///< kill_mid_job: exit but keep the socket open, so the
               ///< coordinator must reap the lease by deadline
};

}  // namespace

DistWorker::DistWorker(Campaign campaign, WorkerOptions options)
    : campaign_(std::move(campaign)), opts_(std::move(options)) {}

WorkerReport DistWorker::run() {
  WorkerReport report;
  CampaignPlan plan(campaign_, std::max(opts_.plan_threads, 1));
  const std::uint64_t fingerprint = wire_fingerprint(plan.fingerprint());
  std::uint64_t submitted = 0;

  const auto sleep_checking_stop = [&](int ms) {
    Timer t;
    while (!stop_.load() && t.millis() < ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::min(ms, 10)));
    }
  };

  // Everything one connection does, handshake to grave.  `transport` is
  // shared with the per-job heartbeat thread, hence the send mutex.
  const auto drive = [&](Transport& transport) -> ConnEnd {
    FrameBuffer buf;
    Message msg;
    std::mutex send_mutex;
    const auto send_msg = [&](MsgType type, std::string payload) {
      const std::string frame = encode_frame({type, std::move(payload)});
      std::lock_guard<std::mutex> lk(send_mutex);
      return transport.send(frame);
    };

    if (!send_msg(MsgType::kHello, encode_hello({fingerprint, opts_.name}))) {
      return ConnEnd::kReconnect;
    }
    const Timer handshake;
    for (bool welcomed = false; !welcomed;) {
      if (stop_.load() || handshake.millis() > kHandshakeTimeoutMs) return ConnEnd::kReconnect;
      switch (read_message(transport, buf, msg, opts_.recv_timeout_ms)) {
        case ReadStatus::kMessage:
          if (msg.type == MsgType::kWelcome) {
            const auto welcome = decode_welcome(msg.payload);
            if (!welcome) return ConnEnd::kReconnect;
            if (!welcome->ok) {
              report.fatal_mismatch = true;
              return ConnEnd::kExit;
            }
            welcomed = true;
            break;
          }
          if (msg.type == MsgType::kDone) {
            report.saw_done = true;
            return ConnEnd::kExit;
          }
          return ConnEnd::kReconnect;  // anything else pre-WELCOME is garbage
        case ReadStatus::kTimeout:
          break;
        default:
          return ConnEnd::kReconnect;
      }
    }

    for (;;) {
      if (stop_.load()) return ConnEnd::kExit;
      if (!send_msg(MsgType::kPull, "")) return ConnEnd::kReconnect;

      const Timer idle;
      for (bool got = false; !got;) {
        if (stop_.load()) return ConnEnd::kExit;
        if (idle.millis() > opts_.idle_timeout_ms) return ConnEnd::kReconnect;
        switch (read_message(transport, buf, msg, opts_.recv_timeout_ms)) {
          case ReadStatus::kMessage:
            got = true;
            break;
          case ReadStatus::kTimeout:
            break;
          default:
            return ConnEnd::kReconnect;
        }
      }

      if (msg.type == MsgType::kDone) {
        report.saw_done = true;
        return ConnEnd::kExit;
      }
      if (msg.type == MsgType::kWait) {
        const auto wait = decode_wait(msg.payload);
        const int ms = wait ? static_cast<int>(std::min<std::uint64_t>(wait->retry_ms, 500))
                            : opts_.recv_timeout_ms;
        sleep_checking_stop(std::max(ms, 1));
        continue;
      }
      if (msg.type != MsgType::kJob) return ConnEnd::kReconnect;

      const auto assignment = decode_job(msg.payload);
      if (!assignment || assignment->index >= plan.num_jobs()) return ConnEnd::kReconnect;
      const std::size_t index = static_cast<std::size_t>(assignment->index);
      const CampaignJob& job = plan.job(index);
      // The coordinator's word is checked against OUR plan: same index
      // must mean same kind and same content key, or this connection is
      // serving a different campaign than the handshake claimed.
      if (assignment->kind != static_cast<std::uint32_t>(job.kind) ||
          assignment->key != job.key) {
        return ConnEnd::kReconnect;
      }
      if (opts_.kill_mid_job) return ConnEnd::kZombie;

      std::atomic<bool> heartbeat_stop{false};
      const double period =
          static_cast<double>(std::max<std::uint64_t>(assignment->heartbeat_ms, 20));
      std::thread heartbeat([&] {
        Timer since;
        while (!heartbeat_stop.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          if (since.millis() >= period) {
            (void)send_msg(MsgType::kHeartbeat, encode_heartbeat({assignment->index}));
            since.reset();
          }
        }
      });

      std::string data;
      bool computed = false;
      try {
        if (job.kind == CampaignJob::Kind::kMetric) {
          const auto parents = decode_runs(assignment->parent_runs);
          if (parents && parents->size() == 1) {
            const MetricRecord record = plan.compute_metric(index, parents->front());
            data = encode_metric_record({record.name, record.payload, record.brief});
            computed = true;
          }
        } else {
          const std::vector<ScenarioRun> runs = plan.compute_cell(index);
          data = encode_runs(runs);
          computed = true;
        }
      } catch (...) {
        computed = false;  // drop the connection; the job is retried elsewhere
      }
      heartbeat_stop.store(true);
      heartbeat.join();
      if (!computed) return ConnEnd::kReconnect;

      ResultPayload result;
      result.index = assignment->index;
      result.kind = assignment->kind;
      result.key = job.key;
      result.data = std::move(data);
      if (!send_msg(MsgType::kResult, encode_result(result))) return ConnEnd::kReconnect;
      if (job.kind == CampaignJob::Kind::kMetric) {
        ++report.metrics;
      } else {
        ++report.cells;
      }
      ++submitted;
      if (opts_.kill_after_results >= 0 &&
          submitted >= static_cast<std::uint64_t>(opts_.kill_after_results)) {
        return ConnEnd::kExit;  // abrupt: no goodbye, like a SIGKILL
      }
    }
  };

  int failures = 0;
  int backoff = std::max(opts_.reconnect_backoff_ms, 1);
  while (!stop_.load()) {
    std::unique_ptr<Transport> transport =
        tcp_connect(opts_.host, opts_.port, opts_.connect_timeout_ms);
    if (!transport) {
      if (++failures > opts_.connect_attempts) break;
      sleep_checking_stop(backoff);
      backoff = std::min(backoff * 2, kMaxReconnectBackoffMs);
      continue;
    }
    if (report.ever_connected) ++report.reconnects;
    report.ever_connected = true;
    failures = 0;
    backoff = std::max(opts_.reconnect_backoff_ms, 1);
    if (opts_.faults.any()) {
      transport = std::make_unique<FaultyTransport>(std::move(transport), opts_.faults);
    }
    const ConnEnd end = drive(*transport);
    if (end == ConnEnd::kZombie) {
      zombie_ = std::move(transport);  // lease dies by deadline, not by EOF
      return report;
    }
    transport->shutdown();
    if (end == ConnEnd::kExit) return report;
  }
  return report;
}

}  // namespace fne
