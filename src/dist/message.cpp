#include "dist/message.hpp"

#include "dist/transport.hpp"
#include "store/codec.hpp"
#include "util/hash.hpp"

namespace fne {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4D454E46;  // "FNEM" little-endian
constexpr std::size_t kFrameHeaderSize = 20;       // magic + type + len + checksum
// Corruption ceiling: the largest legitimate frame is a RESULT carrying a
// whole monotone-chain cell record (survivor masks scale with n); 64 MiB
// is orders of magnitude above any real cell and small enough that a
// garbage length field cannot balloon the receive buffer.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;
constexpr std::uint32_t kMaxKnownType = static_cast<std::uint32_t>(MsgType::kResponse);

[[nodiscard]] std::uint64_t frame_checksum(std::uint32_t type, std::string_view payload) {
  Fnv1a h;
  h.word(type);
  h.word(payload.size());
  h.text(payload);
  return h.value();
}

[[nodiscard]] std::uint32_t peek_u32(const char* p) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[b])) << (8 * b);
  }
  return v;
}

[[nodiscard]] std::uint64_t peek_u64(const char* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[b])) << (8 * b);
  }
  return v;
}

}  // namespace

std::string encode_frame(const Message& msg) {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(msg.type));
  w.u32(static_cast<std::uint32_t>(msg.payload.size()));
  w.u64(frame_checksum(static_cast<std::uint32_t>(msg.type), msg.payload));
  std::string out = w.take();
  out += msg.payload;
  return out;
}

void FrameBuffer::append(std::string_view bytes) {
  if (corrupt_) return;  // nothing after garbage is trustworthy
  // Compact the consumed prefix before growing (bounded memory under a
  // long-lived connection).
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

FrameBuffer::Next FrameBuffer::next(Message& out) {
  if (corrupt_) return Next::kCorrupt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return Next::kNeedMore;
  const char* p = buf_.data() + pos_;
  const std::uint32_t magic = peek_u32(p);
  const std::uint32_t type = peek_u32(p + 4);
  const std::uint32_t len = peek_u32(p + 8);
  const std::uint64_t checksum = peek_u64(p + 12);
  // Validate everything validatable BEFORE waiting for the payload: a
  // garbage length field must not make the receiver buffer (up to) 4 GiB
  // of noise hoping a frame completes.
  if (magic != kFrameMagic || type == 0 || type > kMaxKnownType || len > kMaxFramePayload) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  if (avail < kFrameHeaderSize + len) return Next::kNeedMore;
  const std::string_view payload(p + kFrameHeaderSize, len);
  if (frame_checksum(type, payload) != checksum) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  out.type = static_cast<MsgType>(type);
  out.payload.assign(payload);
  pos_ += kFrameHeaderSize + len;
  return Next::kMessage;
}

// -- typed payloads ---------------------------------------------------------

std::string encode_hello(const HelloPayload& p) {
  ByteWriter w;
  w.u64(p.fingerprint);
  w.str(p.worker_name);
  return w.take();
}

std::optional<HelloPayload> decode_hello(std::string_view bytes) {
  ByteReader r(bytes);
  HelloPayload p;
  p.fingerprint = r.u64();
  p.worker_name = r.str();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_welcome(const WelcomePayload& p) {
  ByteWriter w;
  w.u8(p.ok ? 1 : 0);
  w.str(p.message);
  return w.take();
}

std::optional<WelcomePayload> decode_welcome(std::string_view bytes) {
  ByteReader r(bytes);
  WelcomePayload p;
  p.ok = r.u8() != 0;
  p.message = r.str();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_job(const JobPayload& p) {
  ByteWriter w;
  w.u64(p.index);
  w.u32(p.kind);
  w.str(p.key);
  w.u64(p.lease_ms);
  w.u64(p.heartbeat_ms);
  w.str(p.parent_runs);
  return w.take();
}

std::optional<JobPayload> decode_job(std::string_view bytes) {
  ByteReader r(bytes);
  JobPayload p;
  p.index = r.u64();
  p.kind = r.u32();
  p.key = r.str();
  p.lease_ms = r.u64();
  p.heartbeat_ms = r.u64();
  p.parent_runs = r.str();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_wait(const WaitPayload& p) {
  ByteWriter w;
  w.u64(p.retry_ms);
  return w.take();
}

std::optional<WaitPayload> decode_wait(std::string_view bytes) {
  ByteReader r(bytes);
  WaitPayload p;
  p.retry_ms = r.u64();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_result(const ResultPayload& p) {
  ByteWriter w;
  w.u64(p.index);
  w.u32(p.kind);
  w.str(p.key);
  w.str(p.data);
  return w.take();
}

std::optional<ResultPayload> decode_result(std::string_view bytes) {
  ByteReader r(bytes);
  ResultPayload p;
  p.index = r.u64();
  p.kind = r.u32();
  p.key = r.str();
  p.data = r.str();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_heartbeat(const HeartbeatPayload& p) {
  ByteWriter w;
  w.u64(p.index);
  return w.take();
}

std::optional<HeartbeatPayload> decode_heartbeat(std::string_view bytes) {
  ByteReader r(bytes);
  HeartbeatPayload p;
  p.index = r.u64();
  if (!r.at_end()) return std::nullopt;
  return p;
}

std::string encode_metric_record(const MetricRecordWire& m) {
  ByteWriter w;
  w.str(m.name);
  w.str(m.payload);
  w.str(m.brief);
  return w.take();
}

std::optional<MetricRecordWire> decode_metric_record(std::string_view bytes) {
  ByteReader r(bytes);
  MetricRecordWire m;
  m.name = r.str();
  m.payload = r.str();
  m.brief = r.str();
  if (!r.at_end()) return std::nullopt;
  return m;
}

std::uint64_t wire_fingerprint(std::uint64_t plan_fingerprint) {
  Fnv1a h;
  h.word(kWireProtocolVersion);
  h.word(plan_fingerprint);
  return h.value();
}

ReadStatus read_message(Transport& transport, FrameBuffer& buf, Message& out, int timeout_ms) {
  switch (buf.next(out)) {
    case FrameBuffer::Next::kMessage:
      return ReadStatus::kMessage;
    case FrameBuffer::Next::kCorrupt:
      return ReadStatus::kCorrupt;
    case FrameBuffer::Next::kNeedMore:
      break;
  }
  char chunk[64 << 10];
  const int n = transport.recv(chunk, sizeof(chunk), timeout_ms);
  if (n == 0) return ReadStatus::kEof;
  if (n == -1) return ReadStatus::kTimeout;
  if (n < 0) return ReadStatus::kError;
  buf.append(std::string_view(chunk, static_cast<std::size_t>(n)));
  switch (buf.next(out)) {
    case FrameBuffer::Next::kMessage:
      return ReadStatus::kMessage;
    case FrameBuffer::Next::kCorrupt:
      return ReadStatus::kCorrupt;
    case FrameBuffer::Next::kNeedMore:
      return ReadStatus::kTimeout;
  }
  return ReadStatus::kTimeout;
}

}  // namespace fne
