// DistCoordinator — fault-tolerant distributed campaign execution
// (DESIGN.md §12).
//
// The coordinator owns ONE CampaignPlan and serves its jobs to TCP
// workers (src/dist/worker.hpp) over the FNEM wire protocol.  Workers
// are assumed hostile-by-accident: they time out, die mid-job, send
// garbage, reconnect at will.  Every defense reduces to the same rule —
// verify, or recompute:
//
//   leases      every assignment carries a deadline; HEARTBEATs extend
//               it, but never past lease_start + lease_cap_ms, so a
//               heartbeating-but-hung worker cannot pin a job forever;
//   retry       an expired or failed assignment is requeued with
//               seeded-jitter exponential backoff; after retry_budget
//               remote attempts the job becomes local-only;
//   fallback    the coordinator runs local_threads executor threads of
//               its own that pick up local-only jobs and — when no
//               worker is connected — everything, so a coordinator with
//               ZERO live workers degrades to exactly CampaignRunner;
//   validation  results are merged only when the key, kind and decoded
//               shape match the plan (CampaignPlan::accept_* re-checks
//               under its own lock); wrong-key or undecodable results
//               are counted, rejected and recomputed, never trusted;
//   dedup       duplicate completions (a reassigned job finishing twice)
//               resolve first-write-wins in the plan; the loser is a
//               counter, not an error.
//
// Termination argument: every job ends kDone.  A job held by a live
// worker completes or its (capped) lease expires; each expiry/failure
// bumps `attempts`; once attempts reaches retry_budget the local
// executor — whose leases never expire and whose compute is the plan's
// own pure function — runs it to completion.  Local compute throwing is
// a campaign bug, not a fault, and aborts the run like CampaignRunner.
//
// Determinism: workers and coordinator construct the SAME CampaignPlan
// (checked via fingerprint at HELLO), all compute goes through the
// plan's pure functions, and all merging through its idempotent
// accept_*.  The deterministic payload of run() is therefore
// byte-identical to a local CampaignRunner::run for any worker count,
// fault schedule, or kill pattern — the chaos tests assert exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/campaign.hpp"

namespace fne {

struct DistOptions {
  std::string bind = "127.0.0.1";
  int port = 0;            ///< 0: ephemeral; port() reports the bound one
  int local_threads = 1;   ///< fallback executor width (>= 1: termination)
  double job_timeout_ms = 10000;  ///< initial lease length
  double lease_cap_ms = 60000;    ///< heartbeats never extend past start+cap
  double heartbeat_ms = 250;      ///< cadence advertised to workers
  int retry_budget = 3;           ///< remote attempts before local-only
  double backoff_base_ms = 25;    ///< retry backoff: base * 2^(attempt-1)
  double backoff_max_ms = 2000;
  std::uint64_t backoff_seed = 0x9e3779b97f4a7c15ull;  ///< jitter stream
  double idle_grace_ms = 250;  ///< wait for a first worker before going local
  int poll_ms = 20;            ///< scheduler wakeup / io poll granularity
};

/// Robustness telemetry.  Placement-dependent by nature (like cache
/// stats): reported next to timing, never in the deterministic payload.
struct DistStats {
  std::uint64_t sessions = 0;      ///< accepted connections that said HELLO
  std::uint64_t disconnects = 0;   ///< sessions that ended before DONE
  std::uint64_t assignments = 0;   ///< JOB frames sent
  std::uint64_t heartbeats = 0;    ///< lease extensions granted
  std::uint64_t timeouts = 0;      ///< leases reaped past their deadline
  std::uint64_t requeues = 0;      ///< jobs returned to pending (any cause)
  std::uint64_t remote_cells = 0;  ///< merges by origin
  std::uint64_t remote_metrics = 0;
  std::uint64_t local_cells = 0;
  std::uint64_t local_metrics = 0;
  std::uint64_t duplicates = 0;        ///< valid results for already-done jobs
  std::uint64_t rejected_corrupt = 0;  ///< corrupt frames / protocol breaches
  std::uint64_t rejected_wrong_key = 0;   ///< result key/kind mismatched plan
  std::uint64_t rejected_bad_payload = 0; ///< undecodable / wrong-shape data
  std::uint64_t fallback_jobs = 0;  ///< went local after exhausting the budget
};

/// One campaign served once.  Construction binds the listening socket
/// (so port() is valid before run()); run() builds the plan, serves
/// workers and local threads until every job merged, and returns the
/// same CampaignReport a local CampaignRunner would.
class DistCoordinator {
 public:
  DistCoordinator(Campaign campaign, DistOptions options, ResultStore* store = nullptr);
  ~DistCoordinator();
  DistCoordinator(const DistCoordinator&) = delete;
  DistCoordinator& operator=(const DistCoordinator&) = delete;

  [[nodiscard]] int port() const noexcept;
  [[nodiscard]] CampaignReport run();
  [[nodiscard]] DistStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fne
