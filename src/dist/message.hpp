// The distributed campaign wire protocol (DESIGN.md §12).
//
// Messages travel as self-delimiting binary frames with the same FNV-1a
// checksum discipline as the result store's cells.log:
//
//   frame   u32 'FNEM' | u32 type | u32 payload_len
//           | u64 fnv1a(type ‖ payload_len ‖ payload) | payload bytes
//
// all integers little-endian; the checksum covers the type and length
// fields too, so a flipped header bit is caught, not just payload rot.
// FrameBuffer is an incremental TOTAL decoder over a byte stream: any
// malformation — wrong magic, absurd length, checksum mismatch — yields
// kCorrupt (the receiver drops the connection and the sender's work is
// retried elsewhere), never an exception, a crash, or a misparsed
// message.  Bytes are hostile by assumption: the chaos tests inject
// random prefixes, truncations and bit flips through FaultyTransport.
//
// Message payloads use the store's ByteWriter/ByteReader codec
// (store/codec.hpp).  Every decode_* is total and returns nullopt on any
// malformation, including trailing garbage.
//
// Conversation (coordinator serves, worker drives):
//
//   worker     -> HELLO {fingerprint, name}        (once per connection)
//   coordinator-> WELCOME {ok, message}            (!ok: campaign mismatch)
//   worker     -> PULL
//   coordinator-> JOB {index, kind, key, lease_ms, heartbeat_ms,
//                      parent_runs?}               | WAIT {retry_ms} | DONE
//   worker     -> HEARTBEAT {index}                (while computing)
//   worker     -> RESULT {index, kind, key, data}  (cell record / metric)
//
// Reconnect is idempotent: a worker may HELLO again at any time and
// resume pulling; the coordinator's lease bookkeeping handles whatever
// the old connection left behind.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fne {

/// Bump when the frame layout or any payload schema changes.  Carried in
/// HELLO/WELCOME via the campaign fingerprint mix so mismatched builds
/// refuse each other instead of trading garbage.
inline constexpr std::uint32_t kWireProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kWelcome = 2,
  kPull = 3,
  kJob = 4,
  kWait = 5,
  kDone = 6,
  kResult = 7,
  kHeartbeat = 8,
  // Scenario-service conversation (DESIGN.md §13) — same frames, JSON
  // text payloads: client -> kRequest {json}, service -> kResponse {json}.
  kRequest = 9,
  kResponse = 10,
};

struct Message {
  MsgType type = MsgType::kPull;
  std::string payload;
};

/// Frame a message for the wire (header + checksum + payload).
[[nodiscard]] std::string encode_frame(const Message& msg);

/// Incremental frame decoder over a received byte stream.  Append bytes
/// as they arrive; next() yields complete verified messages.  One
/// kCorrupt poisons the buffer permanently — after garbage there is no
/// trustworthy resynchronization point, so the connection must drop.
class FrameBuffer {
 public:
  enum class Next {
    kMessage,   ///< `out` holds a verified message
    kNeedMore,  ///< no complete frame buffered yet
    kCorrupt,   ///< stream is garbage; drop the connection
  };

  void append(std::string_view bytes);
  [[nodiscard]] Next next(Message& out);

  /// Buffered-but-unparsed byte count (tests).
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

// -- typed payloads ---------------------------------------------------------

struct HelloPayload {
  std::uint64_t fingerprint = 0;  ///< CampaignPlan::fingerprint ^ protocol mix
  std::string worker_name;
};

struct WelcomePayload {
  bool ok = false;
  std::string message;  ///< human-readable reject reason when !ok
};

struct JobPayload {
  std::uint64_t index = 0;   ///< job index in the shared CampaignPlan
  std::uint32_t kind = 0;    ///< CampaignJob::Kind as u32 (worker re-checks)
  std::string key;           ///< cell content key (worker verifies vs its plan)
  std::uint64_t lease_ms = 0;
  std::uint64_t heartbeat_ms = 0;
  std::string parent_runs;   ///< kMetric only: encode_runs of the parent run
};

struct WaitPayload {
  std::uint64_t retry_ms = 0;
};

struct ResultPayload {
  std::uint64_t index = 0;
  std::uint32_t kind = 0;
  std::string key;   ///< echoed cell key — wrong key => rejected
  std::string data;  ///< cell: encode_runs; metric: encode_metric_record
};

struct HeartbeatPayload {
  std::uint64_t index = 0;
};

[[nodiscard]] std::string encode_hello(const HelloPayload& p);
[[nodiscard]] std::optional<HelloPayload> decode_hello(std::string_view bytes);
[[nodiscard]] std::string encode_welcome(const WelcomePayload& p);
[[nodiscard]] std::optional<WelcomePayload> decode_welcome(std::string_view bytes);
[[nodiscard]] std::string encode_job(const JobPayload& p);
[[nodiscard]] std::optional<JobPayload> decode_job(std::string_view bytes);
[[nodiscard]] std::string encode_wait(const WaitPayload& p);
[[nodiscard]] std::optional<WaitPayload> decode_wait(std::string_view bytes);
[[nodiscard]] std::string encode_result(const ResultPayload& p);
[[nodiscard]] std::optional<ResultPayload> decode_result(std::string_view bytes);
[[nodiscard]] std::string encode_heartbeat(const HeartbeatPayload& p);
[[nodiscard]] std::optional<HeartbeatPayload> decode_heartbeat(std::string_view bytes);

/// MetricRecord <-> bytes for RESULT frames of kMetric jobs.  Total
/// decode like everything else on the wire.
struct MetricRecordWire {
  std::string name;
  std::string payload;
  std::string brief;
};
[[nodiscard]] std::string encode_metric_record(const MetricRecordWire& m);
[[nodiscard]] std::optional<MetricRecordWire> decode_metric_record(std::string_view bytes);

/// What both endpoints actually compare in HELLO/WELCOME: the campaign
/// plan fingerprint mixed with the protocol version, so a version skew
/// reads as a campaign mismatch and the connection is refused.
[[nodiscard]] std::uint64_t wire_fingerprint(std::uint64_t plan_fingerprint);

class Transport;

/// One step of pumping a transport into a FrameBuffer.  Returns after at
/// most `timeout_ms` with either a verified message or the reason there
/// is none yet; kTimeout covers both "no bytes" and "frame incomplete"
/// (the caller loops against its own deadline).
enum class ReadStatus {
  kMessage,
  kTimeout,
  kEof,      ///< peer closed cleanly
  kError,    ///< connection reset / transport error
  kCorrupt,  ///< stream failed verification; drop the connection
};
[[nodiscard]] ReadStatus read_message(Transport& transport, FrameBuffer& buf, Message& out,
                                      int timeout_ms);

}  // namespace fne
