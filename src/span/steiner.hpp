// Steiner trees for the span definition (paper Eq. 1): P(U) is the
// smallest tree connecting every node of Γ(U).
//
// Two engines:
//   * Dreyfus–Wagner dynamic program — exact, O(3^t·n + 2^t·n·m) for t
//     terminals; used whenever 3^t·n is affordable.
//   * metric-closure MST — the classic 2-approximation; only ever
//     *overestimates* the tree size, which keeps sampled span estimates
//     conservative in the documented direction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct SteinerResult {
  vid tree_nodes = 0;   ///< |P(U)|: number of nodes in the tree
  vid tree_edges = 0;   ///< tree_nodes - 1 (0 for a single terminal)
  bool exact = false;   ///< true when produced by Dreyfus–Wagner
  VertexSet nodes;      ///< the tree's vertex set
};

/// Cost guard for the exact engine: run DW only if 3^t * n is below this.
inline constexpr std::uint64_t kDreyfusWagnerBudget = 200'000'000ULL;

/// Can Dreyfus–Wagner afford these parameters?
[[nodiscard]] bool dreyfus_wagner_feasible(vid n, vid terminals);

/// Exact minimum Steiner tree (unit edge weights).  Terminals must be
/// nonempty and lie in one connected component.
[[nodiscard]] SteinerResult steiner_exact(const Graph& g, const std::vector<vid>& terminals);

/// 2-approximate Steiner tree via MST of the metric closure.
[[nodiscard]] SteinerResult steiner_approx(const Graph& g, const std::vector<vid>& terminals);

/// Dispatch: exact when affordable, approx otherwise.
[[nodiscard]] SteinerResult steiner_tree(const Graph& g, const std::vector<vid>& terminals);

}  // namespace fne
