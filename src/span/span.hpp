// The span of a graph (paper Eq. 1):
//   σ = max over compact U of |P(U)| / |Γ(U)|,
// where P(U) is the smallest tree connecting every node of Γ(U).
//
// Exact for small graphs (exhaustive compact sets + Dreyfus–Wagner);
// sampled for large graphs.  A sampled estimate is a LOWER bound on σ
// when its Steiner trees are exact; with approximate Steiner trees each
// ratio can overshoot by at most 2×, so the estimate lies in [σ_est/2, σ].
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct SpanResult {
  double span = 0.0;
  VertexSet worst_set;        ///< compact set achieving the maximum
  vid worst_boundary = 0;
  vid worst_tree_nodes = 0;
  std::uint64_t sets_examined = 0;
  bool exact = false;         ///< exhaustive sets + exact Steiner everywhere
};

/// Exact span by exhaustive compact-set enumeration.  Requires the graph
/// to be connected and small (kCompactEnumLimit).
[[nodiscard]] SpanResult exact_span(const Graph& g);

struct SpanEstimateOptions {
  int samples_per_size = 32;
  std::uint64_t seed = 7;
  /// Target sizes as fractions of n; 0 entries are skipped.
  std::vector<double> size_fractions{0.02, 0.05, 0.1, 0.2, 0.35, 0.5};
};

/// Sampled span estimate over random compact sets.
[[nodiscard]] SpanResult estimate_span(const Graph& g, const SpanEstimateOptions& options = {});

}  // namespace fne
