#include "span/span.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "span/compact_sets.hpp"
#include "span/steiner.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

SpanResult exact_span(const Graph& g) {
  SpanResult result;
  result.exact = true;
  const VertexSet all = VertexSet::full(g.num_vertices());
  enumerate_compact_sets(g, [&](const VertexSet& u) {
    ++result.sets_examined;
    const VertexSet boundary = node_boundary(g, all, u);
    const vid b = boundary.count();
    if (b == 0) return;  // cannot happen for connected g, proper compact u
    // Dispatch keeps the scan safe if a boundary exceeds the DW budget
    // (result.exact reflects whether every tree was exact).
    const SteinerResult tree = steiner_tree(g, boundary.to_vector());
    result.exact = result.exact && tree.exact;
    const double ratio = static_cast<double>(tree.tree_nodes) / static_cast<double>(b);
    if (ratio > result.span) {
      result.span = ratio;
      result.worst_set = u;
      result.worst_boundary = b;
      result.worst_tree_nodes = tree.tree_nodes;
    }
  });
  return result;
}

SpanResult estimate_span(const Graph& g, const SpanEstimateOptions& options) {
  FNE_REQUIRE(options.samples_per_size >= 1, "need at least one sample per size");
  const vid n = g.num_vertices();
  const VertexSet all = VertexSet::full(n);
  Rng rng(options.seed);

  SpanResult result;
  result.exact = true;  // cleared as soon as one approximate tree is used
  for (double frac : options.size_fractions) {
    const auto target = static_cast<vid>(frac * static_cast<double>(n));
    if (target < 1 || 2 * target > n) continue;
    for (int s = 0; s < options.samples_per_size; ++s) {
      const VertexSet u = sample_compact_set(g, target, rng.next());
      if (u.empty()) continue;
      ++result.sets_examined;
      const VertexSet boundary = node_boundary(g, all, u);
      const vid b = boundary.count();
      if (b == 0) continue;
      const SteinerResult tree = steiner_tree(g, boundary.to_vector());
      result.exact = result.exact && tree.exact;
      const double ratio = static_cast<double>(tree.tree_nodes) / static_cast<double>(b);
      if (ratio > result.span) {
        result.span = ratio;
        result.worst_set = u;
        result.worst_boundary = b;
        result.worst_tree_nodes = tree.tree_nodes;
      }
    }
  }
  return result;
}

}  // namespace fne
