// Theorem 3.6 / Lemma 3.7: the d-dimensional mesh has span 2.
//
// The constructive proof places *virtual edges* between boundary nodes
// u, v ∈ B = Γ(S) that agree in at least d-2 coordinates and differ by at
// most 1 in the remaining ones; Lemma 3.7 shows (B, Ev) is connected for
// every compact S.  A spanning tree of (B, Ev) has |B|-1 virtual edges,
// each realizable by at most 2 mesh edges, giving a tree on at most
// 2(|B|-1) mesh edges that spans B — hence span <= 2.
//
// CAVEAT (established empirically by this reproduction, consistent with
// the paper's Z^d homology proof): Lemma 3.7 does NOT extend to tori — a
// compact band wrapping one dimension has a boundary of two disjoint
// rings with no virtual edges between them.  These helpers accept torus
// meshes for convenience, but mesh_boundary_span_tree() then rejects such
// sets via its connectivity precondition.
#pragma once

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "topology/mesh.hpp"

namespace fne {

/// The virtual-edge graph (B, Ev) over the boundary of S, returned over a
/// compact vertex universe with `to_mesh` mapping back to mesh ids.
struct VirtualBoundaryGraph {
  Graph graph;
  std::vector<vid> to_mesh;
};

[[nodiscard]] VirtualBoundaryGraph virtual_boundary_graph(const Mesh& mesh, const VertexSet& s);

/// Is the virtual-edge boundary graph of S connected (Lemma 3.7)?
/// S must be a compact set of the mesh.
[[nodiscard]] bool virtual_boundary_connected(const Mesh& mesh, const VertexSet& s);

struct ConstructiveSpanTree {
  VertexSet nodes;       ///< realized tree vertex set in the mesh
  vid boundary_size = 0; ///< |B|
  vid tree_nodes = 0;    ///< |nodes| <= 2|B| - 1
  vid tree_edges = 0;    ///< <= 2(|B| - 1)
  double ratio = 0.0;    ///< tree_nodes / |B| (<= 2 by Theorem 3.6)
};

/// Build the constructive boundary-spanning tree of Theorem 3.6 for a
/// compact set S.  Requires Γ(S) nonempty.
[[nodiscard]] ConstructiveSpanTree mesh_boundary_span_tree(const Mesh& mesh, const VertexSet& s);

}  // namespace fne
