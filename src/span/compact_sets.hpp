// Compact sets (paper §1.4): U is compact iff U and V\U are both
// connected.  The span maximizes over all compact sets, so we need both
// exhaustive enumeration (small graphs — exact span) and random sampling
// (large graphs — span lower-bound estimates).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// Maximum universe exhaustive compact-set enumeration accepts.
inline constexpr vid kCompactEnumLimit = 24;

/// Invoke `visit` for every compact set of the graph (both orientations:
/// U and V\U are each visited, as the span definition ranges over all
/// compact sets).  Requires g connected and 2 <= n <= kCompactEnumLimit.
void enumerate_compact_sets(const Graph& g, const std::function<void(const VertexSet&)>& visit);

/// Count of compact sets (exhaustive).
[[nodiscard]] std::uint64_t count_compact_sets(const Graph& g);

/// Sample a random compact set with `target_size` <= n/2: grow a random
/// connected set, then repair complement-connectivity via Lemma 3.3
/// compactification.  Returns an empty set on failure (rare).
[[nodiscard]] VertexSet sample_compact_set(const Graph& g, vid target_size, std::uint64_t seed);

/// Count connected induced subgraphs containing exactly r marked vertices
/// (Claim 3.2 validation, E10).  Exhaustive over connected subgraphs;
/// requires small graphs.  `marked` flags the "vertices from G" of the
/// chain construction.
[[nodiscard]] std::uint64_t count_connected_subgraphs_with_marked(const Graph& g,
                                                                  const VertexSet& marked,
                                                                  vid r, vid max_total_size);

}  // namespace fne
