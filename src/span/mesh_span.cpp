#include "span/mesh_span.hpp"

#include <deque>
#include <functional>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

/// All mesh vertices within Chebyshev distance 1 of u that differ from u
/// in at most 2 dimensions (the virtual-edge neighborhood of Thm 3.6).
void for_each_virtual_neighbor(const Mesh& mesh, vid u, const std::function<void(vid)>& fn) {
  const vid d = mesh.dims();
  const auto coords = mesh.coords_of(u);
  const auto& sides = mesh.sides();

  // Offsets in one dimension: -1, +1 (respecting mesh/torus boundary).
  auto shifted = [&](vid dim, int delta) -> std::int64_t {
    const auto side = static_cast<std::int64_t>(sides[dim]);
    std::int64_t c = static_cast<std::int64_t>(coords[dim]) + delta;
    if (mesh.wraps()) {
      if (side <= 2) {
        // A wrap around a side of <= 2 revisits the same or the adjacent
        // coordinate; plain clamp semantics apply.
        if (c < 0 || c >= side) return -1;
        return c;
      }
      return (c + side) % side;
    }
    if (c < 0 || c >= side) return -1;
    return c;
  };

  auto make_id = [&](vid dim_a, std::int64_t ca, vid dim_b, std::int64_t cb) -> vid {
    std::vector<vid> c = coords;
    c[dim_a] = static_cast<vid>(ca);
    if (dim_b != kInvalidVertex) c[dim_b] = static_cast<vid>(cb);
    return mesh.id_of(c);
  };

  // One differing dimension.
  for (vid a = 0; a < d; ++a) {
    for (int da : {-1, +1}) {
      const std::int64_t ca = shifted(a, da);
      if (ca < 0 || ca == static_cast<std::int64_t>(coords[a])) continue;
      fn(make_id(a, ca, kInvalidVertex, 0));
    }
  }
  // Two differing dimensions.
  for (vid a = 0; a < d; ++a) {
    for (vid b = a + 1; b < d; ++b) {
      for (int da : {-1, +1}) {
        for (int db : {-1, +1}) {
          const std::int64_t ca = shifted(a, da);
          const std::int64_t cb = shifted(b, db);
          if (ca < 0 || cb < 0) continue;
          if (ca == static_cast<std::int64_t>(coords[a]) ||
              cb == static_cast<std::int64_t>(coords[b])) {
            continue;
          }
          fn(make_id(a, ca, b, cb));
        }
      }
    }
  }
}

}  // namespace

VirtualBoundaryGraph virtual_boundary_graph(const Mesh& mesh, const VertexSet& s) {
  const Graph& g = mesh.graph();
  const VertexSet all = VertexSet::full(g.num_vertices());
  const VertexSet boundary = node_boundary(g, all, s);
  FNE_REQUIRE(!boundary.empty(), "S has an empty boundary");

  VirtualBoundaryGraph result;
  result.to_mesh = boundary.to_vector();
  std::vector<vid> to_sub(g.num_vertices(), kInvalidVertex);
  for (vid i = 0; i < result.to_mesh.size(); ++i) to_sub[result.to_mesh[i]] = i;

  std::vector<Edge> edges;
  for (vid i = 0; i < result.to_mesh.size(); ++i) {
    const vid u = result.to_mesh[i];
    for_each_virtual_neighbor(mesh, u, [&](vid w) {
      if (boundary.test(w) && to_sub[w] > i && to_sub[w] != kInvalidVertex) {
        edges.push_back({i, to_sub[w]});
      }
    });
  }
  result.graph = Graph::from_edges(static_cast<vid>(result.to_mesh.size()), std::move(edges));
  return result;
}

bool virtual_boundary_connected(const Mesh& mesh, const VertexSet& s) {
  const VirtualBoundaryGraph vb = virtual_boundary_graph(mesh, s);
  return is_connected(vb.graph, VertexSet::full(vb.graph.num_vertices()));
}

ConstructiveSpanTree mesh_boundary_span_tree(const Mesh& mesh, const VertexSet& s) {
  const VirtualBoundaryGraph vb = virtual_boundary_graph(mesh, s);
  const vid b = vb.graph.num_vertices();
  FNE_REQUIRE(is_connected(vb.graph, VertexSet::full(b)),
              "virtual boundary graph disconnected (S not compact?)");

  ConstructiveSpanTree tree;
  tree.boundary_size = b;
  tree.nodes = VertexSet(mesh.graph().num_vertices());
  tree.nodes.set(vb.to_mesh[0]);
  tree.tree_edges = 0;

  // BFS spanning tree of (B, Ev); realize each virtual edge in the mesh.
  std::vector<bool> seen(b, false);
  std::deque<vid> queue{0};
  seen[0] = true;
  while (!queue.empty()) {
    const vid i = queue.front();
    queue.pop_front();
    for (vid j : vb.graph.neighbors(i)) {
      if (seen[j]) continue;
      seen[j] = true;
      queue.push_back(j);
      const vid u = vb.to_mesh[i];
      const vid v = vb.to_mesh[j];
      tree.nodes.set(u);
      tree.nodes.set(v);
      if (mesh.hamming_dims(u, v) == 1) {
        tree.tree_edges += 1;  // a real mesh edge
      } else {
        // Diagonal virtual edge: route through the midpoint that takes
        // u's first differing coordinate to v's value.
        auto cu = mesh.coords_of(u);
        const auto cv = mesh.coords_of(v);
        for (vid dim = 0; dim < mesh.dims(); ++dim) {
          if (cu[dim] != cv[dim]) {
            cu[dim] = cv[dim];
            break;
          }
        }
        tree.nodes.set(mesh.id_of(cu));
        tree.tree_edges += 2;
      }
    }
  }
  tree.tree_nodes = tree.nodes.count();
  tree.ratio = static_cast<double>(tree.tree_nodes) / static_cast<double>(b);
  return tree;
}

}  // namespace fne
