#include "span/compact_sets.hpp"

#include "core/traversal.hpp"
#include "expansion/uniform.hpp"
#include "prune/compact.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

namespace {

/// Bitmask connectivity over a <=24-vertex graph with adjacency bitmasks.
bool mask_connected(std::uint32_t mask, const std::vector<std::uint32_t>& adj) {
  if (mask == 0) return false;
  std::uint32_t reached = mask & (~mask + 1);  // lowest set bit
  std::uint32_t frontier = reached;
  while (frontier != 0) {
    std::uint32_t next = 0;
    std::uint32_t bits = frontier;
    while (bits != 0) {
      const int v = __builtin_ctz(bits);
      bits &= bits - 1;
      next |= adj[static_cast<std::size_t>(v)];
    }
    next &= mask & ~reached;
    reached |= next;
    frontier = next;
  }
  return reached == mask;
}

std::vector<std::uint32_t> adjacency_masks(const Graph& g) {
  std::vector<std::uint32_t> adj(g.num_vertices(), 0);
  for (const Edge& e : g.edges()) {
    adj[e.u] |= std::uint32_t{1} << e.v;
    adj[e.v] |= std::uint32_t{1} << e.u;
  }
  return adj;
}

}  // namespace

void enumerate_compact_sets(const Graph& g, const std::function<void(const VertexSet&)>& visit) {
  const vid n = g.num_vertices();
  FNE_REQUIRE(n >= 2 && n <= kCompactEnumLimit, "compact enumeration limited to small graphs");
  FNE_REQUIRE(is_connected(g, VertexSet::full(n)), "compact enumeration expects a connected graph");
  const auto adj = adjacency_masks(g);
  const std::uint32_t full = n == 32 ? ~0U : (std::uint32_t{1} << n) - 1U;
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    if (!mask_connected(mask, adj)) continue;
    if (!mask_connected(full & ~mask, adj)) continue;
    VertexSet s(n);
    std::uint32_t bits = mask;
    while (bits != 0) {
      const int v = __builtin_ctz(bits);
      bits &= bits - 1;
      s.set(static_cast<vid>(v));
    }
    visit(s);
  }
}

std::uint64_t count_compact_sets(const Graph& g) {
  std::uint64_t count = 0;
  enumerate_compact_sets(g, [&](const VertexSet&) { ++count; });
  return count;
}

VertexSet sample_compact_set(const Graph& g, vid target_size, std::uint64_t seed) {
  FNE_REQUIRE(target_size >= 1 && 2 * target_size <= g.num_vertices(),
              "target size must be in [1, n/2]");
  const VertexSet all = VertexSet::full(g.num_vertices());
  Rng rng(seed);
  for (int attempt = 0; attempt < 16; ++attempt) {
    VertexSet s = random_connected_set(g, all, target_size, rng.next());
    if (s.empty()) continue;
    if (is_compact(g, all, s)) return s;
    // Repair with Lemma 3.3: the compactification of a connected set is
    // compact and no larger than n/2 unless it flips to case 1 (which
    // also stays <= n/2).
    s = compactify(g, all, s);
    if (!s.empty() && is_compact(g, all, s)) return s;
  }
  return VertexSet(g.num_vertices());
}

namespace {

struct MarkedCounter {
  const std::vector<std::uint32_t>* adj = nullptr;
  std::uint32_t marked = 0;
  vid want_marked = 0;
  vid max_size = 0;
  std::uint64_t count = 0;

  /// ESU-style enumeration of connected induced subgraphs whose minimum
  /// vertex is `anchor`: each subgraph visited exactly once.
  void extend(std::uint32_t sub, std::uint32_t extension, std::uint32_t forbidden, int anchor) {
    const auto size = static_cast<vid>(__builtin_popcount(sub));
    const auto marked_in =
        static_cast<vid>(__builtin_popcount(sub & marked));
    if (marked_in == want_marked) ++count;
    if (size >= max_size || marked_in > want_marked) return;
    std::uint32_t ext = extension;
    std::uint32_t used = 0;
    while (ext != 0) {
      const int v = __builtin_ctz(ext);
      ext &= ext - 1;
      const std::uint32_t vbit = std::uint32_t{1} << v;
      used |= vbit;
      // New extension: v's neighbors above the anchor, not already in the
      // subgraph, not forbidden, not already pending.
      const std::uint32_t above = ~((std::uint32_t{1} << (anchor + 1)) - 1U);
      const std::uint32_t fresh =
          (*adj)[static_cast<std::size_t>(v)] & above & ~sub & ~forbidden & ~extension & ~used;
      extend(sub | vbit, (ext | fresh), forbidden | used, anchor);
    }
  }
};

}  // namespace

std::uint64_t count_connected_subgraphs_with_marked(const Graph& g, const VertexSet& marked,
                                                    vid r, vid max_total_size) {
  const vid n = g.num_vertices();
  FNE_REQUIRE(n <= kCompactEnumLimit, "subgraph counting limited to small graphs");
  const auto adj = adjacency_masks(g);
  std::uint32_t marked_mask = 0;
  marked.for_each([&](vid v) { marked_mask |= std::uint32_t{1} << v; });

  MarkedCounter counter;
  counter.adj = &adj;
  counter.marked = marked_mask;
  counter.want_marked = r;
  counter.max_size = max_total_size;
  for (vid a = 0; a < n; ++a) {
    const std::uint32_t abit = std::uint32_t{1} << a;
    const std::uint32_t above = ~((std::uint32_t{1} << (a + 1)) - 1U);
    counter.extend(abit, adj[a] & above, 0, static_cast<int>(a));
  }
  return counter.count;
}

}  // namespace fne
