#include "span/steiner.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <queue>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

constexpr std::uint32_t kInf = 0x3fffffffU;

std::uint64_t pow3(vid t) {
  std::uint64_t p = 1;
  for (vid i = 0; i < t; ++i) p *= 3;
  return p;
}

}  // namespace

bool dreyfus_wagner_feasible(vid n, vid terminals) {
  if (terminals == 0 || terminals > 18) return false;
  return pow3(terminals) * static_cast<std::uint64_t>(n) <= kDreyfusWagnerBudget;
}

SteinerResult steiner_exact(const Graph& g, const std::vector<vid>& terminals) {
  FNE_REQUIRE(!terminals.empty(), "Steiner tree needs >= 1 terminal");
  FNE_REQUIRE(dreyfus_wagner_feasible(g.num_vertices(), static_cast<vid>(terminals.size())),
              "Dreyfus–Wagner parameters exceed the cost budget");
  const vid n = g.num_vertices();
  const auto t = static_cast<vid>(terminals.size());

  SteinerResult result;
  result.exact = true;
  result.nodes = VertexSet(n);
  if (t == 1) {
    result.nodes.set(terminals[0]);
    result.tree_nodes = 1;
    result.tree_edges = 0;
    return result;
  }

  const std::uint32_t full = (std::uint32_t{1} << t) - 1U;
  const std::size_t masks = std::size_t{1} << t;
  std::vector<std::uint32_t> dp(masks * n, kInf);
  std::vector<std::uint32_t> choice_sub(masks * n, 0);      // nonzero => merge split
  std::vector<vid> choice_pred(masks * n, kInvalidVertex);  // grow predecessor

  auto idx = [n](std::uint32_t mask, vid v) { return static_cast<std::size_t>(mask) * n + v; };

  // Grow step: Dijkstra relaxation (unit weights) from the current dp row.
  auto grow = [&](std::uint32_t mask) {
    using Item = std::pair<std::uint32_t, vid>;  // (cost, vertex)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (vid v = 0; v < n; ++v) {
      if (dp[idx(mask, v)] < kInf) heap.push({dp[idx(mask, v)], v});
    }
    while (!heap.empty()) {
      const auto [cost, v] = heap.top();
      heap.pop();
      if (cost != dp[idx(mask, v)]) continue;
      for (vid w : g.neighbors(v)) {
        if (cost + 1 < dp[idx(mask, w)]) {
          dp[idx(mask, w)] = cost + 1;
          choice_pred[idx(mask, w)] = v;
          choice_sub[idx(mask, w)] = 0;
          heap.push({cost + 1, w});
        }
      }
    }
  };

  // Singleton masks: distance from each terminal.
  for (vid i = 0; i < t; ++i) {
    const std::uint32_t mask = std::uint32_t{1} << i;
    dp[idx(mask, terminals[i])] = 0;
    grow(mask);
  }

  // Masks in increasing popcount order.
  std::vector<std::uint32_t> order;
  order.reserve(masks - 1);
  for (std::uint32_t mask = 1; mask <= full; ++mask) order.push_back(mask);
  std::stable_sort(order.begin(), order.end(), [](std::uint32_t a, std::uint32_t b) {
    return __builtin_popcount(a) < __builtin_popcount(b);
  });
  for (std::uint32_t mask : order) {
    if (__builtin_popcount(mask) < 2) continue;
    // Merge: combine complementary sub-trees meeting at v.  Fix the lowest
    // terminal of `mask` into `sub` so each split is tried once.
    const std::uint32_t low = mask & (~mask + 1);
    for (std::uint32_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      if ((sub & low) == 0) continue;
      const std::uint32_t other = mask ^ sub;
      for (vid v = 0; v < n; ++v) {
        const std::uint32_t combined = dp[idx(sub, v)] + dp[idx(other, v)];
        if (combined < dp[idx(mask, v)]) {
          dp[idx(mask, v)] = combined;
          choice_sub[idx(mask, v)] = sub;
          choice_pred[idx(mask, v)] = kInvalidVertex;
        }
      }
    }
    grow(mask);
  }

  // Optimum and reconstruction.
  vid best_v = 0;
  for (vid v = 1; v < n; ++v) {
    if (dp[idx(full, v)] < dp[idx(full, best_v)]) best_v = v;
  }
  FNE_REQUIRE(dp[idx(full, best_v)] < kInf, "terminals are not mutually connected");

  // Recursive collection of the tree's vertex set (iterative stack).
  std::vector<std::pair<std::uint32_t, vid>> stack{{full, best_v}};
  while (!stack.empty()) {
    auto [mask, v] = stack.back();
    stack.pop_back();
    // Walk the grow chain back to the merge/init anchor.
    vid cur = v;
    while (true) {
      result.nodes.set(cur);
      const vid pred = choice_pred[idx(mask, cur)];
      if (pred == kInvalidVertex) break;
      cur = pred;
    }
    const std::uint32_t sub = choice_sub[idx(mask, cur)];
    if (sub != 0) {
      stack.push_back({sub, cur});
      stack.push_back({mask ^ sub, cur});
    }
    // popcount(mask) == 1 and no pred: cur is the terminal itself.
  }

  result.tree_edges = dp[idx(full, best_v)];
  result.tree_nodes = result.tree_edges + 1;
  return result;
}

SteinerResult steiner_approx(const Graph& g, const std::vector<vid>& terminals) {
  FNE_REQUIRE(!terminals.empty(), "Steiner tree needs >= 1 terminal");
  const vid n = g.num_vertices();
  const auto t = static_cast<vid>(terminals.size());
  SteinerResult result;
  result.exact = false;
  result.nodes = VertexSet(n);
  if (t == 1) {
    result.nodes.set(terminals[0]);
    result.tree_nodes = 1;
    return result;
  }

  // BFS from every terminal (distances + parents).
  const VertexSet all = VertexSet::full(n);
  std::vector<std::vector<std::uint32_t>> dist(t);
  std::vector<std::vector<vid>> parent(t, std::vector<vid>(n, kInvalidVertex));
  for (vid i = 0; i < t; ++i) {
    dist[i].assign(n, kUnreached);
    std::deque<vid> queue{terminals[i]};
    dist[i][terminals[i]] = 0;
    while (!queue.empty()) {
      const vid u = queue.front();
      queue.pop_front();
      for (vid w : g.neighbors(u)) {
        if (dist[i][w] == kUnreached) {
          dist[i][w] = dist[i][u] + 1;
          parent[i][w] = u;
          queue.push_back(w);
        }
      }
    }
  }

  // Prim MST over the metric closure of the terminals.
  std::vector<bool> in_tree(t, false);
  std::vector<std::uint32_t> best(t, kUnreached);
  std::vector<vid> best_from(t, 0);
  best[0] = 0;
  for (vid round = 0; round < t; ++round) {
    vid pick = kInvalidVertex;
    for (vid i = 0; i < t; ++i) {
      if (!in_tree[i] && (pick == kInvalidVertex || best[i] < best[pick])) pick = i;
    }
    FNE_REQUIRE(pick != kInvalidVertex && best[pick] != kUnreached,
                "terminals are not mutually connected");
    in_tree[pick] = true;
    if (round > 0) {
      // Realize the closure edge: walk terminal `pick` home along the BFS
      // parents of terminal `best_from[pick]`.
      const vid src = best_from[pick];
      vid cur = terminals[pick];
      while (cur != kInvalidVertex) {
        result.nodes.set(cur);
        cur = parent[src][cur];
      }
    } else {
      result.nodes.set(terminals[0]);
    }
    for (vid i = 0; i < t; ++i) {
      if (!in_tree[i] && dist[pick][terminals[i]] < best[i]) {
        best[i] = dist[pick][terminals[i]];
        best_from[i] = pick;
      }
    }
  }

  // Prune: spanning tree of the realized union, then strip non-terminal
  // leaves (standard post-pass that tightens the 2-approx in practice).
  VertexSet terminal_set(n);
  for (vid v : terminals) terminal_set.set(v);
  std::vector<vid> tree_parent(n, kInvalidVertex);
  VertexSet seen(n);
  std::deque<vid> queue{terminals[0]};
  seen.set(terminals[0]);
  while (!queue.empty()) {
    const vid u = queue.front();
    queue.pop_front();
    for (vid w : g.neighbors(u)) {
      if (result.nodes.test(w) && !seen.test(w)) {
        seen.set(w);
        tree_parent[w] = u;
        queue.push_back(w);
      }
    }
  }
  std::vector<vid> child_count(n, 0);
  seen.for_each([&](vid v) {
    if (tree_parent[v] != kInvalidVertex) ++child_count[tree_parent[v]];
  });
  std::vector<vid> leaves;
  seen.for_each([&](vid v) {
    if (child_count[v] == 0 && !terminal_set.test(v)) leaves.push_back(v);
  });
  while (!leaves.empty()) {
    const vid v = leaves.back();
    leaves.pop_back();
    seen.reset(v);
    const vid p = tree_parent[v];
    if (p != kInvalidVertex && --child_count[p] == 0 && !terminal_set.test(p)) {
      leaves.push_back(p);
    }
  }
  result.nodes = seen;
  result.tree_nodes = seen.count();
  result.tree_edges = result.tree_nodes > 0 ? result.tree_nodes - 1 : 0;
  return result;
}

SteinerResult steiner_tree(const Graph& g, const std::vector<vid>& terminals) {
  if (dreyfus_wagner_feasible(g.num_vertices(), static_cast<vid>(terminals.size()))) {
    return steiner_exact(g, terminals);
  }
  return steiner_approx(g, terminals);
}

}  // namespace fne
