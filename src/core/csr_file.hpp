// fne::CsrFile — the versioned, checksummed binary CSR on-disk graph
// format behind the `file` topology (DESIGN.md §14).
//
// Real datasets (SNAP edge lists, interconnect traces) enter the system
// through tools/edgelist2csr, which canonicalizes the messy text once and
// emits this format; every later load is a header check, one checksum
// pass, and a straight CSR walk — no parsing, no sorting, no dedup.
//
// Layout (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     8  magic "FNECSR01"
//        8     4  version (kCsrVersion)
//       12     4  reserved (must be 0)
//       16     8  n — vertex count (< 2^31, the vid contract)
//       24     8  m — undirected edge count (< 2^31, the eid contract)
//       32     8  checksum — FNV-1a over the n and m words (8 LE bytes
//                 each) followed by the payload bytes
//       40  (n+1)*8  offsets — arc offsets per vertex, offsets[n] == 2m
//        +   2m*4    adj     — neighbor ids, per-vertex strictly ascending
//
// The payload is CANONICAL CSR: per-vertex neighbor lists sorted strictly
// ascending (so no duplicate arcs), no self loops, and symmetric (every
// arc has its reverse).  Canonical form makes the encoding of a Graph
// unique — byte-identical files for equal graphs — which is what lets CI
// diff converter output against a committed fixture.
//
// Decoding is TOTAL, the §11 store-codec / §12 FrameBuffer discipline:
// any malformed input — truncation at any byte, a flipped bit anywhere,
// oversized header counts, non-canonical or asymmetric adjacency — yields
// a clean PreconditionError naming the defect, never UB, OOM or a crash.
// `validate()` exposes the same checks as an error string for fuzz tests.
//
// Loading is zero-copy: open() mmaps the file (Load::kMmap / kAuto) and
// the offsets/adj accessors are spans straight into the mapping; the
// buffered mode (kBuffer, and the fallback where mmap is unavailable)
// reads the file into one aligned allocation instead.  Both modes
// validate identically and produce identical Graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.hpp"

namespace fne {

inline constexpr std::string_view kCsrMagic = "FNECSR01";  // 8 bytes
inline constexpr std::uint32_t kCsrVersion = 1;
inline constexpr std::size_t kCsrHeaderBytes = 40;
/// Hard ceilings from the id types (types.hpp): vids and eids are 32-bit,
/// and a header claiming more is corrupt, not big.
inline constexpr std::uint64_t kCsrMaxVertices = std::uint64_t{1} << 31;
inline constexpr std::uint64_t kCsrMaxEdges = std::uint64_t{1} << 31;

/// The decoded fixed-size header of a CSR file.
struct CsrHeader {
  std::uint64_t n = 0;         ///< vertices
  std::uint64_t m = 0;         ///< undirected edges
  std::uint64_t checksum = 0;  ///< FNV-1a over n, m and the payload
};

class CsrFile {
 public:
  /// How open() maps the payload into memory.  kAuto prefers mmap and
  /// falls back to a buffered read where mapping is unavailable; the two
  /// modes are observationally identical (same validation, same Graph).
  enum class Load { kAuto, kMmap, kBuffer };

  CsrFile() = default;
  CsrFile(CsrFile&&) noexcept;
  CsrFile& operator=(CsrFile&&) noexcept;
  CsrFile(const CsrFile&) = delete;
  CsrFile& operator=(const CsrFile&) = delete;
  ~CsrFile();

  /// Open and FULLY validate a CSR file (header, checksum, structure).
  /// Throws PreconditionError naming the path and the defect on any
  /// malformation; a returned CsrFile is safe to walk without checks.
  [[nodiscard]] static CsrFile open(const std::string& path, Load mode = Load::kAuto);

  /// Read and validate only the 40-byte header — the cheap probe behind
  /// the registry's expected_n contract and the cache's content salt.
  [[nodiscard]] static CsrHeader read_header(const std::string& path);

  /// Total validation of a complete in-memory image: nullopt when valid,
  /// otherwise the error message open() would throw.  Never throws, never
  /// reads out of bounds — the fuzz-test surface.
  [[nodiscard]] static std::optional<std::string> validate(std::string_view bytes);

  /// Canonical encoding of a graph (unique bytes per graph value).
  [[nodiscard]] static std::string encode(const Graph& g);

  /// encode() to `path` via a same-directory temp file + rename, so a
  /// crashed writer never leaves a torn file behind.
  static void write(const std::string& path, const Graph& g);

  [[nodiscard]] const CsrHeader& header() const noexcept { return header_; }
  [[nodiscard]] bool mmapped() const noexcept { return map_ != nullptr; }
  /// Arc offsets per vertex (n+1 entries, offsets[n] == 2m); a view into
  /// the mapping or the load buffer.
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept;
  /// Neighbor ids (2m entries), aligned with offsets().
  [[nodiscard]] std::span<const std::uint32_t> adj() const noexcept;

  /// Materialize the Graph.  open() already proved the payload canonical,
  /// so this is a straight rebuild; it still REQUIREs the rebuilt CSR to
  /// match the stored bytes, closing the loop against any decoder bug.
  [[nodiscard]] Graph to_graph() const;

 private:
  void reset() noexcept;

  CsrHeader header_;
  std::vector<std::uint64_t> buffer_;  ///< buffered mode: 8-byte-aligned image
  void* map_ = nullptr;                ///< mmap mode: mapping base
  std::size_t map_len_ = 0;
  const char* data_ = nullptr;  ///< whole validated image (either mode)
  std::size_t size_ = 0;
};

}  // namespace fne
