// Immutable undirected graph in CSR form.
//
// Design notes (see DESIGN.md §4):
//  * The graph is immutable after construction.  Fault injection and
//    pruning never modify it — they carry a VertexSet "alive" mask and a
//    parallel edge-alive mask (for bond percolation).
//  * Each directed arc in the CSR adjacency stores the id of its
//    undirected edge so bond percolation can test edge liveness in O(1).
//  * Self loops are rejected; duplicate edges are merged.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/vertex_set.hpp"

namespace fne {

class Graph {
 public:
  Graph() = default;

  /// Build from an edge list over vertices [0, n).  Duplicates are merged,
  /// self loops rejected.
  [[nodiscard]] static Graph from_edges(vid n, std::vector<Edge> edges);

  [[nodiscard]] vid num_vertices() const noexcept { return n_; }
  [[nodiscard]] eid num_edges() const noexcept { return static_cast<eid>(edges_.size()); }

  /// Neighbors of v, sorted ascending.
  [[nodiscard]] std::span<const vid> neighbors(vid v) const noexcept {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  /// Undirected edge ids aligned with neighbors(v).
  [[nodiscard]] std::span<const eid> incident_edges(vid v) const noexcept {
    return {arc_edge_.data() + offsets_[v], arc_edge_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] vid degree(vid v) const noexcept {
    return static_cast<vid>(offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] vid max_degree() const noexcept;
  [[nodiscard]] vid min_degree() const noexcept;
  [[nodiscard]] double average_degree() const noexcept {
    return n_ == 0 ? 0.0 : 2.0 * static_cast<double>(edges_.size()) / static_cast<double>(n_);
  }
  [[nodiscard]] bool is_regular() const noexcept;

  /// O(log deg) membership test.
  [[nodiscard]] bool has_edge(vid u, vid v) const noexcept;

  /// All undirected edges, each once, with u < v.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] const Edge& edge(eid e) const noexcept { return edges_[e]; }

  /// Human-readable one-line summary ("n=64 m=128 deg=[4,4]").
  [[nodiscard]] std::string summary() const;

  /// Resident heap footprint of the CSR arrays (capacities, not sizes).
  /// The EngineCache charges cached graphs against its byte budget with
  /// exactly this number (DESIGN.md §13).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  vid n_ = 0;
  std::vector<std::size_t> offsets_;  // n+1
  std::vector<vid> adj_;              // 2m, sorted per vertex
  std::vector<eid> arc_edge_;         // 2m, undirected edge id per arc
  std::vector<Edge> edges_;           // m, u < v
};

}  // namespace fne
