#include "core/traversal.hpp"

#include <algorithm>
#include <deque>

#include "util/require.hpp"

namespace fne {

std::vector<std::uint32_t> bfs_distances(const Graph& g, const VertexSet& alive, vid source,
                                         const EdgeMask* edge_alive) {
  FNE_REQUIRE(alive.universe_size() == g.num_vertices(), "mask/graph size mismatch");
  FNE_REQUIRE(source < g.num_vertices() && alive.test(source), "BFS source must be alive");
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  std::deque<vid> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const vid u = queue.front();
    queue.pop_front();
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid w = nbrs[i];
      if (!alive.test(w) || dist[w] != kUnreached) continue;
      if (edge_alive != nullptr && !edge_alive->test(eids[i])) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
    }
  }
  return dist;
}

vid Components::largest_size() const noexcept {
  vid best = 0;
  for (vid s : sizes) best = std::max(best, s);
  return best;
}

std::uint32_t Components::largest_label() const noexcept {
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < sizes.size(); ++i) {
    if (sizes[i] > sizes[best]) best = i;
  }
  return best;
}

Components connected_components(const Graph& g, const VertexSet& alive,
                                const EdgeMask* edge_alive) {
  FNE_REQUIRE(alive.universe_size() == g.num_vertices(), "mask/graph size mismatch");
  Components comps;
  comps.label.assign(g.num_vertices(), kUnreached);
  std::vector<vid> stack;
  alive.for_each([&](vid start) {
    if (comps.label[start] != kUnreached) return;
    const auto id = static_cast<std::uint32_t>(comps.sizes.size());
    comps.sizes.push_back(0);
    comps.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const vid u = stack.back();
      stack.pop_back();
      ++comps.sizes[id];
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid w = nbrs[i];
        if (!alive.test(w) || comps.label[w] != kUnreached) continue;
        if (edge_alive != nullptr && !edge_alive->test(eids[i])) continue;
        comps.label[w] = id;
        stack.push_back(w);
      }
    }
  });
  return comps;
}

VertexSet largest_component(const Graph& g, const VertexSet& alive, const EdgeMask* edge_alive) {
  const Components comps = connected_components(g, alive, edge_alive);
  VertexSet out(g.num_vertices());
  if (comps.sizes.empty()) return out;
  const std::uint32_t want = comps.largest_label();
  alive.for_each([&](vid v) {
    if (comps.label[v] == want) out.set(v);
  });
  return out;
}

double gamma_largest_fraction(const Graph& g, const VertexSet& alive, const EdgeMask* edge_alive) {
  if (g.num_vertices() == 0) return 0.0;
  const Components comps = connected_components(g, alive, edge_alive);
  return static_cast<double>(comps.largest_size()) / static_cast<double>(g.num_vertices());
}

bool is_connected(const Graph& g, const VertexSet& alive, const EdgeMask* edge_alive) {
  const vid total = alive.count();
  if (total == 0) return false;
  const Components comps = connected_components(g, alive, edge_alive);
  return comps.count() == 1;
}

bool is_connected_subset(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  FNE_REQUIRE(s.intersection_count(alive) == s.count(), "S must be a subset of alive");
  const vid total = s.count();
  if (total == 0) return false;
  // BFS restricted to s.
  std::vector<vid> stack{s.first()};
  VertexSet seen(g.num_vertices());
  seen.set(s.first());
  vid reached = 1;
  while (!stack.empty()) {
    const vid u = stack.back();
    stack.pop_back();
    for (vid w : g.neighbors(u)) {
      if (s.test(w) && !seen.test(w)) {
        seen.set(w);
        ++reached;
        stack.push_back(w);
      }
    }
  }
  return reached == total;
}

VertexSet node_boundary(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  VertexSet boundary(g.num_vertices());
  s.for_each([&](vid u) {
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !s.test(w)) boundary.set(w);
    }
  });
  return boundary;
}

vid node_boundary_size(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  // Dispatch on the cheaper endpoint set (popcounts are word-level).  When
  // S is small — the common case for prune candidates — scanning S's
  // adjacency into a marker set beats touching every outside vertex; when
  // S dominates, iterate alive & ~S one 64-bit word at a time and count
  // members adjacent to S without materializing anything.
  const vid inside = s.count();
  const vid outside = alive.difference_count(s);
  if (inside <= outside) {
    return node_boundary(g, alive, s).count();
  }
  vid boundary = 0;
  alive.for_each_in_diff(s, [&](vid v) {
    for (vid w : g.neighbors(v)) {
      if (s.test(w)) {
        ++boundary;
        break;
      }
    }
  });
  return boundary;
}

std::size_t edge_boundary_size(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  // Edges between S and alive \ S can be counted from either endpoint set;
  // pick the smaller side (popcounts are word-level and cheap) and evaluate
  // the opposite-side membership mask alive & ~S per 64-bit word.
  const vid inside = s.count();
  const vid outside = alive.difference_count(s);
  std::size_t cut = 0;
  if (outside < inside) {
    alive.for_each_in_diff(s, [&](vid v) {
      for (vid w : g.neighbors(v)) {
        if (s.test(w)) ++cut;
      }
    });
  } else {
    s.for_each([&](vid u) {
      for (vid w : g.neighbors(u)) {
        if ((alive.word(w >> 6) & ~s.word(w >> 6)) >> (w & 63) & 1ULL) ++cut;
      }
    });
  }
  return cut;
}

bool is_compact_in_component(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  if (s.empty() || !is_connected_subset(g, alive, s)) return false;
  // BFS out S's component.
  VertexSet comp(g.num_vertices());
  std::vector<vid> stack{s.first()};
  comp.set(s.first());
  while (!stack.empty()) {
    const vid u = stack.back();
    stack.pop_back();
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !comp.test(w)) {
        comp.set(w);
        stack.push_back(w);
      }
    }
  }
  const VertexSet rest = comp - s;
  return rest.empty() || is_connected_subset(g, alive, rest);
}

bool is_compact(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  const vid inside = s.count();
  if (inside == 0) return false;
  const VertexSet rest = (alive - s);
  if (rest.empty()) return false;
  return is_connected_subset(g, alive, s) && is_connected_subset(g, alive, rest);
}

}  // namespace fne
