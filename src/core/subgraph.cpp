#include "core/subgraph.hpp"

#include "util/require.hpp"

namespace fne {

VertexSet InducedSubgraph::lift(const VertexSet& sub_set) const {
  FNE_REQUIRE(sub_set.universe_size() == graph.num_vertices(), "lift: universe mismatch");
  VertexSet out(static_cast<vid>(to_sub.size()));
  sub_set.for_each([&](vid v) { out.set(to_original[v]); });
  return out;
}

VertexSet InducedSubgraph::restrict(const VertexSet& original_set) const {
  FNE_REQUIRE(original_set.universe_size() == static_cast<vid>(to_sub.size()),
              "restrict: universe mismatch");
  VertexSet out(graph.num_vertices());
  original_set.for_each([&](vid v) {
    if (to_sub[v] != kInvalidVertex) out.set(to_sub[v]);
  });
  return out;
}

InducedSubgraph induced_subgraph(const Graph& g, const VertexSet& keep) {
  FNE_REQUIRE(keep.universe_size() == g.num_vertices(), "mask/graph size mismatch");
  InducedSubgraph result;
  result.to_sub.assign(g.num_vertices(), kInvalidVertex);
  result.to_original = keep.to_vector();
  for (vid i = 0; i < result.to_original.size(); ++i) {
    result.to_sub[result.to_original[i]] = i;
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    if (keep.test(e.u) && keep.test(e.v)) {
      edges.push_back({result.to_sub[e.u], result.to_sub[e.v]});
    }
  }
  result.graph = Graph::from_edges(static_cast<vid>(result.to_original.size()), std::move(edges));
  return result;
}

}  // namespace fne
