// Disjoint-set union with path halving and union by size.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/types.hpp"

namespace fne {

class UnionFind {
 public:
  explicit UnionFind(vid n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0U);
  }

  [[nodiscard]] vid find(vid x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the two elements were in different components.
  bool unite(vid a, vid b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) {
      const vid t = a;
      a = b;
      b = t;
    }
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  [[nodiscard]] bool connected(vid a, vid b) noexcept { return find(a) == find(b); }
  [[nodiscard]] vid component_size(vid x) noexcept { return size_[find(x)]; }
  [[nodiscard]] vid num_components() const noexcept { return components_; }

 private:
  std::vector<vid> parent_;
  std::vector<vid> size_;
  vid components_;
};

}  // namespace fne
