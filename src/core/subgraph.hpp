// Induced-subgraph extraction with vertex-id mappings.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// A standalone induced subgraph together with the mapping between its
/// compact vertex ids and the original graph's ids.
struct InducedSubgraph {
  Graph graph;                     ///< the induced subgraph, vertices relabeled [0, k)
  std::vector<vid> to_original;    ///< subgraph id -> original id
  std::vector<vid> to_sub;         ///< original id -> subgraph id (kInvalidVertex if absent)

  /// Map a vertex set over the subgraph universe back to the original.
  [[nodiscard]] VertexSet lift(const VertexSet& sub_set) const;
  /// Map a vertex set over the original universe down (members outside the
  /// subgraph are dropped).
  [[nodiscard]] VertexSet restrict(const VertexSet& original_set) const;
};

[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, const VertexSet& keep);

}  // namespace fne
