// Fundamental id types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace fne {

/// Vertex id.  32 bits: all graphs in this reproduction fit well below 2^32.
using vid = std::uint32_t;
/// Undirected edge id (index into Graph::edges()).
using eid = std::uint32_t;

inline constexpr vid kInvalidVertex = std::numeric_limits<vid>::max();
inline constexpr eid kInvalidEdge = std::numeric_limits<eid>::max();

/// An undirected edge between two vertices (stored with u <= v after
/// normalization inside Graph).
struct Edge {
  vid u = 0;
  vid v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace fne
