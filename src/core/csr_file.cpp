#include "core/csr_file.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/hash.hpp"
#include "util/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FNE_CSR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fne {

namespace {

// The format is little-endian and the zero-copy spans read the mapping
// in place; a big-endian host would need a translating loader nobody has
// asked for yet.
static_assert(std::endian::native == std::endian::little,
              "CsrFile's zero-copy loader requires a little-endian host");

/// Alignment-safe little-endian loads: validate() walks arbitrary
/// (possibly unaligned) byte images, so every read goes through memcpy.
[[nodiscard]] std::uint32_t load32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
[[nodiscard]] std::uint64_t load64(const char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void store64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

[[nodiscard]] std::uint64_t payload_checksum(std::uint64_t n, std::uint64_t m,
                                             const char* payload, std::size_t len) noexcept {
  // The n and m words join the digest so a header bit flip cannot pair
  // with an untouched payload; the checksum field itself stays out (it
  // cannot cover its own bytes).
  return Fnv1a{}.word(n).word(m).bytes(payload, len).value();
}

/// Header-field checks shared by validate() and read_header().  Returns
/// the parsed header on success.
[[nodiscard]] std::optional<std::string> check_header_fields(const char* p, std::size_t size,
                                                             CsrHeader& out) {
  if (size < kCsrHeaderBytes) {
    return "truncated header (" + std::to_string(size) + " of " +
           std::to_string(kCsrHeaderBytes) + " bytes)";
  }
  if (std::string_view(p, kCsrMagic.size()) != kCsrMagic) return "bad magic";
  const std::uint32_t version = load32(p + 8);
  if (version != kCsrVersion) {
    return "unsupported version " + std::to_string(version) + " (expected " +
           std::to_string(kCsrVersion) + ")";
  }
  if (load32(p + 12) != 0) return "nonzero reserved field";
  out.n = load64(p + 16);
  out.m = load64(p + 24);
  out.checksum = load64(p + 32);
  if (out.n >= kCsrMaxVertices) {
    return "vertex count " + std::to_string(out.n) + " exceeds the 32-bit id space";
  }
  if (out.m >= kCsrMaxEdges) {
    return "edge count " + std::to_string(out.m) + " exceeds the 32-bit id space";
  }
  return std::nullopt;
}

/// Exact image size implied by a (validated) header.  n < 2^31 and
/// m < 2^31 keep every term far below 2^64 — no overflow.
[[nodiscard]] std::uint64_t expected_size(const CsrHeader& h) noexcept {
  return kCsrHeaderBytes + (h.n + 1) * 8 + 2 * h.m * 4;
}

}  // namespace

std::optional<std::string> CsrFile::validate(std::string_view bytes) {
  CsrHeader h;
  if (auto err = check_header_fields(bytes.data(), bytes.size(), h)) return err;
  if (bytes.size() != expected_size(h)) {
    return "size mismatch (header implies " + std::to_string(expected_size(h)) + " bytes, have " +
           std::to_string(bytes.size()) + ")";
  }
  const char* payload = bytes.data() + kCsrHeaderBytes;
  const std::size_t payload_len = bytes.size() - kCsrHeaderBytes;
  if (payload_checksum(h.n, h.m, payload, payload_len) != h.checksum) {
    return "checksum mismatch";
  }

  // Structural validation of the canonical CSR: offsets monotone and
  // closed over the arc array, adjacency in range, strictly ascending
  // per vertex (no duplicates), loop-free, and fully symmetric.
  const char* off = payload;                  // (n+1) x u64
  const char* adj = payload + (h.n + 1) * 8;  // 2m x u32
  const std::uint64_t arcs = 2 * h.m;
  if (load64(off) != 0) return "offsets[0] != 0";
  std::uint64_t prev = 0;
  for (std::uint64_t v = 0; v < h.n; ++v) {
    const std::uint64_t next = load64(off + (v + 1) * 8);
    if (next < prev) return "offsets decrease at vertex " + std::to_string(v);
    if (next > arcs) return "offsets overrun the arc array at vertex " + std::to_string(v);
    prev = next;
  }
  if (prev != arcs) {
    return "offsets[n]=" + std::to_string(prev) + " != 2m=" + std::to_string(arcs);
  }
  for (std::uint64_t v = 0; v < h.n; ++v) {
    const std::uint64_t lo = load64(off + v * 8);
    const std::uint64_t hi = load64(off + (v + 1) * 8);
    std::uint64_t last = 0;
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint32_t w = load32(adj + i * 4);
      if (w >= h.n) return "neighbor " + std::to_string(w) + " out of range";
      if (w == v) return "self loop at vertex " + std::to_string(v);
      if (i > lo && w <= last) {
        return "unsorted or duplicate neighbor at vertex " + std::to_string(v);
      }
      last = w;
    }
  }
  // Symmetry: every arc (v, w) needs its reverse.  Binary search over w's
  // (already proven sorted) neighbor list.
  const auto has_arc = [&](std::uint64_t from, std::uint32_t to) {
    std::uint64_t lo = load64(off + from * 8);
    std::uint64_t hi = load64(off + (from + 1) * 8);
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      const std::uint32_t w = load32(adj + mid * 4);
      if (w == to) return true;
      if (w < to) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return false;
  };
  for (std::uint64_t v = 0; v < h.n; ++v) {
    const std::uint64_t lo = load64(off + v * 8);
    const std::uint64_t hi = load64(off + (v + 1) * 8);
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint32_t w = load32(adj + i * 4);
      if (!has_arc(w, static_cast<std::uint32_t>(v))) {
        return "asymmetric arc " + std::to_string(v) + " -> " + std::to_string(w);
      }
    }
  }
  return std::nullopt;
}

CsrHeader CsrFile::read_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FNE_REQUIRE(static_cast<bool>(in), "csr file " + path + ": cannot open");
  char buf[kCsrHeaderBytes];
  in.read(buf, static_cast<std::streamsize>(kCsrHeaderBytes));
  const auto got = static_cast<std::size_t>(in.gcount());
  CsrHeader h;
  if (auto err = check_header_fields(buf, got, h)) {
    FNE_REQUIRE(false, "csr file " + path + ": " + *err);
  }
  return h;
}

CsrFile CsrFile::open(const std::string& path, Load mode) {
  CsrFile f;
  bool use_mmap = false;
#ifdef FNE_CSR_HAVE_MMAP
  use_mmap = mode != Load::kBuffer;
#else
  FNE_REQUIRE(mode != Load::kMmap, "csr file " + path + ": mmap unavailable on this platform");
#endif
#ifdef FNE_CSR_HAVE_MMAP
  if (use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    FNE_REQUIRE(fd >= 0, "csr file " + path + ": cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      FNE_REQUIRE(false, "csr file " + path + ": not a regular file");
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    // An empty range is invalid to mmap; an empty file fails validation
    // (truncated header) below either way, so skip the call for len 0.
    void* map = nullptr;
    if (len > 0) {
      map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        ::close(fd);
        FNE_REQUIRE(false, "csr file " + path + ": mmap failed");
      }
    }
    ::close(fd);  // the mapping outlives the descriptor
    f.map_ = map;
    f.map_len_ = len;
    f.data_ = len > 0 ? static_cast<const char*>(map) : "";
    f.size_ = len;
  }
#endif
  if (!use_mmap) {
    // Buffered mode (explicit, or the no-mmap fallback): read the whole
    // image into one 8-byte-aligned allocation so the span accessors see
    // the same alignment the mapping provides.
    std::ifstream in(path, std::ios::binary);
    FNE_REQUIRE(static_cast<bool>(in), "csr file " + path + ": cannot open");
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    // tellg() returns -1 on failure; casting that to size_t would ask
    // resize() for ~2^64 bytes — fail with the clean contract error.
    FNE_REQUIRE(end != std::streampos(-1), "csr file " + path + ": cannot determine size");
    const auto len = static_cast<std::size_t>(end);
    in.seekg(0, std::ios::beg);
    f.buffer_.resize(len / 8 + 1, 0);
    in.read(reinterpret_cast<char*>(f.buffer_.data()), static_cast<std::streamsize>(len));
    FNE_REQUIRE(static_cast<std::size_t>(in.gcount()) == len,
                "csr file " + path + ": short read");
    f.data_ = reinterpret_cast<const char*>(f.buffer_.data());
    f.size_ = len;
  }
  if (auto err = validate(std::string_view(f.data_, f.size_))) {
    FNE_REQUIRE(false, "csr file " + path + ": " + *err);
  }
  (void)check_header_fields(f.data_, f.size_, f.header_);
  return f;
}

std::span<const std::uint64_t> CsrFile::offsets() const noexcept {
  // kCsrHeaderBytes is a multiple of 8 and both backings (page-aligned
  // mapping, u64 buffer) are 8-byte aligned, so the cast is sound.
  const auto* p = reinterpret_cast<const std::uint64_t*>(data_ + kCsrHeaderBytes);
  return {p, static_cast<std::size_t>(header_.n + 1)};
}

std::span<const std::uint32_t> CsrFile::adj() const noexcept {
  const auto* p =
      reinterpret_cast<const std::uint32_t*>(data_ + kCsrHeaderBytes + (header_.n + 1) * 8);
  return {p, static_cast<std::size_t>(2 * header_.m)};
}

Graph CsrFile::to_graph() const {
  FNE_REQUIRE(data_ != nullptr, "to_graph() on an empty CsrFile");
  const auto n = static_cast<vid>(header_.n);
  const std::span<const std::uint64_t> off = offsets();
  const std::span<const std::uint32_t> arcs = adj();
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(header_.m));
  for (vid v = 0; v < n; ++v) {
    for (std::uint64_t i = off[v]; i < off[v + 1]; ++i) {
      const auto w = static_cast<vid>(arcs[i]);
      if (v < w) edges.push_back({v, w});
    }
  }
  FNE_REQUIRE(edges.size() == header_.m,
              "csr file: arc orientation count disagrees with the header");
  Graph g = Graph::from_edges(n, std::move(edges));
  // Close the loop: the rebuilt CSR must reproduce the stored payload
  // exactly.  open() already proved the file canonical, so a mismatch
  // here is a decoder bug, not bad input — but the check is cheap and
  // turns any such bug into a loud error instead of a silent wrong graph.
  bool same = g.num_edges() == header_.m;
  for (vid v = 0; same && v < n; ++v) {
    const std::span<const vid> nb = g.neighbors(v);
    same = nb.size() == off[v + 1] - off[v] &&
           std::memcmp(nb.data(), arcs.data() + off[v], nb.size() * sizeof(vid)) == 0;
  }
  FNE_REQUIRE(same, "csr file: rebuilt adjacency diverges from the stored payload");
  return g;
}

std::string CsrFile::encode(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  std::string payload;
  payload.reserve((n + 1) * 8 + 2 * m * 4);
  std::uint64_t cursor = 0;
  store64(payload, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    cursor += g.degree(v);
    store64(payload, cursor);
  }
  for (vid v = 0; v < g.num_vertices(); ++v) {
    for (const vid w : g.neighbors(v)) store32(payload, w);
  }
  std::string out;
  out.reserve(kCsrHeaderBytes + payload.size());
  out.append(kCsrMagic);
  store32(out, kCsrVersion);
  store32(out, 0);
  store64(out, n);
  store64(out, m);
  store64(out, payload_checksum(n, m, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

void CsrFile::write(const std::string& path, const Graph& g) {
  const std::string bytes = encode(g);
  // Unique same-directory temp name: with a fixed "path + .tmp", two
  // concurrent writers interleave into the shared temp file and rename a
  // torn image into place.  The pid separates processes, the counter
  // separates threads; rename() keeps the final swap atomic either way.
  static std::atomic<std::uint64_t> write_stamp{0};
  std::uint64_t pid = 0;
#if defined(__unix__) || defined(__APPLE__)
  pid = static_cast<std::uint64_t>(::getpid());
#endif
  const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                          std::to_string(write_stamp.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FNE_REQUIRE(static_cast<bool>(out), "csr file " + tmp + ": cannot write");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      FNE_REQUIRE(false, "csr file " + tmp + ": write failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    FNE_REQUIRE(false, "csr file " + path + ": rename from temp failed");
  }
}

void CsrFile::reset() noexcept {
#ifdef FNE_CSR_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
  buffer_.clear();
  data_ = nullptr;
  size_ = 0;
  header_ = {};
}

CsrFile::CsrFile(CsrFile&& o) noexcept
    : header_(o.header_),
      buffer_(std::move(o.buffer_)),
      map_(o.map_),
      map_len_(o.map_len_),
      data_(o.data_),
      size_(o.size_) {
  o.map_ = nullptr;
  o.map_len_ = 0;
  o.data_ = nullptr;
  o.size_ = 0;
  o.header_ = {};
}

CsrFile& CsrFile::operator=(CsrFile&& o) noexcept {
  if (this != &o) {
    reset();
    header_ = o.header_;
    buffer_ = std::move(o.buffer_);
    map_ = o.map_;
    map_len_ = o.map_len_;
    data_ = o.data_;
    size_ = o.size_;
    o.map_ = nullptr;
    o.map_len_ = 0;
    o.data_ = nullptr;
    o.size_ = 0;
    o.header_ = {};
  }
  return *this;
}

CsrFile::~CsrFile() { reset(); }

}  // namespace fne
