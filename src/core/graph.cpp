#include "core/graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace fne {

Graph Graph::from_edges(vid n, std::vector<Edge> edges) {
  Graph g;
  g.n_ = n;
  // Normalize, validate, sort, dedupe.
  for (auto& e : edges) {
    FNE_REQUIRE(e.u < n && e.v < n, "edge endpoint outside [0, n)");
    FNE_REQUIRE(e.u != e.v, "self loops are not supported");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.u < b.u || (a.u == b.u && a.v < b.v); });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.edges_ = std::move(edges);

  const auto m = g.edges_.size();
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adj_.resize(2 * m);
  g.arc_edge_.resize(2 * m);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (eid e = 0; e < m; ++e) {
    const auto [u, v] = g.edges_[e];
    g.adj_[cursor[u]] = v;
    g.arc_edge_[cursor[u]++] = e;
    g.adj_[cursor[v]] = u;
    g.arc_edge_[cursor[v]++] = e;
  }
  // Per-vertex adjacency is already sorted because edges_ were sorted by
  // (u, v) and arcs were appended in that order for the u side; the v side
  // needs a per-vertex sort keyed by neighbor.
  for (vid v = 0; v < n; ++v) {
    const std::size_t lo = g.offsets_[v];
    const std::size_t hi = g.offsets_[v + 1];
    // Sort (neighbor, edge-id) pairs by neighbor.
    std::vector<std::pair<vid, eid>> tmp;
    tmp.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) tmp.emplace_back(g.adj_[i], g.arc_edge_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (std::size_t i = lo; i < hi; ++i) {
      g.adj_[i] = tmp[i - lo].first;
      g.arc_edge_[i] = tmp[i - lo].second;
    }
  }
  return g;
}

vid Graph::max_degree() const noexcept {
  vid d = 0;
  for (vid v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

vid Graph::min_degree() const noexcept {
  if (n_ == 0) return 0;
  vid d = degree(0);
  for (vid v = 1; v < n_; ++v) d = std::min(d, degree(v));
  return d;
}

bool Graph::is_regular() const noexcept { return n_ == 0 || max_degree() == min_degree(); }

bool Graph::has_edge(vid u, vid v) const noexcept {
  if (u >= n_ || v >= n_) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " m=" << edges_.size() << " deg=[" << min_degree() << "," << max_degree()
     << "]";
  return os.str();
}

std::size_t Graph::memory_bytes() const noexcept {
  return sizeof(Graph) + offsets_.capacity() * sizeof(std::size_t) +
         adj_.capacity() * sizeof(vid) + arc_edge_.capacity() * sizeof(eid) +
         edges_.capacity() * sizeof(Edge);
}

}  // namespace fne
