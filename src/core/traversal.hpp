// BFS/DFS and connected-component machinery over masked graphs.
//
// Every function takes (graph, alive): algorithms see only vertices in the
// alive mask.  An optional edge-alive mask supports bond percolation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// An edge liveness mask (index = undirected edge id).  All-true = no
/// edge faults.
class EdgeMask {
 public:
  EdgeMask() = default;
  explicit EdgeMask(eid m, bool value = true) : bits_((m + 63) / 64, value ? ~0ULL : 0ULL), m_(m) {
    if (value && (m & 63) != 0 && !bits_.empty()) bits_.back() = (1ULL << (m & 63)) - 1;
  }
  [[nodiscard]] bool test(eid e) const noexcept { return (bits_[e >> 6] >> (e & 63)) & 1ULL; }
  void set(eid e) noexcept { bits_[e >> 6] |= 1ULL << (e & 63); }
  void reset(eid e) noexcept { bits_[e >> 6] &= ~(1ULL << (e & 63)); }
  [[nodiscard]] eid size() const noexcept { return m_; }
  [[nodiscard]] eid count() const noexcept {
    std::uint64_t t = 0;
    for (auto w : bits_) t += static_cast<std::uint64_t>(__builtin_popcountll(w));
    return static_cast<eid>(t);
  }

 private:
  std::vector<std::uint64_t> bits_;
  eid m_ = 0;
};

/// BFS distances from source within the alive mask; kUnreached for
/// unreachable or dead vertices.
inline constexpr std::uint32_t kUnreached = 0xffffffffU;
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, const VertexSet& alive,
                                                       vid source,
                                                       const EdgeMask* edge_alive = nullptr);

/// Connected component labels over the alive subgraph.
struct Components {
  std::vector<std::uint32_t> label;  ///< per vertex; kUnreached for dead vertices
  std::vector<vid> sizes;            ///< per component
  [[nodiscard]] std::size_t count() const noexcept { return sizes.size(); }
  [[nodiscard]] vid largest_size() const noexcept;
  [[nodiscard]] std::uint32_t largest_label() const noexcept;
};
[[nodiscard]] Components connected_components(const Graph& g, const VertexSet& alive,
                                              const EdgeMask* edge_alive = nullptr);

/// Vertices of the largest connected component of the alive subgraph.
[[nodiscard]] VertexSet largest_component(const Graph& g, const VertexSet& alive,
                                          const EdgeMask* edge_alive = nullptr);

/// γ(G): fraction of the *original* n vertices lying in the largest alive
/// component (the paper's γ, §1.1).
[[nodiscard]] double gamma_largest_fraction(const Graph& g, const VertexSet& alive,
                                            const EdgeMask* edge_alive = nullptr);

/// Is the alive subgraph connected (and nonempty)?
[[nodiscard]] bool is_connected(const Graph& g, const VertexSet& alive,
                                const EdgeMask* edge_alive = nullptr);

/// Is S (a subset of alive) connected in the alive subgraph?
[[nodiscard]] bool is_connected_subset(const Graph& g, const VertexSet& alive, const VertexSet& s);

/// Node boundary Γ(S) within the alive subgraph: alive vertices outside S
/// adjacent to S.  S must be a subset of alive.
[[nodiscard]] VertexSet node_boundary(const Graph& g, const VertexSet& alive, const VertexSet& s);
[[nodiscard]] vid node_boundary_size(const Graph& g, const VertexSet& alive, const VertexSet& s);

/// Edge boundary |(S, alive \ S)| within the alive subgraph.
[[nodiscard]] std::size_t edge_boundary_size(const Graph& g, const VertexSet& alive,
                                             const VertexSet& s);

/// A compact set (paper §1.4): S and its complement are both connected
/// within the alive subgraph.  S must be nonempty and proper.
[[nodiscard]] bool is_compact(const Graph& g, const VertexSet& alive, const VertexSet& s);

/// Component-relative compactness: S is connected and the rest of S's own
/// connected component is empty or connected.  Coincides with is_compact
/// when the alive subgraph is connected; this is the right generalization
/// for faulty (possibly disconnected) graphs, where Lemma 3.3 is applied
/// inside S's component.
[[nodiscard]] bool is_compact_in_component(const Graph& g, const VertexSet& alive,
                                           const VertexSet& s);

}  // namespace fne
