#include "core/vertex_set.hpp"

namespace fne {

VertexSet VertexSet::full(vid universe) {
  VertexSet s(universe);
  if (universe == 0) return s;
  for (auto& w : s.words_) w = ~std::uint64_t{0};
  // Mask off bits beyond the universe in the final word.
  const vid tail = universe & 63;
  if (tail != 0) s.words_.back() = (std::uint64_t{1} << tail) - 1;
  return s;
}

VertexSet VertexSet::from_words(vid universe, std::vector<std::uint64_t> words) {
  FNE_REQUIRE(words.size() == (static_cast<std::size_t>(universe) + 63) / 64,
              "from_words: word count does not match the universe");
  const vid tail = universe & 63;
  if (tail != 0) {
    FNE_REQUIRE((words.back() & ~((std::uint64_t{1} << tail) - 1)) == 0,
                "from_words: padding bits past the universe must be zero");
  }
  VertexSet s;
  s.n_ = universe;
  s.words_ = std::move(words);
  return s;
}

VertexSet VertexSet::of(vid universe, const std::vector<vid>& members) {
  VertexSet s(universe);
  for (vid v : members) {
    FNE_REQUIRE(v < universe, "member outside universe");
    s.set(v);
  }
  return s;
}

vid VertexSet::count() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::uint64_t>(__builtin_popcountll(w));
  return static_cast<vid>(total);
}

std::vector<vid> VertexSet::to_vector() const {
  std::vector<vid> out;
  out.reserve(count());
  for_each([&](vid v) { out.push_back(v); });
  return out;
}

vid VertexSet::first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<vid>(w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w])));
    }
  }
  return kInvalidVertex;
}

vid VertexSet::next_after(vid v) const noexcept {
  std::size_t w = (v + 1) >> 6;
  if (w >= words_.size()) return kInvalidVertex;
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << ((v + 1) & 63));
  while (true) {
    if (bits != 0) {
      return static_cast<vid>(w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits)));
    }
    if (++w >= words_.size()) return kInvalidVertex;
    bits = words_[w];
  }
}

VertexSet& VertexSet::operator|=(const VertexSet& o) {
  check_same_universe(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

VertexSet& VertexSet::operator&=(const VertexSet& o) {
  check_same_universe(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

VertexSet& VertexSet::operator-=(const VertexSet& o) {
  check_same_universe(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

VertexSet& VertexSet::operator^=(const VertexSet& o) {
  check_same_universe(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

VertexSet VertexSet::complement() const { return full(n_) -= *this; }

vid VertexSet::intersection_count(const VertexSet& o) const {
  check_same_universe(o);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words_[i] & o.words_[i]));
  }
  return static_cast<vid>(total);
}

vid VertexSet::difference_count(const VertexSet& o) const {
  check_same_universe(o);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(words_[i] & ~o.words_[i]));
  }
  return static_cast<vid>(total);
}

bool VertexSet::intersects(const VertexSet& o) const noexcept {
  const std::size_t m = words_.size() < o.words_.size() ? words_.size() : o.words_.size();
  for (std::size_t i = 0; i < m; ++i) {
    if ((words_[i] & o.words_[i]) != 0) return true;
  }
  return false;
}

bool VertexSet::is_subset_of(const VertexSet& o) const noexcept {
  if (n_ != o.n_) return false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  }
  return true;
}

}  // namespace fne
