// Simple textual graph I/O for examples and debugging.
//
// Edge-list format: first line "n m", then m lines "u v".
// Graphviz export renders fault/prune states: dead vertices dashed grey,
// an optional highlight set (e.g. a culled region or cut witness) filled.
#pragma once

#include <iosfwd>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

void write_edge_list(std::ostream& os, const Graph& g);
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Graphviz "graph { ... }" output.  `alive` (optional) greys out dead
/// vertices and their edges; `highlight` (optional) fills its members.
void write_dot(std::ostream& os, const Graph& g, const VertexSet* alive = nullptr,
               const VertexSet* highlight = nullptr);

}  // namespace fne
