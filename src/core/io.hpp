// Textual graph I/O: the "n m" edge-list format, a tolerant reader for
// real-world datasets, and Graphviz export.
//
// Edge-list format: first line "n m", then m lines "u v".  Real datasets
// (SNAP dumps and friends) bend the format — `#`/`%` comment headers,
// blank lines, duplicate edges, self loops, sometimes no header at all —
// so the reader is TOLERANT by default: comments and blanks are skipped
// anywhere, self loops are dropped (counted in EdgeListStats), duplicates
// are merged by Graph::from_edges, and a header edge count that
// disagrees with the stream is recorded, not fatal.  The pre-§14 strict
// contract (exact header, exactly m plain "u v" token pairs, self loops
// fatal) stays available behind EdgeListOptions::strict for round-trip
// tests.  Headerless files (the SNAP convention) set header=false and
// infer n as max id + 1.
//
// Graphviz export renders fault/prune states: dead vertices dashed grey,
// an optional highlight set (e.g. a culled region or cut witness) filled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct EdgeListOptions {
  /// Pre-§14 behavior: header required, exactly m whitespace-separated
  /// "u v" pairs, no comment handling, self loops fatal (from_edges).
  bool strict = false;
  /// Expect a leading "n m" line.  false = headerless (SNAP style): every
  /// data line is an edge and n is inferred as max id + 1.
  bool header = true;
  /// Floor for the inferred vertex count in headerless mode (isolated
  /// tail vertices exist in real datasets); ignored with a header.
  vid min_n = 0;
};

/// What the tolerant reader saw; the converter reports these so dropped
/// input is visible, never silent.
struct EdgeListStats {
  std::size_t comment_lines = 0;  ///< '#'/'%' lines skipped
  std::size_t blank_lines = 0;
  std::size_t self_loops = 0;    ///< u == v pairs dropped
  std::size_t parsed_edges = 0;  ///< pairs kept (before from_edges dedup)
  std::uint64_t declared_n = 0;  ///< header n (0 when headerless)
  std::uint64_t declared_m = 0;  ///< header m (0 when headerless)
};

void write_edge_list(std::ostream& os, const Graph& g);

/// Tolerant read with the default options (header expected).  Equivalent
/// to read_edge_list(is, {}, nullptr).
[[nodiscard]] Graph read_edge_list(std::istream& is);
[[nodiscard]] Graph read_edge_list(std::istream& is, const EdgeListOptions& opts,
                                   EdgeListStats* stats = nullptr);

/// Graphviz "graph { ... }" output.  `alive` (optional) greys out dead
/// vertices and their edges; `highlight` (optional) fills its members.
void write_dot(std::ostream& os, const Graph& g, const VertexSet* alive = nullptr,
               const VertexSet* highlight = nullptr);

}  // namespace fne
