#include "core/io.hpp"

#include <istream>
#include <ostream>

#include "util/require.hpp"

namespace fne {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

void write_dot(std::ostream& os, const Graph& g, const VertexSet* alive,
               const VertexSet* highlight) {
  if (alive != nullptr) {
    FNE_REQUIRE(alive->universe_size() == g.num_vertices(), "alive mask size mismatch");
  }
  if (highlight != nullptr) {
    FNE_REQUIRE(highlight->universe_size() == g.num_vertices(), "highlight set size mismatch");
  }
  os << "graph fne {\n  node [shape=circle fontsize=10];\n";
  for (vid v = 0; v < g.num_vertices(); ++v) {
    os << "  " << v;
    const bool dead = alive != nullptr && !alive->test(v);
    const bool hot = highlight != nullptr && highlight->test(v);
    if (dead) {
      os << " [style=dashed color=grey fontcolor=grey]";
    } else if (hot) {
      os << " [style=filled fillcolor=lightblue]";
    }
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (alive != nullptr && (!alive->test(e.u) || !alive->test(e.v))) {
      os << " [style=dashed color=grey]";
    }
    os << ";\n";
  }
  os << "}\n";
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  FNE_REQUIRE(static_cast<bool>(is >> n >> m), "edge list: missing header");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    vid u = 0, v = 0;
    FNE_REQUIRE(static_cast<bool>(is >> u >> v), "edge list: truncated");
    edges.push_back({u, v});
  }
  return Graph::from_edges(static_cast<vid>(n), std::move(edges));
}

}  // namespace fne
