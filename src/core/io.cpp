#include "core/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace fne {

namespace {

/// Reserve ceiling for header-declared edge counts.  The header is
/// untrusted input: a corrupt "n m" line must not be able to request an
/// unbounded allocation before a single edge is read.  Streams with more
/// real edges than this just grow the vector normally.
constexpr std::size_t kEdgeReserveCap = std::size_t{1} << 20;

/// Vertex ids must fit the 32-bit vid space (types.hpp).
constexpr std::uint64_t kMaxVertexCount = std::uint64_t{1} << 31;

/// Parse a data line as exactly two nonnegative integers.  Returns false
/// on any other shape (letters, one token, three tokens) — the caller
/// turns that into a clean error naming the line.
[[nodiscard]] bool parse_pair(const std::string& line, std::uint64_t& a, std::uint64_t& b) {
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
  };
  const auto read_int = [&](std::uint64_t& out) {
    skip_ws();
    const std::size_t start = pos;
    std::uint64_t v = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(line[pos] - '0');
      if (v > (~std::uint64_t{0} - digit) / 10) return false;  // overflow
      v = v * 10 + digit;
      ++pos;
    }
    if (pos == start) return false;
    out = v;
    return true;
  };
  if (!read_int(a) || !read_int(b)) return false;
  skip_ws();
  return pos == line.size();
}

/// The pre-§14 reader, kept verbatim behind EdgeListOptions::strict for
/// round-trip tests — except that the untrusted header count no longer
/// drives an unbounded reserve.
[[nodiscard]] Graph read_edge_list_strict(std::istream& is) {
  std::size_t n = 0, m = 0;
  FNE_REQUIRE(static_cast<bool>(is >> n >> m), "edge list: missing header");
  FNE_REQUIRE(static_cast<std::uint64_t>(n) < kMaxVertexCount,
              "edge list: vertex count " + std::to_string(n) + " exceeds the 32-bit id space");
  std::vector<Edge> edges;
  edges.reserve(std::min(m, kEdgeReserveCap));
  for (std::size_t i = 0; i < m; ++i) {
    vid u = 0, v = 0;
    FNE_REQUIRE(static_cast<bool>(is >> u >> v), "edge list: truncated");
    edges.push_back({u, v});
  }
  return Graph::from_edges(static_cast<vid>(n), std::move(edges));
}

}  // namespace

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) { return read_edge_list(is, {}, nullptr); }

Graph read_edge_list(std::istream& is, const EdgeListOptions& opts, EdgeListStats* stats) {
  if (opts.strict) return read_edge_list_strict(is);

  EdgeListStats local;
  EdgeListStats& st = stats != nullptr ? *stats : local;
  st = {};

  bool have_header = false;
  std::uint64_t n = 0;
  std::uint64_t max_id = 0;
  bool saw_edge = false;
  std::vector<Edge> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      ++st.blank_lines;
      continue;
    }
    if (line[first] == '#' || line[first] == '%') {
      ++st.comment_lines;
      continue;
    }
    std::uint64_t a = 0, b = 0;
    FNE_REQUIRE(parse_pair(line, a, b),
                "edge list: line " + std::to_string(line_no) + " is not two integers: '" +
                    line.substr(first, 40) + "'");
    if (opts.header && !have_header) {
      have_header = true;
      FNE_REQUIRE(a < kMaxVertexCount, "edge list: vertex count " + std::to_string(a) +
                                           " exceeds the 32-bit id space");
      n = a;
      st.declared_n = a;
      st.declared_m = b;
      // The declared edge count is untrusted: clamp the reserve (a
      // corrupt header must not buy an unbounded allocation) and treat
      // it as a hint — the stream itself decides how many edges exist.
      edges.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(b, static_cast<std::uint64_t>(kEdgeReserveCap))));
      continue;
    }
    // Range checks come BEFORE the self-loop drop: an out-of-range id is
    // malformed input whether or not the line happens to be a loop, and
    // tolerant mode only forgives shapes real datasets produce.
    if (opts.header) {
      FNE_REQUIRE(a < n && b < n, "edge list: line " + std::to_string(line_no) + " edge " +
                                      std::to_string(a) + "-" + std::to_string(b) +
                                      " outside declared [0, " + std::to_string(n) + ")");
    } else {
      FNE_REQUIRE(a < kMaxVertexCount && b < kMaxVertexCount,
                  "edge list: line " + std::to_string(line_no) +
                      " vertex id exceeds the 32-bit id space");
    }
    if (a == b) {
      ++st.self_loops;  // dropped: the Graph substrate has no self loops
      continue;
    }
    if (!opts.header) {
      max_id = std::max({max_id, a, b});
      saw_edge = true;
    }
    edges.push_back({static_cast<vid>(a), static_cast<vid>(b)});
    ++st.parsed_edges;
  }
  FNE_REQUIRE(!opts.header || have_header, "edge list: missing header");
  if (!opts.header) {
    n = std::max<std::uint64_t>(saw_edge ? max_id + 1 : 0, opts.min_n);
    FNE_REQUIRE(n < kMaxVertexCount, "edge list: vertex count " + std::to_string(n) +
                                         " exceeds the 32-bit id space");
  }
  // Duplicate edges are the normal case in real dumps (each direction
  // listed once); from_edges merges them.
  return Graph::from_edges(static_cast<vid>(n), std::move(edges));
}

void write_dot(std::ostream& os, const Graph& g, const VertexSet* alive,
               const VertexSet* highlight) {
  if (alive != nullptr) {
    FNE_REQUIRE(alive->universe_size() == g.num_vertices(), "alive mask size mismatch");
  }
  if (highlight != nullptr) {
    FNE_REQUIRE(highlight->universe_size() == g.num_vertices(), "highlight set size mismatch");
  }
  os << "graph fne {\n  node [shape=circle fontsize=10];\n";
  for (vid v = 0; v < g.num_vertices(); ++v) {
    os << "  " << v;
    const bool dead = alive != nullptr && !alive->test(v);
    const bool hot = highlight != nullptr && highlight->test(v);
    if (dead) {
      os << " [style=dashed color=grey fontcolor=grey]";
    } else if (hot) {
      os << " [style=filled fillcolor=lightblue]";
    }
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (alive != nullptr && (!alive->test(e.u) || !alive->test(e.v))) {
      os << " [style=dashed color=grey]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace fne
