// VertexSet: a fixed-universe dynamic bitset over vertex ids.
//
// This is the workhorse of the whole library: fault masks, alive masks
// during pruning, culled sets, compact sets — all are VertexSets.  The
// representation is packed 64-bit words with popcount-based counting.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/require.hpp"

namespace fne {

class VertexSet {
 public:
  VertexSet() = default;
  /// An empty set over a universe of n vertices.
  explicit VertexSet(vid universe) : n_(universe), words_((universe + 63) / 64, 0) {}

  /// The full set {0, ..., n-1}.
  [[nodiscard]] static VertexSet full(vid universe);
  /// A set from an explicit list of members.
  [[nodiscard]] static VertexSet of(vid universe, const std::vector<vid>& members);
  /// A set from its packed-word representation (the result-store decode
  /// path).  REQUIREs words.size() to match the universe and the padding
  /// bits past `universe` to be zero — a corrupted record must fail
  /// loudly here, not surface as a set with phantom members.
  [[nodiscard]] static VertexSet from_words(vid universe, std::vector<std::uint64_t> words);

  [[nodiscard]] vid universe_size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  [[nodiscard]] bool test(vid v) const noexcept {
    return (words_[v >> 6] >> (v & 63)) & 1ULL;
  }
  void set(vid v) noexcept { words_[v >> 6] |= 1ULL << (v & 63); }
  void reset(vid v) noexcept { words_[v >> 6] &= ~(1ULL << (v & 63)); }
  void flip(vid v) noexcept { words_[v >> 6] ^= 1ULL << (v & 63); }
  void clear() noexcept { words_.assign(words_.size(), 0); }

  /// Number of members (popcount over all words).
  [[nodiscard]] vid count() const noexcept;

  /// Members in increasing order.
  [[nodiscard]] std::vector<vid> to_vector() const;

  /// Lowest member, or kInvalidVertex if empty.
  [[nodiscard]] vid first() const noexcept;
  /// Lowest member strictly greater than v, or kInvalidVertex.
  [[nodiscard]] vid next_after(vid v) const noexcept;

  // Set algebra (operands must share a universe).
  VertexSet& operator|=(const VertexSet& o);
  VertexSet& operator&=(const VertexSet& o);
  VertexSet& operator-=(const VertexSet& o);  ///< set difference
  VertexSet& operator^=(const VertexSet& o);
  [[nodiscard]] friend VertexSet operator|(VertexSet a, const VertexSet& b) { return a |= b; }
  [[nodiscard]] friend VertexSet operator&(VertexSet a, const VertexSet& b) { return a &= b; }
  [[nodiscard]] friend VertexSet operator-(VertexSet a, const VertexSet& b) { return a -= b; }
  [[nodiscard]] friend VertexSet operator^(VertexSet a, const VertexSet& b) { return a ^= b; }

  /// Complement within the universe.
  [[nodiscard]] VertexSet complement() const;

  /// Heap footprint of the packed words (capacity, so pooled sets report
  /// what they actually pin).  Feeds the EngineCache byte accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  [[nodiscard]] bool intersects(const VertexSet& o) const noexcept;
  [[nodiscard]] bool is_subset_of(const VertexSet& o) const noexcept;
  friend bool operator==(const VertexSet&, const VertexSet&) = default;

  // Word-level kernels (see DESIGN.md §4).  These avoid materializing
  // temporary sets on the hot prune path: counting |A ∩ B| or |A \ B| and
  // iterating those combinations works directly on the packed words.

  /// |*this ∩ o| without building the intersection.
  [[nodiscard]] vid intersection_count(const VertexSet& o) const;
  /// |*this \ o| without building the difference.
  [[nodiscard]] vid difference_count(const VertexSet& o) const;

  /// Raw word access for masked kernels (e.g. traversal boundary counts).
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }
  [[nodiscard]] std::uint64_t word(std::size_t i) const noexcept { return words_[i]; }

  /// Apply f(v) to every member of *this ∩ o in increasing order.
  template <typename F>
  void for_each_in_both(const VertexSet& o, F&& f) const {
    check_same_universe(o);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w] & o.words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<vid>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Apply f(v) to every member of *this \ o in increasing order.
  template <typename F>
  void for_each_in_diff(const VertexSet& o, F&& f) const {
    check_same_universe(o);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w] & ~o.words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<vid>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Apply f(v) to every member in increasing order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(static_cast<vid>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

 private:
  void check_same_universe(const VertexSet& o) const {
    FNE_REQUIRE(n_ == o.n_, "VertexSet operands must share a universe");
  }
  vid n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fne
