// Binary codec for stored campaign cells (DESIGN.md §11).
//
// A cell record is the serialized result of ONE campaign job — a single
// (scenario, rep) repetition, one independent sweep point, or a whole
// monotone sweep chain — as a vector of ScenarioRuns.  The encoding is a
// flat little-endian byte string: doubles round-trip by bit pattern and
// VertexSets by their packed words, so a decoded run is field-for-field
// identical to the computed one and the campaign report built from it is
// BYTE-identical (the store's core contract).
//
// Two replay-sized fields are deliberately not stored and come back
// empty: prune.culled (the per-iteration cull trace) and
// expansion->witness (the bracket's cut witness).  Nothing in the report
// payload or the table surfaces reads them, the verify_trace metric is
// computed (and its verdict stored) BEFORE commit, and dropping them
// keeps records proportional to the survivor masks, not to the cull
// history.
//
// decode_runs is total: any malformed input — short buffer, unknown
// format, absurd lengths, bad mask padding — returns nullopt, never
// throws and never crashes.  The store treats that as a cache miss and
// the campaign recomputes the cell.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/runner.hpp"

namespace fne {

/// Bump when the record byte layout changes.  This is covered by the
/// store's file-level schema version (result_store.hpp), which any layout
/// change must also bump; the in-record format field is defense in depth
/// against mixing layouts inside one log.
inline constexpr std::uint32_t kCellRecordFormat = 1;

[[nodiscard]] std::string encode_runs(std::span<const ScenarioRun> runs);
[[nodiscard]] std::optional<std::vector<ScenarioRun>> decode_runs(std::string_view payload);

}  // namespace fne
