#include "store/record.hpp"

#include <limits>

#include "store/codec.hpp"

namespace fne {

namespace {

// Count ceilings for decode (size/length ceilings live in codec.hpp): a
// record claiming more than these is corrupt, not big.
constexpr std::uint32_t kMaxRuns = 1u << 20;
constexpr std::uint32_t kMaxMetrics = 1u << 12;

void encode_engine(ByteWriter& w, const EngineStats& st) {
  w.u64(st.runs);
  w.u64(st.iterations);
  w.u64(st.eigensolves);
  w.u64(st.stale_sweeps);
  w.u64(st.stale_sweep_hits);
  w.u64(st.disconnected_culls);
  w.u64(st.relabel_bfs_calls);
  w.u64(st.relabel_bfs_vertices);
}

EngineStats decode_engine(ByteReader& r) {
  EngineStats st;
  st.runs = r.u64();
  st.iterations = r.u64();
  st.eigensolves = r.u64();
  st.stale_sweeps = r.u64();
  st.stale_sweep_hits = r.u64();
  st.disconnected_culls = r.u64();
  st.relabel_bfs_calls = r.u64();
  st.relabel_bfs_vertices = r.u64();
  return st;
}

void encode_run(ByteWriter& w, const ScenarioRun& run) {
  w.i32(run.repetition);
  w.u64(run.fault_seed);
  w.u64(run.finder_seed);
  w.u64(run.faults);
  w.f64(run.threshold);
  w.f64(run.millis);
  w.mask(run.alive);
  w.mask(run.prune.survivors);
  w.u64(run.prune.total_culled);
  w.i32(run.prune.iterations);
  w.u64(run.fragmentation.largest);
  w.f64(run.fragmentation.gamma);
  w.u64(run.fragmentation.num_components);
  w.u32(static_cast<std::uint32_t>(run.fragmentation.sizes_desc.size()));
  for (const vid s : run.fragmentation.sizes_desc) w.u64(s);
  w.u8(run.expansion.has_value() ? 1 : 0);
  if (run.expansion.has_value()) {
    w.f64(run.expansion->lower);
    w.f64(run.expansion->upper);
    w.u8(run.expansion->exact ? 1 : 0);
  }
  w.u8(run.trace.has_value() ? 1 : 0);
  if (run.trace.has_value()) {
    w.u8(run.trace->valid ? 1 : 0);
    w.i32(run.trace->failed_record);
    w.str(run.trace->reason);
  }
  w.u32(static_cast<std::uint32_t>(run.metrics.size()));
  for (const MetricRecord& m : run.metrics) {
    w.str(m.name);
    w.str(m.payload);
    w.str(m.brief);
  }
  encode_engine(w, run.engine);
}

[[nodiscard]] std::optional<ScenarioRun> decode_run(ByteReader& r) {
  ScenarioRun run;
  run.repetition = r.i32();
  run.fault_seed = r.u64();
  run.finder_seed = r.u64();
  run.faults = static_cast<vid>(r.u64());
  run.threshold = r.f64();
  run.millis = r.f64();
  auto alive = r.mask();
  auto survivors = r.mask();
  if (!alive.has_value() || !survivors.has_value()) return std::nullopt;
  run.alive = std::move(*alive);
  run.prune.survivors = std::move(*survivors);
  run.prune.total_culled = static_cast<vid>(r.u64());
  run.prune.iterations = r.i32();
  run.fragmentation.largest = static_cast<vid>(r.u64());
  run.fragmentation.gamma = r.f64();
  run.fragmentation.num_components = static_cast<std::size_t>(r.u64());
  const std::uint32_t sizes = r.u32();
  if (!r.ok() || sizes > kCodecMaxUniverse) return std::nullopt;
  run.fragmentation.sizes_desc.reserve(sizes);
  for (std::uint32_t i = 0; i < sizes; ++i) {
    run.fragmentation.sizes_desc.push_back(static_cast<vid>(r.u64()));
  }
  if (r.u8() != 0) {
    ExpansionBracket bracket;
    bracket.lower = r.f64();
    bracket.upper = r.f64();
    bracket.exact = r.u8() != 0;
    run.expansion = bracket;
  }
  if (r.u8() != 0) {
    TraceVerification trace;
    trace.valid = r.u8() != 0;
    trace.failed_record = r.i32();
    trace.reason = r.str();
    run.trace = std::move(trace);
  }
  const std::uint32_t metrics = r.u32();
  if (!r.ok() || metrics > kMaxMetrics) return std::nullopt;
  run.metrics.reserve(metrics);
  for (std::uint32_t i = 0; i < metrics; ++i) {
    MetricRecord m;
    m.name = r.str();
    m.payload = r.str();
    m.brief = r.str();
    run.metrics.push_back(std::move(m));
  }
  run.engine = decode_engine(r);
  if (!r.ok()) return std::nullopt;
  return run;
}

}  // namespace

std::string encode_runs(std::span<const ScenarioRun> runs) {
  ByteWriter w;
  w.u32(kCellRecordFormat);
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const ScenarioRun& run : runs) encode_run(w, run);
  return w.take();
}

std::optional<std::vector<ScenarioRun>> decode_runs(std::string_view payload) {
  ByteReader r(payload);
  if (r.u32() != kCellRecordFormat) return std::nullopt;
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxRuns) return std::nullopt;
  std::vector<ScenarioRun> runs;
  runs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto run = decode_run(r);
    if (!run.has_value()) return std::nullopt;
    runs.push_back(std::move(*run));
  }
  // Trailing garbage means the record is not what the encoder wrote.
  if (!r.at_end()) return std::nullopt;
  return runs;
}

}  // namespace fne
