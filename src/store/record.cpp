#include "store/record.hpp"

#include <cstring>
#include <limits>

namespace fne {

namespace {

// Sanity ceilings for decode: a record claiming more than these is
// corrupt, not big.  Universes are vid-sized; strings are metric payloads
// and trace reasons (KBs at most).
constexpr std::uint64_t kMaxUniverse = std::uint64_t{1} << 32;
constexpr std::uint32_t kMaxString = 16u << 20;
constexpr std::uint32_t kMaxRuns = 1u << 20;
constexpr std::uint32_t kMaxMetrics = 1u << 12;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) buf_.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf_.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void mask(const VertexSet& s) {
    u64(s.universe_size());
    for (std::size_t w = 0; w < s.num_words(); ++w) u64(s.word(w));
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked sequential reader.  Every accessor reports failure via
/// ok(); reads past the end return zeros and poison the reader, so a
/// caller can check once at the end of a fixed-shape section.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_ - 1]);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ - 4 + b]))
           << (8 * b);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ - 8 + b]))
           << (8 * b);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (len > kMaxString || !take(len)) {
      ok_ = false;
      return {};
    }
    return std::string(data_.substr(pos_ - len, len));
  }
  std::optional<VertexSet> mask() {
    const std::uint64_t universe = u64();
    if (!ok_ || universe > kMaxUniverse) {
      ok_ = false;
      return std::nullopt;
    }
    const std::size_t words = (static_cast<std::size_t>(universe) + 63) / 64;
    std::vector<std::uint64_t> packed(words);
    for (std::size_t w = 0; w < words; ++w) packed[w] = u64();
    if (!ok_) return std::nullopt;
    // from_words REQUIREs clean padding; a corrupt mask must come back as
    // a decode failure, not an exception escaping the store.
    const vid n = static_cast<vid>(universe);
    const vid tail = n & 63;
    if (tail != 0 && words > 0 &&
        (packed.back() & ~((std::uint64_t{1} << tail) - 1)) != 0) {
      ok_ = false;
      return std::nullopt;
    }
    return VertexSet::from_words(n, std::move(packed));
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encode_engine(Writer& w, const EngineStats& st) {
  w.u64(st.runs);
  w.u64(st.iterations);
  w.u64(st.eigensolves);
  w.u64(st.stale_sweeps);
  w.u64(st.stale_sweep_hits);
  w.u64(st.disconnected_culls);
  w.u64(st.relabel_bfs_calls);
  w.u64(st.relabel_bfs_vertices);
}

EngineStats decode_engine(Reader& r) {
  EngineStats st;
  st.runs = r.u64();
  st.iterations = r.u64();
  st.eigensolves = r.u64();
  st.stale_sweeps = r.u64();
  st.stale_sweep_hits = r.u64();
  st.disconnected_culls = r.u64();
  st.relabel_bfs_calls = r.u64();
  st.relabel_bfs_vertices = r.u64();
  return st;
}

void encode_run(Writer& w, const ScenarioRun& run) {
  w.i32(run.repetition);
  w.u64(run.fault_seed);
  w.u64(run.finder_seed);
  w.u64(run.faults);
  w.f64(run.threshold);
  w.f64(run.millis);
  w.mask(run.alive);
  w.mask(run.prune.survivors);
  w.u64(run.prune.total_culled);
  w.i32(run.prune.iterations);
  w.u64(run.fragmentation.largest);
  w.f64(run.fragmentation.gamma);
  w.u64(run.fragmentation.num_components);
  w.u32(static_cast<std::uint32_t>(run.fragmentation.sizes_desc.size()));
  for (const vid s : run.fragmentation.sizes_desc) w.u64(s);
  w.u8(run.expansion.has_value() ? 1 : 0);
  if (run.expansion.has_value()) {
    w.f64(run.expansion->lower);
    w.f64(run.expansion->upper);
    w.u8(run.expansion->exact ? 1 : 0);
  }
  w.u8(run.trace.has_value() ? 1 : 0);
  if (run.trace.has_value()) {
    w.u8(run.trace->valid ? 1 : 0);
    w.i32(run.trace->failed_record);
    w.str(run.trace->reason);
  }
  w.u32(static_cast<std::uint32_t>(run.metrics.size()));
  for (const MetricRecord& m : run.metrics) {
    w.str(m.name);
    w.str(m.payload);
    w.str(m.brief);
  }
  encode_engine(w, run.engine);
}

[[nodiscard]] std::optional<ScenarioRun> decode_run(Reader& r) {
  ScenarioRun run;
  run.repetition = r.i32();
  run.fault_seed = r.u64();
  run.finder_seed = r.u64();
  run.faults = static_cast<vid>(r.u64());
  run.threshold = r.f64();
  run.millis = r.f64();
  auto alive = r.mask();
  auto survivors = r.mask();
  if (!alive.has_value() || !survivors.has_value()) return std::nullopt;
  run.alive = std::move(*alive);
  run.prune.survivors = std::move(*survivors);
  run.prune.total_culled = static_cast<vid>(r.u64());
  run.prune.iterations = r.i32();
  run.fragmentation.largest = static_cast<vid>(r.u64());
  run.fragmentation.gamma = r.f64();
  run.fragmentation.num_components = static_cast<std::size_t>(r.u64());
  const std::uint32_t sizes = r.u32();
  if (!r.ok() || sizes > kMaxUniverse) return std::nullopt;
  run.fragmentation.sizes_desc.reserve(sizes);
  for (std::uint32_t i = 0; i < sizes; ++i) {
    run.fragmentation.sizes_desc.push_back(static_cast<vid>(r.u64()));
  }
  if (r.u8() != 0) {
    ExpansionBracket bracket;
    bracket.lower = r.f64();
    bracket.upper = r.f64();
    bracket.exact = r.u8() != 0;
    run.expansion = bracket;
  }
  if (r.u8() != 0) {
    TraceVerification trace;
    trace.valid = r.u8() != 0;
    trace.failed_record = r.i32();
    trace.reason = r.str();
    run.trace = std::move(trace);
  }
  const std::uint32_t metrics = r.u32();
  if (!r.ok() || metrics > kMaxMetrics) return std::nullopt;
  run.metrics.reserve(metrics);
  for (std::uint32_t i = 0; i < metrics; ++i) {
    MetricRecord m;
    m.name = r.str();
    m.payload = r.str();
    m.brief = r.str();
    run.metrics.push_back(std::move(m));
  }
  run.engine = decode_engine(r);
  if (!r.ok()) return std::nullopt;
  return run;
}

}  // namespace

std::string encode_runs(std::span<const ScenarioRun> runs) {
  Writer w;
  w.u32(kCellRecordFormat);
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const ScenarioRun& run : runs) encode_run(w, run);
  return w.take();
}

std::optional<std::vector<ScenarioRun>> decode_runs(std::string_view payload) {
  Reader r(payload);
  if (r.u32() != kCellRecordFormat) return std::nullopt;
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxRuns) return std::nullopt;
  std::vector<ScenarioRun> runs;
  runs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto run = decode_run(r);
    if (!run.has_value()) return std::nullopt;
    runs.push_back(std::move(*run));
  }
  // Trailing garbage means the record is not what the encoder wrote.
  if (!r.at_end()) return std::nullopt;
  return runs;
}

}  // namespace fne
