#include "store/key.hpp"

#include <cstdio>
#include <string>

#include "api/campaign.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "expansion/types.hpp"
#include "spectral/lanczos.hpp"

namespace fne {

namespace {

/// Hexfloat rendering: exact bits, locale-independent, round-trips any
/// double the sweep parser or the CLI can produce.  "%a" alone would do,
/// but pin the format so two libcs cannot disagree on padding.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

void append_finder(std::string& key, const CutFinderOptions& finder) {
  key += "|finder=exact_limit:" + std::to_string(finder.exact_limit);
  key += ",ball_sources:" + std::to_string(finder.ball_sources);
  key += ",refine_passes:" + std::to_string(finder.refine_passes);
  key += ",use_spectral:" + std::to_string(finder.use_spectral ? 1 : 0);
  key += ",use_balls:" + std::to_string(finder.use_balls ? 1 : 0);
  key += ",use_exact:" + std::to_string(finder.use_exact ? 1 : 0);
  key += ",warm:" + std::to_string(finder.warm_start ? 1 : 0);
  key += ",stale:" + std::to_string(finder.stale_sweep_first ? 1 : 0);
  key += ",early:" + std::to_string(finder.early_exit ? 1 : 0);
  key += ",spectral_mode:";
  key += spectral_mode_name(finder.spectral_mode);
  key += ",filter_degree:" + std::to_string(finder.filter_degree);
  // finder.seed is deliberately absent: the runner overrides it per
  // repetition from (scenario.seed, rep), which the key already names.
}

void append_metrics(std::string& key, const MetricsSpec& metrics) {
  key += "|metrics=frag:" + std::to_string(metrics.fragmentation ? 1 : 0);
  key += ",exp:" + std::to_string(metrics.expansion ? 1 : 0);
  key += ",trace:" + std::to_string(metrics.verify_trace ? 1 : 0);
  key += ",bx:" + std::to_string(metrics.bracket_exact_limit);
  key += "|requests=";
  bool first = true;
  for (const MetricRequest& req : metrics.requests) {
    if (!first) key += ';';
    first = false;
    key += req.name;
    key += '[';
    key += req.params.to_string();
    key += ']';
  }
}

}  // namespace

std::string store_cell_key(const Scenario& scenario, const FaultSpec& effective_fault,
                           int rep, const SweepSpec* monotone) {
  std::string key = "fne-cell|schema=1";
  key += "|topo=" + scenario.topology.name;
  key += "|topo_params=" + scenario.topology.params.to_string();
  // Entries whose build output depends on state beyond the params (the
  // `file` topology's on-disk bytes) declare a cache_salt.  The store
  // outlives the process, so folding the salt in matters even more here
  // than in the EngineCache: without it, rewriting a .csr in place would
  // resume a campaign from cells computed on the OLD graph.
  const std::string topo_salt =
      topology_cache_salt(scenario.topology.name, scenario.topology.params);
  if (!topo_salt.empty()) key += "|topo_salt=" + topo_salt;
  key += "|build_seed=" + std::to_string(scenario_build_seed(scenario));
  key += "|fault=" + effective_fault.name;
  key += "|fault_params=" + effective_fault.params.to_string();
  key += "|kind=";
  key += scenario.prune.kind == ExpansionKind::Node ? "node" : "edge";
  key += "|alpha=" + hexf(scenario.prune.alpha);
  key += "|epsilon=" + hexf(scenario.prune.epsilon);
  key += "|fast=" + std::to_string(scenario.prune.fast ? 1 : 0);
  key += "|max_iter=" + std::to_string(scenario.prune.max_iterations);
  append_finder(key, scenario.prune.finder);
  append_metrics(key, scenario.metrics);
  key += "|seed=" + std::to_string(scenario.seed);
  key += "|rep=" + std::to_string(rep);
  if (monotone != nullptr) {
    key += "|sweep=" + monotone->param + ":monotone:";
    bool first = true;
    for (const double v : monotone->values) {
      if (!first) key += ',';
      first = false;
      key += hexf(v);
    }
  }
  return key;
}

}  // namespace fne
