// fne::ByteWriter / fne::ByteReader — the little-endian byte codec shared
// by the cell record format (store/record.cpp) and the distributed wire
// protocol (dist/message.cpp).
//
// Both consumers have the same requirements: fixed-width little-endian
// integers, bit-pattern doubles (exactness survives the round trip), and
// TOTAL decoding — a reader over hostile bytes never throws and never
// reads out of bounds, it poisons itself and the caller checks ok() once.
// Extracted from record.cpp (PR 7) so the wire messages inherit the same
// discipline instead of reimplementing it.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/vertex_set.hpp"

namespace fne {

/// Decode ceilings shared by every codec user: a buffer claiming more
/// than these is corrupt, not big.  Universes are vid-sized; strings are
/// metric payloads, trace reasons, or wire keys (KBs to low MBs at most).
inline constexpr std::uint64_t kCodecMaxUniverse = std::uint64_t{1} << 32;
inline constexpr std::uint32_t kCodecMaxString = 16u << 20;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) buf_.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf_.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  void mask(const VertexSet& s) {
    u64(s.universe_size());
    for (std::size_t w = 0; w < s.num_words(); ++w) u64(s.word(w));
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked sequential reader.  Every accessor reports failure via
/// ok(); reads past the end return zeros and poison the reader, so a
/// caller can check once at the end of a fixed-shape section.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_ - 1]);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ - 4 + b]))
           << (8 * b);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ - 8 + b]))
           << (8 * b);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (len > kCodecMaxString || !take(len)) {
      ok_ = false;
      return {};
    }
    return std::string(data_.substr(pos_ - len, len));
  }
  std::optional<VertexSet> mask() {
    const std::uint64_t universe = u64();
    if (!ok_ || universe > kCodecMaxUniverse) {
      ok_ = false;
      return std::nullopt;
    }
    const std::size_t words = (static_cast<std::size_t>(universe) + 63) / 64;
    std::vector<std::uint64_t> packed(words);
    for (std::size_t w = 0; w < words; ++w) packed[w] = u64();
    if (!ok_) return std::nullopt;
    // from_words REQUIREs clean padding; a corrupt mask must come back as
    // a decode failure, not an exception escaping the decoder.
    const vid n = static_cast<vid>(universe);
    const vid tail = n & 63;
    if (tail != 0 && words > 0 &&
        (packed.back() & ~((std::uint64_t{1} << tail) - 1)) != 0) {
      ok_ = false;
      return std::nullopt;
    }
    return VertexSet::from_words(n, std::move(packed));
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fne
