// fne::ResultStore — a persistent content-addressable store for campaign
// cell results (DESIGN.md §11).
//
// The store maps a canonical cell key (store/key.hpp) to the encoded
// result payload (store/record.hpp) through ONE append-only log file,
// `<dir>/cells.log`.  Layout:
//
//   header   "FNESTORE" (8) | u32 schema version | u32 reserved
//   frame*   u32 'FNEC' | u32 key_len | u32 payload_len | u32 format
//            | u64 fnv1a(key ‖ payload) | key bytes | payload bytes
//
// all integers little-endian.  The full key is stored in every frame and
// compared on load, so the in-memory hash index can never serve a
// colliding key's payload — a collision degrades to a miss.
//
// Crash safety: the header is created via write-temp + rename (a crash
// mid-create leaves no half-header file); each append is ONE O_APPEND
// write() of a fully framed record, so a killed process leaves at worst
// a torn tail.  open() truncates a torn tail (frame incomplete, bad
// frame magic, or absurd lengths) and skips — without dropping the rest
// of the file — any framed record whose checksum does not verify.  A
// file with a foreign magic rotates to cells.log.bad and a file with an
// unknown schema version rotates to cells.log.v<N>; both then start
// fresh.  Every degradation path ends in "miss -> recompute", never in
// an exception or a wrong payload.
//
// Concurrency: one ResultStore is internally synchronized (the campaign
// commits from pool threads).  Across processes the contract is one
// writer + many readers, but the append path is defensive enough that
// two concurrent runners on one directory stay consistent: appends are
// single atomic write()s, and put() rescans the tail afterwards so
// records interleaved by the other process enter the index too.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace fne {

/// Bump whenever the record codec (store/record.hpp) or the frame layout
/// changes.  Old logs rotate aside and the campaign recomputes.
inline constexpr std::uint32_t kStoreSchemaVersion = 1;

/// Counters for --store-stats and the robustness tests.  hits/misses and
/// byte counters accumulate over the store's lifetime; corrupt_records /
/// truncated_bytes / rotated_files describe what open()/load() had to
/// discard or move aside.  Every corruption path HEALS silently (miss ->
/// recompute), so these counters are the only place disk trouble shows
/// up — campaign reports surface them in the timing payload.
struct StoreStats {
  std::uint64_t records = 0;          ///< distinct keys currently indexed
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_committed = 0;  ///< payload bytes appended by this store
  std::uint64_t bytes_loaded = 0;     ///< payload bytes served from the log
  std::uint64_t corrupt_records = 0;  ///< checksum/key-verify failures skipped
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped at open
  std::uint64_t rotated_files = 0;    ///< foreign/versioned logs moved aside at open
};

class ResultStore {
 public:
  /// Open (creating the directory and log as needed) the store at `dir`.
  /// Filesystem errors that cannot be degraded — directory uncreatable,
  /// log unopenable — REQUIRE-fail; corrupt CONTENT never does.
  explicit ResultStore(std::string dir);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

  /// Serve `key`'s payload, or nullopt (counted as a miss).  Verifies the
  /// frame checksum and the stored key on every hit; a record that fails
  /// re-verification is dropped from the index and counted corrupt.
  [[nodiscard]] std::optional<std::string> load(const std::string& key);

  /// Append (key -> payload).  A key already present is NOT rewritten —
  /// first write wins, matching the determinism contract (any two writers
  /// of one key computed the same bytes).
  void put(const std::string& key, const std::string& payload);

  /// Re-scan the log tail for records appended by other processes since
  /// open()/the last refresh.  Never truncates: an incomplete tail is
  /// left for the writer to finish.
  void refresh();

  [[nodiscard]] bool contains(const std::string& key);

  [[nodiscard]] StoreStats stats() const;

 private:
  struct IndexEntry {
    std::uint64_t frame_off = 0;  ///< offset of the frame header
    std::uint32_t key_len = 0;
    std::uint32_t payload_len = 0;
    std::uint64_t checksum = 0;
  };

  void open_log();
  void create_fresh_log();
  /// Scan frames from scan_end_.  `allow_truncate` controls the torn-tail
  /// policy: open() truncates, refresh() leaves it for the writer.
  void scan_tail(bool allow_truncate);

  std::string dir_;
  std::string log_path_;
  int fd_ = -1;
  std::uint64_t scan_end_ = 0;  ///< log offset up to which frames are indexed
  std::map<std::string, IndexEntry> index_;
  StoreStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace fne
