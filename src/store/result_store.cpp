#include "store/result_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include "util/hash.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

constexpr char kFileMagic[8] = {'F', 'N', 'E', 'S', 'T', 'O', 'R', 'E'};
constexpr std::size_t kHeaderSize = 16;  // magic + u32 version + u32 reserved
constexpr std::uint32_t kFrameMagic = 0x43454E46;  // "FNEC" little-endian
constexpr std::size_t kFrameHeaderSize = 24;
constexpr std::uint32_t kFrameFormat = 1;
// Corruption ceilings: a frame claiming more than this is a torn/garbage
// tail, not a big record.
constexpr std::uint32_t kMaxKeyLen = 1u << 20;
constexpr std::uint32_t kMaxPayloadLen = 1u << 30;

void put_u32(std::string& buf, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) buf.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) buf.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(p[b]) << (8 * b);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return v;
}

/// pread exactly `len` bytes at `off`; returns bytes actually read (short
/// only at EOF).
std::size_t read_at(int fd, std::uint64_t off, void* out, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, static_cast<char*>(out) + done, len - done,
                              static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      FNE_REQUIRE(false, "result store: pread failed");
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  return done;
}

std::uint64_t frame_checksum(std::string_view key, std::string_view payload) {
  Fnv1a h;
  h.text(key);
  h.text(payload);
  return h.value();
}

std::uint64_t file_size_of(int fd) {
  struct stat st {};
  FNE_REQUIRE(::fstat(fd, &st) == 0, "result store: fstat failed");
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  FNE_REQUIRE(!ec, "result store: cannot create directory " + dir_);
  log_path_ = (fs::path(dir_) / "cells.log").string();
  open_log();
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultStore::create_fresh_log() {
  namespace fs = std::filesystem;
  // Temp + rename: a crash mid-create leaves a stray .tmp, never a
  // half-written cells.log.
  const std::string tmp = log_path_ + ".tmp." + std::to_string(::getpid());
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  FNE_REQUIRE(tfd >= 0, "result store: cannot create " + tmp);
  std::string header(kFileMagic, sizeof(kFileMagic));
  put_u32(header, kStoreSchemaVersion);
  put_u32(header, 0);  // reserved
  const ssize_t n = ::write(tfd, header.data(), header.size());
  ::fsync(tfd);
  ::close(tfd);
  FNE_REQUIRE(n == static_cast<ssize_t>(header.size()),
              "result store: cannot write header of " + tmp);
  std::error_code ec;
  fs::rename(tmp, log_path_, ec);
  FNE_REQUIRE(!ec, "result store: cannot install " + log_path_);
}

void ResultStore::open_log() {
  namespace fs = std::filesystem;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!fs::exists(log_path_)) create_fresh_log();
    fd_ = ::open(log_path_.c_str(), O_RDWR | O_APPEND);
    FNE_REQUIRE(fd_ >= 0, "result store: cannot open " + log_path_);

    unsigned char header[kHeaderSize];
    const std::size_t got = read_at(fd_, 0, header, kHeaderSize);
    const bool magic_ok =
        got == kHeaderSize && std::memcmp(header, kFileMagic, sizeof(kFileMagic)) == 0;
    const std::uint32_t version = magic_ok ? get_u32(header + 8) : 0;
    if (magic_ok && version == kStoreSchemaVersion) {
      scan_end_ = kHeaderSize;
      scan_tail(/*allow_truncate=*/true);
      return;
    }

    // Not ours (or a schema we no longer read): rotate it aside and
    // start fresh.  The campaign then recomputes — degrade, never crash.
    ::close(fd_);
    fd_ = -1;
    const std::string aside =
        magic_ok ? log_path_ + ".v" + std::to_string(version) : log_path_ + ".bad";
    std::error_code ec;
    fs::rename(log_path_, aside, ec);
    FNE_REQUIRE(!ec, "result store: cannot rotate " + log_path_ + " to " + aside);
    ++stats_.rotated_files;
  }
  FNE_REQUIRE(false, "result store: could not establish a readable log at " + log_path_);
}

void ResultStore::scan_tail(bool allow_truncate) {
  const std::uint64_t size = file_size_of(fd_);
  while (scan_end_ < size) {
    unsigned char fh[kFrameHeaderSize];
    bool torn = false;
    std::uint32_t key_len = 0;
    std::uint32_t payload_len = 0;
    std::uint64_t checksum = 0;
    std::uint32_t format = 0;
    if (read_at(fd_, scan_end_, fh, kFrameHeaderSize) < kFrameHeaderSize) {
      torn = true;
    } else {
      key_len = get_u32(fh + 4);
      payload_len = get_u32(fh + 8);
      format = get_u32(fh + 12);
      checksum = get_u64(fh + 16);
      torn = get_u32(fh) != kFrameMagic || key_len == 0 || key_len > kMaxKeyLen ||
             payload_len > kMaxPayloadLen ||
             scan_end_ + kFrameHeaderSize + key_len + payload_len > size;
    }
    if (torn) {
      // A torn or garbage tail.  open() drops it (the writer died
      // mid-append); refresh() leaves it — a live writer may still be
      // completing the frame.
      if (allow_truncate) {
        stats_.truncated_bytes += size - scan_end_;
        FNE_REQUIRE(::ftruncate(fd_, static_cast<off_t>(scan_end_)) == 0,
                    "result store: cannot truncate torn tail of " + log_path_);
      }
      return;
    }

    std::string body(static_cast<std::size_t>(key_len) + payload_len, '\0');
    if (read_at(fd_, scan_end_ + kFrameHeaderSize, body.data(), body.size()) < body.size()) {
      if (allow_truncate) {
        stats_.truncated_bytes += size - scan_end_;
        FNE_REQUIRE(::ftruncate(fd_, static_cast<off_t>(scan_end_)) == 0,
                    "result store: cannot truncate torn tail of " + log_path_);
      }
      return;
    }
    const std::string_view key(body.data(), key_len);
    const std::string_view payload(body.data() + key_len, payload_len);
    const std::uint64_t frame_off = scan_end_;
    scan_end_ += kFrameHeaderSize + key_len + payload_len;

    if (format != kFrameFormat || frame_checksum(key, payload) != checksum) {
      // Framing intact, content bad: skip just this record.  It is not
      // indexed, so a later put() of the same key appends a good copy.
      ++stats_.corrupt_records;
      continue;
    }
    // First write wins; a duplicate frame (two processes racing the same
    // key) carries identical bytes by the determinism contract anyway.
    index_.try_emplace(std::string(key),
                       IndexEntry{frame_off, key_len, payload_len, checksum});
  }
}

std::optional<std::string> ResultStore::load(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const IndexEntry entry = it->second;
  std::string body(static_cast<std::size_t>(entry.key_len) + entry.payload_len, '\0');
  const bool read_ok =
      read_at(fd_, entry.frame_off + kFrameHeaderSize, body.data(), body.size()) ==
      body.size();
  const std::string_view stored_key(body.data(), entry.key_len);
  const std::string_view payload(body.data() + entry.key_len, entry.payload_len);
  if (!read_ok || stored_key != key ||
      frame_checksum(stored_key, payload) != entry.checksum) {
    // The log changed under us or the index entry is stale/colliding:
    // drop it and miss.
    index_.erase(it);
    ++stats_.corrupt_records;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.bytes_loaded += entry.payload_len;
  return std::string(payload);
}

void ResultStore::put(const std::string& key, const std::string& payload) {
  FNE_REQUIRE(!key.empty() && key.size() <= kMaxKeyLen,
              "result store: key size out of range");
  FNE_REQUIRE(payload.size() <= kMaxPayloadLen, "result store: payload too large");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index_.contains(key)) return;  // first write wins

  std::string frame;
  frame.reserve(kFrameHeaderSize + key.size() + payload.size());
  put_u32(frame, kFrameMagic);
  put_u32(frame, static_cast<std::uint32_t>(key.size()));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, kFrameFormat);
  put_u64(frame, frame_checksum(key, payload));
  frame += key;
  frame += payload;

  // ONE write() on an O_APPEND fd: atomic placement at the end even with
  // a concurrent writer, and a kill mid-call leaves only a torn tail.
  const ssize_t n = ::write(fd_, frame.data(), frame.size());
  FNE_REQUIRE(n == static_cast<ssize_t>(frame.size()),
              "result store: append failed on " + log_path_);
  stats_.bytes_committed += payload.size();
  // Index our own frame — and any frames another process interleaved
  // before it — by scanning forward from the last indexed offset.
  scan_tail(/*allow_truncate=*/false);
}

void ResultStore::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  scan_tail(/*allow_truncate=*/false);
}

bool ResultStore::contains(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(key);
}

StoreStats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StoreStats out = stats_;
  out.records = index_.size();
  return out;
}

}  // namespace fne
