// Content keys for stored campaign cells (DESIGN.md §11).
//
// A cell key canonically names everything the cell's result is a pure
// function of: schema version, topology + params, the derived build seed,
// the EFFECTIVE fault spec (after any sweep-point override), prune knobs
// (α/ε in hexfloat so the key survives formatting round-trips), the full
// cut-finder configuration, the metric-request set, the scenario seed and
// repetition — and, for a monotone chain cell, the swept param and value
// list (the chain is one job, so the whole chain is one cell).
//
// Keys are human-readable on purpose: the store hashes them for its
// index but writes them in full into every record and verifies equality
// on load, so a 64-bit index collision degrades to a miss, never to a
// wrong result.  Anything that changes what a cell computes MUST change
// its key — that is enforced socially by routing every input through
// this one function, and structurally by the schema field, which bumps
// with kStoreSchemaVersion.
#pragma once

#include <string>

#include "api/scenario.hpp"

namespace fne {

struct SweepSpec;

/// The canonical key for one campaign cell.  `effective_fault` is the
/// job's fault spec (sweep points override one param of the entry's
/// fault); `monotone` non-null marks a chain cell and appends the swept
/// values.  Deterministic: same inputs -> same bytes, on any platform.
[[nodiscard]] std::string store_cell_key(const Scenario& scenario,
                                         const FaultSpec& effective_fault, int rep,
                                         const SweepSpec* monotone = nullptr);

}  // namespace fne
