#include "prune/verify.hpp"

#include <sstream>

#include "core/traversal.hpp"

namespace fne {

TraceVerification verify_prune_trace(const Graph& g, const VertexSet& initial_alive,
                                     const PruneResult& result, ExpansionKind kind,
                                     double threshold, bool require_compact) {
  TraceVerification out;
  VertexSet alive = initial_alive;
  for (std::size_t i = 0; i < result.culled.size(); ++i) {
    const CulledRecord& rec = result.culled[i];
    const vid alive_count = alive.count();
    auto fail = [&](const std::string& why) {
      out.valid = false;
      out.failed_record = static_cast<int>(i);
      out.reason = why;
    };
    if (!rec.set.is_subset_of(alive)) {
      fail("culled set not a subset of the surviving graph");
      return out;
    }
    const vid size = rec.set.count();
    if (size == 0 || 2 * size > alive_count) {
      fail("culled set empty or larger than half the surviving graph");
      return out;
    }
    std::size_t boundary = 0;
    if (kind == ExpansionKind::Node) {
      boundary = node_boundary_size(g, alive, rec.set);
    } else {
      boundary = edge_boundary_size(g, alive, rec.set);
      if (!is_connected_subset(g, alive, rec.set)) {
        fail("Prune2 culled set is not connected");
        return out;
      }
      if (require_compact && !is_compact_in_component(g, alive, rec.set)) {
        fail("Prune2 culled set is not compact within its component");
        return out;
      }
    }
    if (static_cast<double>(boundary) > threshold * static_cast<double>(size) + 1e-9) {
      std::ostringstream os;
      os << "culling condition violated: boundary " << boundary << " > " << threshold << " * "
         << size;
      fail(os.str());
      return out;
    }
    alive -= rec.set;
  }
  if (!(alive == result.survivors)) {
    out.valid = false;
    out.failed_record = static_cast<int>(result.culled.size());
    out.reason = "survivor set does not match the replayed trace";
    return out;
  }
  out.valid = true;
  return out;
}

Theorem21Check check_theorem21_size(vid n, double alpha, vid faults, double k,
                                    vid survivor_count) {
  Theorem21Check check;
  const double culled_allowance = k * static_cast<double>(faults) / alpha;
  check.size_bound = static_cast<double>(n) - culled_allowance;
  check.precondition_ok = culled_allowance <= static_cast<double>(n) / 4.0;
  check.size_ok = static_cast<double>(survivor_count) >= check.size_bound - 1e-9;
  return check;
}

}  // namespace fne
