#include "prune/prune.hpp"

#include "prune/engine.hpp"
#include "util/require.hpp"

namespace fne {

PruneResult prune(const Graph& g, const VertexSet& alive, double alpha, double epsilon,
                  const PruneOptions& options) {
  PruneEngine engine(g, ExpansionKind::Node);
  PruneEngineOptions eopts;
  eopts.finder = options.finder;
  eopts.max_iterations = options.max_iterations;
  return engine.run(alive, alpha, epsilon, eopts);
}

PruneResult prune_reference(const Graph& g, const VertexSet& alive, double alpha, double epsilon,
                            const PruneOptions& options) {
  FNE_REQUIRE(alpha > 0.0, "alpha must be positive");
  FNE_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "epsilon must lie in [0, 1)");
  const double threshold = alpha * epsilon;

  PruneResult result;
  result.survivors = alive;

  for (int i = 0; i < options.max_iterations; ++i) {
    if (result.survivors.count() < 2) break;
    CutFinderOptions finder = options.finder;
    finder.seed = options.finder.seed + static_cast<std::uint64_t>(i);
    const auto violation =
        find_violating_set(g, result.survivors, ExpansionKind::Node, threshold, finder);
    if (!violation.has_value()) break;

    CulledRecord record;
    record.set = violation->side;
    record.size = violation->side.count();
    record.boundary = violation->boundary;
    record.ratio = violation->expansion;
    result.survivors -= violation->side;
    result.total_culled += record.size;
    result.culled.push_back(std::move(record));
    ++result.iterations;
  }
  return result;
}

}  // namespace fne
