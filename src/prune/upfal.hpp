// Upfal's degree-based pruning (paper §1.1: "Upfal uses a pruning
// technique ... the important difference worth noting is that Upfal's
// pruning does not guarantee a large component of good expansion").
//
// The rule: repeatedly discard every vertex that has lost more than a
// (1 - keep_fraction) share of its original neighbors, then keep the
// largest component.  It is polynomial-time and guarantees a component
// of size n - O(f) on bounded-degree expanders — but, as the paper
// stresses, NOT a component of good expansion.  It serves as the
// baseline our Prune ablation (A4) compares against.
#pragma once

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct UpfalResult {
  VertexSet survivors;  ///< largest component after iterated degree culling
  int iterations = 0;
  vid total_culled = 0;  ///< vertices dropped by the degree rule (pre component step)
};

/// Iterated degree pruning: drop alive vertices whose alive degree falls
/// below keep_fraction * original degree, to a fixed point; then keep the
/// largest surviving component.  keep_fraction in (0, 1].
[[nodiscard]] UpfalResult upfal_prune(const Graph& g, const VertexSet& alive,
                                      double keep_fraction = 0.5);

}  // namespace fne
