#include "prune/prune2.hpp"

#include <cmath>

#include "core/traversal.hpp"
#include "prune/compact.hpp"
#include "prune/engine.hpp"
#include "util/require.hpp"

namespace fne {

double theorem34_fault_probability(double delta, double sigma) {
  return 1.0 / (2.0 * std::exp(1.0) * std::pow(delta, 4.0 * sigma));
}

PruneResult prune2(const Graph& g, const VertexSet& alive, double alpha_e, double epsilon,
                   const Prune2Options& options) {
  PruneEngine engine(g, ExpansionKind::Edge);
  PruneEngineOptions eopts;
  eopts.finder = options.finder;
  eopts.max_iterations = options.max_iterations;
  eopts.compactify_enabled = options.compactify_enabled;
  return engine.run(alive, alpha_e, epsilon, eopts);
}

PruneResult prune2_reference(const Graph& g, const VertexSet& alive, double alpha_e,
                             double epsilon, const Prune2Options& options) {
  FNE_REQUIRE(alpha_e > 0.0, "alpha_e must be positive");
  FNE_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "epsilon must lie in [0, 1)");
  const double threshold = alpha_e * epsilon;

  PruneResult result;
  result.survivors = alive;

  for (int i = 0; i < options.max_iterations; ++i) {
    if (result.survivors.count() < 2) break;
    CutFinderOptions finder = options.finder;
    finder.seed = options.finder.seed + static_cast<std::uint64_t>(i);
    const auto violation =
        find_violating_set(g, result.survivors, ExpansionKind::Edge, threshold, finder);
    if (!violation.has_value()) break;

    VertexSet cull = violation->side;
    if (options.compactify_enabled) {
      cull = compactify(g, result.survivors, cull);
    }
    CulledRecord record;
    record.size = cull.count();
    record.boundary = edge_boundary_size(g, result.survivors, cull);
    record.ratio = static_cast<double>(record.boundary) / static_cast<double>(record.size);
    record.set = std::move(cull);
    result.survivors -= record.set;
    result.total_culled += record.size;
    result.culled.push_back(std::move(record));
    ++result.iterations;
  }
  return result;
}

}  // namespace fne
