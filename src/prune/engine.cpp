#include "prune/engine.hpp"

#include "core/traversal.hpp"
#include "prune/compact.hpp"
#include "util/require.hpp"

namespace fne {

PruneEngine::PruneEngine(const Graph& g, ExpansionKind kind) : g_(&g), kind_(kind) {}

void PruneEngine::bootstrap(const VertexSet& alive) {
  const vid n = g_->num_vertices();
  alive_ = alive;
  comp_of_.assign(n, kUnreached);
  comps_.clear();
  live_comps_ = 0;
  bfs_stack_.clear();
  bfs_stack_.reserve(n);

  // Compact sub-CSR of the alive subgraph for the spectral kernels: built
  // once here, shrunk in apply_cull — the cull loop never re-walks the
  // full graph CSR for an eigensolve again (DESIGN.md §7).
  ws_.subcsr.build(*g_, alive_);
  ws_.subcsr.valid = true;

  // Alive degrees (ws_.deg_alive was zeroed by ws_.reset).
  alive_.for_each([&](vid v) {
    vid d = 0;
    for (vid w : g_->neighbors(v)) {
      if (alive_.test(w)) ++d;
    }
    ws_.deg_alive[v] = d;
  });

  // Full component labeling.  Enumerating alive ascending makes each
  // component's first-discovered vertex its minimum — the property the
  // reference path's label order encodes and disconnected_witness()
  // reproduces through (size, min_v) tie-breaking.
  alive_.for_each([&](vid start) {
    if (comp_of_[start] != kUnreached) return;
    const auto id = static_cast<std::uint32_t>(comps_.size());
    comps_.push_back({0, start, false});
    ++live_comps_;
    comp_of_[start] = id;
    bfs_stack_.push_back(start);
    while (!bfs_stack_.empty()) {
      const vid u = bfs_stack_.back();
      bfs_stack_.pop_back();
      ++comps_[id].size;
      for (vid w : g_->neighbors(u)) {
        if (alive_.test(w) && comp_of_[w] == kUnreached) {
          comp_of_[w] = id;
          bfs_stack_.push_back(w);
        }
      }
    }
  });
}

std::optional<CutWitness> PruneEngine::disconnected_witness(vid alive_count) const {
  // Bit-exact mirror of find_violating_set's step 1.  The reference path
  // labels components in ascending-minimum-vertex order and breaks size
  // ties by label order, so every selection below reduces to comparing
  // (size, min_v) pairs — available from the incremental records without
  // any graph scan.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t keep = npos;
  for (std::size_t c = 0; c < comps_.size(); ++c) {
    if (comps_[c].dead) continue;
    if (keep == npos || comps_[c].size > comps_[keep].size ||
        (comps_[c].size == comps_[keep].size && comps_[c].min_v < comps_[keep].min_v)) {
      keep = c;
    }
  }
  if (keep == npos) return std::nullopt;

  const vid n = g_->num_vertices();
  if (kind_ == ExpansionKind::Node) {
    const vid rest_count = alive_count - comps_[keep].size;
    if (rest_count > 0 && 2 * rest_count <= alive_count) {
      VertexSet rest(n);
      const auto keep_id = static_cast<std::uint32_t>(keep);
      alive_.for_each([&](vid v) {
        if (comp_of_[v] != keep_id) rest.set(v);
      });
      return CutWitness{std::move(rest), 0.0, 0};
    }
  }
  // Edge mode (or the pathological tie): one smallest non-keep component.
  std::size_t smallest = npos;
  for (std::size_t c = 0; c < comps_.size(); ++c) {
    if (comps_[c].dead || c == keep) continue;
    if (smallest == npos || comps_[c].size < comps_[smallest].size ||
        (comps_[c].size == comps_[smallest].size &&
         comps_[c].min_v < comps_[smallest].min_v)) {
      smallest = c;
    }
  }
  if (smallest == npos || 2 * comps_[smallest].size > alive_count) return std::nullopt;
  VertexSet piece(n);
  const auto small_id = static_cast<std::uint32_t>(smallest);
  alive_.for_each([&](vid v) {
    if (comp_of_[v] == small_id) piece.set(v);
  });
  return CutWitness{std::move(piece), 0.0, 0};
}

void PruneEngine::apply_cull(const VertexSet& s) {
  // 1. Kill the record of every component S touches.
  s.for_each([&](vid v) {
    const std::uint32_t c = comp_of_[v];
    if (c != kUnreached && !comps_[c].dead) {
      comps_[c].dead = true;
      --live_comps_;
    }
  });

  // 2. Remove S; clear its labels and decrement surviving neighbors'
  //    alive degrees along the boundary edges.  The spectral sub-CSR
  //    shrinks by the same set — pure array compaction, no graph walk.
  ws_.subcsr.remove(s);
  alive_ -= s;
  s.for_each([&](vid v) {
    comp_of_[v] = kUnreached;
    for (vid w : g_->neighbors(v)) {
      if (alive_.test(w)) --ws_.deg_alive[w];
    }
  });

  // 3. Relabel only the remnants of the killed component(s).  Every
  //    connected remnant piece contains an alive neighbor of S (take any
  //    remnant vertex; its old path to S first enters S from such a
  //    neighbor), so BFS from S's alive boundary covers all of them.
  //    Vertices still pointing at a dead record are exactly the
  //    not-yet-relabeled remnants; other components are untouched.
  s.for_each([&](vid v) {
    for (vid w : g_->neighbors(v)) {
      if (!alive_.test(w)) continue;
      const std::uint32_t cw = comp_of_[w];
      if (cw == kUnreached || !comps_[cw].dead) continue;
      const auto id = static_cast<std::uint32_t>(comps_.size());
      comps_.push_back({0, w, false});
      ++live_comps_;
      ++stats_.relabel_bfs_calls;
      comp_of_[w] = id;
      bfs_stack_.clear();
      bfs_stack_.push_back(w);
      while (!bfs_stack_.empty()) {
        const vid u = bfs_stack_.back();
        bfs_stack_.pop_back();
        ++comps_[id].size;
        ++stats_.relabel_bfs_vertices;
        if (u < comps_[id].min_v) comps_[id].min_v = u;
        for (vid x : g_->neighbors(u)) {
          if (!alive_.test(x)) continue;
          const std::uint32_t cx = comp_of_[x];
          if (cx != kUnreached && comps_[cx].dead) {
            comp_of_[x] = id;
            bfs_stack_.push_back(x);
          }
        }
      }
    }
  });
}

PruneResult PruneEngine::run(const VertexSet& alive, double alpha, double epsilon,
                             const PruneEngineOptions& options) {
  FNE_REQUIRE(alpha > 0.0, "alpha must be positive");
  FNE_REQUIRE(epsilon >= 0.0 && epsilon < 1.0, "epsilon must lie in [0, 1)");
  FNE_REQUIRE(alive.universe_size() == g_->num_vertices(), "mask/graph size mismatch");
  const double threshold = alpha * epsilon;

  ws_.reset(g_->num_vertices());
  bootstrap(alive);
  ws_.deg_alive_valid = true;

  PruneResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    const vid k = alive_.count();
    if (k < 2) break;

    std::optional<CutWitness> violation;
    if (live_comps_ > 1) {
      violation = disconnected_witness(k);
      if (violation.has_value()) ++stats_.disconnected_culls;
    }
    if (!violation.has_value()) {
      CutFinderOptions finder = options.finder;
      finder.seed = options.finder.seed + static_cast<std::uint64_t>(i);
      ws_.alive_connected = live_comps_ <= 1;
      violation = find_violating_set(*g_, alive_, kind_, threshold, finder, &ws_);
      ws_.alive_connected = false;
    }
    if (!violation.has_value()) break;

    CulledRecord record;
    if (kind_ == ExpansionKind::Node) {
      record.set = std::move(violation->side);
      record.size = record.set.count();
      record.boundary = violation->boundary;
      record.ratio = violation->expansion;
    } else {
      VertexSet cull = std::move(violation->side);
      if (options.compactify_enabled) {
        cull = compactify(*g_, alive_, cull);
      }
      record.size = cull.count();
      record.boundary = edge_boundary_size(*g_, alive_, cull);
      record.ratio = static_cast<double>(record.boundary) / static_cast<double>(record.size);
      record.set = std::move(cull);
    }
    apply_cull(record.set);
    result.total_culled += record.size;
    result.culled.push_back(std::move(record));
    ++result.iterations;
  }
  result.survivors = alive_;
  ++stats_.runs;
  stats_.iterations += static_cast<std::uint64_t>(result.iterations);
  stats_.eigensolves += ws_.counters.eigensolves;
  stats_.stale_sweeps += ws_.counters.stale_sweeps;
  stats_.stale_sweep_hits += ws_.counters.stale_sweep_hits;
  // The degree table, connectivity hint and sub-CSR are keyed to this
  // run's final alive mask; leaving them valid would poison a later
  // caller that threads workspace() through find_violating_set with a
  // different mask.
  ws_.deg_alive_valid = false;
  ws_.alive_connected = false;
  ws_.subcsr.valid = false;
  return result;
}

}  // namespace fne
