// Algorithm Prune2 (paper Figure 2) for random faults.
//
//   Prune2(ε):
//     G_0 ← G_f; i ← 0
//     while ∃ connected S_i ⊆ G_i with |(S_i, G_i\S_i)| <= α_e·ε·|S_i|
//           and |S_i| <= |G_i|/2:
//       K_i ← K_{G_i}(S_i)        (Lemma 3.3 compactification)
//       G_{i+1} ← G_i \ K_i;  i ← i+1
//     H ← G_i
//
// Theorem 3.4: for a graph with span σ and max degree δ, if the fault
// probability satisfies p <= 1/(2e·δ^(4σ)), ε <= 1/(2δ), and
// α_e >= 6δ²·log³_δ(n)/n, then Prune2(ε) returns H with |H| >= n/2 and
// edge expansion >= ε·α_e with high probability.
#pragma once

#include "prune/prune.hpp"

namespace fne {

struct Prune2Options {
  CutFinderOptions finder{};
  int max_iterations = 100000;
  bool compactify_enabled = true;  ///< ablation A2 switches Lemma 3.3 off
};

/// Run Prune2(epsilon) with edge-expansion parameter `alpha_e`.  Culled
/// records store the *compactified* sets K_i and their cut at cull time.
///
/// Thin wrapper over PruneEngine in its deterministic configuration
/// (bit-identical to prune2_reference); fast-mode toggles in
/// options.finder are honored.
[[nodiscard]] PruneResult prune2(const Graph& g, const VertexSet& alive, double alpha_e,
                                 double epsilon, const Prune2Options& options = {});

/// The original stateless Prune2 loop, kept as the reference
/// implementation for regression tests and engine benchmarks.
[[nodiscard]] PruneResult prune2_reference(const Graph& g, const VertexSet& alive, double alpha_e,
                                           double epsilon, const Prune2Options& options = {});

/// Theorem 3.4's admissible fault probability for span sigma and max
/// degree delta: 1 / (2e · δ^(4σ)).
[[nodiscard]] double theorem34_fault_probability(double delta, double sigma);

}  // namespace fne
