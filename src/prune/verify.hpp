// Replay verification of Prune/Prune2 runs and Theorem 2.1 / 3.4
// postcondition checks.
//
// The guarantees of both theorems hold for ANY sequence of sets that
// satisfied the culling condition when removed — not just the ones our
// portfolio found.  Replaying the trace therefore turns a heuristic run
// into a certified one: if every record passes, the run is a valid
// execution of the paper's algorithm.
#pragma once

#include <string>

#include "prune/prune.hpp"

namespace fne {

struct TraceVerification {
  bool valid = false;
  int failed_record = -1;   ///< index of the first invalid record, -1 if none
  std::string reason;
};

/// Replay a Prune trace: every culled S_i must have had |S_i| <= |G_i|/2
/// and boundary(S_i) <= threshold · |S_i| at cull time, and the final
/// survivor set must match.  `kind` selects node (Prune) or edge (Prune2)
/// boundaries; Prune2 records must additionally be connected and compact
/// unless `require_compact` is false (ablation A2).
[[nodiscard]] TraceVerification verify_prune_trace(const Graph& g, const VertexSet& initial_alive,
                                                   const PruneResult& result, ExpansionKind kind,
                                                   double threshold, bool require_compact = false);

/// Theorem 2.1 size bound: |H| >= n - k·f/α (valid when k·f/α <= n/4).
struct Theorem21Check {
  double size_bound = 0.0;  ///< n - k·f/α
  bool size_ok = false;
  bool precondition_ok = false;  ///< k·f/α <= n/4
};
[[nodiscard]] Theorem21Check check_theorem21_size(vid n, double alpha, vid faults, double k,
                                                  vid survivor_count);

}  // namespace fne
