#include "prune/compact.hpp"

#include <limits>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

/// Connected component of the alive subgraph containing (connected) S.
VertexSet component_of(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  const vid start = s.first();
  VertexSet comp(g.num_vertices());
  std::vector<vid> stack{start};
  comp.set(start);
  while (!stack.empty()) {
    const vid u = stack.back();
    stack.pop_back();
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !comp.test(w)) {
        comp.set(w);
        stack.push_back(w);
      }
    }
  }
  return comp;
}

double edge_ratio(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  return static_cast<double>(edge_boundary_size(g, alive, s)) /
         static_cast<double>(s.count());
}

}  // namespace

VertexSet compactify(const Graph& g, const VertexSet& alive, const VertexSet& s) {
  const vid n_alive = alive.count();
  FNE_REQUIRE(!s.empty(), "compactify: S must be nonempty");
  FNE_REQUIRE(2 * s.count() <= n_alive, "compactify: |S| must be <= |alive|/2");
  FNE_REQUIRE(is_connected_subset(g, alive, s), "compactify: S must be connected");

  // Lemma 3.3 assumes the surrounding graph is connected; a faulty graph
  // may not be, so we apply the lemma inside S's own component.  Cut
  // sizes are unaffected: no edges leave the component.
  const VertexSet comp = component_of(g, alive, s);
  const vid n_comp = comp.count();
  const VertexSet rest = comp - s;
  if (rest.empty()) return s;  // S is an entire component
  if (is_connected_subset(g, alive, rest)) return s;

  // C(S): maximal connected components of comp \ S.
  const Components comps = connected_components(g, rest);

  // Case 1: a component C with |C| >= |comp|/2 → K = comp \ C.
  for (std::uint32_t c = 0; c < comps.sizes.size(); ++c) {
    if (2 * comps.sizes[c] >= n_comp) {
      VertexSet k = comp;
      rest.for_each([&](vid v) {
        if (comps.label[v] == c) k.reset(v);
      });
      return k;
    }
  }

  // Case 2: all components are < |comp|/2; Lemma 3.3 shows one of them
  // has edge expansion <= S's (the counting argument needs |S| <= |comp|/2,
  // which the cut finder guarantees whenever comp == alive).  Take the
  // minimizer, falling back to S itself if the sampler handed us an
  // oversized S for which the minimizer is worse.
  double best_ratio = std::numeric_limits<double>::infinity();
  std::uint32_t best_label = 0;
  for (std::uint32_t c = 0; c < comps.sizes.size(); ++c) {
    VertexSet piece(g.num_vertices());
    rest.for_each([&](vid v) {
      if (comps.label[v] == c) piece.set(v);
    });
    const double ratio = edge_ratio(g, alive, piece);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_label = c;
    }
  }
  if (best_ratio > edge_ratio(g, alive, s)) return s;
  VertexSet k(g.num_vertices());
  rest.for_each([&](vid v) {
    if (comps.label[v] == best_label) k.set(v);
  });
  return k;
}

}  // namespace fne
