#include "prune/upfal.hpp"

#include <deque>

#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

UpfalResult upfal_prune(const Graph& g, const VertexSet& alive, double keep_fraction) {
  FNE_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0, "keep fraction in (0, 1]");
  UpfalResult result;
  VertexSet current = alive;

  // Worklist algorithm: alive degree per vertex, queue of violators.
  std::vector<vid> alive_deg(g.num_vertices(), 0);
  current.for_each([&](vid v) {
    vid d = 0;
    for (vid w : g.neighbors(v)) {
      if (current.test(w)) ++d;
    }
    alive_deg[v] = d;
  });
  auto violates = [&](vid v) {
    return static_cast<double>(alive_deg[v]) <
           keep_fraction * static_cast<double>(g.degree(v));
  };
  std::deque<vid> queue;
  current.for_each([&](vid v) {
    if (violates(v)) queue.push_back(v);
  });

  while (!queue.empty()) {
    const vid v = queue.front();
    queue.pop_front();
    if (!current.test(v) || !violates(v)) continue;
    current.reset(v);
    ++result.total_culled;
    ++result.iterations;
    for (vid w : g.neighbors(v)) {
      if (!current.test(w)) continue;
      --alive_deg[w];
      if (violates(w)) queue.push_back(w);
    }
  }

  result.survivors = current.empty() ? current : largest_component(g, current);
  return result;
}

}  // namespace fne
