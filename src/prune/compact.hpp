// Lemma 3.3 compactification.
//
// Given a connected S with |S| < |alive|/2, produce a *compact* set
// K(S) (both K and its complement connected in the alive subgraph) whose
// edge expansion does not exceed S's:
//   * complement connected             → K = S;
//   * some component C of alive\S has |C| >= |alive|/2
//                                      → K = alive \ C (case 1);
//   * otherwise some component C of alive\S has edge expansion <= S's
//                                      → K = that component (case 2).
#pragma once

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// Compute K(S) per Lemma 3.3.  Requires: S nonempty, connected within
/// `alive`, and |S| <= |alive|/2.
[[nodiscard]] VertexSet compactify(const Graph& g, const VertexSet& alive, const VertexSet& s);

}  // namespace fne
