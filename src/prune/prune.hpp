// Algorithm Prune (paper Figure 1).
//
//   Prune(ε):
//     G_0 ← G_f; i ← 0
//     while ∃ S_i ⊆ G_i with |Γ(S_i)| <= α·ε·|S_i| and |S_i| <= |G_i|/2:
//       G_{i+1} ← G_i \ S_i;  i ← i+1
//     H ← G_i
//
// Theorem 2.1: with ε = 1 - 1/k, f adversarial faults and k·f/α <= n/4,
// the result H has |H| >= n - k·f/α and node expansion >= (1 - 1/k)·α.
//
// The paper's Prune is existential; line 2 is realized here by the
// cut-finder portfolio (expansion/cut_finder.hpp).  Every culled set is
// recorded so the run can be *re-verified*: each S_i provably satisfied
// its culling condition, which is all Theorem 2.1's proof needs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "expansion/cut_finder.hpp"

namespace fne {

/// One culled region, with the quantities at cull time.
struct CulledRecord {
  VertexSet set;           ///< S_i (original vertex ids)
  vid size = 0;            ///< |S_i|
  std::size_t boundary = 0;  ///< |Γ(S_i)| (Prune) or |(S_i, G_i\S_i)| (Prune2)
  double ratio = 0.0;      ///< boundary / size
};

struct PruneResult {
  VertexSet survivors;     ///< H
  std::vector<CulledRecord> culled;
  vid total_culled = 0;
  int iterations = 0;
};

struct PruneOptions {
  CutFinderOptions finder{};
  int max_iterations = 100000;
};

/// Run Prune(epsilon) on the faulty graph (g restricted to `alive`) with
/// expansion parameter `alpha` (the fault-free expansion, or any target).
/// The culling threshold is alpha * epsilon.
///
/// This entry point is a thin wrapper over PruneEngine (prune/engine.hpp)
/// in its deterministic configuration, which is bit-identical to the
/// stateless reference loop below; fast-mode toggles in options.finder
/// (warm_start / stale_sweep_first / early_exit) are honored.
[[nodiscard]] PruneResult prune(const Graph& g, const VertexSet& alive, double alpha,
                                double epsilon, const PruneOptions& options = {});

/// The original stateless cull loop: every iteration recomputes components,
/// degrees and a cold-started Fiedler solve via find_violating_set.  Kept
/// as the reference implementation for regression tests and benchmarks of
/// the engine (see DESIGN.md §5).
[[nodiscard]] PruneResult prune_reference(const Graph& g, const VertexSet& alive, double alpha,
                                          double epsilon, const PruneOptions& options = {});

}  // namespace fne
