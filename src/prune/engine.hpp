// PruneEngine: the incremental driver of the Prune/Prune2 cull loops.
//
// The stateless loops (prune_reference / prune2_reference) recompute
// connected components, alive degrees and a cold-started Fiedler solve
// from scratch on every cull iteration, even though removing one set S
// only perturbs the graph locally.  The engine threads persistent state
// through the loop instead (see DESIGN.md §5):
//
//   * components — labels are maintained incrementally: culling S kills
//     the component(s) it touches and relabels only their remnants via a
//     BFS seeded at S's alive boundary, instead of a full-graph scan;
//   * alive degrees — decremented along S's boundary edges, feeding
//     CutState construction without its O(n + m) recount;
//   * Fiedler state — the previous iteration's eigenvector is cached in
//     the workspace; fast mode warm-starts the next solve from it
//     (restricted to the survivors and re-deflated) or skips the solve
//     entirely when sweeping the stale ordering already exposes a
//     violating set;
//   * allocations — BFS queues, sweep orderings and the Krylov basis are
//     pooled in an ExpansionWorkspace owned by the engine.
//
// In its default configuration the engine is bit-for-bit identical to the
// stateless reference loops: same culled sets, same order, same
// survivors.  The fast-mode switches trade that replayability for speed
// while preserving certified validity — every culled set still satisfied
// its culling condition at cull time, which is all the paper's theorems
// need (prune/verify.hpp replays either kind of trace).
#pragma once

#include <optional>

#include "expansion/workspace.hpp"
#include "prune/prune.hpp"

namespace fne {

struct PruneEngineOptions {
  /// The portfolio configuration, including the fast-mode switches
  /// (finder.warm_start / finder.stale_sweep_first / finder.early_exit).
  /// All default off: the engine then reproduces the stateless reference
  /// bit-for-bit.  On, the engine may cull *different* (equally valid)
  /// sets; use verify_prune_trace to certify the run.
  CutFinderOptions finder{};
  int max_iterations = 100000;
  bool compactify_enabled = true;  ///< edge mode only (Lemma 3.3)

  /// All speed features on.
  [[nodiscard]] static PruneEngineOptions fast() {
    PruneEngineOptions o;
    o.finder.warm_start = true;
    o.finder.stale_sweep_first = true;
    o.finder.early_exit = true;
    return o;
  }
};

/// Cumulative telemetry across every run() of one engine (ROADMAP:
/// "stale-sweep hit-rate telemetry ... so benches can report how many
/// eigensolves fast mode actually skipped").  Counters only ever grow;
/// diff two snapshots to attribute work to a single run.
struct EngineStats {
  std::uint64_t runs = 0;
  std::uint64_t iterations = 0;          ///< cull iterations across runs
  std::uint64_t eigensolves = 0;         ///< Fiedler solves actually performed
  std::uint64_t stale_sweeps = 0;        ///< stale-ordering sweeps attempted
  std::uint64_t stale_sweep_hits = 0;    ///< ...that exposed a set (solve skipped)
  std::uint64_t disconnected_culls = 0;  ///< culls served from incremental labels
  std::uint64_t relabel_bfs_calls = 0;   ///< remnant relabels after a cull
  std::uint64_t relabel_bfs_vertices = 0;  ///< total vertices those BFS touched

  /// Snapshot difference: `after - before` attributes work to the runs
  /// between the two snapshots.
  [[nodiscard]] friend EngineStats operator-(const EngineStats& after,
                                             const EngineStats& before) {
    return {after.runs - before.runs,
            after.iterations - before.iterations,
            after.eigensolves - before.eigensolves,
            after.stale_sweeps - before.stale_sweeps,
            after.stale_sweep_hits - before.stale_sweep_hits,
            after.disconnected_culls - before.disconnected_culls,
            after.relabel_bfs_calls - before.relabel_bfs_calls,
            after.relabel_bfs_vertices - before.relabel_bfs_vertices};
  }
  EngineStats& operator+=(const EngineStats& o) {
    runs += o.runs;
    iterations += o.iterations;
    eigensolves += o.eigensolves;
    stale_sweeps += o.stale_sweeps;
    stale_sweep_hits += o.stale_sweep_hits;
    disconnected_culls += o.disconnected_culls;
    relabel_bfs_calls += o.relabel_bfs_calls;
    relabel_bfs_vertices += o.relabel_bfs_vertices;
    return *this;
  }
};

class PruneEngine {
 public:
  /// An engine is bound to a graph and an expansion kind (Node = Prune,
  /// Edge = Prune2) and may be reused across runs; its workspace survives
  /// between runs so repeated sweeps (e.g. over fault probabilities)
  /// amortize every buffer.
  PruneEngine(const Graph& g, ExpansionKind kind);

  /// Run the cull loop to completion on `alive` with threshold
  /// alpha * epsilon.  Matches prune()/prune2() argument semantics.
  [[nodiscard]] PruneResult run(const VertexSet& alive, double alpha, double epsilon,
                                const PruneEngineOptions& options = {});

  [[nodiscard]] ExpansionWorkspace& workspace() noexcept { return ws_; }

  /// Forget the cross-run warm state (the cached Fiedler ordering), making
  /// the next run() a pure function of (graph, alive, options) — the
  /// repetition-isolation hook behind ScenarioRunner's thread-count-
  /// independent run_all/sweep (DESIGN.md §7) and the lease-reset hook of
  /// the process-wide EngineCache (DESIGN.md §8): called on every lease,
  /// it makes a cache-served engine indistinguishable from a fresh one,
  /// so cache-hit patterns cannot leak into results.  Deterministic mode
  /// never reads the cache, so this is a no-op for reference-parity runs.
  void drop_warm_state() noexcept { ws_.fiedler_valid = false; }

  /// Cumulative counters since construction (never reset by run()).
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Resident heap footprint: the pooled workspace plus the engine's own
  /// incremental-label state.  Capacities, not sizes — this is what an
  /// idle engine pins while it sits in the EngineCache, and what the
  /// cache's byte budget evicts against (DESIGN.md §13).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(PruneEngine) + ws_.memory_bytes() + alive_.memory_bytes() +
           comp_of_.capacity() * sizeof(std::uint32_t) + comps_.capacity() * sizeof(CompRecord) +
           bfs_stack_.capacity() * sizeof(vid);
  }

 private:
  struct CompRecord {
    vid size = 0;
    vid min_v = kInvalidVertex;
    bool dead = false;
  };

  void bootstrap(const VertexSet& alive);
  [[nodiscard]] std::optional<CutWitness> disconnected_witness(vid alive_count) const;
  void apply_cull(const VertexSet& s);

  const Graph* g_;
  ExpansionKind kind_;
  ExpansionWorkspace ws_;
  EngineStats stats_;
  VertexSet alive_;
  std::vector<std::uint32_t> comp_of_;  ///< kUnreached for dead vertices
  std::vector<CompRecord> comps_;       ///< append-only; dead records stay
  std::size_t live_comps_ = 0;
  std::vector<vid> bfs_stack_;
};

}  // namespace fne
