// Critical-probability estimation (paper §1.1's p*).
//
// p* is bracketed by bisection on the survival probability: mean γ(G(p))
// is monotone in p, and we search for the point where it crosses a target
// fraction.  The finite-size estimate converges to the true threshold as
// n grows (the benches report the trend across sizes).
#pragma once

#include <cstdint>

#include "percolation/percolation.hpp"

namespace fne {

struct CriticalOptions {
  double gamma_target = 0.10;  ///< "linear-sized" cutoff fraction
  int trials_per_probe = 24;
  int bisection_steps = 12;
  std::uint64_t seed = 7;
};

struct CriticalResult {
  double p_star = 0.0;        ///< estimated critical survival probability
  double gamma_at_p_star = 0.0;
  int probes = 0;
};

[[nodiscard]] CriticalResult estimate_critical_probability(const Graph& g, PercolationKind kind,
                                                           const CriticalOptions& options = {});

}  // namespace fne
