#include "percolation/cluster_stats.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

ClusterStats cluster_statistics(const Graph& g, PercolationKind kind,
                                double survival_probability, int trials, std::uint64_t seed) {
  FNE_REQUIRE(survival_probability >= 0.0 && survival_probability <= 1.0,
              "probability out of range");
  FNE_REQUIRE(trials >= 1, "need at least one trial");
  const double fault_p = 1.0 - survival_probability;
  const Rng root(seed);
  const double n = static_cast<double>(g.num_vertices());

  struct TrialResult {
    double gamma = 0.0;
    double second = 0.0;
    double chi = 0.0;
  };
  std::vector<TrialResult> results(static_cast<std::size_t>(trials));

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t trial_seed = root.fork(static_cast<std::uint64_t>(t)).next();
    Components comps;
    if (kind == PercolationKind::Site) {
      const VertexSet alive = random_node_faults(g, fault_p, trial_seed);
      comps = connected_components(g, alive);
    } else {
      const EdgeMask edges = random_edge_faults(g, fault_p, trial_seed);
      comps = connected_components(g, VertexSet::full(g.num_vertices()), &edges);
    }
    TrialResult& r = results[static_cast<std::size_t>(t)];
    if (comps.sizes.empty()) continue;
    std::vector<vid> sizes = comps.sizes;
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    r.gamma = static_cast<double>(sizes[0]) / n;
    r.second = sizes.size() > 1 ? static_cast<double>(sizes[1]) / n : 0.0;
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 1; i < sizes.size(); ++i) {  // exclude the largest
      const double s = static_cast<double>(sizes[i]);
      s1 += s;
      s2 += s * s;
    }
    r.chi = s1 > 0.0 ? s2 / s1 : 0.0;
  }

  ClusterStats stats;
  stats.trials = trials;
  for (const TrialResult& r : results) {
    stats.gamma.add(r.gamma);
    stats.second_fraction.add(r.second);
    stats.susceptibility.add(r.chi);
  }
  return stats;
}

}  // namespace fne
