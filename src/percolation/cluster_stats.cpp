#include "percolation/cluster_stats.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

ClusterStats cluster_statistics(const Graph& g, PercolationKind kind,
                                double survival_probability, int trials, std::uint64_t seed) {
  FNE_REQUIRE(survival_probability >= 0.0 && survival_probability <= 1.0,
              "probability out of range");
  FNE_REQUIRE(trials >= 1, "need at least one trial");
  const double fault_p = 1.0 - survival_probability;
  const Rng root(seed);
  const double n = static_cast<double>(g.num_vertices());

  // Same reduction pattern as percolate(): Rng::fork per trial, one
  // accumulator set per fixed-size chunk, chunks merged in index order —
  // thread-count- and schedule-independent with no O(trials) buffer.
  struct ChunkStats {
    RunningStats gamma;
    RunningStats second;
    RunningStats chi;
  };
  const int chunks = (trials + kPercolationChunk - 1) / kPercolationChunk;
  std::vector<ChunkStats> partial(static_cast<std::size_t>(chunks));

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
  for (int c = 0; c < chunks; ++c) {
    ChunkStats acc;
    const int lo = c * kPercolationChunk;
    const int hi = std::min(trials, lo + kPercolationChunk);
    for (int t = lo; t < hi; ++t) {
      const std::uint64_t trial_seed = root.fork(static_cast<std::uint64_t>(t)).next();
      Components comps;
      if (kind == PercolationKind::Site) {
        const VertexSet alive = random_node_faults(g, fault_p, trial_seed);
        comps = connected_components(g, alive);
      } else {
        const EdgeMask edges = random_edge_faults(g, fault_p, trial_seed);
        comps = connected_components(g, VertexSet::full(g.num_vertices()), &edges);
      }
      double gamma = 0.0, second = 0.0, chi = 0.0;
      if (!comps.sizes.empty()) {
        std::vector<vid> sizes = comps.sizes;
        std::sort(sizes.begin(), sizes.end(), std::greater<>());
        gamma = static_cast<double>(sizes[0]) / n;
        second = sizes.size() > 1 ? static_cast<double>(sizes[1]) / n : 0.0;
        double s1 = 0.0, s2 = 0.0;
        for (std::size_t i = 1; i < sizes.size(); ++i) {  // exclude the largest
          const double s = static_cast<double>(sizes[i]);
          s1 += s;
          s2 += s * s;
        }
        chi = s1 > 0.0 ? s2 / s1 : 0.0;
      }
      acc.gamma.add(gamma);
      acc.second.add(second);
      acc.chi.add(chi);
    }
    partial[static_cast<std::size_t>(c)] = acc;
  }

  ClusterStats stats;
  stats.trials = trials;
  for (const ChunkStats& p : partial) {
    stats.gamma.merge(p.gamma);
    stats.second_fraction.merge(p.second);
    stats.susceptibility.merge(p.chi);
  }
  return stats;
}

}  // namespace fne
