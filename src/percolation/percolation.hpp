// Monte-Carlo percolation (paper §1.1).
//
// Conventions follow the percolation literature the paper cites: `p` here
// is the SURVIVAL probability (G(p) keeps each element alive with
// probability p), i.e. the complement of the fault probability used by
// the fault models.  γ(G(p)) is the fraction of the original n vertices
// in the largest surviving component.
//
// Trials are embarrassingly parallel: each gets an Rng forked by trial
// index, and per-trial observables accumulate into per-chunk
// RunningStats (fixed kPercolationChunk-trial chunks) merged in chunk
// order, so results are independent of the thread count and the OpenMP
// schedule (DESIGN.md §7).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "util/stats.hpp"

namespace fne {

enum class PercolationKind {
  Site,  ///< vertices survive with probability p
  Bond,  ///< edges survive with probability p
};

/// Reduction granularity of the Monte-Carlo layers: trials are chunked in
/// fixed groups of this size regardless of thread count, each chunk's
/// stats merging in index order.
inline constexpr int kPercolationChunk = 16;

struct PercolationResult {
  RunningStats gamma;             ///< largest-component fraction per trial
  double survival_probability = 0.0;
  int trials = 0;
};

/// Estimate γ(G(p)) over `trials` independent trials.
[[nodiscard]] PercolationResult percolate(const Graph& g, PercolationKind kind,
                                          double survival_probability, int trials,
                                          std::uint64_t seed);

}  // namespace fne
