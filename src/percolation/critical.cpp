#include "percolation/critical.hpp"

#include "util/require.hpp"

namespace fne {

CriticalResult estimate_critical_probability(const Graph& g, PercolationKind kind,
                                             const CriticalOptions& options) {
  FNE_REQUIRE(options.gamma_target > 0.0 && options.gamma_target < 1.0,
              "gamma target must be in (0, 1)");
  CriticalResult result;
  double lo = 0.0;
  double hi = 1.0;
  double gamma_mid = 0.0;
  for (int step = 0; step < options.bisection_steps; ++step) {
    const double mid = 0.5 * (lo + hi);
    const PercolationResult probe =
        percolate(g, kind, mid, options.trials_per_probe,
                  options.seed + static_cast<std::uint64_t>(step) * 7919ULL);
    ++result.probes;
    gamma_mid = probe.gamma.mean();
    if (gamma_mid >= options.gamma_target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.p_star = 0.5 * (lo + hi);
  result.gamma_at_p_star = gamma_mid;
  return result;
}

}  // namespace fne
