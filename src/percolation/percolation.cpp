#include "percolation/percolation.hpp"

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

PercolationResult percolate(const Graph& g, PercolationKind kind, double survival_probability,
                            int trials, std::uint64_t seed) {
  FNE_REQUIRE(survival_probability >= 0.0 && survival_probability <= 1.0,
              "probability out of range");
  FNE_REQUIRE(trials >= 1, "need at least one trial");
  const double fault_p = 1.0 - survival_probability;
  const Rng root(seed);

  PercolationResult result;
  result.survival_probability = survival_probability;
  result.trials = trials;

  // Per-trial γ values land in a pre-sized buffer indexed by trial, and
  // the accumulator folds them in trial order afterwards: results are
  // bit-identical for any thread count or schedule.
  std::vector<double> gammas(static_cast<std::size_t>(trials), 0.0);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t trial_seed = root.fork(static_cast<std::uint64_t>(t)).next();
    double gamma = 0.0;
    if (kind == PercolationKind::Site) {
      const VertexSet alive = random_node_faults(g, fault_p, trial_seed);
      gamma = gamma_largest_fraction(g, alive);
    } else {
      const EdgeMask edges = random_edge_faults(g, fault_p, trial_seed);
      gamma = gamma_largest_fraction(g, VertexSet::full(g.num_vertices()), &edges);
    }
    gammas[static_cast<std::size_t>(t)] = gamma;
  }
  for (double gamma : gammas) result.gamma.add(gamma);
  return result;
}

}  // namespace fne
