#include "percolation/percolation.hpp"

#include <algorithm>

#include "core/traversal.hpp"
#include "faults/fault_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

PercolationResult percolate(const Graph& g, PercolationKind kind, double survival_probability,
                            int trials, std::uint64_t seed) {
  FNE_REQUIRE(survival_probability >= 0.0 && survival_probability <= 1.0,
              "probability out of range");
  FNE_REQUIRE(trials >= 1, "need at least one trial");
  const double fault_p = 1.0 - survival_probability;
  const Rng root(seed);

  PercolationResult result;
  result.survival_probability = survival_probability;
  result.trials = trials;

  // Rng::fork per TRIAL + RunningStats::merge per fixed-size CHUNK: each
  // chunk accumulates its own Welford state and the chunks merge in index
  // order afterwards.  Chunk boundaries depend only on the trial index,
  // so the result is one specific value per (graph, p, trials, seed) —
  // never a function of the thread count or the OpenMP schedule — and no
  // O(trials) side buffer is needed (DESIGN.md §7).
  const int chunks = (trials + kPercolationChunk - 1) / kPercolationChunk;
  std::vector<RunningStats> partial(static_cast<std::size_t>(chunks));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
  for (int c = 0; c < chunks; ++c) {
    RunningStats acc;
    const int lo = c * kPercolationChunk;
    const int hi = std::min(trials, lo + kPercolationChunk);
    for (int t = lo; t < hi; ++t) {
      const std::uint64_t trial_seed = root.fork(static_cast<std::uint64_t>(t)).next();
      double gamma = 0.0;
      if (kind == PercolationKind::Site) {
        const VertexSet alive = random_node_faults(g, fault_p, trial_seed);
        gamma = gamma_largest_fraction(g, alive);
      } else {
        const EdgeMask edges = random_edge_faults(g, fault_p, trial_seed);
        gamma = gamma_largest_fraction(g, VertexSet::full(g.num_vertices()), &edges);
      }
      acc.add(gamma);
    }
    partial[static_cast<std::size_t>(c)] = acc;
  }
  for (const RunningStats& p : partial) result.gamma.merge(p);
  return result;
}

}  // namespace fne
