// Cluster statistics beyond γ: mean finite-cluster size (the percolation
// susceptibility χ) and the second-largest cluster, both of which peak at
// the critical point and sharpen finite-size threshold estimates (§1.1).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "percolation/percolation.hpp"
#include "util/stats.hpp"

namespace fne {

struct ClusterStats {
  RunningStats gamma;            ///< largest cluster / n (as in percolate())
  RunningStats second_fraction;  ///< second-largest cluster / n
  /// Susceptibility χ = E[s²]/E[s] over clusters EXCLUDING the largest
  /// (the standard finite-size observable; diverges at p*).
  RunningStats susceptibility;
  int trials = 0;
};

[[nodiscard]] ClusterStats cluster_statistics(const Graph& g, PercolationKind kind,
                                              double survival_probability, int trials,
                                              std::uint64_t seed);

}  // namespace fne
