#include "api/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/embedding.hpp"
#include "analysis/fragmentation.hpp"
#include "api/registry.hpp"
#include "api/runner.hpp"
#include "core/traversal.hpp"
#include "expansion/bracket.hpp"
#include "prune/verify.hpp"
#include "span/compact_sets.hpp"
#include "span/mesh_span.hpp"
#include "span/span.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "topology/mesh.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

namespace {

/// Same declared-params hygiene as the other registries.
void check_declared(const MetricEntry& entry, const Params& params) {
  for (const auto& [key, value] : params.values()) {
    const bool known = std::any_of(entry.params.begin(), entry.params.end(),
                                   [&](const ParamSpec& s) { return s.key == key; });
    if (!known) {
      std::string declared;
      for (const ParamSpec& s : entry.params) {
        if (!declared.empty()) declared += ", ";
        declared += s.key;
      }
      FNE_REQUIRE(false, "metric '" + entry.name + "' has no param '" + key +
                             "' (declared: " + (declared.empty() ? "none" : declared) + ")");
    }
  }
}

/// Short fixed-point rendering for table briefs (payloads carry the full
/// 12-digit values; briefs are for humans).
[[nodiscard]] std::string brief_num(double v, int digits = 3) {
  std::string s = std::to_string(v);
  const std::size_t dot = s.find('.');
  if (dot != std::string::npos) s = s.substr(0, dot + 1 + static_cast<std::size_t>(digits));
  return s;
}

[[nodiscard]] MetricRecord record(const std::string& name, const JsonObject& payload,
                                  std::string brief) {
  return MetricRecord{name, payload.dump(), std::move(brief)};
}

[[nodiscard]] MetricRecord undefined_record(const std::string& name, const char* why) {
  JsonObject obj;
  obj.put("defined", false).put("why", why);
  return record(name, obj, "-");
}

/// Shared spectral_mode/filter_degree param handling for the two spectral
/// metrics (DESIGN.md §10).  validate_spectral_params runs at campaign
/// parse time via MetricEntry::validate; accel_from_params re-parses at
/// compute time and fills the operator-specific Gershgorin bound.
void validate_spectral_params(const Params& params) {
  (void)spectral_mode_from_string(params.get_str("spectral_mode", "auto"));
  FNE_REQUIRE(params.get_int("filter_degree", 0) >= 0, "filter_degree must be >= 0");
}

[[nodiscard]] SpectralAccel accel_from_params(const Params& params, const SubCsr& sub) {
  SpectralAccel accel;
  accel.mode = spectral_mode_from_string(params.get_str("spectral_mode", "auto"));
  accel.filter_degree = static_cast<int>(params.get_int("filter_degree", 0));
  accel.op_upper_bound = gershgorin_upper_bound(sub);
  return accel;
}

/// Smallest k nontrivial Laplacian eigenvalues over a prebuilt compact
/// operator (host assumed connected), via ONE blocked solve — the k >= 2
/// consumer the blocked kernel exists for.
[[nodiscard]] LanczosResult host_spectrum(const SubCsrLaplacian& lap, int k,
                                          std::uint64_t seed, const SpectralAccel& accel) {
  BlockLanczosOptions opts;
  opts.num_eigenpairs = k;
  opts.tolerance = 1e-8;
  opts.seed = seed;
  opts.accel = accel;
  const std::vector<std::vector<double>> defl{std::vector<double>(lap.dim(), 1.0)};
  return lanczos_smallest_block(
      [&lap](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); },
      lap.dim(), defl, opts);
}

// ---------------------------------------------------------------------------
// Builtin metrics
// ---------------------------------------------------------------------------

[[nodiscard]] MetricRecord metric_fragmentation(const MetricContext& ctx, const Params&) {
  const FragmentationProfile p = fragmentation_profile(ctx.graph, ctx.run.prune.survivors);
  JsonObject obj;
  obj.put("largest", static_cast<std::uint64_t>(p.largest))
      .put("gamma", p.gamma)
      .put("components", static_cast<std::uint64_t>(p.num_components));
  return record("fragmentation", obj, "gamma " + brief_num(p.gamma));
}

[[nodiscard]] MetricRecord metric_expansion_bracket(const MetricContext& ctx,
                                                    const Params& params) {
  if (ctx.run.prune.survivors.count() < 2) {
    return undefined_record("expansion_bracket", "needs >= 2 survivors");
  }
  BracketOptions opts;
  opts.exact_limit = static_cast<vid>(params.get_int("exact_limit", 14));
  opts.seed = ctx.seed;
  const ExpansionBracket b =
      expansion_bracket(ctx.graph, ctx.run.prune.survivors, ctx.scenario.prune.kind, opts);
  JsonObject obj;
  obj.put("defined", true).put("lower", b.lower).put("upper", b.upper).put("exact", b.exact);
  // Built by append: the equivalent operator+ chain trips GCC 12's bogus
  // -Wrestrict diagnostic (PR 105329).
  std::string brief = "[";
  brief += brief_num(b.lower);
  brief += ",";
  brief += brief_num(b.upper);
  brief += "]";
  return record("expansion_bracket", obj, std::move(brief));
}

[[nodiscard]] MetricRecord metric_verify_trace(const MetricContext& ctx, const Params&) {
  const TraceVerification t = verify_prune_trace(ctx.graph, ctx.run.alive, ctx.run.prune,
                                                 ctx.scenario.prune.kind, ctx.run.threshold);
  JsonObject obj;
  obj.put("valid", t.valid).put("failed_record", t.failed_record);
  return record("verify_trace", obj, t.valid ? "valid" : "INVALID");
}

[[nodiscard]] MetricRecord metric_mesh_span(const MetricContext& ctx, const Params& params) {
  // A config error, not a data degeneracy: mesh_span on a topology
  // without mesh structure (or on a torus, where Lemma 3.7 fails — see
  // span/mesh_span.hpp) should abort the campaign loudly.
  const Mesh mesh = mesh_for(ctx.scenario.topology.name, ctx.scenario.topology.params);
  FNE_REQUIRE(!mesh.wraps(),
              "metric 'mesh_span': Lemma 3.7 does not extend to tori (see span/mesh_span.hpp); "
              "use a 'mesh' topology");
  const vid n = mesh.num_vertices();
  const auto samples = static_cast<int>(params.get_int("samples", 24));
  FNE_REQUIRE(samples >= 1, "metric 'mesh_span': samples must be >= 1");
  const bool exact = params.get_bool("exact", n <= kCompactEnumLimit);

  JsonObject obj;
  obj.put("n", static_cast<std::uint64_t>(n));
  std::string brief;
  if (exact) {
    const SpanResult r = exact_span(mesh.graph());
    obj.put("exact_span", r.span)
        .put("exact_sets", r.sets_examined)
        .put("exact_bound_ok", r.span <= 2.0 + 1e-9);
    brief = "span " + brief_num(r.span, 2);
  }

  // Theorem 3.6's own construction on sampled compact sets, plus the
  // Lemma 3.7 connectivity check — bench_e6's (b)+(c), registry-reachable.
  Rng rng(ctx.seed);
  int produced = 0;
  int lemma_ok = 0;
  double max_ratio = 0.0;
  vid max_boundary = 0;
  for (int s = 0; s < samples; ++s) {
    const vid target = 2 + static_cast<vid>(rng.uniform(std::max<vid>(n / 3, 1)));
    const VertexSet u = sample_compact_set(mesh.graph(), target, rng.next());
    if (u.empty()) continue;
    ++produced;
    if (virtual_boundary_connected(mesh, u)) ++lemma_ok;
    const ConstructiveSpanTree tree = mesh_boundary_span_tree(mesh, u);
    max_ratio = std::max(max_ratio, tree.ratio);
    max_boundary = std::max(max_boundary, tree.boundary_size);
  }
  obj.put("sampled_sets", produced)
      .put("lemma37_ok", lemma_ok)
      .put("max_tree_ratio", max_ratio)
      .put("max_boundary", static_cast<std::uint64_t>(max_boundary))
      .put("tree_bound_ok", max_ratio <= 2.0 + 1e-9);
  if (brief.empty()) brief = "ratio " + brief_num(max_ratio, 2) + "<=2";
  return record("mesh_span", obj, brief);
}

[[nodiscard]] MetricRecord metric_span_estimate(const MetricContext& ctx, const Params& params) {
  SpanEstimateOptions opts;
  opts.samples_per_size = static_cast<int>(params.get_int("samples", 8));
  FNE_REQUIRE(opts.samples_per_size >= 1, "metric 'span_estimate': samples must be >= 1");
  opts.seed = ctx.seed;
  const std::string fractions = params.get_str("fractions", "0.05,0.1,0.2,0.35,0.5");
  opts.size_fractions = parse_double_list(fractions);
  FNE_REQUIRE(!opts.size_fractions.empty(),
              "metric 'span_estimate': fractions must be a non-empty list");
  const SpanResult r = estimate_span(ctx.graph, opts);
  JsonObject obj;
  obj.put("span", r.span)
      .put("sets_examined", r.sets_examined)
      .put("exact", r.exact)
      .put("worst_boundary", static_cast<std::uint64_t>(r.worst_boundary))
      .put("worst_tree_nodes", static_cast<std::uint64_t>(r.worst_tree_nodes));
  return record("span_estimate", obj, "sigma~" + brief_num(r.span, 2));
}

[[nodiscard]] MetricRecord metric_embedding_quality(const MetricContext& ctx,
                                                    const Params& params) {
  const auto spectral_dims = static_cast<int>(params.get_int("spectral_dims", 2));
  FNE_REQUIRE(spectral_dims >= 0, "metric 'embedding_quality': spectral_dims must be >= 0");
  if (ctx.run.prune.survivors.empty()) {
    return undefined_record("embedding_quality", "empty survivor set");
  }
  // The host is the largest surviving component: the paper's emulation
  // story embeds the fault-free guest into the usable part of the
  // survivor, and prune output can legitimately be shattered.
  const VertexSet host = largest_component(ctx.graph, ctx.run.prune.survivors);
  const SelfEmbedding e = embed_into_survivors(ctx.graph, host);
  JsonObject obj;
  obj.put("defined", true)
      .put("host", static_cast<std::uint64_t>(host.count()))
      .put("host_fraction",
           static_cast<double>(host.count()) / static_cast<double>(ctx.graph.num_vertices()))
      .put("load", static_cast<std::uint64_t>(e.quality.load))
      .put("congestion", static_cast<std::uint64_t>(e.quality.congestion))
      .put("dilation", static_cast<std::uint64_t>(e.quality.dilation))
      .put("average_dilation", e.quality.average_dilation)
      .put("slowdown", static_cast<std::uint64_t>(e.quality.slowdown()));
  // Spectral coordinates of the host: the k smallest nontrivial
  // Laplacian eigenvalues in ONE blocked solve — the geometry the host
  // offers a k-dimensional guest, and λ₂'s decay under growing faults is
  // the emulation-slowdown early warning.
  if (spectral_dims >= 1 && host.count() >= static_cast<vid>(spectral_dims) + 2) {
    SubCsr sub;
    sub.build(ctx.graph, host);
    const SubCsrLaplacian lap(sub);
    const LanczosResult spec =
        host_spectrum(lap, spectral_dims, ctx.seed, accel_from_params(params, sub));
    obj.put_numbers("spectral", spec.values).put("spectral_converged", spec.converged);
  }
  return record("embedding_quality", obj,
                "slowdown " + std::to_string(e.quality.slowdown()));
}

[[nodiscard]] MetricRecord metric_expander_certificate(const MetricContext& ctx,
                                                       const Params& params) {
  const auto eigenpairs = static_cast<int>(params.get_int("eigenpairs", 2));
  FNE_REQUIRE(eigenpairs >= 1, "metric 'expander_certificate': eigenpairs must be >= 1");
  if (ctx.run.prune.survivors.count() < 3) {
    return undefined_record("expander_certificate", "needs >= 3 survivors");
  }
  const VertexSet comp = largest_component(ctx.graph, ctx.run.prune.survivors);
  if (comp.count() < 3) {
    return undefined_record("expander_certificate", "largest component < 3");
  }

  // Bottom of the spectrum (λ₂..λ_{k+1}) in one blocked solve; top (λ_max)
  // via the k = 1 kernel on -L over the SAME compact operator.  λ₂/2 is
  // the certified Cheeger-type edge expansion lower bound for ANY graph;
  // the mixing-lemma fields only exist when the component is regular.
  SubCsr sub;
  sub.build(ctx.graph, comp);
  const SubCsrLaplacian lap(sub);
  const SpectralAccel accel = accel_from_params(params, sub);
  const LanczosResult bottom = host_spectrum(lap, eigenpairs, ctx.seed, accel);
  if (bottom.values.empty()) {
    return undefined_record("expander_certificate", "eigensolve failed");
  }
  LanczosOptions top_opts;
  top_opts.num_eigenpairs = 1;
  top_opts.seed = ctx.seed + 1;
  top_opts.tolerance = 1e-8;
  top_opts.max_iterations = 400;
  // The -L operator's spectrum lives in [-gershgorin, 0]: its upper bound
  // is 0, and a useful shift must sit below -lambda_max (see
  // spectral/expander_certificate.cpp for the same construction).
  top_opts.accel = accel;
  top_opts.accel.op_upper_bound = 0.0;
  if (resolve_spectral_mode(top_opts.accel, lap.dim()) == SpectralMode::kShiftInvert) {
    top_opts.accel.shift = -(gershgorin_upper_bound(sub) + 1.0);
  }
  const LanczosResult top = lanczos_smallest(
      [&lap](const std::vector<double>& x, std::vector<double>& y) {
        lap.apply(x, y);
        for (auto& v : y) v = -v;
      },
      lap.dim(), {}, top_opts);
  const double lambda2 = bottom.values.front();
  const double lambda_max = top.values.empty() ? 0.0 : -top.values.front();

  JsonObject obj;
  obj.put("defined", true)
      .put("component", static_cast<std::uint64_t>(comp.count()))
      .put_numbers("lambdas", bottom.values)
      .put("lambda_max", lambda_max)
      .put("edge_expansion_lower", lambda2 / 2.0)
      .put("converged", bottom.converged && top.converged);

  // d-regularity within the component unlocks the expander mixing lemma
  // (spectral/expander_certificate.hpp): adjacency spectrum = d - L
  // spectrum.
  vid degree = kInvalidVertex;
  bool regular = true;
  comp.for_each([&](vid v) {
    vid d = 0;
    for (vid w : ctx.graph.neighbors(v)) {
      if (comp.test(w)) ++d;
    }
    if (degree == kInvalidVertex) degree = d;
    regular = regular && d == degree;
  });
  obj.put("regular", regular);
  if (regular) {
    const double d = static_cast<double>(degree);
    const double lambda_mixing = std::max(std::fabs(d - lambda2), std::fabs(d - lambda_max));
    obj.put("degree", d)
        .put("lambda_mixing", lambda_mixing)
        .put("is_ramanujan", lambda_mixing <= 2.0 * std::sqrt(std::max(d - 1.0, 0.0)) + 1e-6);
  }
  return record("expander_certificate", obj, "h>=" + brief_num(lambda2 / 2.0));
}

}  // namespace

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::add(MetricEntry entry) {
  FNE_REQUIRE(!entry.name.empty(), "metric entry needs a name");
  FNE_REQUIRE(static_cast<bool>(entry.compute), "metric '" + entry.name + "' needs a compute fn");
  entries_[entry.name] = std::move(entry);
}

bool MetricsRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const MetricEntry& MetricsRegistry::at(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    FNE_REQUIRE(false, "unknown metric '" + name + "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void MetricsRegistry::check(const std::string& name, const Params& params) const {
  const MetricEntry& entry = at(name);
  check_declared(entry, params);
  if (entry.validate) entry.validate(params);
}

MetricRecord MetricsRegistry::compute(const std::string& name, const MetricContext& ctx,
                                      const Params& params) const {
  const MetricEntry& entry = at(name);
  check_declared(entry, params);
  if (entry.validate) entry.validate(params);
  MetricRecord out = entry.compute(ctx, params);
  out.name = name;
  return out;
}

MetricsRegistry::MetricsRegistry() {
  add({"fragmentation",
       "fragmentation profile of the survivor set (largest component, gamma)",
       {},
       metric_fragmentation,
       {}});
  add({"expansion_bracket",
       "certified expansion bracket of the survivor set (costly: extra cut searches)",
       {{"exact_limit", "14", "exact enumeration cap"}},
       metric_expansion_bracket,
       {},
       /*split_job=*/true});
  add({"verify_trace",
       "replay-verify the prune trace (prune/verify.hpp certification)",
       {},
       metric_verify_trace,
       {}});
  add({"mesh_span",
       "Theorem 3.6 / Lemma 3.7 on the scenario's mesh: constructive span tree on sampled "
       "compact sets, exact span on tiny meshes",
       {{"samples", "24", "sampled compact sets"},
        {"exact", "auto", "exhaustive exact span (default: n <= 24)"}},
       metric_mesh_span,
       {}});
  add({"span_estimate",
       "sampled span estimate of the fault-free topology (paper Eq. 1, the §4 conjecture)",
       {{"samples", "8", "samples per size fraction"},
        {"fractions", "0.05,0.1,0.2,0.35,0.5", "target sizes as fractions of n"}},
       metric_span_estimate,
       {},
       /*split_job=*/true});
  add({"embedding_quality",
       "load/congestion/dilation of embedding the fault-free guest into the largest "
       "surviving component, plus its blocked-Lanczos spectral profile",
       {{"spectral_dims", "2", "smallest nontrivial Laplacian eigenvalues to report (0: skip)"},
        {"spectral_mode", "auto", "eigensolver: plain|filtered|shift_invert|auto"},
        {"filter_degree", "0", "Chebyshev degree for filtered solves (0: auto)"}},
       metric_embedding_quality,
       validate_spectral_params});
  add({"expander_certificate",
       "spectral expansion certificate of the largest surviving component (Cheeger lower "
       "bound; mixing-lemma fields when regular)",
       {{"eigenpairs", "2", "bottom eigenpairs from one blocked solve"},
        {"spectral_mode", "auto", "eigensolver: plain|filtered|shift_invert|auto"},
        {"filter_degree", "0", "Chebyshev degree for filtered solves (0: auto)"}},
       metric_expander_certificate,
       validate_spectral_params});
}

}  // namespace fne
