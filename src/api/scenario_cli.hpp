// Scenario construction from command-line flags — the override logic the
// scenario_runner CLI, campaign overrides and flag-driven drivers share
// (previously hand-rolled per binary).
//
// Flag conventions (all optional; overrides apply on top of `base`):
//   --scenario=NAME        start from the named catalog preset
//   --topology=NAME        topology registry key (params reset on change)
//   --topo-params=K=V,...  merged into the topology params
//   --fault=NAME           fault model registry key (params reset on change)
//   --fault-params=K=V,... merged into the fault params
//   --kind=node|edge       Prune vs Prune2
//   --alpha=A --eps=E      <= 0: measured / canonical (PruneSpec docs)
//   --fast --verify --expansion
//   --reps=N --seed=S
#pragma once

#include "api/scenario.hpp"
#include "util/cli.hpp"

namespace fne {

/// Apply the shared scenario flags on top of `base` (typically a catalog
/// preset named by --scenario, or a default-constructed Scenario).
[[nodiscard]] Scenario scenario_overrides_from_cli(Scenario base, const Cli& cli);

/// Resolve --scenario (preset lookup, REQUIREs it exists) and apply the
/// overrides; without --scenario starts from an "ad-hoc" blank Scenario.
[[nodiscard]] Scenario scenario_from_cli(const Cli& cli);

}  // namespace fne
