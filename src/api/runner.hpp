// fne::ScenarioRunner — executes Scenarios (DESIGN.md §6).
//
// A runner is bound to one Scenario: it builds the topology once, resolves
// α/ε once, and owns ONE PruneEngine for the graph, whose workspace
// (Krylov basis, BFS queues, degree tables, cached Fiedler vector)
// survives across repetitions, fault-parameter sweeps, and churn rounds.
// That closes ROADMAP's "reuse component state across *rounds*" item: the
// per-round deltas of a churn process are tiny, and bench_s2_churn_engine
// shows the persistent engine beating per-round stateless pruning.
//
// Determinism contract: a ScenarioRunner is a pure function of its
// Scenario.  Repetition r derives its fault seed from (scenario.seed, r)
// via splitmix64 and its finder seed likewise, so the same Scenario run
// twice — or on two runners — produces bit-identical ScenarioRuns.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/fragmentation.hpp"
#include "api/scenario.hpp"
#include "expansion/bracket.hpp"
#include "faults/churn.hpp"
#include "prune/engine.hpp"
#include "prune/verify.hpp"
#include "util/table.hpp"

namespace fne {

/// One executed repetition of a Scenario.
struct ScenarioRun {
  int repetition = 0;
  std::uint64_t fault_seed = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used; replays via prune()/prune2()
  vid faults = 0;          ///< n - |alive|
  VertexSet alive;         ///< post-fault, pre-prune survivors
  PruneResult prune;
  double threshold = 0.0;  ///< α·ε actually used
  FragmentationProfile fragmentation;           ///< of prune.survivors (if requested)
  std::optional<ExpansionBracket> expansion;    ///< of prune.survivors (if requested)
  std::optional<TraceVerification> trace;       ///< replay certificate (if requested)
  double millis = 0.0;     ///< prune time only (topology/fault excluded)

  [[nodiscard]] double survivor_fraction(vid n) const {
    return n == 0 ? 0.0 : static_cast<double>(prune.survivors.count()) / n;
  }
};

/// One churn round executed through the runner's persistent engine.
struct ChurnRoundRun {
  ChurnStep churn;         ///< the raw process observables (parity with simulate_churn)
  vid survivors = 0;       ///< |H| after re-pruning this round's alive mask
  vid culled = 0;
  int iterations = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used this round
  double prune_millis = 0.0;
};

struct ChurnRunTrace {
  std::vector<ChurnRoundRun> rounds;
  VertexSet final_alive;       ///< churn process state after the last round
  VertexSet final_survivors;   ///< prune survivors of the last round
  [[nodiscard]] double total_prune_millis() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario);

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] const EngineStats& engine_stats() const noexcept { return engine_.stats(); }

  /// Execute repetition `rep`: inject faults, prune through the persistent
  /// engine, measure the requested metrics.
  [[nodiscard]] ScenarioRun run_once(int rep = 0);

  /// All scenario.repetitions, in order, on the one engine.
  [[nodiscard]] std::vector<ScenarioRun> run_all();

  /// Swap the fault process (topology, α/ε and engine state are kept —
  /// that is the point of the persistent engine).
  void set_fault(FaultSpec fault);

  /// Sweep one numeric fault param over `values`: one run per value at
  /// repetition 0's seed, all on the one engine.  The fault spec is
  /// restored afterwards.
  [[nodiscard]] std::vector<ScenarioRun> sweep_fault_param(const std::string& key,
                                                           std::span<const double> values);

  /// Drive a churn process and re-prune EVERY round through the
  /// persistent engine.  The fault stream is bit-identical to
  /// simulate_churn(graph(), options) — the scenario's fault spec is not
  /// used here.
  [[nodiscard]] ChurnRunTrace run_churn(const ChurnOptions& options);

  /// Render runs as a metrics table (one row per run; columns follow the
  /// scenario's MetricsSpec).  `label` names the first column.
  [[nodiscard]] Table metrics_table(std::span<const ScenarioRun> runs,
                                    const std::vector<std::string>& labels = {}) const;

 private:
  [[nodiscard]] PruneEngineOptions engine_options(std::uint64_t finder_seed) const;
  void measure(ScenarioRun& run) const;

  Scenario scenario_;
  Graph graph_;
  double alpha_ = 0.0;
  double epsilon_ = 0.0;
  PruneEngine engine_;
};

}  // namespace fne
